"""Core hot-path benchmarks: engine microbenches + a Figure 6 slice.

Two layers:

* plain timing functions (``run_engine_benches``, ``run_network_benches``)
  used by :mod:`benchmarks.report` to emit ``BENCH_PR3.json`` from any
  host, CI included, with no pytest-benchmark dependency;
* thin pytest-benchmark wrappers so ``pytest benchmarks/bench_core.py``
  folds the same workloads into the local benchmark workflow.

The workloads are chosen to isolate what PR 3 optimized:

* ``chain`` — a self-scheduling callback chain: pure dispatch +
  ``schedule`` cost, one event in the queue at a time;
* ``prefill_at`` — N events scheduled up front via ``at()``: binary-heap
  scheduling and draining;
* ``prefill_at_many`` — the same N events bulk-scheduled via
  ``at_many()``: the sorted-run fast path bulk schedulers use;
* one near-knee uniform-traffic load point per network architecture —
  the smallest workload that exercises every per-packet table the
  networks precompute.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.core.engine import Simulator
from repro.core.sweep import run_load_point
from repro.macrochip.config import scaled_config
from repro.workloads.synthetic import UniformTraffic

#: events per engine microbench — large enough that interpreter startup
#: noise vanishes, small enough for seconds-scale CI runs
ENGINE_EVENTS = 200_000

#: one near-knee Figure 6 load point per network (uniform traffic); the
#: loads sit where each architecture's queues and arbitration are busy
NETWORK_POINTS: List[Tuple[str, float]] = [
    ("point_to_point", 0.90),
    ("limited_point_to_point", 0.45),
    ("token_ring", 0.38),
    ("two_phase", 0.08),
    ("circuit_switched", 0.03),
]

NETWORK_WINDOW_NS = 500.0


# -- engine microbenches -----------------------------------------------------

def _chain(n: int = ENGINE_EVENTS) -> int:
    sim = Simulator()

    def tick(remaining: int) -> None:
        if remaining:
            sim.schedule(10, tick, remaining - 1)

    sim.at(0, tick, n - 1)
    return sim.run()


def _prefill_at(n: int = ENGINE_EVENTS) -> int:
    sim = Simulator()
    fn = (lambda: None)
    for i in range(n):
        sim.at(i, fn)
    return sim.run()


def _prefill_at_many(n: int = ENGINE_EVENTS) -> int:
    sim = Simulator()
    fn = (lambda: None)
    sim.at_many((i, fn, ()) for i in range(n))
    return sim.run()


ENGINE_BENCHES = {
    "chain": _chain,
    "prefill_at": _prefill_at,
    "prefill_at_many": _prefill_at_many,
}


def run_engine_benches(events: int = ENGINE_EVENTS,
                       repeats: int = 3) -> Dict[str, Dict[str, float]]:
    """Run every engine microbench ``repeats`` times; report the best
    (least-interference) events/sec per bench."""
    out: Dict[str, Dict[str, float]] = {}
    for name, fn in ENGINE_BENCHES.items():
        fn(events)  # warm caches/allocator outside the timed runs
        best_s = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            dispatched = fn(events)
            elapsed = time.perf_counter() - t0
            assert dispatched == events
            best_s = min(best_s, elapsed)
        out[name] = {
            "events": float(events),
            "wall_clock_s": best_s,
            "events_per_sec": events / best_s,
        }
    return out


# -- Figure 6 slice ----------------------------------------------------------

def run_network_benches(window_ns: float = NETWORK_WINDOW_NS,
                        ) -> Dict[str, Dict[str, float]]:
    """One uniform-traffic load point per network on the paper's 8x8
    configuration; wall-clock and events/sec per network."""
    cfg = scaled_config()
    out: Dict[str, Dict[str, float]] = {}
    for network, fraction in NETWORK_POINTS:
        pattern = UniformTraffic(cfg.layout)
        t0 = time.perf_counter()
        result = run_load_point(network, cfg, pattern, fraction,
                                window_ns=window_ns)
        elapsed = time.perf_counter() - t0
        out[network] = {
            "offered_fraction": fraction,
            "window_ns": window_ns,
            "events_dispatched": float(result.events_dispatched),
            "wall_clock_s": elapsed,
            "events_per_sec": result.events_dispatched / elapsed,
            "delivered_packets": float(result.delivered_packets),
        }
    return out


# -- pytest-benchmark wrappers -----------------------------------------------

def test_engine_chain(benchmark):
    assert benchmark(_chain, 50_000) == 50_000


def test_engine_prefill_at(benchmark):
    assert benchmark(_prefill_at, 50_000) == 50_000


def test_engine_prefill_at_many(benchmark):
    assert benchmark(_prefill_at_many, 50_000) == 50_000


def test_network_slice_smoke(benchmark):
    def one_point():
        cfg = scaled_config()
        return run_load_point("point_to_point", cfg,
                              UniformTraffic(cfg.layout), 0.9,
                              window_ns=60.0)

    result = benchmark.pedantic(one_point, rounds=1, iterations=1)
    assert result.delivered_packets > 0
