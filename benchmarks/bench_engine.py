"""Microbenchmarks of the simulation substrate.

Not tied to a paper artifact — these track the cost of the hot paths
(event dispatch, channel transmission, cache access, directory
transitions, CPU-simulation throughput) so performance regressions in
the substrate are visible independently of the experiment harnesses.
"""

import random

from repro.core.engine import Simulator
from repro.cpu.cache import SetAssociativeCache
from repro.cpu.directory import Directory
from repro.cpu.system import generate_trace
from repro.macrochip.config import small_test_config
from repro.networks.base import Channel, Packet
from repro.workloads.kernels import RadixKernel


def test_event_dispatch_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()

        def tick(n):
            if n:
                sim.schedule(10, tick, n - 1)

        sim.at(0, tick, 10_000)
        sim.run()
        return sim.now

    assert benchmark(run_10k_events) == 100_000


def test_channel_send_throughput(benchmark):
    def send_5k():
        sim = Simulator()
        ch = Channel(sim, 5.0, 100)
        for _ in range(5000):
            ch.send(Packet(0, 1, 64), lambda p: None)
        sim.run()
        return ch.busy_ps

    assert benchmark(send_5k) == 5000 * 12800


def test_cache_access_throughput(benchmark):
    addrs = [random.Random(1).randrange(1 << 24) for _ in range(5000)]

    def churn():
        cache = SetAssociativeCache(256 * 1024, 64, 8)
        hits = 0
        for a in addrs:
            if cache.access(a, bool(a & 1)).hit:
                hits += 1
        return hits

    benchmark(churn)


def test_directory_transition_throughput(benchmark):
    rng = random.Random(2)
    ops = [(rng.choice(["r", "w"]), rng.randrange(64), rng.randrange(256))
           for _ in range(5000)]

    def churn():
        d = Directory(64)
        for op, site, line_no in ops:
            line = line_no * 64
            if op == "r":
                d.read(line, site)
            else:
                d.write(line, site)
        return len(d._entries)

    benchmark(churn)


def test_cpu_simulation_throughput(benchmark):
    cfg = small_test_config(2, 2)
    kernel = RadixKernel(refs_per_core=100)

    def run():
        return generate_trace(kernel, cfg).total_ops

    assert benchmark(run) > 0
