"""Benchmarks regenerating Figures 7, 8, 9, and 10.

The closed-loop campaign (CPU simulation + replay of every workload on
every network) runs once per session via the ``bench_suite`` fixture;
each figure's benchmark measures the campaign-or-derivation cost for its
artifact, prints the figure's rows, and asserts its headline claim.
"""

from repro.experiments.evaluation import run_suite
from repro.experiments.figures7_10 import (
    figure7_speedups,
    figure7_text,
    figure8_latencies,
    figure8_text,
    figure9_router_fractions,
    figure9_text,
    figure10_edp,
    figure10_text,
)
from repro.macrochip.config import scaled_config


def test_figure7_speedups(benchmark, bench_suite):
    """Figure 7: the campaign itself is the measured cost (run once more
    for timing on a single workload), the shared suite provides rows."""
    benchmark.pedantic(
        run_suite, args=("smoke",),
        kwargs={"config": scaled_config(), "workloads": ["All-to-all"],
                "networks": ["point_to_point", "circuit_switched"]},
        rounds=1, iterations=1)
    speedups = figure7_speedups(bench_suite)
    for workload, by_net in speedups.items():
        assert by_net["circuit_switched"] == 1.0
        assert by_net["point_to_point"] > 1.0, workload
    print()
    print(figure7_text(bench_suite))


def test_figure8_latency_per_op(benchmark, bench_suite):
    latencies = benchmark(figure8_latencies, bench_suite)
    # paper: P2P latency per coherence op <= ~100 ns on synthetics
    assert latencies["All-to-all"]["point_to_point"] < 100.0
    # the circuit-switched torus pays its multi-hop path setup
    assert (latencies["All-to-all"]["circuit_switched"]
            > 2 * latencies["All-to-all"]["point_to_point"])
    print()
    print(figure8_text(bench_suite))


def test_figure9_router_energy(benchmark, bench_suite):
    fractions = benchmark(figure9_router_fractions, bench_suite)
    # forwarding-free neighbor traffic uses almost no router energy;
    # all-to-all forwards ~75% of packets and pays the most
    assert fractions["Neighbor"] < fractions["All-to-all"]
    print()
    print(figure9_text(bench_suite))


def test_figure10_edp(benchmark, bench_suite):
    edp = benchmark(figure10_edp, bench_suite)
    for workload, by_net in edp.items():
        assert by_net["point_to_point"] == 1.0
        # paper: arbitrated/circuit-switched networks are 10-100x worse
        assert by_net["token_ring"] > 5.0, workload
        assert by_net["circuit_switched"] > 5.0, workload
    print()
    print(figure10_text(bench_suite))
