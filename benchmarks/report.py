"""Perf-regression report: run the core benchmarks, emit BENCH_PR3.json.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/report.py [--out results/BENCH_PR3.json]
                                               [--events N] [--repeats R]
                                               [--window-ns W] [--quick]

Runs the engine microbenches and the one-point-per-network Figure 6
slice from :mod:`benchmarks.bench_core`, annotates each engine bench
with its speedup over the recorded pre-optimization baseline, and
writes everything — plus host information — to a JSON artifact.

The script is *informational*: it always exits 0 (unless the simulation
itself is broken, which the test suite would catch first), so the CI
perf job can never fail the build.  Numbers are comparable between runs
on the same host class only; the committed baseline records the host it
was measured on.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

# allow both `python benchmarks/report.py` (script dir on sys.path) and
# execution from a checkout root without installing the package
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.core.parallel import available_cpus  # noqa: E402

import bench_core  # noqa: E402

#: events/sec measured at the pre-optimization commit (PR 2 head,
#: 6089c92) with the same workloads on the reference dev container —
#: the denominator for the speedup fields below
PRE_CHANGE_BASELINE = {
    "commit": "6089c92",
    "engine_events_per_sec": {
        # chain: dispatch + schedule; prefill: at() + heap drain.  The
        # pre-change engine had no at_many, so the bulk bench compares
        # against the prefill_at path it replaces for bulk schedulers.
        "chain": 1_010_914.0,
        "prefill_at": 718_679.0,
        "prefill_at_many": 718_679.0,
    },
    "network_events_per_sec": {
        "point_to_point": 207_996.0,
        "limited_point_to_point": 192_036.0,
        "token_ring": 147_317.0,
        "two_phase": 283_234.0,
        "circuit_switched": 273_954.0,
    },
}


def host_info() -> dict:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpus": available_cpus(),
    }


def latest_bench_path(results_dir: str = "results",
                      exclude: str | None = None) -> str | None:
    """The newest committed ``BENCH_PR<N>.json`` artifact (highest N).

    Consumers that compare against "the previous PR's numbers" —
    ``bench_sweep.py``'s drift table, the CI perf job — discover the
    baseline here instead of hard-coding a filename that goes stale
    every PR.  ``exclude`` skips one artifact (typically the one the
    caller is about to regenerate).  Returns ``None`` when the directory
    holds no artifacts.
    """
    import re

    best_n, best_path = -1, None
    try:
        names = os.listdir(results_dir)
    except OSError:
        return None
    for name in names:
        match = re.fullmatch(r"BENCH_PR(\d+)\.json", name)
        if not match or name == exclude:
            continue
        n = int(match.group(1))
        if n > best_n:
            best_n, best_path = n, os.path.join(results_dir, name)
    return best_path


def build_report(events: int, repeats: int, window_ns: float) -> dict:
    engine = bench_core.run_engine_benches(events=events, repeats=repeats)
    for name, bench in engine.items():
        base = PRE_CHANGE_BASELINE["engine_events_per_sec"].get(name)
        if base:
            bench["baseline_events_per_sec"] = base
            bench["speedup_vs_baseline"] = bench["events_per_sec"] / base
    networks = bench_core.run_network_benches(window_ns=window_ns)
    for name, bench in networks.items():
        base = PRE_CHANGE_BASELINE["network_events_per_sec"].get(name)
        if base:
            bench["baseline_events_per_sec"] = base
            bench["speedup_vs_baseline"] = bench["events_per_sec"] / base
    return {
        "schema": "repro-bench-pr3/1",
        "generated_unix": time.time(),
        "host": host_info(),
        "baseline": {
            "commit": PRE_CHANGE_BASELINE["commit"],
            "note": "pre-optimization events/sec on the reference dev "
                    "container; speedups are meaningful on comparable "
                    "hosts only",
        },
        "engine": engine,
        "networks": networks,
    }


def print_table(report: dict) -> None:
    print("engine microbenches (%s):" % report["host"]["platform"])
    for name, b in report["engine"].items():
        print("  %-18s %12.0f ev/s  %6.3fs  %sx" %
              (name, b["events_per_sec"], b["wall_clock_s"],
               ("%.2f" % b["speedup_vs_baseline"])
               if "speedup_vs_baseline" in b else "  ? "))
    print("figure 6 slice (uniform traffic, window %.0f ns):"
          % next(iter(report["networks"].values()))["window_ns"])
    for name, b in report["networks"].items():
        print("  %-24s @%.2f %12.0f ev/s  %6.3fs  %sx" %
              (name, b["offered_fraction"], b["events_per_sec"],
               b["wall_clock_s"],
               ("%.2f" % b["speedup_vs_baseline"])
               if "speedup_vs_baseline" in b else "  ? "))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="results/BENCH_PR3.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--events", type=int,
                        default=bench_core.ENGINE_EVENTS,
                        help="events per engine microbench")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per engine bench "
                             "(best is reported)")
    parser.add_argument("--window-ns", type=float,
                        default=bench_core.NETWORK_WINDOW_NS,
                        help="injection window for the network slice")
    parser.add_argument("--quick", action="store_true",
                        help="CI preset: fewer events, shorter windows")
    args = parser.parse_args(argv)
    if args.quick:
        args.events = min(args.events, 50_000)
        args.repeats = min(args.repeats, 2)
        args.window_ns = min(args.window_ns, 120.0)

    report = build_report(args.events, args.repeats, args.window_ns)
    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print_table(report)
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
