"""Benchmarks regenerating the paper's Tables 1, 4, 5, and 6.

Each benchmark produces exactly the table the paper prints (asserted
against the paper's values where the numbers are exact) and measures the
cost of deriving it from the component/topology models.
"""

from repro.analysis.power import table5_rows
from repro.experiments.table_experiments import (
    table1_text,
    table4_text,
    table5_text,
    table6_text,
)
from repro.networks.complexity import table6_rows


def test_table1_component_properties(benchmark):
    text = benchmark(table1_text)
    assert "35 fJ/bit" in text
    assert "4 dB" in text


def test_table4_simulated_configuration(benchmark):
    text = benchmark(table4_text)
    assert "320 GB/sec" in text
    assert "20 TB/sec" in text


def test_table5_network_optical_power(benchmark):
    rows = benchmark(table5_rows)
    by_name = {r.network: r for r in rows}
    assert round(by_name["Point-to-Point"].laser_power_w, 1) == 8.2
    assert 150 < by_name["Token-Ring"].laser_power_w < 160
    print()
    print(table5_text())


def test_table6_component_counts(benchmark):
    rows = benchmark(table6_rows)
    by_name = {r.network: r for r in rows}
    assert by_name["Token-Ring"].transmitters == 512 * 1024
    assert by_name["Point-to-Point"].waveguides == 3072
    print()
    print(table6_text())
