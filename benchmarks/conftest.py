"""Shared fixtures for the benchmark harness.

The figure benchmarks replay reduced-size versions of the paper's
experiments (same pipeline, smaller workloads) so the whole harness runs
in minutes.  A module-scoped suite fixture runs the closed-loop
benchmark grid once; the per-figure benchmarks derive their artifact
from it, mirroring how Figures 7-10 share one simulation campaign in
the paper.
"""

import pytest

from repro.experiments.evaluation import run_suite
from repro.macrochip.config import scaled_config


#: workloads exercised by the benchmark-harness suite (one app kernel +
#: two synthetics keeps the harness minutes-scale while covering both
#: trace sources)
BENCH_WORKLOADS = ["Radix", "All-to-all", "Neighbor"]


@pytest.fixture(scope="session")
def bench_suite():
    """One smoke-preset closed-loop campaign shared by Figures 7-10."""
    return run_suite("smoke", config=scaled_config(),
                     workloads=BENCH_WORKLOADS)
