"""Benchmarks for the extension experiments: the paper's future-work
directions (message passing, memory technology) and the ablations of the
adaptation's calibrated design choices (DESIGN.md section 5)."""

from repro.experiments.extensions import (
    circuit_engine_ablation,
    conversion_overhead_ablation,
    memory_technology_sweep,
    message_passing_comparison,
    two_phase_reconfig_ablation,
)
from repro.macrochip.config import scaled_config, small_test_config


def test_message_passing_future_work(benchmark):
    text = benchmark.pedantic(
        message_passing_comparison,
        args=(small_test_config(4, 4),),
        kwargs={"networks": ["point_to_point", "token_ring"]},
        rounds=1, iterations=1)
    assert "all_reduce" in text
    print()
    print(text)


def test_memory_technology_future_work(benchmark):
    text = benchmark.pedantic(
        memory_technology_sweep,
        args=(small_test_config(4, 4),),
        kwargs={"memory_cycles": [25, 150]},
        rounds=1, iterations=1)
    assert "25 cycles" in text
    print()
    print(text)


def test_ablation_two_phase_reconfig(benchmark):
    points = benchmark.pedantic(
        two_phase_reconfig_ablation, args=(scaled_config(),),
        kwargs={"reconfig_ns": [1.0, 30.0], "window_ns": 150.0},
        rounds=1, iterations=1)
    # the calibrated 30 ns retuning is what pins saturation near the
    # paper's 7.5%; near-zero retuning lets the network run much hotter
    assert points[0][1] > 2 * points[1][1]


def test_ablation_conversion_overhead(benchmark):
    points = benchmark.pedantic(
        conversion_overhead_ablation, args=(scaled_config(),),
        kwargs={"overhead_cycles": [0, 60], "window_ns": 150.0},
        rounds=1, iterations=1)
    assert points[1][1] > points[0][1]


def test_ablation_circuit_engines(benchmark):
    points = benchmark.pedantic(
        circuit_engine_ablation, args=(scaled_config(),),
        kwargs={"engines": [1, 8], "window_ns": 150.0},
        rounds=1, iterations=1)
    assert points[1][1] > points[0][1]
