"""Adaptive-vs-fixed sweep benchmark: emit ``results/BENCH_PR4.json``.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_sweep.py
        [--out results/BENCH_PR4.json] [--window-ns W] [--workers N]
        [--baseline results/BENCH_PR3.json] [--quick]

Runs the full Figure 6 grid (4 patterns x 5 networks) twice — once over
the exact fixed load grids (:func:`repro.experiments.figure6.run_figure6`)
and once through the adaptive knee-refinement driver
(:func:`~repro.experiments.figure6.run_figure6_adaptive`) — and records,
per network and in total:

* simulator events dispatched and wall-clock for both modes, with the
  adaptive-mode reduction ratios (the PR acceptance target is >= 2x
  fewer events at the default window);
* every (pattern, network) knee from both modes, with the offered-load
  delta and whether it is within one bisection step of the fixed-grid
  knee (tolerance = max(final bracket width, local fixed-grid spacing)).

With ``--baseline`` pointing at a committed ``BENCH_PR3.json``, a
host-sanity delta table compares this run's fixed-path events/sec per
network against the PR 3 record (different workloads — a full sweep vs
one near-knee point — so treat it as a drift indicator, not a
benchmark).

The script is *informational*: it always exits 0, so the CI perf job can
never fail the build.  Wall-clock numbers are comparable between runs on
the same host class only; events counts are deterministic everywhere.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

# allow both `python benchmarks/bench_sweep.py` (script dir on sys.path)
# and execution from a checkout root without installing the package
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.experiments.figure6 import (  # noqa: E402
    LOAD_GRIDS,
    PANEL_ORDER,
    run_figure6,
    run_figure6_adaptive,
)
from repro.networks.factory import FIGURE6_NETWORKS  # noqa: E402

from report import host_info  # noqa: E402

#: default injection window — large enough that adaptive early stops
#: amortize their checkpoint overhead and the >= 2x events target holds
SWEEP_WINDOW_NS = 600.0


def _knee_of_curve(points):
    """The fixed-grid knee: best delivered fraction among unsaturated
    points (falling back to best overall), exactly as
    ``Figure6Result.saturation_table`` reads it."""
    good = [p for p in points if not p.saturated]
    return max(good or points, key=lambda p: p.delivered_fraction)


def _grid_spacing_at(grid, offered):
    """Local spacing of the fixed grid around the knee point — the
    fixed methodology's own offered-load resolution there."""
    i = grid.index(offered)
    return grid[min(i + 1, len(grid) - 1)] - grid[max(i - 1, 0)]


def compare_knees(fixed, adaptive) -> list:
    """Per (pattern, network) knee agreement rows for two Figure6Results
    (one fixed, one adaptive)."""
    rows = []
    for pattern in PANEL_ORDER:
        if pattern not in adaptive.knees:
            continue
        for net, knee in adaptive.knees[pattern].items():
            fixed_knee = _knee_of_curve(fixed.curves[pattern][net])
            grid = LOAD_GRIDS[pattern]
            spacing = _grid_spacing_at(grid, fixed_knee.offered_fraction)
            resolution = knee.resolution
            tolerance = max(resolution, spacing) \
                if resolution != float("inf") else spacing
            delta = abs(knee.knee_offered - fixed_knee.offered_fraction)
            rows.append({
                "pattern": pattern,
                "network": net,
                "fixed_knee_offered": fixed_knee.offered_fraction,
                "fixed_knee_fraction": fixed_knee.delivered_fraction,
                "adaptive_knee_offered": knee.knee_offered,
                "adaptive_knee_fraction": knee.knee_fraction,
                "bracket_low": knee.bracket_low,
                "bracket_high": (knee.bracket_high
                                 if knee.bracket_high != float("inf")
                                 else None),
                "resolution_offered": (resolution
                                       if resolution != float("inf")
                                       else None),
                "delta_offered": delta,
                "tolerance_offered": tolerance,
                "within_one_step": delta <= tolerance,
            })
    return rows


def run_comparison(window_ns: float, workers: int = 1,
                   progress=None) -> dict:
    """Run both sweep modes per network (so each mode gets a per-network
    wall-clock and event count) and assemble the BENCH_PR4 document."""
    networks = list(FIGURE6_NETWORKS)
    per_network = {}
    fixed_results = {}
    adaptive_results = {}
    for net in networks:
        if progress:
            progress("fixed sweep: %s" % net)
        t0 = time.perf_counter()
        fixed = run_figure6(window_ns=window_ns, networks=[net],
                            workers=workers)
        fixed_s = time.perf_counter() - t0
        if progress:
            progress("adaptive sweep: %s" % net)
        t0 = time.perf_counter()
        adaptive = run_figure6_adaptive(window_ns=window_ns,
                                        networks=[net], workers=workers)
        adaptive_s = time.perf_counter() - t0
        fixed_results[net] = fixed
        adaptive_results[net] = adaptive
        per_network[net] = {
            "fixed_events": fixed.total_events,
            "fixed_load_points": fixed.load_points,
            "fixed_wall_clock_s": fixed_s,
            "fixed_events_per_sec": fixed.total_events / fixed_s,
            "adaptive_events": adaptive.total_events,
            "adaptive_load_points": adaptive.load_points,
            "adaptive_wall_clock_s": adaptive_s,
            "adaptive_events_per_sec": adaptive.total_events / adaptive_s,
            "events_ratio": fixed.total_events
            / max(1, adaptive.total_events),
            "wall_clock_ratio": fixed_s / adaptive_s
            if adaptive_s > 0 else None,
        }

    knees = []
    for net in networks:
        knees.extend(compare_knees(fixed_results[net],
                                   adaptive_results[net]))

    fixed_events = sum(r["fixed_events"] for r in per_network.values())
    adaptive_events = sum(r["adaptive_events"]
                          for r in per_network.values())
    fixed_wall = sum(r["fixed_wall_clock_s"] for r in per_network.values())
    adaptive_wall = sum(r["adaptive_wall_clock_s"]
                        for r in per_network.values())
    return {
        "schema": "repro-bench-pr4/1",
        "generated_unix": time.time(),
        "host": host_info(),
        "window_ns": window_ns,
        "workers": workers,
        "totals": {
            "fixed_events": fixed_events,
            "fixed_load_points": sum(r["fixed_load_points"]
                                     for r in per_network.values()),
            "fixed_wall_clock_s": fixed_wall,
            "adaptive_events": adaptive_events,
            "adaptive_load_points": sum(r["adaptive_load_points"]
                                        for r in per_network.values()),
            "adaptive_wall_clock_s": adaptive_wall,
            "events_ratio": fixed_events / max(1, adaptive_events),
            "wall_clock_ratio": fixed_wall / adaptive_wall
            if adaptive_wall > 0 else None,
        },
        "networks": per_network,
        "knees": knees,
        "all_knees_within_one_step": all(k["within_one_step"]
                                         for k in knees),
        "meets_2x_events_target": fixed_events
        >= 2.0 * adaptive_events,
    }


def print_report(report: dict) -> None:
    t = report["totals"]
    print("figure 6 sweep, fixed vs adaptive (window %.0f ns, %d worker(s)):"
          % (report["window_ns"], report["workers"]))
    print("  %-24s %10s %8s %9s | %10s %8s %9s | %6s %6s"
          % ("network", "fix ev", "fix pts", "fix s",
             "ad ev", "ad pts", "ad s", "ev x", "wall x"))
    for net, r in report["networks"].items():
        print("  %-24s %10d %8d %8.2fs | %10d %8d %8.2fs | %5.2fx %5.2fx"
              % (net, r["fixed_events"], r["fixed_load_points"],
                 r["fixed_wall_clock_s"], r["adaptive_events"],
                 r["adaptive_load_points"], r["adaptive_wall_clock_s"],
                 r["events_ratio"], r["wall_clock_ratio"] or 0.0))
    print("  %-24s %10d %8d %8.2fs | %10d %8d %8.2fs | %5.2fx %5.2fx"
          % ("TOTAL", t["fixed_events"], t["fixed_load_points"],
             t["fixed_wall_clock_s"], t["adaptive_events"],
             t["adaptive_load_points"], t["adaptive_wall_clock_s"],
             t["events_ratio"], t["wall_clock_ratio"] or 0.0))
    print("  >=2x fewer events: %s   all knees within one step: %s"
          % (report["meets_2x_events_target"],
             report["all_knees_within_one_step"]))
    off = [k for k in report["knees"] if not k["within_one_step"]]
    for k in off:
        print("  KNEE OFF: %s/%s fixed@%.4f adaptive@%.4f (tol %.4f)"
              % (k["pattern"], k["network"], k["fixed_knee_offered"],
                 k["adaptive_knee_offered"], k["tolerance_offered"]))


def print_baseline_delta(report: dict, baseline_path: str) -> None:
    """Host-sanity drift table against the committed PR 3 record."""
    try:
        with open(baseline_path, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, ValueError) as exc:
        print("no PR3 baseline comparison (%s)" % exc)
        return
    nets = baseline.get("networks", {})
    if not nets:
        print("no PR3 baseline comparison (no networks in %s)"
              % baseline_path)
        return
    print("fixed-sweep events/sec vs %s (different workloads — drift "
          "indicator only):" % baseline_path)
    for net, r in report["networks"].items():
        base = nets.get(net, {}).get("events_per_sec")
        if not base:
            continue
        now = r["fixed_events_per_sec"]
        print("  %-24s %12.0f ev/s  vs PR3 %12.0f ev/s  (%+.1f%%)"
              % (net, now, base, 100.0 * (now - base) / base))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="results/BENCH_PR4.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--window-ns", type=float, default=SWEEP_WINDOW_NS,
                        help="injection window per load point")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes inside each sweep "
                             "(events counts are identical for any "
                             "value; wall-clock ratios are most "
                             "meaningful serially)")
    parser.add_argument("--baseline", default="results/BENCH_PR3.json",
                        help="committed PR3 artifact for the events/sec "
                             "drift table ('' to skip)")
    parser.add_argument("--quick", action="store_true",
                        help="CI preset: short window")
    args = parser.parse_args(argv)
    if args.quick:
        args.window_ns = min(args.window_ns, 150.0)

    report = run_comparison(args.window_ns, workers=args.workers,
                            progress=lambda m: print(".. %s" % m,
                                                     file=sys.stderr))
    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print_report(report)
    if args.baseline:
        print_baseline_delta(report, args.baseline)
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
