"""Sweep benchmarks: warm-vs-cold (BENCH_PR5), adaptive-vs-fixed
(BENCH_PR4), events/sec across grid sizes (BENCH_PR8), the vectorized
numpy backend (BENCH_PR9), and its second round (BENCH_PR10).

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_sweep.py
        [--mode warm|adaptive|scaling|vectorized|vectorized2]
        [--out PATH] [--window-ns W] [--workers N] [--repeats R]
        [--baseline PATH] [--quick] [--profile]

``--mode vectorized2`` measures the PR 10 round on top of PR 9: the
*extended* quick Figure 6 grid (the five Figure 6 networks **plus
HERMES**, whose snoopy-broadcast kernel lands in this PR) runs per
network through both backends, warm, best of ``--repeats``; the
vectorized arm's wall-clock is split per kernel (a registry-wrapping
timer, measured on the last warm repeat) so harness overhead is
separable from kernel time.  The adaptive knee driver then runs once
per backend — PR 10 removes the adaptive fallback, so knees must be
*identical*, not merely within tolerance.  The report ends with the
aggregate comparison against the committed ``results/BENCH_PR9.json``
on the five shared networks (acceptance target: >= 1.5x over the PR 9
vectorized baseline, as the max of the literal wall ratio and the
host-normalizing same-run speedup ratio).  Written to
``results/BENCH_PR10.json``.

``--mode vectorized`` measures the PR 9 numpy fast path: the full quick
Figure 6 grid (4 patterns x 5 networks, the ``--preset quick`` 500 ns
window) runs per network through both backends — ``backend="python"``
(the exact scalar event loop) and ``backend="vectorized"`` (numpy-
batched kernels) — warm both arms, best of ``--repeats``.  The report
records per-network and total wall-clock, the speedup ratio (acceptance
target: >= 3x aggregate), whether both backends produced *bit-identical*
sweep results, whether canonical traces stay *byte-identical* when the
fast backend is requested on a traced run (tracing forces the scalar
engine — the seam must be invisible), and a 16x16 scaling point per
backend (``simulate_scale_point`` with invariants off, the regime where
batching matters most).  Written to ``results/BENCH_PR9.json``.

``--profile`` wraps whichever mode runs under :mod:`cProfile` and prints
the top 20 functions by cumulative time to stderr — the intended
workflow for finding the next hot spot before optimizing it.

``--mode scaling`` measures simulator throughput as the macrochip grows:
one invariant-checked load point per (network, grid size) at 4x4, 8x8,
and 16x16 with the per-site resources held at the Table 4 point, best of
``--repeats`` cold runs each.  The report records events/sec vs grid
size per network plus the analytical feasibility of each scale point
(``repro.experiments.scaling``), and is written to
``results/BENCH_PR8.json``.

``--mode warm`` (the default) measures the PR 5 warm-start machinery:
the full Figure 6 grid (4 patterns x 5 networks) runs per network twice
— cold (``warm=False``: fresh simulator + network + RNG streams per load
point) and warm (``warm=True``: reset-reused contexts + interned draw
bank) — with ``--repeats`` timed repetitions per arm (best is kept, so
the warm numbers reflect steady state, exactly what a persistent worker
sees).  The report records, per network and in total:

* wall-clock for both arms and the warm speedup ratio (the PR acceptance
  target is >= 1.3x on the quick preset, ``window_ns=40``);
* whether warm and cold sweep results are *bit-identical* (they must
  be: warm-start is a pure wall-clock optimization);
* whether canonical traces from cold vs three warm reuses of one
  context are *byte-identical*, per network.

``--mode adaptive`` keeps the PR 4 comparison: the same grid through the
fixed driver vs the adaptive knee-refinement driver, with event-count
ratios and knee-agreement rows (acceptance: >= 2x fewer events at the
default 600 ns window).

The drift-table baseline is auto-discovered: the newest committed
``results/BENCH_PR<N>.json`` other than the one being written (override
with ``--baseline``, or pass '' to skip).  Artifacts live in
``results/`` only — the root-level mirror of early PRs drifted stale
the moment a newer artifact landed, so it is gone; ``results/README.md``
is the index.

The script is *informational*: it always exits 0, so the CI perf job can
never fail the build.  Wall-clock numbers are comparable between runs on
the same host class only; events counts are deterministic everywhere.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

# allow both `python benchmarks/bench_sweep.py` (script dir on sys.path)
# and execution from a checkout root without installing the package
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.core.parallel import clear_contexts  # noqa: E402
from repro.core.sweep import clear_draw_banks, run_load_point  # noqa: E402
from repro.core.tracing import TraceRecorder  # noqa: E402
from repro.experiments.figure6 import (  # noqa: E402
    LOAD_GRIDS,
    PANEL_ORDER,
    run_figure6,
    run_figure6_adaptive,
)
from repro.macrochip.config import scaled_config  # noqa: E402
from repro.networks.factory import FIGURE6_NETWORKS  # noqa: E402
from repro.workloads.synthetic import make_pattern  # noqa: E402

from report import host_info, latest_bench_path  # noqa: E402

#: adaptive-mode default injection window — large enough that adaptive
#: early stops amortize their checkpoint overhead and the >= 2x events
#: target holds
SWEEP_WINDOW_NS = 600.0

#: warm-mode default injection window — the quick Figure 6 preset.  At
#: short windows per-point construction (networks, routing tables, RNG
#: streams) dominates simulation, which is precisely the overhead
#: warm-start removes; this is the regime CI smoke runs live in.
WARM_WINDOW_NS = 40.0

#: the offered load used for the per-network trace byte-identity check
TRACE_CHECK_LOAD = 0.40
TRACE_REUSE_CYCLES = 3


# -- warm-vs-cold (BENCH_PR5) -------------------------------------------------


def _trace_identity(net: str, window_ns: float) -> bool:
    """Byte-compare canonical traces: one cold run vs three warm reuses
    of a single context, same (network, load, seed)."""
    cfg = scaled_config()
    pattern = make_pattern("uniform", cfg.layout)

    def lines(warm: bool) -> bytes:
        rec = TraceRecorder()
        run_load_point(net, cfg, pattern, TRACE_CHECK_LOAD,
                       window_ns=window_ns, warm=warm, tracer=rec)
        return "\n".join(rec.canonical_lines()).encode()

    cold = lines(warm=False)
    return all(lines(warm=True) == cold
               for _ in range(TRACE_REUSE_CYCLES))


def run_warm_comparison(window_ns: float, workers: int = 1,
                        repeats: int = 3, progress=None) -> dict:
    """Run the Figure 6 grid per network, cold and warm, and assemble
    the BENCH_PR5 document."""
    networks = list(FIGURE6_NETWORKS)
    per_network = {}
    for net in networks:
        # cold arm: clear the per-process registries first so nothing
        # warm leaks in, then best-of-N with cold construction per point
        cold_result = None
        cold_s = float("inf")
        for _ in range(repeats):
            clear_contexts()
            clear_draw_banks()
            t0 = time.perf_counter()
            res = run_figure6(window_ns=window_ns, networks=[net],
                              workers=workers, warm=False)
            cold_s = min(cold_s, time.perf_counter() - t0)
            cold_result = res
        if progress:
            progress("cold sweep: %s (%.2fs best of %d)"
                     % (net, cold_s, repeats))
        # warm arm: registries persist across repeats, exactly as they
        # do across the load points of one long-lived worker process;
        # best-of-N therefore measures the steady warm state
        warm_result = None
        warm_s = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            res = run_figure6(window_ns=window_ns, networks=[net],
                              workers=workers, warm=True)
            warm_s = min(warm_s, time.perf_counter() - t0)
            warm_result = res
        if progress:
            progress("warm sweep: %s (%.2fs best of %d)"
                     % (net, warm_s, repeats))
        identical = warm_result.curves == cold_result.curves
        traces_ok = _trace_identity(net, window_ns)
        per_network[net] = {
            "events": cold_result.total_events,
            "load_points": cold_result.load_points,
            "cold_wall_clock_s": cold_s,
            "cold_events_per_sec": cold_result.total_events / cold_s,
            "warm_wall_clock_s": warm_s,
            "warm_events_per_sec": warm_result.total_events / warm_s,
            "wall_clock_ratio": cold_s / warm_s if warm_s > 0 else None,
            "results_bit_identical": identical,
            "traces_byte_identical": traces_ok,
        }

    cold_wall = sum(r["cold_wall_clock_s"] for r in per_network.values())
    warm_wall = sum(r["warm_wall_clock_s"] for r in per_network.values())
    ratio = cold_wall / warm_wall if warm_wall > 0 else None
    all_identical = all(r["results_bit_identical"]
                        for r in per_network.values())
    all_traces = all(r["traces_byte_identical"]
                     for r in per_network.values())
    return {
        "schema": "repro-bench-pr5/1",
        "generated_unix": time.time(),
        "host": host_info(),
        "window_ns": window_ns,
        "workers": workers,
        "repeats": repeats,
        "totals": {
            "events": sum(r["events"] for r in per_network.values()),
            "load_points": sum(r["load_points"]
                               for r in per_network.values()),
            "cold_wall_clock_s": cold_wall,
            "warm_wall_clock_s": warm_wall,
            "wall_clock_ratio": ratio,
        },
        "networks": per_network,
        "results_bit_identical": all_identical,
        "traces_byte_identical": all_traces,
        "meets_1p3x_target": (ratio is not None and ratio >= 1.3
                              and all_identical and all_traces),
    }


def print_warm_report(report: dict) -> None:
    t = report["totals"]
    print("figure 6 sweep, cold vs warm-start (window %.0f ns, %d "
          "worker(s), best of %d):"
          % (report["window_ns"], report["workers"], report["repeats"]))
    print("  %-24s %10s %8s | %9s %9s %7s | %5s %6s"
          % ("network", "events", "points", "cold s", "warm s", "ratio",
             "bits", "trace"))
    for net, r in report["networks"].items():
        print("  %-24s %10d %8d | %8.2fs %8.2fs %6.2fx | %5s %6s"
              % (net, r["events"], r["load_points"],
                 r["cold_wall_clock_s"], r["warm_wall_clock_s"],
                 r["wall_clock_ratio"] or 0.0,
                 "ok" if r["results_bit_identical"] else "DIFF",
                 "ok" if r["traces_byte_identical"] else "DIFF"))
    print("  %-24s %10d %8d | %8.2fs %8.2fs %6.2fx |"
          % ("TOTAL", t["events"], t["load_points"],
             t["cold_wall_clock_s"], t["warm_wall_clock_s"],
             t["wall_clock_ratio"] or 0.0))
    print("  >=1.3x warm speedup with identical results: %s"
          % report["meets_1p3x_target"])


# -- events/sec vs grid size (BENCH_PR8) --------------------------------------

#: the grids the scaling benchmark simulates (32x32 stays analytical —
#: a point-to-point network there materializes ~1M channel entries)
SCALING_BENCH_DIMS = (4, 8, 16)
#: one cheap dedicated-channel network, one arbitrated shared medium
SCALING_BENCH_NETWORKS = ("point_to_point", "token_ring")
#: scaling-mode default injection window: long enough that a 16x16 run
#: dispatches tens of thousands of events, short enough for CI
SCALING_WINDOW_NS = 30.0


def run_scaling_benchmark(window_ns: float, repeats: int = 3,
                          dims=SCALING_BENCH_DIMS,
                          networks=SCALING_BENCH_NETWORKS,
                          progress=None) -> dict:
    """Time one cold, invariant-checked load point per (network, dim)
    and assemble the BENCH_PR8 document."""
    from repro.experiments.scaling import (analyze_network,
                                           simulate_scale_point)

    per_network = {}
    for net in networks:
        by_dim = {}
        net_events = 0
        net_wall = 0.0
        for dim in dims:
            best_s = float("inf")
            result = None
            for _ in range(repeats):
                clear_contexts()
                clear_draw_banks()
                t0 = time.perf_counter()
                result = simulate_scale_point(net, dim,
                                              window_ns=window_ns)
                best_s = min(best_s, time.perf_counter() - t0)
            feasibility = analyze_network(net, dim)
            by_dim[str(dim)] = {
                "sites": dim * dim,
                "events": result.events_dispatched,
                "delivered": result.delivered_packets,
                "wall_clock_s": best_s,
                "events_per_sec": result.events_dispatched / best_s,
                "analytically_feasible": feasibility.feasible,
                "failed_axes": list(feasibility.failed_axes),
            }
            net_events += result.events_dispatched
            net_wall += best_s
            if progress:
                progress("scaling: %s %dx%d (%d events, %.2fs best of %d)"
                         % (net, dim, dim, result.events_dispatched,
                            best_s, repeats))
        per_network[net] = {
            "by_dim": by_dim,
            "events": net_events,
            "wall_clock_s": net_wall,
            "events_per_sec": net_events / net_wall,
        }
    return {
        "schema": "repro-bench-pr8/1",
        "generated_unix": time.time(),
        "host": host_info(),
        "window_ns": window_ns,
        "repeats": repeats,
        "dims": list(dims),
        "totals": {
            "events": sum(r["events"] for r in per_network.values()),
            "wall_clock_s": sum(r["wall_clock_s"]
                                for r in per_network.values()),
        },
        "networks": per_network,
    }


def print_scaling_report(report: dict) -> None:
    print("events/sec vs grid size (window %.0f ns, best of %d):"
          % (report["window_ns"], report["repeats"]))
    print("  %-24s %7s %10s %9s %12s %10s"
          % ("network", "grid", "events", "wall s", "events/s",
             "feasible"))
    for net, r in report["networks"].items():
        for dim in report["dims"]:
            d = r["by_dim"][str(dim)]
            print("  %-24s %3dx%-3d %10d %8.3fs %12.0f %10s"
                  % (net, dim, dim, d["events"], d["wall_clock_s"],
                     d["events_per_sec"],
                     "yes" if d["analytically_feasible"]
                     else ",".join(d["failed_axes"])))


# -- vectorized backend (BENCH_PR9) -------------------------------------------

#: vectorized-mode default injection window — the ``--preset quick``
#: window of the experiment CLI.  The vectorized backend removes the
#: per-event Python dispatch cost, so its advantage grows with events
#: per load point; the quick preset is the shortest window at which the
#: hot loop (rather than per-point setup) dominates, i.e. the honest
#: floor for the >= 3x acceptance target.
VEC_WINDOW_NS = 500.0

#: the 16x16 scaling points timed per backend (one dedicated-channel
#: network, one arbitrated shared medium — same split as BENCH_PR8).
#: The window is longer than BENCH_PR8's 30 ns: a cold 16x16 run at
#: 30 ns is dominated by table construction, which both backends share;
#: 200 ns puts the cost back in the event loop being measured.
VEC_SCALING_DIM = 16
VEC_SCALING_NETWORKS = ("point_to_point", "token_ring")
VEC_SCALING_WINDOW_NS = 200.0


def _vectorized_trace_identity(net: str, window_ns: float) -> bool:
    """Byte-compare canonical traces with and without the fast backend
    requested.  An attached tracer forces the scalar engine (the trace
    IS the scalar dispatch order), so this pins the fallback seam: a
    traced run must be oblivious to ``backend="vectorized"``."""
    cfg = scaled_config()
    pattern = make_pattern("uniform", cfg.layout)

    def lines(backend: str) -> bytes:
        rec = TraceRecorder()
        run_load_point(net, cfg, pattern, TRACE_CHECK_LOAD,
                       window_ns=window_ns, tracer=rec, backend=backend)
        return "\n".join(rec.canonical_lines()).encode()

    reference = lines("python")
    return len(reference) > 0 and lines("vectorized") == reference


def run_vectorized_comparison(window_ns: float, workers: int = 1,
                              repeats: int = 3, progress=None) -> dict:
    """Run the Figure 6 grid per network through both backends and
    assemble the BENCH_PR9 document."""
    from repro.core.vectorized import (fallback_networks, have_numpy,
                                       vectorized_networks)
    from repro.experiments.scaling import simulate_scale_point

    networks = list(FIGURE6_NETWORKS)
    per_network = {}
    for net in networks:
        results = {}
        walls = {}
        # warm both arms (the backends share the warm-context and
        # draw-bank machinery; this isolates the event-loop cost, which
        # is what PR 9 changes) — best-of-N measures the steady state
        for backend in ("python", "vectorized"):
            best_s = float("inf")
            result = None
            for _ in range(repeats):
                t0 = time.perf_counter()
                result = run_figure6(window_ns=window_ns, networks=[net],
                                     workers=workers, warm=True,
                                     backend=backend)
                best_s = min(best_s, time.perf_counter() - t0)
            results[backend] = result
            walls[backend] = best_s
            if progress:
                progress("%s sweep: %s (%.2fs best of %d)"
                         % (backend, net, best_s, repeats))
        py_s, vec_s = walls["python"], walls["vectorized"]
        identical = (results["vectorized"].curves
                     == results["python"].curves)
        traces_ok = _vectorized_trace_identity(net, window_ns)
        events = results["python"].total_events
        per_network[net] = {
            "events": events,
            "load_points": results["python"].load_points,
            "python_wall_clock_s": py_s,
            "python_events_per_sec": events / py_s,
            "vectorized_wall_clock_s": vec_s,
            "vectorized_events_per_sec": events / vec_s,
            "speedup": py_s / vec_s if vec_s > 0 else None,
            "has_kernel": net in vectorized_networks(),
            "results_bit_identical": identical,
            "traces_byte_identical": traces_ok,
        }

    # 16x16 scaling points: invariants off (checkers consume a scalar
    # event trace, so they would force the fallback), cold per repeat
    scaling = {}
    for net in VEC_SCALING_NETWORKS:
        arms = {}
        result_by_backend = {}
        for backend in ("python", "vectorized"):
            best_s = float("inf")
            result = None
            for _ in range(repeats):
                clear_contexts()
                clear_draw_banks()
                t0 = time.perf_counter()
                result = simulate_scale_point(
                    net, VEC_SCALING_DIM,
                    window_ns=VEC_SCALING_WINDOW_NS,
                    check_invariants=False, backend=backend)
                best_s = min(best_s, time.perf_counter() - t0)
            arms[backend] = best_s
            result_by_backend[backend] = result
            if progress:
                progress("scaling 16x16 [%s]: %s (%.2fs best of %d)"
                         % (backend, net, best_s, repeats))
        py_s, vec_s = arms["python"], arms["vectorized"]
        scaling[net] = {
            "dim": VEC_SCALING_DIM,
            "window_ns": VEC_SCALING_WINDOW_NS,
            "events": result_by_backend["python"].events_dispatched,
            "python_wall_clock_s": py_s,
            "vectorized_wall_clock_s": vec_s,
            "speedup": py_s / vec_s if vec_s > 0 else None,
            "results_bit_identical": (result_by_backend["vectorized"]
                                      == result_by_backend["python"]),
        }

    py_wall = sum(r["python_wall_clock_s"] for r in per_network.values())
    vec_wall = sum(r["vectorized_wall_clock_s"]
                   for r in per_network.values())
    speedup = py_wall / vec_wall if vec_wall > 0 else None
    all_identical = (all(r["results_bit_identical"]
                         for r in per_network.values())
                     and all(s["results_bit_identical"]
                             for s in scaling.values()))
    all_traces = all(r["traces_byte_identical"]
                     for r in per_network.values())
    return {
        "schema": "repro-bench-pr9/1",
        "generated_unix": time.time(),
        "host": host_info(),
        "window_ns": window_ns,
        "workers": workers,
        "repeats": repeats,
        "numpy_available": have_numpy(),
        "kernels": sorted(vectorized_networks()),
        "fallbacks": dict(sorted(fallback_networks().items())),
        "totals": {
            "events": sum(r["events"] for r in per_network.values()),
            "load_points": sum(r["load_points"]
                               for r in per_network.values()),
            "python_wall_clock_s": py_wall,
            "vectorized_wall_clock_s": vec_wall,
            "speedup": speedup,
        },
        "networks": per_network,
        "scaling_16x16": scaling,
        "results_bit_identical": all_identical,
        "traces_byte_identical": all_traces,
        "meets_3x_target": (speedup is not None and speedup >= 3.0
                            and all_identical and all_traces),
    }


def print_vectorized_report(report: dict) -> None:
    t = report["totals"]
    print("figure 6 sweep, python vs vectorized backend (window %.0f ns, "
          "%d worker(s), best of %d, numpy %s):"
          % (report["window_ns"], report["workers"], report["repeats"],
             "available" if report["numpy_available"] else "MISSING"))
    print("  %-24s %10s %8s | %9s %9s %7s | %5s %6s"
          % ("network", "events", "points", "python s", "vec s",
             "speedup", "bits", "trace"))
    for net, r in report["networks"].items():
        print("  %-24s %10d %8d | %8.2fs %8.2fs %6.2fx | %5s %6s"
              % (net, r["events"], r["load_points"],
                 r["python_wall_clock_s"], r["vectorized_wall_clock_s"],
                 r["speedup"] or 0.0,
                 "ok" if r["results_bit_identical"] else "DIFF",
                 "ok" if r["traces_byte_identical"] else "DIFF"))
    print("  %-24s %10d %8d | %8.2fs %8.2fs %6.2fx |"
          % ("TOTAL", t["events"], t["load_points"],
             t["python_wall_clock_s"], t["vectorized_wall_clock_s"],
             t["speedup"] or 0.0))
    for net, s in report["scaling_16x16"].items():
        print("  16x16 %-18s %10d events | %8.2fs %8.2fs %6.2fx | %5s"
              % (net, s["events"], s["python_wall_clock_s"],
                 s["vectorized_wall_clock_s"], s["speedup"] or 0.0,
                 "ok" if s["results_bit_identical"] else "DIFF"))
    print("  >=3x aggregate speedup with identical results: %s"
          % report["meets_3x_target"])


# -- vectorized round 2 (BENCH_PR10) ------------------------------------------

#: the PR 10 grid adds HERMES — every network now has a kernel, so the
#: benchmark covers the complete Figure 6 network set plus the broadcast
#: architecture the PR 9 benchmark had to leave on the scalar fallback
VEC2_NETWORKS = tuple(FIGURE6_NETWORKS) + ("hermes",)
#: the five networks shared with the committed BENCH_PR9 baseline — the
#: >= 1.5x aggregate target is evaluated on exactly these
VEC2_PR9_NETWORKS = tuple(FIGURE6_NETWORKS)


class _KernelTimer:
    """Wrap every registered kernel with a wall-clock accumulator so the
    vectorized arm's time splits into kernel execution vs harness (plan
    construction, draw banks, result assembly).  Restores the registry
    on exit even if the timed body raises."""

    def __init__(self):
        self.acc = {}
        self._originals = None

    def __enter__(self):
        from repro.core import vectorized as vec
        self._vec = vec
        self._originals = dict(vec._KERNELS)
        for name, fn in self._originals.items():
            vec._KERNELS[name] = self._wrap(name, fn)
        return self

    def _wrap(self, name, fn):
        acc = self.acc

        def timed(net, plan):
            t0 = time.perf_counter()
            try:
                return fn(net, plan)
            finally:
                rec = acc.setdefault(name, {"calls": 0, "seconds": 0.0})
                rec["calls"] += 1
                rec["seconds"] += time.perf_counter() - t0

        return timed

    def __exit__(self, *exc):
        self._vec._KERNELS.clear()
        self._vec._KERNELS.update(self._originals)
        return False


def _load_points_equal(a, b) -> bool:
    """Exact LoadPointResult equality treating NaN == NaN (aborted
    points have no in-window latencies)."""
    import dataclasses
    import math
    for f in dataclasses.fields(a):
        x, y = getattr(a, f.name), getattr(b, f.name)
        if (isinstance(x, float) and isinstance(y, float)
                and math.isnan(x) and math.isnan(y)):
            continue
        if x != y:
            return False
    return True


def _knees_identical(fast, scalar) -> bool:
    """Exact knee equality between two adaptive Figure6Results: same
    knee location, brackets, skipped loads, and probe results."""
    if sorted(fast.knees) != sorted(scalar.knees):
        return False
    for pattern in scalar.knees:
        if sorted(fast.knees[pattern]) != sorted(scalar.knees[pattern]):
            return False
        for net, sk in scalar.knees[pattern].items():
            fk = fast.knees[pattern][net]
            if (fk.knee_fraction != sk.knee_fraction
                    or fk.knee_offered != sk.knee_offered
                    or fk.bracket_low != sk.bracket_low
                    or fk.bracket_high != sk.bracket_high
                    or fk.skipped_loads != sk.skipped_loads
                    or len(fk.points) != len(sk.points)):
                return False
            if not all(_load_points_equal(a, b)
                       for a, b in zip(fk.points, sk.points)):
                return False
    return True


def run_vectorized2_comparison(window_ns: float, workers: int = 1,
                               repeats: int = 3, progress=None) -> dict:
    """Run the extended Figure 6 grid (HERMES included) through both
    backends, time the adaptive driver per backend, and assemble the
    BENCH_PR10 document with a per-kernel timing breakdown and the
    aggregate comparison against the committed BENCH_PR9 baseline."""
    from repro.core.vectorized import (clear_kernel_scratch,
                                       fallback_networks, have_numpy,
                                       vectorized_networks)

    per_network = {}
    kernel_breakdown = {}
    for net in VEC2_NETWORKS:
        results = {}
        walls = {}
        for backend in ("python", "vectorized"):
            best_s = float("inf")
            result = None
            timer = _KernelTimer() if backend == "vectorized" else None
            for rep in range(repeats):
                if timer is not None:
                    clear_kernel_scratch()  # cold scratch per repeat
                t0 = time.perf_counter()
                if timer is not None and rep == repeats - 1:
                    # per-kernel split measured on the last repeat only,
                    # after the warm registries reached steady state
                    with timer:
                        result = run_figure6(window_ns=window_ns,
                                             networks=[net],
                                             workers=workers, warm=True,
                                             backend=backend)
                else:
                    result = run_figure6(window_ns=window_ns,
                                         networks=[net],
                                         workers=workers, warm=True,
                                         backend=backend)
                best_s = min(best_s, time.perf_counter() - t0)
            results[backend] = result
            walls[backend] = best_s
            if timer is not None:
                for name, rec in timer.acc.items():
                    agg = kernel_breakdown.setdefault(
                        name, {"calls": 0, "kernel_seconds": 0.0})
                    agg["calls"] += rec["calls"]
                    agg["kernel_seconds"] += rec["seconds"]
            if progress:
                progress("%s sweep: %s (%.2fs best of %d)"
                         % (backend, net, best_s, repeats))
        py_s, vec_s = walls["python"], walls["vectorized"]
        identical = (results["vectorized"].curves
                     == results["python"].curves)
        traces_ok = _vectorized_trace_identity(net, window_ns)
        events = results["python"].total_events
        per_network[net] = {
            "events": events,
            "load_points": results["python"].load_points,
            "python_wall_clock_s": py_s,
            "python_events_per_sec": events / py_s,
            "vectorized_wall_clock_s": vec_s,
            "vectorized_events_per_sec": events / vec_s,
            "speedup": py_s / vec_s if vec_s > 0 else None,
            "results_bit_identical": identical,
            "traces_byte_identical": traces_ok,
        }

    # adaptive driver, both backends: PR 10 removed the adaptive guard,
    # so checkpointed knee refinement rides the kernels too — knees must
    # be *identical*, not merely close
    adaptive_walls = {}
    adaptive_results = {}
    for backend in ("python", "vectorized"):
        t0 = time.perf_counter()
        adaptive_results[backend] = run_figure6_adaptive(
            window_ns=window_ns, networks=list(VEC2_NETWORKS),
            workers=workers, warm=True, backend=backend)
        adaptive_walls[backend] = time.perf_counter() - t0
        if progress:
            progress("adaptive sweep [%s]: %.2fs"
                     % (backend, adaptive_walls[backend]))
    knees_ok = _knees_identical(adaptive_results["vectorized"],
                                adaptive_results["python"])
    adaptive = {
        "python_wall_clock_s": adaptive_walls["python"],
        "vectorized_wall_clock_s": adaptive_walls["vectorized"],
        "speedup": (adaptive_walls["python"]
                    / adaptive_walls["vectorized"]
                    if adaptive_walls["vectorized"] > 0 else None),
        "load_points": adaptive_results["python"].load_points,
        "events": adaptive_results["python"].total_events,
        "knees_identical": knees_ok,
    }

    py_wall = sum(r["python_wall_clock_s"] for r in per_network.values())
    vec_wall = sum(r["vectorized_wall_clock_s"]
                   for r in per_network.values())
    speedup = py_wall / vec_wall if vec_wall > 0 else None
    all_identical = all(r["results_bit_identical"]
                        for r in per_network.values())
    all_traces = all(r["traces_byte_identical"]
                     for r in per_network.values())

    # aggregate vs the committed PR 9 baseline, on the five networks the
    # two benchmarks share.  The same-run speedup ratio self-normalizes
    # for host noise (both walls come from this process); the literal
    # wall ratio is recorded too since the baseline ran on the same
    # host class.
    vs_pr9 = None
    pr9_path = os.path.join("results", "BENCH_PR9.json")
    try:
        with open(pr9_path, encoding="utf-8") as fh:
            pr9 = json.load(fh)
        shared = [n for n in VEC2_PR9_NETWORKS
                  if n in pr9.get("networks", {})]
        pr9_vec = sum(pr9["networks"][n]["vectorized_wall_clock_s"]
                      for n in shared)
        pr9_py = sum(pr9["networks"][n]["python_wall_clock_s"]
                     for n in shared)
        new_vec = sum(per_network[n]["vectorized_wall_clock_s"]
                      for n in shared)
        new_py = sum(per_network[n]["python_wall_clock_s"]
                     for n in shared)
        pr9_speedup = pr9_py / pr9_vec if pr9_vec > 0 else None
        new_speedup = new_py / new_vec if new_vec > 0 else None
        vs_pr9 = {
            "baseline": pr9_path,
            "networks": shared,
            "pr9_vectorized_wall_clock_s": pr9_vec,
            "pr10_vectorized_wall_clock_s": new_vec,
            "wall_clock_ratio": pr9_vec / new_vec if new_vec > 0 else None,
            "pr9_speedup": pr9_speedup,
            "pr10_speedup": new_speedup,
            "speedup_ratio": (new_speedup / pr9_speedup
                              if pr9_speedup and new_speedup else None),
        }
    except (OSError, ValueError, KeyError) as exc:
        vs_pr9 = {"error": str(exc)}

    ratio = None
    if vs_pr9 and "error" not in vs_pr9:
        candidates = [r for r in (vs_pr9["wall_clock_ratio"],
                                  vs_pr9["speedup_ratio"])
                      if r is not None]
        ratio = max(candidates) if candidates else None
    return {
        "schema": "repro-bench-pr10/1",
        "generated_unix": time.time(),
        "host": host_info(),
        "window_ns": window_ns,
        "workers": workers,
        "repeats": repeats,
        "numpy_available": have_numpy(),
        "kernels": sorted(vectorized_networks()),
        "fallbacks": dict(sorted(fallback_networks().items())),
        "totals": {
            "events": sum(r["events"] for r in per_network.values()),
            "load_points": sum(r["load_points"]
                               for r in per_network.values()),
            "python_wall_clock_s": py_wall,
            "vectorized_wall_clock_s": vec_wall,
            "speedup": speedup,
        },
        "networks": per_network,
        "kernel_breakdown": kernel_breakdown,
        "adaptive": adaptive,
        "vs_pr9": vs_pr9,
        "results_bit_identical": all_identical,
        "traces_byte_identical": all_traces,
        "adaptive_knees_identical": knees_ok,
        "meets_1p5x_target": (ratio is not None and ratio >= 1.5
                              and all_identical and all_traces
                              and knees_ok),
    }


def print_vectorized2_report(report: dict) -> None:
    t = report["totals"]
    print("extended figure 6 sweep, python vs vectorized round 2 "
          "(window %.0f ns, %d worker(s), best of %d, numpy %s):"
          % (report["window_ns"], report["workers"], report["repeats"],
             "available" if report["numpy_available"] else "MISSING"))
    print("  %-24s %10s %8s | %9s %9s %7s | %5s %6s"
          % ("network", "events", "points", "python s", "vec s",
             "speedup", "bits", "trace"))
    for net, r in report["networks"].items():
        print("  %-24s %10d %8d | %8.2fs %8.2fs %6.2fx | %5s %6s"
              % (net, r["events"], r["load_points"],
                 r["python_wall_clock_s"], r["vectorized_wall_clock_s"],
                 r["speedup"] or 0.0,
                 "ok" if r["results_bit_identical"] else "DIFF",
                 "ok" if r["traces_byte_identical"] else "DIFF"))
    print("  %-24s %10d %8d | %8.2fs %8.2fs %6.2fx |"
          % ("TOTAL", t["events"], t["load_points"],
             t["python_wall_clock_s"], t["vectorized_wall_clock_s"],
             t["speedup"] or 0.0))
    if report["kernel_breakdown"]:
        print("  per-kernel split (last warm repeat per network):")
        for name, rec in sorted(report["kernel_breakdown"].items()):
            print("    %-24s %6d calls  %8.2fs in kernel"
                  % (name, rec["calls"], rec["kernel_seconds"]))
    a = report["adaptive"]
    print("  adaptive driver: %8.2fs python  %8.2fs vectorized  %6.2fx"
          "  knees %s"
          % (a["python_wall_clock_s"], a["vectorized_wall_clock_s"],
             a["speedup"] or 0.0,
             "identical" if a["knees_identical"] else "DIFF"))
    v = report["vs_pr9"]
    if v and "error" not in v:
        print("  vs BENCH_PR9 (%d shared networks): wall %6.2fx  "
              "speedup %5.2fx -> %5.2fx (ratio %5.2fx)"
              % (len(v["networks"]), v["wall_clock_ratio"] or 0.0,
                 v["pr9_speedup"] or 0.0, v["pr10_speedup"] or 0.0,
                 v["speedup_ratio"] or 0.0))
    elif v:
        print("  vs BENCH_PR9: unavailable (%s)" % v["error"])
    print("  >=1.5x aggregate over the PR 9 vectorized baseline with "
          "identical results: %s" % report["meets_1p5x_target"])


# -- adaptive-vs-fixed (BENCH_PR4) --------------------------------------------


def _knee_of_curve(points):
    """The fixed-grid knee: best delivered fraction among unsaturated
    points (falling back to best overall), exactly as
    ``Figure6Result.saturation_table`` reads it."""
    good = [p for p in points if not p.saturated]
    return max(good or points, key=lambda p: p.delivered_fraction)


def _grid_spacing_at(grid, offered):
    """Local spacing of the fixed grid around the knee point — the
    fixed methodology's own offered-load resolution there."""
    i = grid.index(offered)
    return grid[min(i + 1, len(grid) - 1)] - grid[max(i - 1, 0)]


def compare_knees(fixed, adaptive) -> list:
    """Per (pattern, network) knee agreement rows for two Figure6Results
    (one fixed, one adaptive)."""
    rows = []
    for pattern in PANEL_ORDER:
        if pattern not in adaptive.knees:
            continue
        for net, knee in adaptive.knees[pattern].items():
            fixed_knee = _knee_of_curve(fixed.curves[pattern][net])
            grid = LOAD_GRIDS[pattern]
            spacing = _grid_spacing_at(grid, fixed_knee.offered_fraction)
            resolution = knee.resolution
            tolerance = max(resolution, spacing) \
                if resolution != float("inf") else spacing
            delta = abs(knee.knee_offered - fixed_knee.offered_fraction)
            rows.append({
                "pattern": pattern,
                "network": net,
                "fixed_knee_offered": fixed_knee.offered_fraction,
                "fixed_knee_fraction": fixed_knee.delivered_fraction,
                "adaptive_knee_offered": knee.knee_offered,
                "adaptive_knee_fraction": knee.knee_fraction,
                "bracket_low": knee.bracket_low,
                "bracket_high": (knee.bracket_high
                                 if knee.bracket_high != float("inf")
                                 else None),
                "resolution_offered": (resolution
                                       if resolution != float("inf")
                                       else None),
                "delta_offered": delta,
                "tolerance_offered": tolerance,
                "within_one_step": delta <= tolerance,
            })
    return rows


def run_comparison(window_ns: float, workers: int = 1,
                   progress=None) -> dict:
    """Run both sweep modes per network (so each mode gets a per-network
    wall-clock and event count) and assemble the BENCH_PR4 document."""
    networks = list(FIGURE6_NETWORKS)
    per_network = {}
    fixed_results = {}
    adaptive_results = {}
    for net in networks:
        if progress:
            progress("fixed sweep: %s" % net)
        t0 = time.perf_counter()
        fixed = run_figure6(window_ns=window_ns, networks=[net],
                            workers=workers)
        fixed_s = time.perf_counter() - t0
        if progress:
            progress("adaptive sweep: %s" % net)
        t0 = time.perf_counter()
        adaptive = run_figure6_adaptive(window_ns=window_ns,
                                        networks=[net], workers=workers)
        adaptive_s = time.perf_counter() - t0
        fixed_results[net] = fixed
        adaptive_results[net] = adaptive
        per_network[net] = {
            "fixed_events": fixed.total_events,
            "fixed_load_points": fixed.load_points,
            "fixed_wall_clock_s": fixed_s,
            "fixed_events_per_sec": fixed.total_events / fixed_s,
            "adaptive_events": adaptive.total_events,
            "adaptive_load_points": adaptive.load_points,
            "adaptive_wall_clock_s": adaptive_s,
            "adaptive_events_per_sec": adaptive.total_events / adaptive_s,
            "events_ratio": fixed.total_events
            / max(1, adaptive.total_events),
            "wall_clock_ratio": fixed_s / adaptive_s
            if adaptive_s > 0 else None,
        }

    knees = []
    for net in networks:
        knees.extend(compare_knees(fixed_results[net],
                                   adaptive_results[net]))

    fixed_events = sum(r["fixed_events"] for r in per_network.values())
    adaptive_events = sum(r["adaptive_events"]
                          for r in per_network.values())
    fixed_wall = sum(r["fixed_wall_clock_s"] for r in per_network.values())
    adaptive_wall = sum(r["adaptive_wall_clock_s"]
                        for r in per_network.values())
    return {
        "schema": "repro-bench-pr4/1",
        "generated_unix": time.time(),
        "host": host_info(),
        "window_ns": window_ns,
        "workers": workers,
        "totals": {
            "fixed_events": fixed_events,
            "fixed_load_points": sum(r["fixed_load_points"]
                                     for r in per_network.values()),
            "fixed_wall_clock_s": fixed_wall,
            "adaptive_events": adaptive_events,
            "adaptive_load_points": sum(r["adaptive_load_points"]
                                        for r in per_network.values()),
            "adaptive_wall_clock_s": adaptive_wall,
            "events_ratio": fixed_events / max(1, adaptive_events),
            "wall_clock_ratio": fixed_wall / adaptive_wall
            if adaptive_wall > 0 else None,
        },
        "networks": per_network,
        "knees": knees,
        "all_knees_within_one_step": all(k["within_one_step"]
                                         for k in knees),
        "meets_2x_events_target": fixed_events
        >= 2.0 * adaptive_events,
    }


def print_report(report: dict) -> None:
    t = report["totals"]
    print("figure 6 sweep, fixed vs adaptive (window %.0f ns, %d worker(s)):"
          % (report["window_ns"], report["workers"]))
    print("  %-24s %10s %8s %9s | %10s %8s %9s | %6s %6s"
          % ("network", "fix ev", "fix pts", "fix s",
             "ad ev", "ad pts", "ad s", "ev x", "wall x"))
    for net, r in report["networks"].items():
        print("  %-24s %10d %8d %8.2fs | %10d %8d %8.2fs | %5.2fx %5.2fx"
              % (net, r["fixed_events"], r["fixed_load_points"],
                 r["fixed_wall_clock_s"], r["adaptive_events"],
                 r["adaptive_load_points"], r["adaptive_wall_clock_s"],
                 r["events_ratio"], r["wall_clock_ratio"] or 0.0))
    print("  %-24s %10d %8d %8.2fs | %10d %8d %8.2fs | %5.2fx %5.2fx"
          % ("TOTAL", t["fixed_events"], t["fixed_load_points"],
             t["fixed_wall_clock_s"], t["adaptive_events"],
             t["adaptive_load_points"], t["adaptive_wall_clock_s"],
             t["events_ratio"], t["wall_clock_ratio"] or 0.0))
    print("  >=2x fewer events: %s   all knees within one step: %s"
          % (report["meets_2x_events_target"],
             report["all_knees_within_one_step"]))
    off = [k for k in report["knees"] if not k["within_one_step"]]
    for k in off:
        print("  KNEE OFF: %s/%s fixed@%.4f adaptive@%.4f (tol %.4f)"
              % (k["pattern"], k["network"], k["fixed_knee_offered"],
                 k["adaptive_knee_offered"], k["tolerance_offered"]))


# -- drift table --------------------------------------------------------------


def _baseline_events_per_sec(entry: dict):
    """Events/sec from a baseline per-network record, whatever PR wrote
    it: PR3 used ``events_per_sec``, PR4 ``fixed_events_per_sec``, PR5
    ``cold_events_per_sec``, PR9 ``python_events_per_sec`` (the scalar
    arm — the drift table always compares scalar-engine throughput)."""
    for key in ("python_events_per_sec", "cold_events_per_sec",
                "fixed_events_per_sec", "events_per_sec"):
        if key in entry:
            return entry[key]
    return None


def print_baseline_delta(report: dict, baseline_path: str) -> None:
    """Host-sanity drift table against the newest committed artifact."""
    try:
        with open(baseline_path, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, ValueError) as exc:
        print("no baseline comparison (%s)" % exc)
        return
    nets = baseline.get("networks", {})
    if not nets:
        print("no baseline comparison (no networks in %s)" % baseline_path)
        return
    print("sweep events/sec vs %s (different workloads/windows across "
          "PRs — drift indicator only):" % baseline_path)
    for net, r in report["networks"].items():
        base = _baseline_events_per_sec(nets.get(net, {}))
        now = _baseline_events_per_sec(r)
        if not base or not now:
            continue
        print("  %-24s %12.0f ev/s  vs %12.0f ev/s  (%+.1f%%)"
              % (net, now, base, 100.0 * (now - base) / base))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", default="warm",
                        choices=["warm", "adaptive", "scaling",
                                 "vectorized", "vectorized2"],
                        help="warm: cold-vs-warm-start PR5 benchmark "
                             "(default); adaptive: fixed-vs-adaptive "
                             "PR4 benchmark; scaling: events/sec vs "
                             "grid size PR8 benchmark; vectorized: "
                             "python-vs-numpy backend PR9 benchmark; "
                             "vectorized2: PR10 round — HERMES kernel, "
                             "adaptive replay, per-kernel breakdown")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: "
                             "results/BENCH_PR5.json for --mode warm, "
                             "results/BENCH_PR4.json for --mode "
                             "adaptive, results/BENCH_PR8.json for "
                             "--mode scaling, results/BENCH_PR9.json "
                             "for --mode vectorized, "
                             "results/BENCH_PR10.json for --mode "
                             "vectorized2)")
    parser.add_argument("--window-ns", type=float, default=None,
                        help="injection window per load point (default: "
                             "%.0f warm / %.0f adaptive / %.0f scaling "
                             "/ %.0f vectorized)"
                             % (WARM_WINDOW_NS, SWEEP_WINDOW_NS,
                                SCALING_WINDOW_NS, VEC_WINDOW_NS))
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes inside each sweep "
                             "(events counts are identical for any "
                             "value; wall-clock ratios are most "
                             "meaningful serially)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per arm in warm mode "
                             "(best is reported)")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_PR*.json for the "
                             "events/sec drift table (default: newest "
                             "in results/ other than the output; '' to "
                             "skip)")
    parser.add_argument("--quick", action="store_true",
                        help="CI preset: short window, fewer repeats")
    parser.add_argument("--profile", action="store_true",
                        help="run the benchmark body under cProfile and "
                             "print the top 20 functions by cumulative "
                             "time to stderr")
    args = parser.parse_args(argv)
    warm_mode = args.mode == "warm"
    scaling_mode = args.mode == "scaling"
    vectorized_mode = args.mode == "vectorized"
    vectorized2_mode = args.mode == "vectorized2"
    if args.out is None:
        args.out = {"warm": "results/BENCH_PR5.json",
                    "adaptive": "results/BENCH_PR4.json",
                    "scaling": "results/BENCH_PR8.json",
                    "vectorized": "results/BENCH_PR9.json",
                    "vectorized2": "results/BENCH_PR10.json"}[args.mode]
    if args.window_ns is None:
        args.window_ns = {"warm": WARM_WINDOW_NS,
                          "adaptive": SWEEP_WINDOW_NS,
                          "scaling": SCALING_WINDOW_NS,
                          "vectorized": VEC_WINDOW_NS,
                          "vectorized2": VEC_WINDOW_NS}[args.mode]
    if args.quick:
        if warm_mode:
            args.window_ns = min(args.window_ns, WARM_WINDOW_NS)
            args.repeats = min(args.repeats, 2)
        elif scaling_mode:
            args.window_ns = min(args.window_ns, SCALING_WINDOW_NS)
            args.repeats = min(args.repeats, 2)
        elif vectorized_mode or vectorized2_mode:
            # the CI smoke regime: per-point setup dominates, so the
            # measured speedup undershoots the committed 500 ns number
            args.window_ns = min(args.window_ns, WARM_WINDOW_NS)
            args.repeats = min(args.repeats, 2)
        else:
            args.window_ns = min(args.window_ns, 150.0)

    progress = lambda m: print(".. %s" % m, file=sys.stderr)  # noqa: E731
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    if warm_mode:
        report = run_warm_comparison(args.window_ns, workers=args.workers,
                                     repeats=args.repeats,
                                     progress=progress)
    elif scaling_mode:
        report = run_scaling_benchmark(args.window_ns,
                                       repeats=args.repeats,
                                       progress=progress)
    elif vectorized_mode:
        report = run_vectorized_comparison(args.window_ns,
                                           workers=args.workers,
                                           repeats=args.repeats,
                                           progress=progress)
    elif vectorized2_mode:
        report = run_vectorized2_comparison(args.window_ns,
                                            workers=args.workers,
                                            repeats=args.repeats,
                                            progress=progress)
    else:
        report = run_comparison(args.window_ns, workers=args.workers,
                                progress=progress)
    if profiler is not None:
        import pstats

        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(20)

    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    doc = json.dumps(report, indent=2, sort_keys=True) + "\n"
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(doc)
    wrote = [args.out]

    if warm_mode:
        print_warm_report(report)
    elif scaling_mode:
        print_scaling_report(report)
    elif vectorized_mode:
        print_vectorized_report(report)
    elif vectorized2_mode:
        print_vectorized2_report(report)
    else:
        print_report(report)
    baseline = args.baseline
    if baseline is None:
        baseline = latest_bench_path(
            os.path.dirname(args.out) or "results",
            exclude=os.path.basename(args.out))
    if baseline:
        print_baseline_delta(report, baseline)
    for path in wrote:
        print("wrote %s" % path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
