"""Benchmarks for the parallel experiment runner.

Measures the same multi-point Figure 6 sweep executed serially and
sharded across 4 worker processes, asserts the two produce bit-identical
results, and reports the observed speedup.  On multi-core hosts the
parallel run should approach ``min(4, cores)``x; on constrained CI boxes
(1 CPU) the equality contract still holds and the speedup is simply
reported.
"""

from __future__ import annotations

from repro.core.parallel import Shard, available_cpus, run_sharded
from repro.core.sweep import run_load_point
from repro.macrochip.config import scaled_config
from repro.workloads.synthetic import UniformTraffic

CFG = scaled_config()
WINDOW_NS = 120.0
FRACTIONS = [0.02, 0.05, 0.10, 0.20, 0.40, 0.60, 0.80, 0.95]


def _shards():
    pattern = UniformTraffic(CFG.layout)
    return [Shard(run_load_point,
                  args=("point_to_point", CFG, pattern, f),
                  kwargs=dict(window_ns=WINDOW_NS),
                  label="@%.2f" % f)
            for f in FRACTIONS]


def _cpus() -> int:
    # affinity-aware, >= 1 on every platform (incl. hosts without
    # os.sched_getaffinity), and the same answer resolve_workers uses
    return available_cpus()


def test_sweep_serial(benchmark):
    run = benchmark.pedantic(run_sharded, args=(_shards(),),
                             kwargs={"workers": 1},
                             rounds=1, iterations=1)
    assert len(run.results) == len(FRACTIONS)
    assert run.mode == "serial"
    print()
    print(run.summary())


def test_sweep_parallel_4_workers(benchmark):
    shards = _shards()
    serial = run_sharded(shards, workers=1)
    run = benchmark.pedantic(run_sharded, args=(shards,),
                             kwargs={"workers": 4},
                             rounds=1, iterations=1)
    # the determinism contract: byte-identical results on any worker count
    assert run.results == serial.results
    print()
    print("serial  :", serial.summary())
    print("parallel:", run.summary())
    if _cpus() >= 4 and run.mode != "serial":
        # acceptance target on real multi-core hosts: >=2x on 4 workers
        assert run.wall_clock_s < serial.wall_clock_s / 2.0, (
            "expected >=2x speedup on 4 workers, got %.2fx"
            % (serial.wall_clock_s / run.wall_clock_s))


def test_sweep_fault_tolerant_overhead(benchmark):
    """The fault-tolerant executor on a clean run: the health-checked
    sliding-window path must return the same bit-identical results with
    zero failures — its polling/health-check overhead is what this
    benchmark tracks relative to test_sweep_parallel_4_workers."""
    shards = _shards()
    serial = run_sharded(shards, workers=1)
    run = benchmark.pedantic(run_sharded, args=(shards,),
                             kwargs={"workers": 4, "on_error": "retry",
                                     "max_retries": 2, "timeout_s": 600.0},
                             rounds=1, iterations=1)
    assert run.results == serial.results
    assert run.ok and run.failed == 0
    assert all(r.attempts == 1 for r in run.reports)
    print()
    print("serial        :", serial.summary())
    print("fault-tolerant:", run.summary())
