"""Benchmark regenerating Figure 6 (latency vs offered load).

One benchmark per traffic-pattern panel.  Each runs a reduced sweep
(short injection windows, thinned load grids, all five networks on the
paper's 8x8 configuration), prints the panel's series, and asserts the
panel's headline property from section 6.1.
"""

import pytest

from repro.experiments.figure6 import figure6_text, run_figure6
from repro.macrochip.config import scaled_config

CFG = scaled_config()
PEAK = CFG.num_sites * CFG.site_bandwidth_gb_per_s
WINDOW_NS = 150.0

GRIDS = {
    "uniform": [0.05, 0.40, 0.90],
    "transpose": [0.005, 0.015, 0.05],
    "neighbor": [0.04, 0.12, 0.24],
    "butterfly": [0.005, 0.015, 0.05],
}


def _run_panel(pattern):
    return run_figure6(CFG, window_ns=WINDOW_NS, patterns=[pattern],
                       load_grids=GRIDS)


def _sustained(result, pattern):
    return {net: max(p.delivered_fraction for p in pts)
            for net, pts in result.curves[pattern].items()}


def test_figure6_uniform(benchmark):
    result = benchmark.pedantic(_run_panel, args=("uniform",),
                                rounds=1, iterations=1)
    sust = _sustained(result, "uniform")
    # section 6.1 ordering on uniform random traffic
    assert sust["point_to_point"] > sust["limited_point_to_point"]
    assert sust["point_to_point"] > 0.6
    assert sust["two_phase"] < sust["token_ring"]
    assert sust["circuit_switched"] < 0.05
    print()
    print(figure6_text(result))


def test_figure6_transpose(benchmark):
    result = benchmark.pedantic(_run_panel, args=("transpose",),
                                rounds=1, iterations=1)
    sust = _sustained(result, "transpose")
    # the P2P channel caps at 5 GB/s per site (~1.56% of peak) and the
    # token ring falls below it
    assert sust["point_to_point"] < 0.02
    assert sust["token_ring"] < sust["point_to_point"]
    print()
    print(figure6_text(result))


def test_figure6_neighbor(benchmark):
    result = benchmark.pedantic(_run_panel, args=("neighbor",),
                                rounds=1, iterations=1)
    sust = _sustained(result, "neighbor")
    # nearest-neighbor maps onto the limited P2P's direct links
    assert sust["limited_point_to_point"] == max(sust.values())
    print()
    print(figure6_text(result))


def test_figure6_butterfly(benchmark):
    result = benchmark.pedantic(_run_panel, args=("butterfly",),
                                rounds=1, iterations=1)
    sust = _sustained(result, "butterfly")
    # half the butterfly traffic is intra-site loopback; the optical
    # networks only carry the moving half
    assert sust["token_ring"] < sust["point_to_point"]
    print()
    print(figure6_text(result))
