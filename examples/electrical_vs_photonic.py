#!/usr/bin/env python
"""Quantify the paper's motivation: photonic vs electrical inter-chip
links.

Section 1 argues that pin-limited, SerDes-based electrical signaling
cannot feed a multi-chip "macrochip": off-chip I/O density lags on-chip
wires, forcing overclocked, high-power serial links.  This example runs
the same uniform-random workload over (a) the paper's static WDM
photonic point-to-point network and (b) an electrical baseline with an
optimistic 64 GB/s pin budget per site, then compares latency, sustained
bandwidth, and energy per bit.

Run:  python examples/electrical_vs_photonic.py
"""

from repro import scaled_config
from repro.analysis.tables import render_table
from repro.core.sweep import run_load_point
from repro.workloads.synthetic import UniformTraffic


def main() -> None:
    config = scaled_config()
    total_peak = config.num_sites * config.site_bandwidth_gb_per_s
    rows = []
    for net, loads in [("point_to_point", [0.05, 0.5, 0.9]),
                       ("electrical_baseline", [0.05, 0.15, 0.25])]:
        for load in loads:
            r = run_load_point(net, config, UniformTraffic(config.layout),
                               load, window_ns=400.0)
            rows.append((net, "%.0f%%" % (load * 100),
                         "%.1f ns" % r.mean_latency_ns,
                         "%.1f%%" % (100 * r.throughput_gb_per_s
                                     / total_peak),
                         "saturated" if r.saturated else "ok"))
    print(render_table(
        ["Network", "Offered", "Mean latency", "Delivered (of 20 TB/s)",
         "State"],
        rows, title="Photonic point-to-point vs electrical baseline, "
                    "uniform 64 B traffic"))
    print()
    print("The electrical baseline's 64 GB/s pin budget is 20% of the")
    print("photonic per-site bandwidth, its SerDes adds ~10 ns per hop,")
    print("and it burns ~1.5 pJ/bit vs the 150 fJ/bit optical budget —")
    print("the 10x power-efficiency gap the paper's abstract claims.")


if __name__ == "__main__":
    main()
