#!/usr/bin/env python
"""Run a cache-coherent application kernel on two networks.

Exercises the full stack the way Figures 7/8/10 do: the radix-sort
kernel's per-core address streams run through the shared-L2 + MOESI
directory CPU simulator once, and the resulting coherence trace replays
closed-loop on the point-to-point network and the circuit-switched
torus.  Prints runtime, per-operation latency, energy, and the speedup
and EDP ratios.

Run:  python examples/coherent_application.py
"""

from repro import scaled_config
from repro.analysis.edp import energy_breakdown
from repro.cpu.system import generate_trace
from repro.workloads.kernels import RadixKernel
from repro.workloads.replay import replay


def main() -> None:
    config = scaled_config()
    kernel = RadixKernel(refs_per_core=600)
    print("CPU-simulating %s (%d refs/core, %d cores)..."
          % (kernel.name, kernel.refs_per_core, config.num_cores))
    trace = generate_trace(kernel, config)
    print("  %d coherence ops, %.1f%% L2 miss rate, mix %s"
          % (trace.total_ops, 100 * trace.miss_rate,
             trace.kind_histogram()))
    print()

    results = {}
    for net in ("point_to_point", "circuit_switched"):
        print("replaying on %s..." % net)
        results[net] = replay(trace, net, config)
    print()

    breakdowns = {}
    for net, r in results.items():
        b = energy_breakdown(r, net, config)
        breakdowns[net] = b
        print("%-18s runtime %8.1f us   %6.1f ns/op   energy %8.1f uJ"
              % (net, r.runtime_ns / 1000.0, r.mean_op_latency_ns,
                 b.total_pj / 1e6))

    p2p, cs = results["point_to_point"], results["circuit_switched"]
    print()
    print("speedup (P2P over circuit-switched): %.2fx"
          % (cs.runtime_ps / p2p.runtime_ps))
    print("EDP ratio (circuit-switched / P2P):  %.1fx"
          % (breakdowns["circuit_switched"].edp
             / breakdowns["point_to_point"].edp))


if __name__ == "__main__":
    main()
