#!/usr/bin/env python
"""Explore the macrochip's optical link budget and network laser power.

Walks the canonical un-switched link component by component (Figure 2 /
section 2: 17 dB total against a 21 dB budget), then regenerates the
Table 5 laser-power comparison and shows how it responds to a technology
change — halving the broadband-switch loss — the kind of what-if the
component models make one-liners.

Run:  python examples/power_budget.py
"""

from repro import scaled_config
from repro.analysis.power import table5_rows
from repro.analysis.tables import render_table
from repro.photonics.loss import budget_for, unswitched_link


def main() -> None:
    config = scaled_config()

    print("Canonical un-switched site-to-site link (Figure 2):")
    path = unswitched_link(config.tech)
    print(path.describe())
    budget = budget_for(path, config.tech)
    print("margin: %.1f dB against %.0f dB budget -> link %s"
          % (budget.margin_db, config.tech.link_margin_db,
             "closes" if budget.closes else "DOES NOT CLOSE"))
    print()

    print(render_table(
        ["Network", "Loss factor", "Laser power"],
        [(r.network, "%.1fx" % r.loss_factor, "%.1f W" % r.laser_power_w)
         for r in table5_rows(config)],
        title="Table 5 (derived): network optical power"))
    print()

    # what-if: a better broadband switch (0.5 dB instead of 1 dB)
    better = config.with_overrides(
        tech=config.tech.with_overrides(switch_loss_db=0.5))
    rows = {r.network: r for r in table5_rows(better)}
    base = {r.network: r for r in table5_rows(config)}
    print("What-if: broadband switch loss halved to 0.5 dB")
    for name in ("Two-Phase Data", "Two-Phase Data (ALT)"):
        print("  %-22s %.1f W -> %.1f W"
              % (name, base[name].laser_power_w, rows[name].laser_power_w))
    print("Switch-free networks (point-to-point, token ring) are of")
    print("course unaffected — the complexity argument of section 6.4.")


if __name__ == "__main__":
    main()
