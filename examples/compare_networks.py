#!/usr/bin/env python
"""Compare all five network architectures on one traffic pattern.

A miniature Figure 6 panel: sweeps every network over a chosen pattern
and prints the latency-vs-load columns plus each network's sustained
bandwidth at the knee.

Run:  python examples/compare_networks.py [uniform|transpose|neighbor|butterfly]
"""

import sys

from repro import scaled_config
from repro.analysis.tables import render_table
from repro.core.sweep import sweep
from repro.networks.factory import FIGURE6_NETWORKS, NETWORK_CLASSES
from repro.workloads.synthetic import make_pattern


LOADS = {
    "uniform": [0.05, 0.25, 0.50, 0.90],
    "transpose": [0.005, 0.012, 0.03, 0.06],
    "neighbor": [0.02, 0.08, 0.16, 0.25],
    "butterfly": [0.005, 0.012, 0.03, 0.06],
}


def main(pattern_key: str) -> None:
    config = scaled_config()
    total_peak = config.num_sites * config.site_bandwidth_gb_per_s
    loads = LOADS[pattern_key]
    rows = []
    for net in FIGURE6_NETWORKS:
        pattern = make_pattern(pattern_key, config.layout)
        points = sweep(net, config, pattern, loads, window_ns=400.0)
        best = max(p.delivered_fraction for p in points
                   if not p.saturated) if any(
            not p.saturated for p in points) else max(
            p.delivered_fraction for p in points)
        row = [NETWORK_CLASSES[net].name]
        row += ["%.1f ns" % p.mean_latency_ns for p in points]
        row.append("%.1f%%" % (best * 100))
        rows.append(row)
        print(".. %s done" % net, file=sys.stderr)
    headers = ["Network"] + ["%.1f%% load" % (f * 100) for f in loads]
    headers.append("sustained")
    print(render_table(headers, rows,
                       title="Latency vs offered load [%s], 64 B packets"
                             % pattern_key))


if __name__ == "__main__":
    key = sys.argv[1] if len(sys.argv) > 1 else "uniform"
    if key not in LOADS:
        raise SystemExit("pattern must be one of %s" % ", ".join(LOADS))
    main(key)
