#!/usr/bin/env python
"""Message-passing workloads on the macrochip (paper future work).

The paper's conclusion defers message-passing evaluation to future work;
this example runs it: four MPI-style collectives (ring shift, 2D halo
exchange, personalized all-to-all, recursive-doubling allreduce) on the
point-to-point network and the token-ring crossbar, comparing runtime
and delivered bandwidth.

Run:  python examples/message_passing.py
"""

import sys

from repro import scaled_config
from repro.analysis.tables import render_table
from repro.networks.factory import NETWORK_CLASSES
from repro.workloads.message_passing import (
    MESSAGE_PASSING_WORKLOADS,
    run_message_passing,
)


def main() -> None:
    config = scaled_config()
    networks = ["point_to_point", "token_ring", "limited_point_to_point"]
    rows = []
    for workload in sorted(MESSAGE_PASSING_WORKLOADS):
        for net in networks:
            print(".. %s on %s" % (workload, net), file=sys.stderr)
            r = run_message_passing(workload, net, config)
            rows.append((workload, NETWORK_CLASSES[net].name,
                         "%.1f us" % (r.runtime_ns / 1000.0),
                         "%.0f GB/s" % r.effective_bandwidth_gb_per_s,
                         "%.1f ns" % r.message_latency.mean_ns))
    print(render_table(
        ["Collective", "Network", "Runtime", "Delivered BW",
         "Mean msg latency"],
        rows, title="Message-passing collectives on the macrochip"))
    print()
    print("Bulk transfers favor wide channels; the token ring's per-grant")
    print("token travel and the P2P network's narrow 5 GB/s channels trade")
    print("places depending on how many peers a collective talks to.")


if __name__ == "__main__":
    main()
