#!/usr/bin/env python
"""Quickstart: simulate the macrochip's point-to-point network.

Builds the paper's scaled 64-site configuration (Table 4), drives the
static WDM point-to-point network with uniform-random 64-byte packets at
a few offered loads, and prints the latency/throughput curve — a single
slice of Figure 6.

Run:  python examples/quickstart.py
"""

from repro import scaled_config
from repro.core.sweep import run_load_point
from repro.workloads.synthetic import UniformTraffic


def main() -> None:
    config = scaled_config()
    print("Macrochip: %d sites x %d cores, %.0f GB/s per site, "
          "%.1f TB/s peak"
          % (config.num_sites, config.cores_per_site,
             config.site_bandwidth_gb_per_s,
             config.total_bandwidth_tb_per_s))
    print()
    print("Point-to-point network, uniform random traffic, 64 B packets")
    print("%8s  %14s  %16s" % ("load", "mean latency", "delivered"))
    total_peak = config.num_sites * config.site_bandwidth_gb_per_s
    for load in [0.05, 0.25, 0.50, 0.75, 0.90]:
        result = run_load_point(
            "point_to_point", config, UniformTraffic(config.layout),
            offered_fraction=load, window_ns=400.0)
        print("%7.0f%%  %11.1f ns  %13.1f%% of peak"
              % (load * 100, result.mean_latency_ns,
                 100.0 * result.throughput_gb_per_s / total_peak))
    print()
    print("The channel is only 5 GB/s wide (2 wavelengths), but with no")
    print("arbitration or switching the network rides to ~95% of peak.")


if __name__ == "__main__":
    main()
