#!/usr/bin/env python
"""Define a custom workload kernel and evaluate it on every network.

Shows the extension point downstream users care about: subclass
``KernelBase``, emit per-core memory-reference streams, and the existing
CPU simulator + replay pipeline does the rest.  The example models a
bulk-synchronous stencil with a tunable remote fraction.

Run:  python examples/custom_workload.py
"""

from repro import scaled_config
from repro.analysis.tables import render_table
from repro.cpu.system import generate_trace
from repro.networks.factory import FIGURE7_NETWORKS, NETWORK_CLASSES
from repro.workloads.kernels._base import KernelBase, line_addr
from repro.cpu.trace import MemoryRef
from repro.workloads.replay import replay


class RingExchangeKernel(KernelBase):
    """Each site streams data to the next site in row-major order —
    a one-to-one shift permutation (hostile to token arbitration)."""

    name = "RingExchange"
    refs_per_core = 400
    seed = 7

    def _stream(self, core, config):
        rng = self._rng(core)
        site = self._site_of(core, config)
        target = (site + 1) % config.num_sites
        base = core * 4096
        for i in range(self.refs_per_core):
            if rng.random() < 0.5:
                # push a fresh line to the neighbor's region
                yield MemoryRef(4, line_addr(target, base + i,
                                             config.num_sites), write=True)
            else:
                # local compute on private data
                yield MemoryRef(4, line_addr(site, 80000 + base
                                             + rng.randrange(128),
                                             config.num_sites))


def main() -> None:
    config = scaled_config()
    kernel = RingExchangeKernel()
    print("CPU-simulating %s..." % kernel.name)
    trace = generate_trace(kernel, config)
    print("  %d ops, %.1f%% miss rate"
          % (trace.total_ops, 100 * trace.miss_rate))

    rows = []
    results = {}
    for net in FIGURE7_NETWORKS:
        print(".. replaying on %s" % net)
        results[net] = replay(trace, net, config)
    base = results["circuit_switched"].runtime_ps
    for net in FIGURE7_NETWORKS:
        r = results[net]
        rows.append((NETWORK_CLASSES[net].name,
                     "%.1f us" % (r.runtime_ns / 1000),
                     "%.1f ns" % r.mean_op_latency_ns,
                     "%.2fx" % (base / r.runtime_ps)))
    print()
    print(render_table(
        ["Network", "Runtime", "Latency/op", "Speedup vs CS"], rows,
        title="RingExchange on all six network configurations"))


if __name__ == "__main__":
    main()
