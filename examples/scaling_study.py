#!/usr/bin/env python
"""WDM scaling study: the point-to-point network's headline property.

Section 6.4: "As the number of wavelengths per waveguide increases with
improvements in technology, the peak bandwidth for a point-to-point
network can increase without increasing the number of waveguides.  This
is contrary to the case of electronic point-to-point networks where
scalability is limited by the quadratic increase in the number of
wires."

This example sweeps the WDM factor from 4 to 32 wavelengths per
waveguide, showing peak bandwidth growing linearly at a constant
waveguide count, and contrasts it with the waveguide growth needed if
bandwidth instead came from more (single-wavelength) guides.  It also
prints the routing-area and bandwidth-density estimates behind the
macrochip's feasibility.

Run:  python examples/scaling_study.py
"""

from repro import scaled_config
from repro.analysis.area import (
    area_table,
    bandwidth_density_gb_per_s_per_mm,
    substrate_area_cm2,
    wdm_scaling_table,
)
from repro.analysis.tables import render_table


def main() -> None:
    config = scaled_config()

    rows = []
    for wdm, bw_tb, guides in wdm_scaling_table(config, [4, 8, 16, 32]):
        guides_if_no_wdm = guides * wdm  # one wavelength per guide
        rows.append((wdm, "%.1f TB/s" % bw_tb, guides,
                     guides_if_no_wdm,
                     "%.0f GB/s/mm"
                     % bandwidth_density_gb_per_s_per_mm(
                         config, wavelengths=wdm)))
    print(render_table(
        ["WDM factor", "P2P peak", "Waveguides", "Guides w/o WDM",
         "Escape density"],
        rows,
        title="Point-to-point scalability under WDM (section 6.4)"))
    print()

    area_rows = [(e.network, e.waveguides, "%.1f m" % e.total_length_m,
                  "%.1f cm^2" % e.routing_area_cm2)
                 for e in area_table(config)]
    print(render_table(
        ["Network", "Waveguides (effective)", "Total length",
         "Routing area"],
        area_rows,
        title="Routing area on the %.0f cm^2 SOI substrate"
              % substrate_area_cm2(config)))
    print()
    print("The token ring's 32K effective guides are the area cost of")
    print("snaking every destination bundle past every site; the")
    print("point-to-point network stays an order of magnitude smaller.")


if __name__ == "__main__":
    main()
