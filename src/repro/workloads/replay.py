"""Closed-loop replay of a coherence trace on a network.

Each core issues its coherence operations in order, separated by its
recorded compute gaps, and **stalls** until the operation's network
message plan completes (in-order cores, section 3).  Writebacks are
fire-and-forget.  A site's outstanding operations are bounded by its
MSHRs (section 5: "We model finite MSHRs").

The replay produces the three quantities Figures 7, 8, and 10 are built
from: execution time (speedups), mean latency per coherence operation,
and network energy (optical transceiver + electronic router dynamic
energy from the network's own accounting, plus static laser power applied
over the runtime by :mod:`repro.analysis.edp`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from ..core.engine import Simulator
from ..core.stats import LatencySample
from ..cpu.coherence import CoherenceOp, MessageStep, OpKind, message_plan
from ..cpu.trace import CoherenceTrace
from ..macrochip.config import MacrochipConfig
from ..networks.base import Packet
from ..networks.factory import build_network


@dataclass
class ReplayResult:
    """Outcome of one (workload, network) closed-loop run."""

    network: str
    workload: str
    runtime_ps: int
    ops_completed: int
    messages_sent: int
    op_latency: LatencySample
    energy_by_category: Dict[str, float]
    #: simulator events dispatched (deterministic; used for telemetry)
    events_dispatched: int = 0

    @property
    def runtime_ns(self) -> float:
        return self.runtime_ps / 1000.0

    @property
    def mean_op_latency_ns(self) -> float:
        return self.op_latency.mean_ns

    @property
    def dynamic_energy_pj(self) -> float:
        return sum(self.energy_by_category.values())


class _CoreState:
    """Progress of one core through its operation list."""

    __slots__ = ("ops", "index")

    def __init__(self, ops: List[CoherenceOp]) -> None:
        self.ops = ops
        self.index = 0


class TraceReplayer:
    """Drives a coherence trace through one network, closed-loop."""

    def __init__(self, trace: CoherenceTrace, network_name: str,
                 config: MacrochipConfig,
                 network_kwargs: Optional[dict] = None) -> None:
        self.trace = trace
        self.config = config
        self.sim = Simulator()
        self.network = build_network(network_name, config, self.sim,
                                     **(network_kwargs or {}))
        self._op_latency = LatencySample()
        self._messages = 0
        self._mshrs_free = [config.mshrs_per_site] * config.num_sites
        self._mshr_waiters: List[Deque] = [deque()
                                           for _ in range(config.num_sites)]

    # -- public --------------------------------------------------------------

    def run(self) -> ReplayResult:
        cycle = self.config.cycle_ps
        for core, ops in enumerate(self.trace.ops_by_core):
            state = _CoreState(ops)
            if ops:
                self.sim.at(ops[0].gap_cycles * cycle,
                            self._issue, core, state)
        events = self.sim.run()
        return ReplayResult(
            network=self.network.name,
            workload=self.trace.workload,
            runtime_ps=self.sim.now,
            ops_completed=len(self._op_latency),
            messages_sent=self._messages,
            op_latency=self._op_latency,
            energy_by_category=self.network.stats.energy.categories(),
            events_dispatched=events,
        )

    # -- core state machine ----------------------------------------------------

    def _issue(self, core: int, state: _CoreState) -> None:
        op = state.ops[state.index]
        site = op.requester
        if self._mshrs_free[site] == 0:
            self._mshr_waiters[site].append((core, state))
            return
        self._mshrs_free[site] -= 1
        issue_time = self.sim.now
        if op.kind is OpKind.WRITEBACK:
            # fire-and-forget: inject and continue immediately
            self._send_plan(op, issue_time, on_complete=None)
            self._op_done(core, state, op, issue_time, stalled=False)
            return
        self._send_plan(
            op, issue_time,
            on_complete=lambda: self._op_done(core, state, op, issue_time,
                                              stalled=True))

    def _op_done(self, core: int, state: _CoreState, op: CoherenceOp,
                 issue_time: int, stalled: bool) -> None:
        if stalled:
            # writebacks are fire-and-forget and excluded from the
            # latency-per-coherence-operation metric (Figure 8)
            self._op_latency.add(self.sim.now - issue_time)
        self._release_mshr(op.requester)
        state.index += 1
        if state.index < len(state.ops):
            gap = state.ops[state.index].gap_cycles * self.config.cycle_ps
            self.sim.schedule(gap, self._issue, core, state)

    def _release_mshr(self, site: int) -> None:
        waiters = self._mshr_waiters[site]
        self._mshrs_free[site] += 1
        if waiters:
            core, state = waiters.popleft()
            self.sim.schedule(0, self._issue, core, state)

    # -- message plan execution --------------------------------------------------

    def _send_plan(self, op: CoherenceOp, issue_time: int,
                   on_complete) -> None:
        cfg = self.config
        steps = message_plan(op, cfg.control_message_bytes,
                             cfg.data_message_bytes,
                             cfg.directory_latency_cycles,
                             cfg.memory_latency_cycles)
        dependents: Dict[int, List[int]] = {}
        remaining = 0
        for i, step in enumerate(steps):
            if step.completes:
                remaining += 1
            if step.depends_on is not None:
                dependents.setdefault(step.depends_on, []).append(i)
        tracker = {"remaining": remaining}

        def inject(index: int) -> None:
            step = steps[index]
            self._messages += 1
            packet = Packet(step.src, step.dst, step.size_bytes,
                            kind=step.kind,
                            on_delivered=lambda _p, i=index: delivered(i))
            self.network.inject(packet)

        def delivered(index: int) -> None:
            step = steps[index]
            if step.completes and on_complete is not None:
                tracker["remaining"] -= 1
                if tracker["remaining"] == 0:
                    on_complete()
            for dep_index in dependents.get(index, ()):
                delay = steps[dep_index].extra_delay_cycles * cfg.cycle_ps
                self.sim.schedule(delay, inject, dep_index)

        for i, step in enumerate(steps):
            if step.depends_on is None:
                self.sim.at(issue_time, inject, i)


def replay(trace: CoherenceTrace, network_name: str,
           config: MacrochipConfig,
           network_kwargs: Optional[dict] = None) -> ReplayResult:
    """Convenience one-shot replay."""
    return TraceReplayer(trace, network_name, config,
                         network_kwargs).run()
