"""Synthetic traffic patterns (paper Table 3).

Each pattern maps a source site to a destination site, possibly randomly:

* **uniform** — a fresh random destination for every packet;
* **transpose** — the first half of the site-id bits swaps with the second
  half (i.e. (row, col) -> (col, row));
* **butterfly** — the LSB and MSB of the site id swap (half of all sites
  map to themselves, which the paper serves over the single-cycle
  intra-site loopback);
* **neighbor** — a random pick among the four grid neighbors (torus wrap,
  so every site always has four).

Patterns are objects (not bare functions) so they carry their paper name,
their own RNG for reproducibility, and the bit-twiddling helpers tests can
probe directly.
"""

from __future__ import annotations

import copy
import random
from typing import List

from ..photonics.layout import MacrochipLayout


class TrafficPattern:
    """Base class: yields a destination for each (source, packet)."""

    #: name used in figures/tables
    name = "abstract"
    #: paper's Figure 6 sweeps stop at different loads per pattern
    sweep_max_fraction = 1.0
    #: True when :meth:`gap_draws` deviates from the plain exponential
    #: stream — the sweep harness then bypasses the interned draw bank
    #: (which factors *unit* exponentials and cannot represent a
    #: state-dependent arrival process) and draws through the pattern.
    uses_custom_gaps = False

    def __init__(self, layout: MacrochipLayout = None, seed: int = 0) -> None:
        self.layout = layout or MacrochipLayout()
        self.rng = random.Random(seed)

    def destination(self, src: int) -> int:
        raise NotImplementedError

    def destinations(self, src: int, count: int) -> List[int]:
        """``count`` consecutive destination draws for ``src``.

        Guaranteed to consume the pattern's RNG exactly as ``count``
        sequential :meth:`destination` calls would, so batched and
        unbatched callers see the same per-site sequences (the sweep
        harness relies on this to stay bit-identical while prefetching
        draws in blocks).  Subclasses override for speed, never for
        different draws.
        """
        return [self.destination(src) for _ in range(count)]

    def gap_draws(self, rng: random.Random, mean_gap_ps: int,
                  count: int) -> List[int]:
        """``count`` inter-arrival gaps (ps, >= 1) drawn from ``rng``.

        The default is the sweep's historical Poisson process
        (:func:`exponential_gaps`) and consumes ``rng`` identically to
        it, so patterns that don't shape time are bit-invisible here.
        Heavy-traffic patterns (bursty) override this to modulate the
        arrival process; overrides must consume ``rng`` sequentially so
        draws are block-size independent, and must keep any burst state
        on ``self`` (each injection site works on its own
        :meth:`split`), resetting it in :meth:`reseed`/:meth:`split`.
        """
        return exponential_gaps(rng, mean_gap_ps, count)

    def draw_signature(self) -> tuple:
        """Hashable knobs that change the pattern's draw streams.

        The sweep's interned draw bank caches destination draws keyed by
        (pattern class, layout, signature); a parametrized pattern MUST
        include here every constructor knob that alters its draws, or
        two differently-configured instances would share cached streams.
        Parameter-free patterns return ``()``.
        """
        return ()

    def reseed(self, seed: int) -> None:
        self.rng.seed(seed)

    def split(self, seed: int) -> "TrafficPattern":
        """A shallow copy with an independent RNG stream.

        The sweep harness gives every injection site its own split so a
        site's destination draws depend only on (seed, site) — never on
        how other sites' events interleave.  Sharing ``layout`` (and any
        other derived fields) is safe: patterns only read them.
        """
        clone = copy.copy(self)
        clone.rng = random.Random(seed)
        return clone


class UniformTraffic(TrafficPattern):
    """Uniform random destination over all *other* sites."""

    name = "Uniform"
    sweep_max_fraction = 1.0

    def destination(self, src: int) -> int:
        n = self.layout.num_sites
        dst = self.rng.randrange(n - 1)
        return dst if dst < src else dst + 1

    def destinations(self, src: int, count: int) -> List[int]:
        n1 = self.layout.num_sites - 1
        randrange = self.rng.randrange
        return [d if d < src else d + 1
                for d in [randrange(n1) for _ in range(count)]]


class TransposeTraffic(TrafficPattern):
    """Swap the high and low halves of the site-id bits: (r, c) -> (c, r)."""

    name = "Transpose"
    sweep_max_fraction = 0.06

    def __init__(self, layout: MacrochipLayout = None, seed: int = 0) -> None:
        super().__init__(layout, seed)
        if self.layout.rows != self.layout.cols:
            # site_at() wraps modulo the grid, so a non-square layout
            # would silently fold (c, r) back onto the die instead of
            # transposing — a wrong answer, not a pattern
            raise ValueError(
                "transpose is only defined on square macrochips, got %dx%d"
                % (self.layout.rows, self.layout.cols))

    def destination(self, src: int) -> int:
        row, col = self.layout.coords(src)
        return self.layout.site_at(col, row)

    def destinations(self, src: int, count: int) -> List[int]:
        return [self.destination(src)] * count  # deterministic, no RNG


class ButterflyTraffic(TrafficPattern):
    """Swap the LSB and MSB of the site id."""

    name = "Butterfly"
    sweep_max_fraction = 0.06

    def __init__(self, layout: MacrochipLayout = None, seed: int = 0) -> None:
        super().__init__(layout, seed)
        n = self.layout.num_sites
        if n & (n - 1):
            raise ValueError("butterfly needs a power-of-two site count")
        if n < 2:
            # a 1-site layout passes the power-of-two test but has no
            # MSB to swap — the shift below would go negative and crash
            # on the first destination() call
            raise ValueError("butterfly needs at least 2 sites")
        self._msb_shift = n.bit_length() - 2

    def destination(self, src: int) -> int:
        lsb = src & 1
        msb = (src >> self._msb_shift) & 1
        if lsb == msb:
            return src
        flipped = src ^ 1 ^ (1 << self._msb_shift)
        return flipped

    def destinations(self, src: int, count: int) -> List[int]:
        return [self.destination(src)] * count  # deterministic, no RNG


#: the four torus steps, in the order NeighborTraffic has always drawn
#: them — random.Random.choice consumes one _randbelow(4) per draw either
#: way, so batched draws stay stream-identical
_NEIGHBOR_STEPS = ((0, -1), (0, 1), (-1, 0), (1, 0))


class NeighborTraffic(TrafficPattern):
    """Random pick among the four torus-wrapped grid neighbors."""

    name = "Nearest-Neighbor"
    sweep_max_fraction = 0.25

    def destination(self, src: int) -> int:
        row, col = self.layout.coords(src)
        dr, dc = self.rng.choice(_NEIGHBOR_STEPS)
        return self.layout.site_at(row + dr, col + dc)

    def destinations(self, src: int, count: int) -> List[int]:
        layout = self.layout
        row, col = layout.coords(src)
        choice = self.rng.choice
        site_at = layout.site_at
        return [site_at(row + dr, col + dc)
                for dr, dc in [choice(_NEIGHBOR_STEPS)
                               for _ in range(count)]]


class BurstyTraffic(UniformTraffic):
    """Markov on/off (burst/idle) arrivals with uniform destinations.

    Time is shaped, not destinations: while ON, packets arrive
    ``burstiness`` times faster than the offered mean; after each packet
    the source leaves the burst with probability ``1 / burst_length``
    and then sits out an exponential OFF period before the next burst.
    The OFF mean is chosen so the *long-run* mean gap stays exactly the
    offered ``mean_gap_ps`` — the same average load as uniform Poisson,
    delivered in clumps — so latency-vs-load curves stay comparable:

        mean_on  = mean_gap / burstiness
        mean_off = (mean_gap - mean_on) * burst_length

    The process is a renewal chain (each draw is ON-gap plus, with
    probability ``1/burst_length``, one OFF period) — memoryless across
    draws, so gap streams are block-size independent and a pure function
    of (seed, site) under ``reseed()``/``split()`` like every other
    pattern's.
    """

    name = "Bursty"
    sweep_max_fraction = 1.0
    uses_custom_gaps = True

    def __init__(self, layout: MacrochipLayout = None, seed: int = 0,
                 burstiness: float = 4.0, burst_length: int = 16) -> None:
        super().__init__(layout, seed)
        if burstiness < 1.0:
            raise ValueError("burstiness must be >= 1 (1 = plain Poisson)")
        if burst_length < 1:
            raise ValueError("burst length must be >= 1 packet")
        self.burstiness = float(burstiness)
        self.burst_length = int(burst_length)

    def draw_signature(self) -> tuple:
        return (self.burstiness, self.burst_length)

    def gap_draws(self, rng: random.Random, mean_gap_ps: int,
                  count: int) -> List[int]:
        mean_on = max(1.0, mean_gap_ps / self.burstiness)
        mean_off = max(1.0, (mean_gap_ps - mean_on) * self.burst_length)
        exit_p = 1.0 / self.burst_length
        expovariate = rng.expovariate
        rand = rng.random
        gaps: List[int] = []
        append = gaps.append
        for _ in range(count):
            gap = int(expovariate(1.0 / mean_on))
            if rand() < exit_p:  # burst ends: idle before the next one
                gap += int(expovariate(1.0 / mean_off))
            append(gap if gap >= 1 else 1)
        return gaps


class HotspotTraffic(TrafficPattern):
    """Uniform traffic with a configurable fraction aimed at hot sites.

    With probability ``hotspot_fraction`` a packet targets one of the
    ``hotspots`` (site 0 by default — a corner, the worst case for the
    distance-sensitive networks); otherwise it falls back to uniform
    over all other sites.  A source that *is* the drawn hotspot falls
    back to uniform too (patterns here never force self-traffic).
    """

    name = "Hotspot"
    sweep_max_fraction = 0.10

    def __init__(self, layout: MacrochipLayout = None, seed: int = 0,
                 hotspot_fraction: float = 0.2,
                 hotspots: List[int] = None) -> None:
        super().__init__(layout, seed)
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ValueError("hotspot fraction must be in [0, 1]")
        self.hotspot_fraction = float(hotspot_fraction)
        self.hotspots = list(hotspots) if hotspots else [0]
        for h in self.hotspots:
            self.layout._check_site(h)

    def draw_signature(self) -> tuple:
        return (self.hotspot_fraction, tuple(self.hotspots))

    def destination(self, src: int) -> int:
        rng = self.rng
        if rng.random() < self.hotspot_fraction:
            hot = (self.hotspots[0] if len(self.hotspots) == 1
                   else self.hotspots[rng.randrange(len(self.hotspots))])
            if hot != src:
                return hot
        n1 = self.layout.num_sites - 1
        dst = rng.randrange(n1)
        return dst if dst < src else dst + 1


class AdversarialTraffic(TrafficPattern):
    """Tornado permutation: every site sends to its torus antipode.

    ``(r, c) -> (r + rows//2, c + cols//2)`` maximizes torus distance
    for every single packet, gives each destination exactly one sender
    (no statistical spreading for WDM fan-out to exploit), and parks
    every circuit/token at the far side of the die — the adversarial
    case for all the distance- and arbitration-limited networks.
    Deterministic; consumes no RNG.
    """

    name = "Adversarial-Permutation"
    sweep_max_fraction = 0.50

    def destination(self, src: int) -> int:
        row, col = self.layout.coords(src)
        return self.layout.site_at(row + self.layout.rows // 2,
                                   col + self.layout.cols // 2)

    def destinations(self, src: int, count: int) -> List[int]:
        return [self.destination(src)] * count  # deterministic, no RNG


#: Figure 6's four panels, in the paper's order.
FIGURE6_PATTERNS = [UniformTraffic, TransposeTraffic, NeighborTraffic,
                    ButterflyTraffic]

#: heavy-traffic extensions (the scaling study's stress patterns)
HEAVY_PATTERNS = [BurstyTraffic, HotspotTraffic, AdversarialTraffic]


_PATTERN_TABLE = {
    "uniform": UniformTraffic,
    "transpose": TransposeTraffic,
    "butterfly": ButterflyTraffic,
    "neighbor": NeighborTraffic,
    "bursty": BurstyTraffic,
    "hotspot": HotspotTraffic,
    "adversarial": AdversarialTraffic,
}


def make_pattern(name: str, layout: MacrochipLayout = None,
                 seed: int = 0) -> TrafficPattern:
    """Build a pattern by its lowercase key ('uniform', 'transpose',
    'butterfly', 'neighbor', 'bursty', 'hotspot', 'adversarial')."""
    try:
        cls = _PATTERN_TABLE[name]
    except KeyError:
        raise KeyError("unknown pattern %r; choose one of %s"
                       % (name, ", ".join(sorted(_PATTERN_TABLE)))) from None
    return cls(layout, seed)


def pattern_names() -> List[str]:
    return ["uniform", "transpose", "butterfly", "neighbor",
            "bursty", "hotspot", "adversarial"]


def exponential_gaps(rng: random.Random, mean_gap_ps: int,
                     count: int) -> List[int]:
    """``count`` exponential inter-arrival gaps, clamped to >= 1 ps.

    Consumes ``rng`` exactly as ``count`` sequential
    ``max(1, int(rng.expovariate(1.0 / mean_gap_ps)))`` calls would —
    the open-loop sweep's historical draw — so batched prefetching keeps
    injection schedules bit-identical to one-at-a-time draws.
    """
    lambd = 1.0 / mean_gap_ps
    expovariate = rng.expovariate
    gaps = []
    append = gaps.append
    for _ in range(count):
        gap = int(expovariate(lambd))
        append(gap if gap >= 1 else 1)
    return gaps
