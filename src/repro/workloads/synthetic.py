"""Synthetic traffic patterns (paper Table 3).

Each pattern maps a source site to a destination site, possibly randomly:

* **uniform** — a fresh random destination for every packet;
* **transpose** — the first half of the site-id bits swaps with the second
  half (i.e. (row, col) -> (col, row));
* **butterfly** — the LSB and MSB of the site id swap (half of all sites
  map to themselves, which the paper serves over the single-cycle
  intra-site loopback);
* **neighbor** — a random pick among the four grid neighbors (torus wrap,
  so every site always has four).

Patterns are objects (not bare functions) so they carry their paper name,
their own RNG for reproducibility, and the bit-twiddling helpers tests can
probe directly.
"""

from __future__ import annotations

import copy
import random
from typing import List

from ..photonics.layout import MacrochipLayout


class TrafficPattern:
    """Base class: yields a destination for each (source, packet)."""

    #: name used in figures/tables
    name = "abstract"
    #: paper's Figure 6 sweeps stop at different loads per pattern
    sweep_max_fraction = 1.0

    def __init__(self, layout: MacrochipLayout = None, seed: int = 0) -> None:
        self.layout = layout or MacrochipLayout()
        self.rng = random.Random(seed)

    def destination(self, src: int) -> int:
        raise NotImplementedError

    def destinations(self, src: int, count: int) -> List[int]:
        """``count`` consecutive destination draws for ``src``.

        Guaranteed to consume the pattern's RNG exactly as ``count``
        sequential :meth:`destination` calls would, so batched and
        unbatched callers see the same per-site sequences (the sweep
        harness relies on this to stay bit-identical while prefetching
        draws in blocks).  Subclasses override for speed, never for
        different draws.
        """
        return [self.destination(src) for _ in range(count)]

    def reseed(self, seed: int) -> None:
        self.rng.seed(seed)

    def split(self, seed: int) -> "TrafficPattern":
        """A shallow copy with an independent RNG stream.

        The sweep harness gives every injection site its own split so a
        site's destination draws depend only on (seed, site) — never on
        how other sites' events interleave.  Sharing ``layout`` (and any
        other derived fields) is safe: patterns only read them.
        """
        clone = copy.copy(self)
        clone.rng = random.Random(seed)
        return clone


class UniformTraffic(TrafficPattern):
    """Uniform random destination over all *other* sites."""

    name = "Uniform"
    sweep_max_fraction = 1.0

    def destination(self, src: int) -> int:
        n = self.layout.num_sites
        dst = self.rng.randrange(n - 1)
        return dst if dst < src else dst + 1

    def destinations(self, src: int, count: int) -> List[int]:
        n1 = self.layout.num_sites - 1
        randrange = self.rng.randrange
        return [d if d < src else d + 1
                for d in [randrange(n1) for _ in range(count)]]


class TransposeTraffic(TrafficPattern):
    """Swap the high and low halves of the site-id bits: (r, c) -> (c, r)."""

    name = "Transpose"
    sweep_max_fraction = 0.06

    def destination(self, src: int) -> int:
        row, col = self.layout.coords(src)
        return self.layout.site_at(col, row)

    def destinations(self, src: int, count: int) -> List[int]:
        return [self.destination(src)] * count  # deterministic, no RNG


class ButterflyTraffic(TrafficPattern):
    """Swap the LSB and MSB of the site id."""

    name = "Butterfly"
    sweep_max_fraction = 0.06

    def __init__(self, layout: MacrochipLayout = None, seed: int = 0) -> None:
        super().__init__(layout, seed)
        n = self.layout.num_sites
        if n & (n - 1):
            raise ValueError("butterfly needs a power-of-two site count")
        self._msb_shift = n.bit_length() - 2

    def destination(self, src: int) -> int:
        lsb = src & 1
        msb = (src >> self._msb_shift) & 1
        if lsb == msb:
            return src
        flipped = src ^ 1 ^ (1 << self._msb_shift)
        return flipped

    def destinations(self, src: int, count: int) -> List[int]:
        return [self.destination(src)] * count  # deterministic, no RNG


#: the four torus steps, in the order NeighborTraffic has always drawn
#: them — random.Random.choice consumes one _randbelow(4) per draw either
#: way, so batched draws stay stream-identical
_NEIGHBOR_STEPS = ((0, -1), (0, 1), (-1, 0), (1, 0))


class NeighborTraffic(TrafficPattern):
    """Random pick among the four torus-wrapped grid neighbors."""

    name = "Nearest-Neighbor"
    sweep_max_fraction = 0.25

    def destination(self, src: int) -> int:
        row, col = self.layout.coords(src)
        dr, dc = self.rng.choice(_NEIGHBOR_STEPS)
        return self.layout.site_at(row + dr, col + dc)

    def destinations(self, src: int, count: int) -> List[int]:
        layout = self.layout
        row, col = layout.coords(src)
        choice = self.rng.choice
        site_at = layout.site_at
        return [site_at(row + dr, col + dc)
                for dr, dc in [choice(_NEIGHBOR_STEPS)
                               for _ in range(count)]]


#: Figure 6's four panels, in the paper's order.
FIGURE6_PATTERNS = [UniformTraffic, TransposeTraffic, NeighborTraffic,
                    ButterflyTraffic]


def make_pattern(name: str, layout: MacrochipLayout = None,
                 seed: int = 0) -> TrafficPattern:
    """Build a pattern by its lowercase key ('uniform', 'transpose',
    'butterfly', 'neighbor')."""
    table = {
        "uniform": UniformTraffic,
        "transpose": TransposeTraffic,
        "butterfly": ButterflyTraffic,
        "neighbor": NeighborTraffic,
    }
    try:
        cls = table[name]
    except KeyError:
        raise KeyError("unknown pattern %r; choose one of %s"
                       % (name, ", ".join(sorted(table)))) from None
    return cls(layout, seed)


def pattern_names() -> List[str]:
    return ["uniform", "transpose", "butterfly", "neighbor"]


def exponential_gaps(rng: random.Random, mean_gap_ps: int,
                     count: int) -> List[int]:
    """``count`` exponential inter-arrival gaps, clamped to >= 1 ps.

    Consumes ``rng`` exactly as ``count`` sequential
    ``max(1, int(rng.expovariate(1.0 / mean_gap_ps)))`` calls would —
    the open-loop sweep's historical draw — so batched prefetching keeps
    injection schedules bit-identical to one-at-a-time draws.
    """
    lambd = 1.0 / mean_gap_ps
    expovariate = rng.expovariate
    gaps = []
    append = gaps.append
    for _ in range(count):
        gap = int(expovariate(lambd))
        append(gap if gap >= 1 else 1)
    return gaps
