"""Coherence sharing mixes (paper section 5).

The synthetic benchmarks are driven by two coherence mixes:

* **LS (Less Sharing)** — 90% of coherence requests find no sharers for
  the cache block (the remaining 10% find one);
* **MS (More Sharing)** — 40% of requests find three sharers.

A request that "finds sharers" costs real network work: a read finds a
remote owner that must supply data cache-to-cache, and a write triggers
an invalidation/acknowledgment fan-out of small control messages — which
is why the MS mix punishes arbitrated networks so badly (section 6.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class SharingMix:
    """Probability that a request finds sharers, and how many."""

    name: str
    sharer_probability: float
    sharer_count: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.sharer_probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.sharer_count < 0:
            raise ValueError("sharer count must be non-negative")

    def draw_sharers(self, rng: random.Random, requester: int,
                     num_sites: int) -> Tuple[int, ...]:
        """Sample the remote sites holding copies for one request.

        Sharers are distinct sites other than the requester.
        """
        if rng.random() >= self.sharer_probability:
            return ()
        count = min(self.sharer_count, num_sites - 1)
        sharers = rng.sample(
            [s for s in range(num_sites) if s != requester], count)
        return tuple(sorted(sharers))


#: Less Sharing: 90% of requests have no sharers (10% find one).
LESS_SHARING = SharingMix("LS", sharer_probability=0.10, sharer_count=1)
#: More Sharing: 40% of requests find three sharers.
MORE_SHARING = SharingMix("MS", sharer_probability=0.40, sharer_count=3)


def mix_by_name(name: str) -> SharingMix:
    table = {"LS": LESS_SHARING, "MS": MORE_SHARING}
    try:
        return table[name.upper()]
    except KeyError:
        raise KeyError("unknown sharing mix %r (use 'LS' or 'MS')"
                       % name) from None
