"""Workloads: synthetic traffic, coherence mixes, application kernels,
and the closed-loop trace replay."""

from .replay import ReplayResult, TraceReplayer, replay
from .sharing import LESS_SHARING, MORE_SHARING, SharingMix, mix_by_name
from .synthetic import (
    ButterflyTraffic,
    NeighborTraffic,
    TrafficPattern,
    TransposeTraffic,
    UniformTraffic,
    make_pattern,
)

__all__ = [
    "TrafficPattern",
    "UniformTraffic",
    "TransposeTraffic",
    "ButterflyTraffic",
    "NeighborTraffic",
    "make_pattern",
    "SharingMix",
    "LESS_SHARING",
    "MORE_SHARING",
    "mix_by_name",
    "replay",
    "TraceReplayer",
    "ReplayResult",
]

from .message_passing import (  # noqa: E402
    MESSAGE_PASSING_WORKLOADS,
    MessagePassingRunner,
    MessagePassingResult,
    run_message_passing,
)

__all__ += [
    "MESSAGE_PASSING_WORKLOADS",
    "MessagePassingRunner",
    "MessagePassingResult",
    "run_message_passing",
]
