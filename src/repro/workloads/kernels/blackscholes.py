"""Blackscholes kernel model (PARSEC ``blackscholes``, simlarge).

Option pricing is embarrassingly parallel: each core streams once over
its slice of the option array (read misses on cold lines homed where the
initial distribution placed them — striped across the machine), runs a
long closed-form computation per option, and writes the result to a
private output slice.  There is essentially no inter-core sharing, so
coherence traffic is plain data movement at a modest miss rate.
"""

from __future__ import annotations

from typing import Iterator

from ._base import KernelBase, line_addr
from ...cpu.trace import MemoryRef
from ...macrochip.config import MacrochipConfig


class BlackscholesKernel(KernelBase):
    """Streaming reads of striped input, private result writes."""

    name = "Blackscholes"
    description = "PARSEC blackscholes: parallel option pricing, no sharing"
    refs_per_core = 2000
    seed = 303

    #: option records (several fields) read per priced option
    reads_per_option = 3
    #: closed-form pricing work per option
    compute_gap = 18

    def _stream(self, core: int, config: MacrochipConfig) -> Iterator[MemoryRef]:
        site = self._site_of(core, config)
        n_sites = config.num_sites
        options = self.refs_per_core // (self.reads_per_option + 1)
        in_base = core * 8192
        out_base = core * 8192
        for opt in range(options):
            # the input array is striped across the machine by the serial
            # initialization, so option lines land on arbitrary homes
            in_block = in_base + opt
            home = (core + opt) % n_sites
            for r in range(self.reads_per_option):
                yield MemoryRef(self.compute_gap if r == 0 else 2,
                                line_addr(home, in_block, n_sites) + r * 16)
            # result goes to a private, own-site output slice
            yield MemoryRef(self.compute_gap,
                            line_addr(site, 100000 + out_base + opt // 8,
                                      n_sites),
                            write=True)
