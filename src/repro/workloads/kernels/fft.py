"""FFT kernel model (SPLASH-2 ``fft`` — extension workload).

Not part of the paper's six evaluated kernels; included because the
six-step FFT is *the* classic all-to-all stress test for multiprocessor
interconnects and slots naturally into the same harness.

Structure per iteration:

1. **local 1D FFTs** over the core's row block — streaming reads/writes
   of private data (own-site homes, cache-resident after first touch);
2. **global matrix transpose** — every core writes its sub-blocks into
   every other processor's partition: a dense, bursty all-to-all of
   unique lines (write misses, ownership migration, no read sharing);
3. a second local FFT phase over the received data.

The transpose phase is bursty and synchronized across cores (all cores
hit the network at once), unlike radix's more spread-out key exchange —
which is exactly why FFT is harsher on arbitrated networks.
"""

from __future__ import annotations

from typing import Iterator

from ._base import KernelBase, line_addr
from ...cpu.trace import MemoryRef
from ...macrochip.config import MacrochipConfig


class FftKernel(KernelBase):
    """Six-step FFT: local butterflies + global transpose."""

    name = "FFT"
    description = "SPLASH-2 FFT: local butterflies, bursty global transpose"
    refs_per_core = 2000
    seed = 707

    #: complex points (16 B) per 64 B line
    points_per_line = 4
    #: references per phase, as fractions
    local_fraction = 0.6  # split across the two local phases
    transpose_gap = 2  # back-to-back during the transpose burst
    local_gap = 8  # butterflies are FLOP-heavy

    def _stream(self, core: int, config: MacrochipConfig) -> Iterator[MemoryRef]:
        rng = self._rng(core)
        site = self._site_of(core, config)
        n_sites = config.num_sites
        n_cores = config.num_cores
        total = self.refs_per_core
        n_local = int(total * self.local_fraction / 2)
        n_transpose = total - 2 * n_local
        base = core * 16384

        # phase 1: local FFT over the private row block
        for i in range(n_local):
            block = base + i // self.points_per_line
            yield MemoryRef(self.local_gap,
                            line_addr(site, block, n_sites),
                            write=bool(i % 2))

        # phase 2: global transpose — write sub-blocks round-robin into
        # every other core's partition (unique lines, migrating ownership)
        for i in range(n_transpose):
            peer = (core + 1 + i) % n_cores
            peer_site = peer // config.cores_per_site
            block = 300000 + peer * 8192 + core * 16 + i // n_cores
            yield MemoryRef(self.transpose_gap,
                            line_addr(peer_site, block, n_sites),
                            write=True)

        # phase 3: local FFT over the received (transposed) data
        for i in range(n_local):
            block = 300000 + core * 8192 + rng.randrange(2048)
            yield MemoryRef(self.local_gap,
                            line_addr(site, block, n_sites))
