"""Swaptions kernel model (PARSEC ``swaptions``, simlarge).

Monte-Carlo swaption pricing: each core prices its swaptions by
simulating many HJM interest-rate paths.  Every simulated path streams
through freshly generated rate matrices — a large, cache-hostile private
footprint — while all cores repeatedly consult the shared yield-curve
and swaption-descriptor blocks, and accumulators for each swaption are
updated by the cores pricing it (write-shared lines with several
sharers to invalidate).

This mix — the highest miss rate of the application kernels plus
invalidation fan-out on the accumulators — makes swaptions the
network-heaviest app kernel; the paper records its largest point-to-point
win there (8.3x over the circuit-switched torus, 3x over the token ring).
"""

from __future__ import annotations

from typing import Iterator

from ._base import KernelBase, line_addr
from ...cpu.trace import MemoryRef
from ...macrochip.config import MacrochipConfig


class SwaptionsKernel(KernelBase):
    """Streaming Monte-Carlo paths + write-shared accumulators."""

    name = "Swaptions"
    description = "PARSEC swaptions: HJM Monte-Carlo, shared accumulators"
    refs_per_core = 2400
    seed = 606

    #: shared read-only market data (yield curve, descriptors)
    shared_input_lines = 128
    #: swaption accumulators, each priced by a team of cores
    accumulators = 512
    team_size = 4
    compute_gap = 8

    def _stream(self, core: int, config: MacrochipConfig) -> Iterator[MemoryRef]:
        rng = self._rng(core)
        n_sites = config.num_sites
        n_cores = config.num_cores
        path_base = core * 65536
        path_cursor = 0
        # swaption pricing teams stride across the machine (the work queue
        # hands consecutive swaptions to whichever cores are free), so an
        # accumulator's sharers live on different sites
        team_stride = max(1, n_cores // self.team_size)
        acc = (core % team_stride) % self.accumulators
        for i in range(self.refs_per_core):
            roll = rng.random()
            if roll < 0.55:
                # fresh Monte-Carlo path state: streaming, never reused.
                # PARSEC allocates these centrally, so first-touch homes
                # them across the machine, not on the pricing core's site.
                path_cursor += 1
                yield MemoryRef(self.compute_gap,
                                line_addr((core + path_cursor) % n_sites,
                                          path_base + path_cursor, n_sites),
                                write=bool(path_cursor % 2))
            elif roll < 0.80:
                # shared market data: read by everyone, striped homes
                block = rng.randrange(self.shared_input_lines)
                yield MemoryRef(self.compute_gap,
                                line_addr(block % n_sites,
                                          900000 + block // n_sites, n_sites))
            else:
                # accumulator shared by this core's cross-site team:
                # ping-pongs among members, invalidating the others
                yield MemoryRef(self.compute_gap,
                                line_addr(acc % n_sites,
                                          950000 + acc // n_sites, n_sites),
                                write=True)
