"""Fluidanimate kernel models (PARSEC ``fluidanimate``, simlarge).

The paper evaluates two of its phases separately:

* **densities** — for every particle, read the particles in neighboring
  grid cells and accumulate a density: read-dominated, with reads
  crossing into cells owned by spatially adjacent processors;
* **forces** — symmetric force computation that *writes* to both
  particles of a pair, so boundary cells are written by two owners in
  turn: migratory lines with invalidation traffic.

The spatial decomposition maps naturally onto the macrochip: each site
owns a block of the fluid grid, so cross-boundary accesses target grid
neighbors — mostly the four row/column neighbors (direct links in the
limited point-to-point network) plus the diagonal corners of the 3x3
stencil, which are *not* row/column peers and must be forwarded.

Between timesteps each owner rewrites its boundary cells and each
neighbor re-reads them, so the boundary lines ping-pong between owner
(Modified) and reader (Shared) every iteration — the producer-consumer
invalidate/refetch cycle that keeps the network busy for the whole run.
"""

from __future__ import annotations

from typing import Iterator, List

from ._base import KernelBase, line_addr
from ...cpu.trace import MemoryRef
from ...macrochip.config import MacrochipConfig


class _FluidanimateBase(KernelBase):
    """Shared scaffolding: interior cells, owned boundary cells, and halo
    reads of the neighbors' boundary cells."""

    #: fraction of references that read a neighbor's boundary (halo)
    halo_read_fraction = 0.30
    #: fraction of references that update this site's own boundary
    boundary_write_fraction = 0.15
    #: of the halo references, how many hit a *diagonal* neighbor
    diagonal_fraction = 0.15
    #: distinct boundary lines shared with each neighbor
    halo_lines = 96
    compute_gap = 6
    #: interior (unshared) working set per core, in lines
    interior_lines = 224

    def _axis_neighbors(self, site: int, config: MacrochipConfig) -> List[int]:
        layout = config.layout
        row, col = layout.coords(site)
        return [layout.site_at(row, col - 1), layout.site_at(row, col + 1),
                layout.site_at(row - 1, col), layout.site_at(row + 1, col)]

    def _diagonal_neighbors(self, site: int,
                            config: MacrochipConfig) -> List[int]:
        layout = config.layout
        row, col = layout.coords(site)
        return [layout.site_at(row - 1, col - 1),
                layout.site_at(row - 1, col + 1),
                layout.site_at(row + 1, col - 1),
                layout.site_at(row + 1, col + 1)]

    def _boundary_addr(self, rng, owner: int, other: int,
                       config: MacrochipConfig) -> int:
        """A line in the boundary region *owned* by ``owner`` and read by
        ``other``; homed on the owner's site."""
        region = owner * config.num_sites + other
        block = 200000 + region * self.halo_lines \
            + rng.randrange(self.halo_lines)
        return line_addr(owner, block, config.num_sites)

    def _pick_neighbor(self, rng, site: int, config: MacrochipConfig) -> int:
        if rng.random() < self.diagonal_fraction:
            return rng.choice(self._diagonal_neighbors(site, config))
        return rng.choice(self._axis_neighbors(site, config))

    def _halo_read(self, rng, site: int, config: MacrochipConfig) -> MemoryRef:
        neighbor = self._pick_neighbor(rng, site, config)
        return MemoryRef(self.compute_gap,
                         self._boundary_addr(rng, neighbor, site, config))

    def _boundary_write(self, rng, site: int,
                        config: MacrochipConfig) -> MemoryRef:
        neighbor = self._pick_neighbor(rng, site, config)
        return MemoryRef(self.compute_gap,
                         self._boundary_addr(rng, site, neighbor, config),
                         write=True)

    def _interior_ref(self, rng, core: int, site: int,
                      config: MacrochipConfig, write: bool) -> MemoryRef:
        block = core * 1024 + rng.randrange(self.interior_lines)
        return MemoryRef(self.compute_gap,
                         line_addr(site, block, config.num_sites),
                         write=write)

    def _stream(self, core: int, config: MacrochipConfig) -> Iterator[MemoryRef]:
        rng = self._rng(core)
        site = self._site_of(core, config)
        for _ in range(self.refs_per_core):
            roll = rng.random()
            if roll < self.halo_read_fraction:
                yield self._halo_read(rng, site, config)
            elif roll < self.halo_read_fraction + self.boundary_write_fraction:
                yield self._boundary_write(rng, site, config)
            else:
                yield self._interior_ref(rng, core, site, config,
                                         write=rng.random() < 0.3)


class FluidanimateDensitiesKernel(_FluidanimateBase):
    """Read-dominated neighbor-cell density accumulation: each timestep
    re-reads boundary cells the neighbors rewrote."""

    name = "Densities"
    description = "PARSEC fluidanimate densities: halo reads, owner rewrites"
    refs_per_core = 2000
    seed = 404
    halo_read_fraction = 0.35
    boundary_write_fraction = 0.12


class FluidanimateForcesKernel(_FluidanimateBase):
    """Write-heavy symmetric force updates: boundary lines migrate between
    the two sites of each pair every timestep."""

    name = "Forces"
    description = "PARSEC fluidanimate forces: migratory halo writes"
    refs_per_core = 2000
    seed = 505
    halo_read_fraction = 0.22
    boundary_write_fraction = 0.30
