"""Application-kernel workload models (SPLASH-2 / PARSEC substitutes).

See DESIGN.md section 4 for the substitution rationale: these are
deterministic address-stream generators with the published miss-rate,
sharing, and communication-pattern characteristics of the real kernels,
run through the real cache + MOESI directory model.
"""

from .barnes import BarnesKernel
from .fft import FftKernel
from .blackscholes import BlackscholesKernel
from .fluidanimate import FluidanimateDensitiesKernel, FluidanimateForcesKernel
from .lu import LuKernel
from .radix import RadixKernel
from .swaptions import SwaptionsKernel

#: Extension kernels beyond the paper's six (see their module docs).
EXTENSION_KERNELS = [FftKernel, LuKernel]

#: Figure 7's six application columns, in the paper's order.
FIGURE7_KERNELS = [
    RadixKernel,
    BarnesKernel,
    BlackscholesKernel,
    FluidanimateDensitiesKernel,
    FluidanimateForcesKernel,
    SwaptionsKernel,
]

__all__ = [
    "RadixKernel",
    "FftKernel",
    "LuKernel",
    "EXTENSION_KERNELS",
    "BarnesKernel",
    "BlackscholesKernel",
    "FluidanimateDensitiesKernel",
    "FluidanimateForcesKernel",
    "SwaptionsKernel",
    "FIGURE7_KERNELS",
]
