"""LU decomposition kernel model (SPLASH-2 ``lu`` — extension workload).

Not part of the paper's six evaluated kernels; included as a second
extension because blocked LU has the *opposite* communication signature
to FFT: instead of a bursty all-to-all it broadcasts one pivot block per
step to an entire row/column of consumers — a producer/many-consumers
read-sharing pattern where the directory accumulates large sharer lists
and each pivot update triggers a wide invalidation fan-out.

Structure per outer iteration k:

1. the *owner* of diagonal block (k, k) factorizes it (private writes);
2. every core owning a block in row/column k reads the pivot block
   (GetS fan-in to the owner — cache-to-cache supply, many sharers);
3. interior blocks are updated in place (private writes) using the
   perimeter blocks (remote reads).
"""

from __future__ import annotations

from typing import Iterator

from ._base import KernelBase, line_addr
from ...cpu.trace import MemoryRef
from ...macrochip.config import MacrochipConfig


class LuKernel(KernelBase):
    """Blocked LU: pivot-block broadcast + interior updates."""

    name = "LU"
    description = "SPLASH-2 LU: pivot broadcast, wide read sharing"
    refs_per_core = 2000
    seed = 808

    #: lines per matrix block (a 32x32 block of doubles = 128 lines;
    #: kept small so pivot reads stay network-visible)
    block_lines = 32
    #: outer iterations simulated
    steps = 12
    compute_gap = 10

    def _stream(self, core: int, config: MacrochipConfig) -> Iterator[MemoryRef]:
        rng = self._rng(core)
        site = self._site_of(core, config)
        n_sites = config.num_sites
        refs_left = self.refs_per_core
        per_step = max(1, self.refs_per_core // self.steps)
        private_base = core * 32768

        for k in range(self.steps):
            if refs_left <= 0:
                return
            # the pivot block of step k lives on a rotating owner site
            pivot_site = k % n_sites
            pivot_base = 400000 + k * self.block_lines
            budget = min(per_step, refs_left)
            refs_left -= budget
            for i in range(budget):
                roll = rng.random()
                if site == pivot_site and roll < 0.25:
                    # owner factorizes the pivot block in place
                    yield MemoryRef(self.compute_gap,
                                    line_addr(pivot_site,
                                              pivot_base
                                              + rng.randrange(self.block_lines),
                                              n_sites),
                                    write=True)
                elif roll < 0.40:
                    # consumer reads the pivot block (wide sharing)
                    yield MemoryRef(self.compute_gap,
                                    line_addr(pivot_site,
                                              pivot_base
                                              + rng.randrange(self.block_lines),
                                              n_sites))
                else:
                    # interior update of this core's own blocks
                    block = private_base + rng.randrange(1024)
                    yield MemoryRef(self.compute_gap,
                                    line_addr(site, block, n_sites),
                                    write=roll < 0.75)
