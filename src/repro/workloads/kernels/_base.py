"""Shared infrastructure for the application-kernel workload models.

The paper drives its CPU simulator with instruction traces of compiled
SPLASH-2 and PARSEC kernels.  We cannot run those binaries (see DESIGN.md
section 4), so each kernel here is a *deterministic address-stream
generator* tuned to the published characteristics that matter to the
network comparison: L2 miss rate, read/write mix, sharing degree, and the
spatial communication pattern.  The streams run through the real cache +
MOESI directory model, so all sharer/owner information in the resulting
traces comes from actual protocol state.

Address-space convention: the home site of a line is
``(line_number mod num_sites)`` (see :class:`repro.cpu.directory.Directory`),
so :func:`line_addr` lets kernels place data on chosen home sites:
private data on the core's own site, halo cells on grid neighbors, shared
structures striped across the machine.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Sequence

from ...cpu.trace import MemoryRef
from ...macrochip.config import MacrochipConfig


#: lines per home-interleave page (must match Directory.PAGE_LINES)
PAGE_LINES = 64


def line_addr(home_site: int, block: int, num_sites: int,
              line_bytes: int = 64) -> int:
    """Byte address of the ``block``-th line homed at ``home_site``.

    Homes interleave at page (64-line) granularity, so consecutive blocks
    of the same home fill a page before skipping to that home's next
    page; the resulting addresses spread evenly over cache sets.
    """
    if home_site < 0 or home_site >= num_sites:
        raise ValueError("home site %d out of range" % home_site)
    if block < 0:
        raise ValueError("block must be non-negative")
    page, offset = divmod(block, PAGE_LINES)
    line_number = (page * num_sites + home_site) * PAGE_LINES + offset
    return line_number * line_bytes


class KernelBase:
    """Base class: names, sizing, and the per-core stream interface."""

    #: display name used in Figures 7-10
    name = "abstract"
    #: short description of what the real benchmark does
    description = ""
    #: per-core reference budget (scaled 'simlarge'-equivalent)
    refs_per_core = 2000
    #: deterministic base seed; per-core seeds derive from it
    seed = 42

    def __init__(self, refs_per_core: int = None, seed: int = None) -> None:
        if refs_per_core is not None:
            if refs_per_core < 1:
                raise ValueError("refs_per_core must be positive")
            self.refs_per_core = refs_per_core
        if seed is not None:
            self.seed = seed

    # -- WorkloadKernel protocol -------------------------------------------

    def core_streams(self, config: MacrochipConfig) -> List[Iterator[MemoryRef]]:
        return [self._stream(core, config)
                for core in range(config.num_cores)]

    # -- subclass hook -------------------------------------------------------

    def _stream(self, core: int, config: MacrochipConfig) -> Iterator[MemoryRef]:
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------------

    def _rng(self, core: int) -> random.Random:
        return random.Random((self.seed << 20) ^ core)

    @staticmethod
    def _site_of(core: int, config: MacrochipConfig) -> int:
        return core // config.cores_per_site


def stream_over(addresses: Sequence[int], gaps: Sequence[int],
                writes: Sequence[bool]) -> Iterator[MemoryRef]:
    """Zip parallel sequences into MemoryRefs (test helper)."""
    for addr, gap, write in zip(addresses, gaps, writes):
        yield MemoryRef(gap, addr, write)
