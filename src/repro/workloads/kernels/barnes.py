"""Barnes-Hut kernel model (SPLASH-2 ``barnes``, 16K particles).

The force-computation phase walks a shared octree: the upper tree levels
are read by every core and stay resident in every L2 (read-shared, high
hit rate), deeper cells are read by subsets of cores, and each core
updates only its own bodies (private writes).  The working set fits
caches well, so the L2 miss rate is low — the paper notes Barnes "does
not stress any of the networks, due to a relatively low L2 cache miss
rate", which is why its speedup spread is small (section 6.2).

Model: a small hot shared set (hits after warmup), a larger cold shared
set striped across the machine (occasional read misses that accumulate
many sharers), and private body updates, separated by long compute gaps.
"""

from __future__ import annotations

from typing import Iterator

from ._base import KernelBase, line_addr
from ...cpu.trace import MemoryRef
from ...macrochip.config import MacrochipConfig


class BarnesKernel(KernelBase):
    """Read-shared tree walks with private body updates, low miss rate."""

    name = "Barnes"
    description = "SPLASH-2 Barnes-Hut: shared octree walk, private bodies"
    refs_per_core = 2000
    seed = 202

    #: upper-tree lines every core re-reads constantly (stays cached)
    hot_tree_lines = 64
    #: deeper-tree lines, striped over all sites (cold read misses)
    cold_tree_lines = 20000
    #: compute gap between references (force evaluation is FLOP-heavy)
    compute_gap = 40

    def _stream(self, core: int, config: MacrochipConfig) -> Iterator[MemoryRef]:
        rng = self._rng(core)
        site = self._site_of(core, config)
        n_sites = config.num_sites
        private_base = core * 2048
        for i in range(self.refs_per_core):
            roll = rng.random()
            if roll < 0.55:
                # hot upper tree: same few lines, cached after warmup
                block = rng.randrange(self.hot_tree_lines)
                yield MemoryRef(self.compute_gap,
                                line_addr(block % n_sites, block // n_sites,
                                          n_sites))
            elif roll < 0.80:
                # deep tree cell: cold, read-shared across cores
                block = rng.randrange(self.cold_tree_lines)
                yield MemoryRef(self.compute_gap,
                                line_addr(block % n_sites, 512 + block // n_sites,
                                          n_sites))
            else:
                # private body update (own-site home, small working set)
                block = private_base + rng.randrange(256)
                yield MemoryRef(self.compute_gap,
                                line_addr(site, 40000 + block, n_sites),
                                write=True)
