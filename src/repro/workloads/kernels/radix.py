"""Radix sort kernel model (SPLASH-2 ``radix``, 32M integers).

The real kernel alternates three phases per digit pass:

1. **local histogram** — each core streams through its private key
   partition (sequential lines homed on its own site; one cold miss per
   line, then hits for the remaining keys in the line);
2. **global key permutation** — every core scatters its keys to buckets
   owned by other processors, an all-to-all pattern of remote writes
   (write misses to lines homed roughly uniformly across the machine);
3. **local copy-back** — reads of the freshly permuted partition, again
   mostly private.

This gives radix its signature: a high L2 miss rate dominated by
write misses with essentially no read-sharing, all-to-all in space —
bandwidth-bound traffic the point-to-point network digests well.
"""

from __future__ import annotations

from typing import Iterator

from ._base import KernelBase, line_addr
from ...cpu.trace import MemoryRef
from ...macrochip.config import MacrochipConfig


class RadixKernel(KernelBase):
    """All-to-all permutation writes with private histogram phases."""

    name = "Radix"
    description = "SPLASH-2 radix sort: histogram + all-to-all key exchange"
    refs_per_core = 2400
    seed = 101

    #: keys (4 B) per 64 B line
    keys_per_line = 16
    #: fraction of references in each phase
    histogram_fraction = 0.4
    exchange_fraction = 0.4  # remainder is the copy-back read phase

    def _stream(self, core: int, config: MacrochipConfig) -> Iterator[MemoryRef]:
        rng = self._rng(core)
        site = self._site_of(core, config)
        n_sites = config.num_sites
        total = self.refs_per_core
        n_hist = int(total * self.histogram_fraction)
        n_exch = int(total * self.exchange_fraction)
        n_copy = total - n_hist - n_exch

        # private partition: distinct block range per core on its own site
        base_block = core * 4096

        # phase 1: stream reads over the private partition; every
        # keys_per_line-th read starts a new line (a cold miss)
        for i in range(n_hist):
            block = base_block + i // self.keys_per_line
            yield MemoryRef(gap_instructions=5,
                            addr=line_addr(site, block, n_sites)
                            + (i % self.keys_per_line) * 4)

        # phase 2: scatter writes to buckets across the whole machine;
        # bucket lines are core-unique so ownership simply migrates
        for i in range(n_exch):
            dest = rng.randrange(n_sites)
            block = base_block + 8192 + i
            yield MemoryRef(gap_instructions=7,
                            addr=line_addr(dest, block, n_sites),
                            write=True)

        # phase 3: read back the permuted partition (fresh lines)
        for i in range(n_copy):
            block = base_block + 20000 + i // self.keys_per_line
            yield MemoryRef(gap_instructions=5,
                            addr=line_addr(site, block, n_sites)
                            + (i % self.keys_per_line) * 4)
