"""Synthetic coherence-traffic benchmarks for Figures 7 and 8.

The paper's synthetic benchmarks ("All-to-all", "Transpose",
"Transpose-MS", "Neighbor", "Butterfly") drive the coherence protocol at
a rate equivalent to a 4% L2-miss-per-instruction rate, with the home of
each missed line chosen by the message pattern and the sharer population
drawn from an LS or MS mix (section 5).

This module builds those :class:`~repro.cpu.trace.CoherenceTrace` objects
directly — no cache simulation needed, since the miss rate and sharing
are the benchmark's *definition* — for the closed-loop network replay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from .sharing import LESS_SHARING, SharingMix
from .synthetic import TrafficPattern, UniformTraffic
from ..cpu.coherence import CoherenceOp, OpKind
from ..cpu.trace import CoherenceTrace
from ..macrochip.config import MacrochipConfig


@dataclass(frozen=True)
class SyntheticCoherenceSpec:
    """Parameters of one synthetic coherence benchmark."""

    name: str
    miss_rate: float = 0.04  # L2 misses per instruction (section 5)
    write_fraction: float = 0.4
    ops_per_core: int = 150
    seed: int = 2010


def generate_synthetic_trace(spec: SyntheticCoherenceSpec,
                             pattern: TrafficPattern,
                             mix: SharingMix,
                             config: MacrochipConfig) -> CoherenceTrace:
    """Build the per-core coherence trace for one synthetic benchmark.

    Each operation's home site follows the pattern (uniform draws fresh
    destinations; transpose/butterfly are fixed maps; neighbor picks a
    random grid neighbor).  Reads that find sharers are served
    cache-to-cache by a remote owner; writes that find sharers pay the
    invalidation/acknowledgment fan-out.
    """
    if not 0.0 < spec.miss_rate <= 1.0:
        raise ValueError("miss rate must be in (0, 1]")
    rng = random.Random(spec.seed)
    pattern.reseed(spec.seed ^ 0xC0FFEE)
    mean_gap = 1.0 / spec.miss_rate
    trace = CoherenceTrace("%s-%s" % (spec.name, mix.name),
                           config.num_cores)
    n = config.num_sites
    for core in range(config.num_cores):
        site = core // config.cores_per_site
        ops = trace.ops_by_core[core]
        for _ in range(spec.ops_per_core):
            gap = max(1, int(rng.expovariate(1.0 / mean_gap)))
            home = pattern.destination(site)
            is_write = rng.random() < spec.write_fraction
            sharers = mix.draw_sharers(rng, site, n)
            if is_write:
                kind = OpKind.GET_M
                owner = None
                inv = sharers  # every sharer must be invalidated
            else:
                kind = OpKind.GET_S
                # a read that finds a sharer is supplied cache-to-cache
                owner = sharers[0] if sharers else None
                inv = ()
            ops.append(CoherenceOp(
                core=core, gap_cycles=gap, kind=kind, requester=site,
                home=home, owner=owner, sharers=inv, line=0))
            trace.total_instructions += gap
            trace.l2_misses += 1
            trace.total_references += 1
    return trace


#: The five synthetic columns of Figure 7, in the paper's order:
#: (display name, pattern key, mix name)
FIGURE7_SYNTHETIC: List[tuple] = [
    ("All-to-all", "uniform", "LS"),
    ("Transpose", "transpose", "LS"),
    ("Transpose-MS", "transpose", "MS"),
    ("Neighbor", "neighbor", "LS"),
    ("Butterfly", "butterfly", "LS"),
]
