"""Message-passing workload models (the paper's stated future work).

Section 8: "Future work will evaluate network architectures for message
passing workloads."  These kernels drive the networks with explicit
MPI-style communication phases instead of cache-coherence traffic: each
site runs a communicating process that alternates compute with sends,
and blocks on collective completion barriers the way bulk-synchronous
codes do.

Implemented collectives/patterns:

* ``ring_shift``     — each site sends a block to its row-major successor;
* ``halo_exchange``  — 2D stencil exchange with the four grid neighbors;
* ``all_to_all``     — personalized all-to-all (MPI_Alltoall);
* ``all_reduce``     — recursive-doubling allreduce over site ids.

Each pattern generates per-site *rounds*: a round is a set of
(destination, bytes) sends that must all be delivered (and the site's
expected receives arrive) before the next round starts — a closed-loop,
barrier-synchronized driver built directly on the network interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.engine import Simulator
from ..core.stats import LatencySample
from ..macrochip.config import MacrochipConfig
from ..networks.base import Packet
from ..networks.factory import build_network


#: one send: (destination site, payload bytes)
Send = Tuple[int, int]
#: one round per site: list of sends issued together
Round = List[Send]


@dataclass(frozen=True)
class MessagePassingWorkload:
    """A named schedule of communication rounds for every site."""

    name: str
    #: rounds[r][site] -> list of sends
    rounds: List[List[Round]]
    #: compute time between rounds, in cycles
    compute_gap_cycles: int = 100

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def total_bytes(self) -> int:
        return sum(size for rnd in self.rounds for site_sends in rnd
                   for _, size in site_sends)


def ring_shift(config: MacrochipConfig, rounds: int = 8,
               block_bytes: int = 4096) -> MessagePassingWorkload:
    """Every site passes a block to its successor each round."""
    n = config.num_sites
    schedule = [
        [[((site + 1) % n, block_bytes)] for site in range(n)]
        for _ in range(rounds)
    ]
    return MessagePassingWorkload("ring_shift", schedule)


def halo_exchange(config: MacrochipConfig, rounds: int = 8,
                  face_bytes: int = 2048) -> MessagePassingWorkload:
    """2D stencil: each site exchanges a face with its four neighbors."""
    layout = config.layout
    schedule = []
    for _ in range(rounds):
        rnd = []
        for site in range(layout.num_sites):
            r, c = layout.coords(site)
            rnd.append([
                (layout.site_at(r, c - 1), face_bytes),
                (layout.site_at(r, c + 1), face_bytes),
                (layout.site_at(r - 1, c), face_bytes),
                (layout.site_at(r + 1, c), face_bytes),
            ])
        schedule.append(rnd)
    return MessagePassingWorkload("halo_exchange", schedule)


def all_to_all(config: MacrochipConfig, rounds: int = 2,
               slice_bytes: int = 512) -> MessagePassingWorkload:
    """Personalized all-to-all: every site sends a slice to every other."""
    n = config.num_sites
    schedule = [
        [[(dst, slice_bytes) for dst in range(n) if dst != site]
         for site in range(n)]
        for _ in range(rounds)
    ]
    return MessagePassingWorkload("all_to_all", schedule)


def all_reduce(config: MacrochipConfig, vector_bytes: int = 8192,
               repeats: int = 4) -> MessagePassingWorkload:
    """Recursive-doubling allreduce: log2(N) rounds of pairwise
    exchanges at stride 1, 2, 4, ... (requires a power-of-two site
    count)."""
    n = config.num_sites
    if n & (n - 1):
        raise ValueError("all_reduce needs a power-of-two site count")
    schedule = []
    for _ in range(repeats):
        stride = 1
        while stride < n:
            rnd = [[(site ^ stride, vector_bytes)] for site in range(n)]
            schedule.append(rnd)
            stride *= 2
    return MessagePassingWorkload("all_reduce", schedule)


MESSAGE_PASSING_WORKLOADS = {
    "ring_shift": ring_shift,
    "halo_exchange": halo_exchange,
    "all_to_all": all_to_all,
    "all_reduce": all_reduce,
}


@dataclass
class MessagePassingResult:
    """Outcome of one (workload, network) message-passing run."""

    network: str
    workload: str
    runtime_ps: int
    rounds: int
    messages: int
    bytes_moved: int
    message_latency: LatencySample
    energy_by_category: Dict[str, float]

    @property
    def runtime_ns(self) -> float:
        return self.runtime_ps / 1000.0

    @property
    def effective_bandwidth_gb_per_s(self) -> float:
        """Aggregate delivered bandwidth over the whole run."""
        if self.runtime_ps == 0:
            return 0.0
        return self.bytes_moved * 1000.0 / self.runtime_ps


class MessagePassingRunner:
    """Barrier-synchronized replay of a message-passing schedule.

    Large application messages are segmented into network packets of at
    most ``segment_bytes`` (a cache-line-sized 64 B by default, matching
    the networks' transfer granularity); a round completes when every
    segment of every send in the round has been delivered.
    """

    def __init__(self, workload: MessagePassingWorkload, network_name: str,
                 config: MacrochipConfig, segment_bytes: int = 64,
                 network_kwargs: Optional[dict] = None) -> None:
        if segment_bytes < 1:
            raise ValueError("segment size must be positive")
        self.workload = workload
        self.config = config
        self.segment_bytes = segment_bytes
        self.sim = Simulator()
        self.network = build_network(network_name, config, self.sim,
                                     **(network_kwargs or {}))
        self._latency = LatencySample()
        self._messages = 0
        self._bytes = 0

    def run(self) -> MessagePassingResult:
        self._start_round(0)
        self.sim.run()
        return MessagePassingResult(
            network=self.network.name,
            workload=self.workload.name,
            runtime_ps=self.sim.now,
            rounds=self.workload.num_rounds,
            messages=self._messages,
            bytes_moved=self._bytes,
            message_latency=self._latency,
            energy_by_category=self.network.stats.energy.categories(),
        )

    # -- internals -----------------------------------------------------------

    def _start_round(self, index: int) -> None:
        if index >= self.workload.num_rounds:
            return
        rnd = self.workload.rounds[index]
        outstanding = {"count": 0}

        def delivered(packet: Packet, sent_at: int) -> None:
            self._latency.add(self.sim.now - sent_at)
            outstanding["count"] -= 1
            if outstanding["count"] == 0:
                gap = (self.workload.compute_gap_cycles
                       * self.config.cycle_ps)
                self.sim.schedule(gap, self._start_round, index + 1)

        sent_at = self.sim.now
        for site, sends in enumerate(rnd):
            for dst, size in sends:
                for seg in self._segments(size):
                    outstanding["count"] += 1
                    self._messages += 1
                    self._bytes += seg
                    packet = Packet(
                        site, dst, seg, kind="mp",
                        on_delivered=lambda p, t=sent_at: delivered(p, t))
                    self.network.inject(packet)
        if outstanding["count"] == 0:  # a round with no sends
            self.sim.schedule(1, self._start_round, index + 1)

    def _segments(self, size: int) -> List[int]:
        full, rem = divmod(size, self.segment_bytes)
        return [self.segment_bytes] * full + ([rem] if rem else [])


def run_message_passing(workload_name: str, network_name: str,
                        config: MacrochipConfig,
                        **workload_kwargs) -> MessagePassingResult:
    """Convenience one-shot: build the named workload and run it."""
    try:
        factory = MESSAGE_PASSING_WORKLOADS[workload_name]
    except KeyError:
        raise KeyError(
            "unknown message-passing workload %r; choose from %s"
            % (workload_name, ", ".join(sorted(MESSAGE_PASSING_WORKLOADS)))
        ) from None
    workload = factory(config, **workload_kwargs)
    return MessagePassingRunner(workload, network_name, config).run()
