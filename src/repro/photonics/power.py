"""Network-level optical power estimation (paper section 6.3, Table 5).

Static laser power is::

    P_laser = (laser feeds) x (base power per wavelength) x (loss factor)

where *laser feeds* is the number of independently sourced wavelength
channels in the network (a topology property, see
``repro.networks.complexity``), base power is 1 mW, and the loss factor
compensates the network's worst-case extra loss beyond the canonical link
budget (``repro.photonics.loss``).

Dynamic power is the per-bit transmitter + receiver energy of Table 1
applied to the bits actually moved, plus — for the limited point-to-point
network — the 60 pJ/byte electronic router energy of section 6.3.
"""

from __future__ import annotations

from dataclasses import dataclass

from .technology import DEFAULT_TECHNOLOGY, Technology
from ..core.units import db_to_factor


#: Electronic router switching energy for the limited point-to-point
#: network (paper section 6.3, conservatively 60 pJ per byte).
ROUTER_ENERGY_PJ_PER_BYTE = 60.0


@dataclass(frozen=True)
class LaserPowerEstimate:
    """Static optical power for one network (one Table 5 row)."""

    network: str
    laser_feeds: int
    extra_loss_db: float
    base_power_mw_per_wavelength: float = 1.0

    @property
    def loss_factor(self) -> float:
        return db_to_factor(self.extra_loss_db)

    @property
    def laser_power_w(self) -> float:
        return (self.laser_feeds * self.base_power_mw_per_wavelength
                * self.loss_factor) / 1000.0


def laser_power_w(laser_feeds: int, extra_loss_db: float,
                  base_mw: float = 1.0) -> float:
    """Convenience wrapper: static laser power in watts."""
    return LaserPowerEstimate("", laser_feeds, extra_loss_db, base_mw).laser_power_w


def transmit_energy_pj(size_bytes: int,
                       tech: Technology = DEFAULT_TECHNOLOGY) -> float:
    """Dynamic energy (pJ) to move ``size_bytes`` across one optical link:
    modulator + receiver + amortized laser energy per bit.

    The modulation/detection terms follow the technology's signaling
    format (``nrz`` reproduces the paper's 35 + 65 fJ/bit exactly; PAM4
    pays its DAC/linear-receiver premium per bit)."""
    bits = size_bytes * 8
    per_bit_fj = (tech.modulation_energy_fj_per_bit
                  + tech.detection_energy_fj_per_bit
                  + tech.laser_energy_fj_per_bit)
    return bits * per_bit_fj / 1000.0


def router_energy_pj(size_bytes: int) -> float:
    """Dynamic energy (pJ) for one electronic router traversal."""
    return size_bytes * ROUTER_ENERGY_PJ_PER_BYTE


def energy_delay_product(total_energy_pj: float, runtime_ps: int) -> float:
    """EDP in (pJ x ps); only ratios are ever reported so units cancel."""
    return total_energy_pj * runtime_ps
