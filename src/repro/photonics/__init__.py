"""Silicon-photonic technology substrate: components, losses, power, layout."""

from .layout import DEFAULT_LAYOUT, MacrochipLayout
from .technology import DEFAULT_TECHNOLOGY, Technology

__all__ = [
    "Technology",
    "DEFAULT_TECHNOLOGY",
    "MacrochipLayout",
    "DEFAULT_LAYOUT",
]
