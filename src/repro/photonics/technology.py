"""Silicon-photonic technology parameters (paper section 2, Table 1).

All values are the 2014-2015 projections the paper evaluates with.  They are
grouped in a frozen dataclass so alternative technology points (for ablation
studies) can be constructed without touching the defaults.

Units: energies in femtojoules/bit, powers in milliwatts, losses in dB,
bandwidths in Gb/s.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Technology:
    """Optical component properties (Table 1) plus link-level constants."""

    # --- per-bit energies (Table 1) ---
    modulator_energy_fj_per_bit: float = 35.0  # dynamic
    receiver_energy_fj_per_bit: float = 65.0  # dynamic
    laser_energy_fj_per_bit: float = 50.0  # static, amortized per bit

    # --- signal losses in dB (Table 1 + section 2 text) ---
    modulator_loss_db: float = 4.0  # on-resonance, active modulator
    modulator_off_resonance_loss_db: float = 0.1  # passed-by, disabled ring
    opxc_loss_db: float = 1.2  # per inter-layer / inter-chip coupling
    local_waveguide_loss_db_per_cm: float = 0.5  # thinned-SOI local guides
    global_waveguide_loss_db_per_cm: float = 0.1  # 3um SOI routing layer
    drop_filter_through_loss_db: float = 0.1  # per wavelength passing through
    drop_filter_drop_loss_db: float = 1.5  # for the selected wavelength
    mux_insertion_loss_db: float = 2.5  # worst-case channel insertion
    switch_loss_db: float = 1.0  # broadband 1x2 switch
    switch_4x4_loss_db: float = 0.5  # aggressive assumption (section 4.5)
    splitter_loss_db: float = 3.0  # 1:2 power split

    # --- device power (section 2 text) ---
    modulator_power_mw: float = 0.7  # 20 Gb/s ring modulator drive
    receiver_power_mw: float = 1.3  # photodetector + amplifiers
    ring_tuning_power_mw: float = 0.1  # per wavelength, mux or drop filter
    switch_power_mw: float = 0.5  # broadband comb switch
    laser_power_per_wavelength_mw: float = 1.0  # launched power baseline

    # --- link-level constants ---
    bit_rate_gbps: float = 20.0  # per wavelength
    receiver_sensitivity_dbm: float = -21.0
    laser_launch_power_dbm: float = 0.0
    waveguide_worst_case_loss_db: float = 6.0  # across largest macrochip

    @property
    def wavelength_bandwidth_gb_per_s(self) -> float:
        """Data bandwidth of one wavelength in GB/s (20 Gb/s -> 2.5 GB/s)."""
        return self.bit_rate_gbps / 8.0

    @property
    def link_margin_db(self) -> float:
        """Power budget from laser launch to receiver sensitivity."""
        return self.laser_launch_power_dbm - self.receiver_sensitivity_dbm

    def with_overrides(self, **kwargs: float) -> "Technology":
        """Return a copy with the given fields replaced (ablation helper)."""
        return replace(self, **kwargs)


#: The default 2015 technology point used throughout the paper.
DEFAULT_TECHNOLOGY = Technology()


def table1_rows(tech: Technology = DEFAULT_TECHNOLOGY):
    """The rows of the paper's Table 1, as (component, energy, loss) tuples."""
    return [
        ("Modulator", "%.0f fJ/bit (dynamic)" % tech.modulator_energy_fj_per_bit,
         "%.0f dB" % tech.modulator_loss_db),
        ("OPxC", "negligible", "%.1f dB" % tech.opxc_loss_db),
        ("Waveguide", "negligible",
         "%.1f dB/cm" % tech.local_waveguide_loss_db_per_cm),
        ("Drop Filter", "negligible",
         "%.1f dB or %.1f dB" % (tech.drop_filter_through_loss_db,
                                 tech.drop_filter_drop_loss_db)),
        ("Receiver", "%.0f fJ/bit (dynamic)" % tech.receiver_energy_fj_per_bit,
         "N/A"),
        ("Switch", "negligible", "%.0f dB" % tech.switch_loss_db),
        ("Laser", "%.0f fJ/bit (static)" % tech.laser_energy_fj_per_bit, "N/A"),
    ]
