"""Silicon-photonic technology parameters (paper section 2, Table 1).

All values are the 2014-2015 projections the paper evaluates with.  They are
grouped in a frozen dataclass so alternative technology points (for ablation
studies) can be constructed without touching the defaults.

Units: energies in femtojoules/bit, powers in milliwatts, losses in dB,
bandwidths in Gb/s.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


#: Supported line-coding formats.  ``nrz`` is the paper's baseline
#: (1 bit/symbol at 20 Gbaud); ``pam4`` encodes 2 bits/symbol at the
#: same symbol rate, following the cross-layer multilevel-signaling
#: analyses (Karempudi et al.): double the data rate per wavelength, at
#: the cost of higher modulation/detection energy (DAC-driven modulator,
#: linear receiver front end) and a reduced eye opening — the minimum
#: PAM4 eye is 1/3 of the NRZ eye, a 10*log10(3) ~ 4.8 dB optical power
#: penalty charged against the link budget.
SIGNALING_FORMATS = ("nrz", "pam4")


@dataclass(frozen=True)
class Technology:
    """Optical component properties (Table 1) plus link-level constants."""

    # --- per-bit energies (Table 1) ---
    modulator_energy_fj_per_bit: float = 35.0  # dynamic
    receiver_energy_fj_per_bit: float = 65.0  # dynamic
    laser_energy_fj_per_bit: float = 50.0  # static, amortized per bit

    # --- signal losses in dB (Table 1 + section 2 text) ---
    modulator_loss_db: float = 4.0  # on-resonance, active modulator
    modulator_off_resonance_loss_db: float = 0.1  # passed-by, disabled ring
    opxc_loss_db: float = 1.2  # per inter-layer / inter-chip coupling
    local_waveguide_loss_db_per_cm: float = 0.5  # thinned-SOI local guides
    global_waveguide_loss_db_per_cm: float = 0.1  # 3um SOI routing layer
    drop_filter_through_loss_db: float = 0.1  # per wavelength passing through
    drop_filter_drop_loss_db: float = 1.5  # for the selected wavelength
    mux_insertion_loss_db: float = 2.5  # worst-case channel insertion
    switch_loss_db: float = 1.0  # broadband 1x2 switch
    switch_4x4_loss_db: float = 0.5  # aggressive assumption (section 4.5)
    splitter_loss_db: float = 3.0  # 1:2 power split

    # --- device power (section 2 text) ---
    modulator_power_mw: float = 0.7  # 20 Gb/s ring modulator drive
    receiver_power_mw: float = 1.3  # photodetector + amplifiers
    ring_tuning_power_mw: float = 0.1  # per wavelength, mux or drop filter
    switch_power_mw: float = 0.5  # broadband comb switch
    laser_power_per_wavelength_mw: float = 1.0  # launched power baseline

    # --- link-level constants ---
    bit_rate_gbps: float = 20.0  # per wavelength (symbol rate, Gbaud)
    receiver_sensitivity_dbm: float = -21.0
    laser_launch_power_dbm: float = 0.0
    waveguide_worst_case_loss_db: float = 6.0  # across largest macrochip

    # --- multilevel signaling (NRZ baseline vs PAM4 variant) ---
    #: line coding: "nrz" (paper baseline) or "pam4" (2 bits/symbol)
    signaling: str = "nrz"
    #: PAM4 modulator drive energy: a 2-bit DAC-driven (e.g. segmented)
    #: ring/MZM stage costs more per bit than the paper's 35 fJ OOK ring
    pam4_modulator_energy_fj_per_bit: float = 55.0
    #: PAM4 receiver energy: linear TIA + 2-bit slicing roughly doubles
    #: the paper's 65 fJ/bit limiting receiver
    pam4_receiver_energy_fj_per_bit: float = 110.0
    #: optical power penalty of the 1/3-height PAM4 eye: 10*log10(3)
    pam4_snr_penalty_db: float = 4.8

    def __post_init__(self) -> None:
        if self.signaling not in SIGNALING_FORMATS:
            raise ValueError(
                "unknown signaling %r; choose one of %s"
                % (self.signaling, ", ".join(SIGNALING_FORMATS)))

    @property
    def bits_per_symbol(self) -> int:
        """Line-coding density: 1 for NRZ, 2 for PAM4."""
        return 2 if self.signaling == "pam4" else 1

    @property
    def effective_bit_rate_gbps(self) -> float:
        """Data rate per wavelength after line coding (same symbol rate)."""
        if self.signaling == "nrz":
            return self.bit_rate_gbps
        return self.bit_rate_gbps * self.bits_per_symbol

    @property
    def wavelength_bandwidth_gb_per_s(self) -> float:
        """Data bandwidth of one wavelength in GB/s (20 Gb/s -> 2.5 GB/s
        under NRZ; PAM4 doubles it at the same symbol rate)."""
        if self.signaling == "nrz":
            return self.bit_rate_gbps / 8.0
        return self.effective_bit_rate_gbps / 8.0

    @property
    def modulation_energy_fj_per_bit(self) -> float:
        """Per-bit modulator energy for the active signaling format."""
        if self.signaling == "pam4":
            return self.pam4_modulator_energy_fj_per_bit
        return self.modulator_energy_fj_per_bit

    @property
    def detection_energy_fj_per_bit(self) -> float:
        """Per-bit receiver energy for the active signaling format."""
        if self.signaling == "pam4":
            return self.pam4_receiver_energy_fj_per_bit
        return self.receiver_energy_fj_per_bit

    @property
    def signaling_penalty_db(self) -> float:
        """Extra optical power the link must budget for the reduced eye
        opening of the active format (0 dB for the NRZ baseline)."""
        if self.signaling == "pam4":
            return self.pam4_snr_penalty_db
        return 0.0

    @property
    def effective_receiver_sensitivity_dbm(self) -> float:
        """Receiver sensitivity after the signaling eye penalty: a PAM4
        receiver needs proportionally more optical power for the same
        error rate."""
        if self.signaling == "nrz":
            return self.receiver_sensitivity_dbm
        return self.receiver_sensitivity_dbm + self.signaling_penalty_db

    @property
    def link_margin_db(self) -> float:
        """Power budget from laser launch to (format-adjusted) receiver
        sensitivity."""
        if self.signaling == "nrz":
            return self.laser_launch_power_dbm - self.receiver_sensitivity_dbm
        return (self.laser_launch_power_dbm
                - self.effective_receiver_sensitivity_dbm)

    def with_overrides(self, **kwargs) -> "Technology":
        """Return a copy with the given fields replaced (ablation helper)."""
        return replace(self, **kwargs)


def pam4_eye_penalty_db(levels: int = 4) -> float:
    """The ideal multilevel eye penalty, 10*log10(levels - 1): 4.77 dB
    for PAM4.  The Technology default rounds this to 4.8 dB."""
    return 10.0 * math.log10(levels - 1)


#: The default 2015 technology point used throughout the paper.
DEFAULT_TECHNOLOGY = Technology()


def table1_rows(tech: Technology = DEFAULT_TECHNOLOGY):
    """The rows of the paper's Table 1, as (component, energy, loss) tuples."""
    return [
        ("Modulator", "%.0f fJ/bit (dynamic)" % tech.modulator_energy_fj_per_bit,
         "%.0f dB" % tech.modulator_loss_db),
        ("OPxC", "negligible", "%.1f dB" % tech.opxc_loss_db),
        ("Waveguide", "negligible",
         "%.1f dB/cm" % tech.local_waveguide_loss_db_per_cm),
        ("Drop Filter", "negligible",
         "%.1f dB or %.1f dB" % (tech.drop_filter_through_loss_db,
                                 tech.drop_filter_drop_loss_db)),
        ("Receiver", "%.0f fJ/bit (dynamic)" % tech.receiver_energy_fj_per_bit,
         "N/A"),
        ("Switch", "negligible", "%.0f dB" % tech.switch_loss_db),
        ("Laser", "%.0f fJ/bit (static)" % tech.laser_energy_fj_per_bit, "N/A"),
    ]
