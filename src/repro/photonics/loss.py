"""Optical link-budget calculations.

The paper evaluates links analytically: an un-switched site-to-site link
loses 17 dB (section 2), and each network adds its own worst-case extra
loss (switch hops, pass-by modulator rings, snoop splitting) that must be
compensated by launching proportionally more laser power — the "power loss
factor" of Table 5.

This module builds the canonical link from the component models and
computes per-network worst-case losses from mechanism counts, so Table 5
is *derived*, not transcribed.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import components as comp
from .technology import DEFAULT_TECHNOLOGY, Technology
from ..core.units import db_to_factor


def unswitched_link(tech: Technology = DEFAULT_TECHNOLOGY,
                    waveguide_loss_db: float = None,
                    passed_rings: int = 6) -> comp.OpticalPath:
    """The canonical un-switched site-to-site link (paper Figure 2).

    Composition: active modulator (4 dB) + WDM mux (2.5 dB) + OPxC from the
    transmit chip onto the substrate (1.2 dB) + worst-case substrate
    waveguide run (6 dB) + inter-layer OPxC coupling (1.2 dB is folded into
    the waveguide worst case for the un-switched budget) + OPxC up to the
    receive chip (1.2 dB) + ``passed_rings`` through drop-filters
    (0.1 dB each) + the selected drop (1.5 dB).

    With the defaults this totals the paper's quoted 17 dB, leaving a 4 dB
    margin against a 0 dBm launch and -21 dBm receiver sensitivity.
    """
    if waveguide_loss_db is None:
        waveguide_loss_db = tech.waveguide_worst_case_loss_db
    path = comp.OpticalPath()
    path.append(comp.modulator(tech, active=True))
    path.append(comp.multiplexer(tech))
    path.append(comp.opxc_coupler(tech))
    path.append(comp.Component("waveguide[worst-case]", waveguide_loss_db))
    path.append(comp.opxc_coupler(tech))
    for _ in range(passed_rings):
        path.append(comp.drop_filter(selected=False, tech=tech))
    path.append(comp.drop_filter(selected=True, tech=tech))
    path.append(comp.receiver(tech))
    return path


@dataclass(frozen=True)
class LinkBudget:
    """A resolved optical power budget for a link."""

    loss_db: float
    launch_dbm: float
    sensitivity_dbm: float

    @property
    def margin_db(self) -> float:
        """Power remaining above receiver sensitivity; negative means the
        link does not close."""
        return self.launch_dbm - self.loss_db - self.sensitivity_dbm

    @property
    def closes(self) -> bool:
        return self.margin_db >= 0.0


def budget_for(path: comp.OpticalPath,
               tech: Technology = DEFAULT_TECHNOLOGY) -> LinkBudget:
    """Compute the budget of an explicit component path.

    Uses the signaling-adjusted receiver sensitivity: a PAM4 link closes
    against a sensitivity degraded by the eye penalty (NRZ is unchanged).
    """
    return LinkBudget(
        loss_db=path.total_loss_db,
        launch_dbm=tech.laser_launch_power_dbm,
        sensitivity_dbm=tech.effective_receiver_sensitivity_dbm,
    )


# ---------------------------------------------------------------------------
# Per-network *extra* worst-case loss, beyond the canonical link.  These are
# the mechanisms section 4 and 6.3 describe; each returns dB.
# ---------------------------------------------------------------------------

def token_ring_extra_loss_db(modulators_passed: int = 128,
                             tech: Technology = DEFAULT_TECHNOLOGY) -> float:
    """Corona adaptation: every wavelength passes the off-resonance
    modulator rings of all potential senders on its bundle.  The paper's
    macrochip adaptation reduces WDM to 2 so each wavelength passes 128
    rings at 0.1 dB -> 12.8 dB."""
    return modulators_passed * tech.modulator_off_resonance_loss_db


def circuit_switched_extra_loss_db(switch_hops: int = 31,
                                   loss_per_hop_db: float = None,
                                   tech: Technology = DEFAULT_TECHNOLOGY) -> float:
    """Torus adaptation: the worst-case path crosses ``switch_hops`` 4x4
    switch points at the aggressive 0.5 dB assumption (~15 dB, section
    4.5)."""
    if loss_per_hop_db is None:
        loss_per_hop_db = tech.switch_4x4_loss_db
    return switch_hops * loss_per_hop_db


def two_phase_extra_loss_db(switch_hops: int = 7,
                            tech: Technology = DEFAULT_TECHNOLOGY) -> float:
    """Two-phase network: at most 7 broadband-switch hops along a shared
    row channel (7 dB); the ALT variant halves tree contention and sees at
    most 6 hops (6 dB)."""
    return switch_hops * tech.switch_loss_db


def snoop_extra_loss_db(snoopers: int = 8) -> float:
    """Arbitration waveguides are snooped by every site in the row/column;
    splitting power 8 ways costs a factor of the snooper count."""
    from ..core.units import factor_to_db

    return factor_to_db(float(snoopers))


def hermes_extra_loss_db(cluster_size: int = 4,
                         rings_passed: int = None,
                         tech: Technology = DEFAULT_TECHNOLOGY) -> float:
    """HERMES hierarchical broadcast: every intra-cluster transmission is
    physically split across all ``cluster_size`` cluster members (a
    factor of the member count, like the snooped arbitration guides), and
    each wavelength passes the off-resonance modulator rings of the other
    cluster members on the shared broadcast ring."""
    from ..core.units import factor_to_db

    if rings_passed is None:
        rings_passed = (cluster_size - 1) * 8
    return (factor_to_db(float(cluster_size))
            + rings_passed * tech.modulator_off_resonance_loss_db)


def scaled_waveguide_loss_db(layout,
                             tech: Technology = DEFAULT_TECHNOLOGY) -> float:
    """Worst-case substrate waveguide loss for an arbitrary macrochip.

    The technology's ``waveguide_worst_case_loss_db`` (6 dB) is quoted
    for the paper's largest macrochip — the 8x8 at 2 cm pitch, whose
    corner-to-corner Manhattan run is 28 cm.  Waveguide loss is linear
    in distance, so a bigger (or smaller) die scales that budget by the
    ratio of its own worst-case run: a 16x16 corner path is 60 cm and
    costs ~12.9 dB, a 4x4 only ~2.6 dB.  The 8x8 returns the canonical
    6 dB exactly, so every existing Table 5 number is unchanged.
    """
    from .layout import DEFAULT_LAYOUT

    reference_cm = DEFAULT_LAYOUT.worst_case_distance_cm  # 28 cm
    return (tech.waveguide_worst_case_loss_db
            * layout.worst_case_distance_cm / reference_cm)


def waveguide_scaling_penalty_db(layout,
                                 tech: Technology = DEFAULT_TECHNOLOGY
                                 ) -> float:
    """Extra waveguide loss of ``layout`` beyond the canonical budget.

    The canonical 17 dB link already pays the 8x8's 6 dB worst-case
    waveguide run; a larger die adds the difference (never negative —
    a smaller die banks its slack as margin, it does not subsidize the
    laser)."""
    return max(0.0, scaled_waveguide_loss_db(layout, tech)
               - tech.waveguide_worst_case_loss_db)


def power_loss_factor(extra_loss_db: float) -> float:
    """Linear laser-power multiplier needed to compensate ``extra_loss_db``
    beyond the canonical (already-budgeted) link."""
    return db_to_factor(extra_loss_db)
