"""Macrochip physical layout and propagation geometry.

The macrochip is an R x C array of sites on an SOI routing substrate
(paper Figure 1).  Waveguides run horizontally between rows on the bottom
layer and vertically between columns on the top layer, joined by
inter-layer couplers, so a site-to-site optical path follows Manhattan
geometry.  Propagation delay is 0.1 ns/cm (paper section 2).

This module is the single source of distance/delay truth for every
network model, including the snake-ring path of the token-ring crossbar
whose 80-cycle round trip (16 ns at 5 GHz) the paper derives from the
macrochip's 10x larger dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.units import propagation_ps


@dataclass(frozen=True)
class MacrochipLayout:
    """Geometry of an ``rows x cols`` macrochip."""

    rows: int = 8
    cols: int = 8
    site_pitch_cm: float = 2.0

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("layout needs at least one site")
        if self.site_pitch_cm <= 0:
            raise ValueError("site pitch must be positive")

    @property
    def num_sites(self) -> int:
        return self.rows * self.cols

    def coords(self, site: int) -> Tuple[int, int]:
        """(row, col) of a site id; ids are row-major."""
        self._check_site(site)
        return divmod(site, self.cols)

    def site_at(self, row: int, col: int) -> int:
        """Site id at (row, col); wraps modulo the array (torus helper)."""
        return (row % self.rows) * self.cols + (col % self.cols)

    def _check_site(self, site: int) -> None:
        if not 0 <= site < self.num_sites:
            raise ValueError(
                "site %d outside macrochip of %d sites" % (site, self.num_sites)
            )

    def manhattan_distance_cm(self, src: int, dst: int) -> float:
        """Waveguide path length between two sites (horizontal run to the
        destination column, inter-layer coupler, vertical run)."""
        r1, c1 = self.coords(src)
        r2, c2 = self.coords(dst)
        return (abs(r1 - r2) + abs(c1 - c2)) * self.site_pitch_cm

    def propagation_delay_ps(self, src: int, dst: int) -> int:
        """Optical flight time between two sites."""
        return propagation_ps(self.manhattan_distance_cm(src, dst))

    def torus_hop_counts(self, src: int, dst: int) -> Tuple[int, int]:
        """(row_hops, col_hops) under torus wraparound (shortest way)."""
        r1, c1 = self.coords(src)
        r2, c2 = self.coords(dst)
        dr = abs(r1 - r2)
        dc = abs(c1 - c2)
        return min(dr, self.rows - dr), min(dc, self.cols - dc)

    def torus_distance_cm(self, src: int, dst: int) -> float:
        hr, hc = self.torus_hop_counts(src, dst)
        return (hr + hc) * self.site_pitch_cm

    @property
    def row_span_cm(self) -> float:
        """Length of a waveguide spanning one full row."""
        return (self.cols - 1) * self.site_pitch_cm

    @property
    def col_span_cm(self) -> float:
        return (self.rows - 1) * self.site_pitch_cm

    @property
    def worst_case_distance_cm(self) -> float:
        """Corner-to-corner Manhattan distance."""
        return self.row_span_cm + self.col_span_cm

    def snake_ring_length_cm(self) -> float:
        """Length of a serpentine ring visiting every site once and
        returning — the token-ring bundle path of the Corona adaptation.

        A snake over R rows covers ``R * row_span`` horizontally plus
        ``col_span`` vertically; the return guide is routed along the
        die perimeter through the far corner (``worst_case``) regardless
        of which corner the snake happens to end in, so the closed form
        holds for any rows x cols, square or not.  On the paper's 8x8
        this is the ~160 cm / 16 ns rotation of section 4.4.
        """
        forward = self.rows * self.row_span_cm + self.col_span_cm
        return forward + self.worst_case_distance_cm

    def snake_position(self, site: int) -> int:
        """Ordinal position of a site along the snake ring (boustrophedon
        order: even rows left-to-right, odd rows right-to-left)."""
        row, col = self.coords(site)
        if row % 2 == 0:
            return row * self.cols + col
        return row * self.cols + (self.cols - 1 - col)

    def snake_site(self, position: int) -> int:
        """Inverse of :meth:`snake_position`."""
        position %= self.num_sites
        row, offset = divmod(position, self.cols)
        col = offset if row % 2 == 0 else self.cols - 1 - offset
        return self.site_at(row, col)


#: The paper's 8x8 macrochip at 2 cm site pitch: worst-case Manhattan path
#: 28 cm (2.8 ns), snake ring ~ 160 cm whose round trip at 0.1 ns/cm is the
#: 16 ns (80-cycle) token rotation of section 4.4.
DEFAULT_LAYOUT = MacrochipLayout()
