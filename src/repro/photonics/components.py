"""Optical component models.

Each component knows its insertion loss (dB) and static/dynamic power so
that link budgets (``repro.photonics.loss``) and network power estimates
(``repro.analysis.power``) are assembled from the same objects a reader can
map one-to-one onto Figure 2 of the paper.

Components are lightweight value objects; the discrete-event networks do
not simulate light propagation per component — they use the aggregate
figures these models produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .technology import DEFAULT_TECHNOLOGY, Technology


@dataclass(frozen=True)
class Component:
    """Base class: a named optical element with an insertion loss."""

    name: str
    loss_db: float
    static_power_mw: float = 0.0
    dynamic_energy_fj_per_bit: float = 0.0


def modulator(tech: Technology = DEFAULT_TECHNOLOGY, active: bool = True) -> Component:
    """An electro-optic ring modulator.

    ``active`` selects between the on-resonance (driving) loss and the
    off-resonance loss a wavelength suffers when it merely passes a
    disabled ring — the distinction that forces the Corona adaptation to
    reduce its WDM factor (paper section 4.4).
    """
    loss = tech.modulator_loss_db if active else tech.modulator_off_resonance_loss_db
    return Component(
        name="modulator" if active else "modulator(off)",
        loss_db=loss,
        static_power_mw=tech.modulator_power_mw if active else 0.0,
        dynamic_energy_fj_per_bit=tech.modulator_energy_fj_per_bit if active else 0.0,
    )


def opxc_coupler(tech: Technology = DEFAULT_TECHNOLOGY) -> Component:
    """An optical proximity communication coupling (chip<->substrate or
    substrate layer<->layer)."""
    return Component(name="opxc", loss_db=tech.opxc_loss_db)


def waveguide(length_cm: float, tech: Technology = DEFAULT_TECHNOLOGY,
              layer: str = "global") -> Component:
    """A waveguide segment of ``length_cm`` on the ``global`` (3um SOI
    routing layer, 0.1 dB/cm) or ``local`` (thinned SOI, 0.5 dB/cm) layer."""
    if length_cm < 0:
        raise ValueError("waveguide length must be non-negative")
    if layer == "global":
        per_cm = tech.global_waveguide_loss_db_per_cm
    elif layer == "local":
        per_cm = tech.local_waveguide_loss_db_per_cm
    else:
        raise ValueError("layer must be 'global' or 'local', got %r" % layer)
    return Component(
        name="waveguide[%s,%.1fcm]" % (layer, length_cm),
        loss_db=length_cm * per_cm,
    )


def drop_filter(selected: bool, tech: Technology = DEFAULT_TECHNOLOGY) -> Component:
    """A ring drop filter: 1.5 dB for the dropped wavelength, 0.1 dB for a
    wavelength that continues past."""
    return Component(
        name="drop_filter[%s]" % ("drop" if selected else "through"),
        loss_db=(tech.drop_filter_drop_loss_db if selected
                 else tech.drop_filter_through_loss_db),
        static_power_mw=tech.ring_tuning_power_mw,
    )


def multiplexer(tech: Technology = DEFAULT_TECHNOLOGY) -> Component:
    """A cascaded-ring WDM multiplexer (worst-case channel insertion)."""
    return Component(
        name="mux",
        loss_db=tech.mux_insertion_loss_db,
        static_power_mw=tech.ring_tuning_power_mw,
    )


def broadband_switch(tech: Technology = DEFAULT_TECHNOLOGY) -> Component:
    """A 1x2 broadband (comb) switch."""
    return Component(
        name="switch1x2",
        loss_db=tech.switch_loss_db,
        static_power_mw=tech.switch_power_mw,
    )


def switch_4x4(tech: Technology = DEFAULT_TECHNOLOGY) -> Component:
    """A 4x4 optical switch point of the circuit-switched torus, using the
    paper's aggressive 0.5 dB assumption (section 4.5)."""
    return Component(
        name="switch4x4",
        loss_db=tech.switch_4x4_loss_db,
        static_power_mw=tech.switch_power_mw,
    )


def splitter(tech: Technology = DEFAULT_TECHNOLOGY) -> Component:
    """A 1:2 optical power splitter (3 dB ideal split)."""
    return Component(name="splitter", loss_db=tech.splitter_loss_db)


def receiver(tech: Technology = DEFAULT_TECHNOLOGY) -> Component:
    """A waveguide photodetector + TIA receiver (terminates the path)."""
    return Component(
        name="receiver",
        loss_db=0.0,
        static_power_mw=tech.receiver_power_mw,
        dynamic_energy_fj_per_bit=tech.receiver_energy_fj_per_bit,
    )


@dataclass
class OpticalPath:
    """An ordered chain of components from modulator to receiver.

    Used by the loss calculator to compute a link budget, and by tests to
    assert the canonical un-switched link comes out at the paper's 17 dB.
    """

    components: List[Component] = field(default_factory=list)

    def append(self, component: Component) -> "OpticalPath":
        self.components.append(component)
        return self

    def extend(self, components: List[Component]) -> "OpticalPath":
        self.components.extend(components)
        return self

    @property
    def total_loss_db(self) -> float:
        return sum(c.loss_db for c in self.components)

    @property
    def static_power_mw(self) -> float:
        return sum(c.static_power_mw for c in self.components)

    def describe(self) -> str:
        """One line per component with its loss, plus the total."""
        lines = ["%-28s %6.2f dB" % (c.name, c.loss_db) for c in self.components]
        lines.append("%-28s %6.2f dB" % ("TOTAL", self.total_loss_db))
        return "\n".join(lines)
