"""Wavelength-division multiplexing bookkeeping.

The networks describe their channels in terms of (waveguide, wavelength)
pairs.  This module provides a small allocator that validates a topology's
wavelength plan: no two channels on the same waveguide may use the same
wavelength, and a waveguide may carry at most the technology's WDM factor.

It exists so topology definitions (and their tests) can *prove* the static
wavelength routing of the point-to-point network is feasible — the paper's
central claim that WDM substitutes for switching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple


class WavelengthConflictError(ValueError):
    """Two channels claimed the same wavelength on the same waveguide."""


@dataclass(frozen=True)
class WdmChannel:
    """A logical channel: a set of wavelengths on one waveguide."""

    waveguide: str
    wavelengths: Tuple[int, ...]

    @property
    def width(self) -> int:
        return len(self.wavelengths)


@dataclass
class WavelengthAllocator:
    """Tracks wavelength occupancy per waveguide."""

    wavelengths_per_waveguide: int = 8
    _used: Dict[str, Set[int]] = field(default_factory=dict)

    def allocate(self, waveguide: str, wavelengths: Iterable[int]) -> WdmChannel:
        """Claim ``wavelengths`` on ``waveguide``; raises on conflict or
        overflow."""
        wl = tuple(wavelengths)
        if not wl:
            raise ValueError("a channel needs at least one wavelength")
        used = self._used.setdefault(waveguide, set())
        for w in wl:
            if not 0 <= w < self.wavelengths_per_waveguide:
                raise ValueError(
                    "wavelength %d outside WDM range [0, %d)"
                    % (w, self.wavelengths_per_waveguide)
                )
            if w in used:
                raise WavelengthConflictError(
                    "wavelength %d already used on waveguide %r" % (w, waveguide)
                )
        used.update(wl)
        return WdmChannel(waveguide, wl)

    def allocate_next(self, waveguide: str, count: int) -> WdmChannel:
        """Claim the ``count`` lowest free wavelengths on ``waveguide``."""
        used = self._used.setdefault(waveguide, set())
        free = [w for w in range(self.wavelengths_per_waveguide) if w not in used]
        if len(free) < count:
            raise WavelengthConflictError(
                "waveguide %r has %d free wavelengths, need %d"
                % (waveguide, len(free), count)
            )
        return self.allocate(waveguide, free[:count])

    def occupancy(self, waveguide: str) -> int:
        return len(self._used.get(waveguide, ()))

    def waveguides(self) -> List[str]:
        return sorted(self._used)

    @property
    def total_channels(self) -> int:
        return sum(len(v) for v in self._used.values())


def wavelengths_for_bandwidth(gb_per_s: float, tech=None) -> int:
    """Minimum wavelengths needed to carry ``gb_per_s`` at the
    technology's per-wavelength data rate.

    This is where multilevel signaling changes the wavelength plan: PAM4
    doubles the rate per wavelength, so a fixed-bandwidth channel needs
    half the wavelengths (and, at a fixed WDM factor, half the
    waveguides) of its NRZ equivalent.
    """
    from .technology import DEFAULT_TECHNOLOGY

    if tech is None:
        tech = DEFAULT_TECHNOLOGY
    if gb_per_s <= 0:
        raise ValueError("bandwidth must be positive")
    import math

    per_wavelength = tech.wavelength_bandwidth_gb_per_s
    # guard against float ulp noise pushing an exact quotient past an
    # integer boundary (e.g. 320 / 2.5 must stay 128, not 129)
    return max(1, math.ceil(gb_per_s / per_wavelength - 1e-9))


def waveguides_for_wavelengths(wavelengths: int,
                               wavelengths_per_waveguide: int) -> int:
    """Physical waveguides needed for a wavelength count at a WDM factor."""
    if wavelengths_per_waveguide < 1:
        raise ValueError("WDM factor must be at least 1")
    return -(-wavelengths // wavelengths_per_waveguide)


def p2p_wavelength_plan(rows: int, cols: int, wavelengths_per_waveguide: int,
                        channel_width: int) -> WavelengthAllocator:
    """Build and validate the static point-to-point wavelength plan.

    Each source site drives horizontal waveguides toward every column; a
    vertical waveguide per (source, column) drops ``channel_width``
    wavelengths at each of the ``rows`` sites in the column.  Feasibility
    requires ``rows * channel_width <= wavelengths_per_waveguide *
    waveguides_per_vertical`` — the allocator materializes the plan and
    raises if the paper's 8x8 / 8-wavelength configuration did not fit.
    """
    alloc = WavelengthAllocator(wavelengths_per_waveguide)
    for src in range(rows * cols):
        for col in range(cols):
            for dst_row in range(rows):
                base = dst_row * channel_width
                guide_idx = base // wavelengths_per_waveguide
                guide = "v[src=%d,col=%d,g=%d]" % (src, col, guide_idx)
                wl = [
                    (base + k) % wavelengths_per_waveguide
                    for k in range(channel_width)
                ]
                alloc.allocate(guide, wl)
    return alloc
