"""Opt-in vectorized execution backend for ``run_load_point``.

The scalar engine (:mod:`repro.core.engine`) dispatches one Python
callback per event.  That is exact, flexible — and, for the six
fixed-function network models driven by the open-loop sweep harness, far
more general than needed: a load point's entire event population is
determined by the injection schedule plus each network's (small) piece
of arbitration state.  This module exploits that:

* **Injection schedules as arrays.**  The per-site gap/destination draws
  (shared verbatim with the scalar path — same ``_DrawBank``, same
  blocked streams, so the schedules are bit-identical by construction)
  are turned into absolute per-site arrival arrays once, instead of one
  ``schedule()`` call per packet.
* **Bulk kernels for contention-free spans.**  Networks whose only
  shared resource is a per-pair FIFO channel (point-to-point, the
  electrical baseline) never need an event loop at all: per-channel
  delivery times follow the closed-form recurrence
  ``finish_i = max(t_i, finish_{i-1}) + tx``, evaluated for every packet
  at once with a segmented cumulative maximum.
* **Replay loops with batched terminal delivers** for the arbitrated
  networks (two-phase, token ring, circuit switched, limited
  point-to-point): a tight ``heapq`` loop over flat integer state that
  reproduces the engine's ``(time, seq)`` dispatch order exactly —
  sequence numbers are allocated at the same points — while keeping
  *deliver* events out of the heap entirely.  ``_deliver`` is terminal
  in a sweep (no sink, no chained callbacks) and statistics are
  order-independent integer accumulations, so delivery times can be
  collected in arrays and folded into the result at the end.

* **Calendar-segmented replay** for kernels whose every dynamically
  scheduled event provably trails its scheduler by at least some width
  ``W`` (two-phase: the arbitration lead; circuit switched: data
  serialization + teardown; limited point-to-point: the channel
  serialization): events append to per-``W``-bucket lists and each
  bucket is sorted once at dispatch time, replacing per-event heap
  churn with C-level ``list.sort`` while preserving the exact
  ``(time, seq)`` dispatch order.
* **Checkpointed (adaptive) execution replayed from arrays.**  An
  ``adaptive=`` run's stop rules read only monotone counters (injected/
  delivered counts, the latency sample's count and sum) at fixed
  checkpoint times; :func:`_run_adaptive` recovers every checkpoint
  snapshot from the kernel's delivery arrays with ``searchsorted`` and
  replays :func:`repro.core.adaptive.execute_adaptive`'s decision loop
  float-for-float, so stop reasons, stop times, knees and early-stop
  results are bit-identical to the scalar adaptive path.

Every network the sweeps drive — HERMES's snoopy broadcast included —
has a registered kernel; ``fallback_networks()`` is empty.  The backend
is **opt-in** (``run_load_point(..., backend="vectorized")``) and falls
back to the scalar engine — silently, with identical results — whenever
exactness would require the real event loop: a tracer is attached,
invariant checking is on, the legacy ``rng_block=0`` draw path is
selected, numpy is unavailable, or the network has no registered
kernel.  The equivalence contract — bit-equal
:class:`~repro.core.sweep.LoadPointResult` fields and byte-identical
canonical traces — is locked by ``tests/test_fastpath_equivalence.py``.

numpy itself is an *optional* dependency (``pip install repro[fast]``):
without it every request degrades gracefully to the python backend and
:func:`require_numpy` explains how to enable the fast path.
"""

from __future__ import annotations

import math
import warnings
from itertools import accumulate
from typing import Any, Callable, Dict, List, NamedTuple, Optional

try:  # pragma: no cover - exercised by CI's numpy-less tier-1 matrix
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: the numpy module when available, else None — kernels must only be
#: invoked when this is not None (``try_run_vectorized`` guarantees it)
np = _np

NUMPY_HINT = (
    "the vectorized backend needs numpy, which is an optional extra: "
    "install it with `pip install repro[fast]` (or `pip install numpy`). "
    "Without it, backend='vectorized' falls back to the exact python "
    "engine — same results, scalar speed."
)


def have_numpy() -> bool:
    """True when numpy imported and bulk kernels can run."""
    return np is not None


def require_numpy() -> None:
    """Raise ``ImportError`` with the install hint when numpy is absent.

    Used by callers for whom silent fallback would be misleading (the
    vectorized benchmark, for one: comparing python vs python proves
    nothing).  Library paths never call this — they degrade gracefully.
    """
    if np is None:
        raise ImportError(NUMPY_HINT)


#: network-key -> kernel registry.  Kernels are registered by the
#: network modules at import time (the factory imports them all), so any
#: network reachable through ``build_network`` has had the chance to
#: register.  A kernel takes ``(net, plan)`` — a built network instance
#: (cold or reset warm context; only derived constants and interned
#: tables are read, no events ever run through it) and an
#: :class:`InjectionPlan` — and returns a :class:`KernelOutput`.
_KERNELS: Dict[str, Callable[..., "KernelOutput"]] = {}

#: network-key -> human-readable reason for networks that deliberately
#: have no kernel and always use the scalar engine
_FALLBACKS: Dict[str, str] = {}


def register_kernel(name: str):
    """Class of decorators: ``@register_kernel("point_to_point")``."""

    def deco(fn):
        _KERNELS[name] = fn
        return fn

    return deco


def register_fallback(name: str, reason: str) -> None:
    """Declare that ``name`` intentionally has no vectorized kernel."""
    _FALLBACKS[name] = reason


def vectorized_networks() -> List[str]:
    """Sorted network keys with a registered bulk/replay kernel."""
    return sorted(_KERNELS)


def fallback_networks() -> Dict[str, str]:
    """Networks that declared a deliberate scalar fallback, with why."""
    return dict(_FALLBACKS)


class KernelOutput(NamedTuple):
    """What a kernel hands back for shared result assembly.

    ``deliver_t``/``deliver_inject`` hold one entry per *scheduled*
    deliver event — including those past the horizon, which the engine
    would have left undispatched; the assembler applies the horizon.
    ``heap_events`` counts every dispatched non-deliver event (the
    injector chain included) and ``heap_pending`` whether any
    non-deliver event remained queued past the horizon.

    ``last_event_ps`` is the dispatch time of the *last* non-deliver
    event — kernels dispatch in time order, so it is also the maximum.
    Only read when ``heap_pending`` is False (the adaptive executor's
    queue-empty test needs the instant the event population is
    exhausted); kernels with an undispatched tail may leave it at any
    value.
    """

    heap_events: int
    heap_pending: bool
    deliver_t: Any  # sequence of int delivery times (list or ndarray)
    deliver_inject: Any  # matching injection times
    injected: int
    last_event_ps: int = 0


class InjectionPlan:
    """The injection schedule plus run geometry a kernel consumes.

    Built once per load point from the *same* per-site gap/destination
    draws the scalar path uses (see ``repro.core.sweep``), so the
    absolute arrival times — plain prefix sums of the gap lists — are
    bit-identical to what the scalar injector chain would produce.

    ``scratch`` is the per-process kernel scratch arena for this run's
    warm context (None on cold runs): a plain dict keyed by kernel-chosen
    names where kernels park reusable allocations (e.g. the calendar
    bucket arrays) across the load points of a sweep.  Kernels must
    return parked state in as-new condition — reuse is a pure allocation
    amortization, never a results channel.
    """

    __slots__ = ("num_sites", "pps", "packet_bytes", "horizon_ps",
                 "warmup_ps", "window_end_ps", "site_gaps", "site_dsts",
                 "scratch", "_times_list", "_times_np")

    def __init__(self, num_sites: int, pps: int, packet_bytes: int,
                 horizon_ps: int, warmup_ps: int, window_end_ps: int,
                 site_gaps: List[List[int]],
                 site_dsts: List[List[int]],
                 scratch: Optional[dict] = None) -> None:
        self.num_sites = num_sites
        self.pps = pps
        self.packet_bytes = packet_bytes
        self.horizon_ps = horizon_ps
        self.warmup_ps = warmup_ps
        self.window_end_ps = window_end_ps
        self.site_gaps = site_gaps
        self.site_dsts = site_dsts
        self.scratch = scratch
        self._times_list: Optional[List[List[int]]] = None
        self._times_np = None

    @property
    def site_times(self) -> List[List[int]]:
        """Absolute injection times per site (exact Python ints)."""
        if self._times_list is None:
            self._times_list = [list(accumulate(gaps[: self.pps]))
                                for gaps in self.site_gaps]
        return self._times_list

    @property
    def site_times_np(self):
        """The same schedules as per-site int64 arrays (bulk kernels)."""
        if self._times_np is None:
            self._times_np = [np.asarray(times, dtype=np.int64)
                              for times in self.site_times]
        return self._times_np


def pair_propagation_table(layout) -> List[int]:
    """Flat ``src*n+dst`` optical propagation table for a layout.

    The same per-pair values every network's lazy lookups resolve to
    (``layout.propagation_delay_ps``); fully materialized and interned
    per layout so kernels gather from one shared list.
    """
    from .interning import intern_table

    n = layout.num_sites
    return intern_table(
        ("vec-pair-prop", layout),
        lambda: [layout.propagation_delay_ps(s, d)
                 for s in range(n) for d in range(n)])


#: call sites ("sweep" / "adaptive" / "campaign") already warned about a
#: missing numpy — the fallback decision is reported once per site so
#: silent-fallback debugging names where the resolution happened
_warned_no_numpy: set = set()


def warn_numpy_fallback(call_site: str, stacklevel: int = 3) -> None:
    """Warn (once per call site) that ``backend='vectorized'`` resolved
    to the scalar python engine because numpy is missing.  The message
    names the call site that made the decision — sweep load point,
    adaptive load point, or campaign construction — so the resolution
    is diagnosable without reading this module."""
    if call_site in _warned_no_numpy:
        return
    _warned_no_numpy.add(call_site)
    warnings.warn(
        "%s [backend='vectorized' requested at call site %r; resolved "
        "backend: python]" % (NUMPY_HINT, call_site),
        RuntimeWarning, stacklevel=stacklevel + 1)


#: per-process kernel scratch arenas, keyed by the warm-context
#: fingerprint (repro.core.parallel._context_key): kernels reuse
#: preallocated structures (calendar bucket arrays, ...) across the load
#: points of a sweep instead of reallocating per point
_SCRATCH: Dict[Any, dict] = {}


def kernel_scratch(key: Any) -> dict:
    """The per-process scratch dict for a warm-context fingerprint."""
    scratch = _SCRATCH.get(key)
    if scratch is None:
        scratch = _SCRATCH[key] = {}
    return scratch


def clear_kernel_scratch() -> int:
    """Drop every kernel scratch arena (tests / memory pressure)."""
    n = len(_SCRATCH)
    _SCRATCH.clear()
    return n


def try_run_vectorized(network_name: str,
                       config,
                       pattern,
                       offered_fraction: float,
                       packet_bytes: int,
                       inject_window_ps: int,
                       packets_per_site: int,
                       warmup_ps: int,
                       horizon_ps: int,
                       site_gaps: Optional[List[List[int]]],
                       site_dsts: Optional[List[List[int]]],
                       network_kwargs: Optional[dict],
                       warm: bool,
                       tracer,
                       check_invariants: bool,
                       adaptive,
                       saturation_threshold: float,
                       call_site: str = "sweep"):
    """Run one load point through a registered kernel, or return None.

    ``None`` means "use the scalar engine" — either numpy is missing,
    the run needs real event dispatch (tracer / invariants / legacy
    ``rng_block=0`` draws), or the network has no kernel.  The fallback
    is silent by design (except the once-per-call-site missing-numpy
    warning): results are identical either way, and the sweep drivers
    pass ``backend=`` through unconditionally.

    ``adaptive`` (an :class:`~repro.core.adaptive.AdaptiveConfig`) runs
    the checkpointed executor's decision loop over the kernel's arrays
    (see :func:`_run_adaptive`) — stop reasons, stop times and results
    bit-identical to the scalar adaptive path.
    """
    if np is None:
        warn_numpy_fallback(call_site)
        return None
    if tracer is not None or check_invariants:
        return None
    if site_gaps is None or site_dsts is None:  # rng_block=0 legacy path
        return None
    kernel = _KERNELS.get(network_name)
    if kernel is None:
        return None

    scratch = None
    if warm:
        from .parallel import _context_key, get_context

        net = get_context(network_name, config, warmup_ps,
                          network_kwargs=network_kwargs).network
        scratch = kernel_scratch(
            _context_key(network_name, config, warmup_ps, network_kwargs))
    else:
        from .engine import Simulator
        from ..networks.factory import build_network

        net = build_network(network_name, config, Simulator(),
                            warmup_ps=warmup_ps, **(network_kwargs or {}))

    plan = InjectionPlan(config.num_sites, packets_per_site, packet_bytes,
                         horizon_ps, warmup_ps, inject_window_ps,
                         site_gaps, site_dsts, scratch=scratch)
    out = kernel(net, plan)
    if adaptive is not None:
        return _run_adaptive(network_name, pattern.name, offered_fraction,
                             packet_bytes, plan, out, kernel, net,
                             adaptive, saturation_threshold)
    return _assemble_result(network_name, pattern.name, offered_fraction,
                            packet_bytes, plan, out, saturation_threshold)


def _assemble_result(network_name: str, pattern_name: str,
                     offered_fraction: float, packet_bytes: int,
                     plan: InjectionPlan, out: KernelOutput,
                     saturation_threshold: float):
    """Fold a kernel's delivery arrays into a LoadPointResult.

    Every arithmetic step mirrors the scalar collectors operation for
    operation — integer sums, ``(sum / n) / 1000.0`` mean, nearest-rank
    percentile over sorted *distinct* values, ``bytes * 1000.0 /
    max(1, last - warmup)`` throughput — so the floats come out
    bit-equal, not merely close.
    """
    from .sweep import LoadPointResult

    horizon = plan.horizon_ps
    warmup = plan.warmup_ps
    window_end = plan.window_end_ps

    dt = np.asarray(out.deliver_t, dtype=np.int64)
    di = np.asarray(out.deliver_inject, dtype=np.int64)
    pending = out.heap_pending
    delivered = 0
    mean_lat = float("nan")
    p99 = float("nan")
    throughput = 0.0
    if dt.size:
        dispatched = dt <= horizon
        delivered = int(dispatched.sum())
        if delivered < dt.size:
            pending = True
        # measurement window [warmup, window_end]; window_end <= horizon
        # always (drain_factor >= 0), so in-window implies dispatched
        in_window = (dt >= warmup) & (dt <= window_end)
        n_in = int(in_window.sum())
        if n_in:
            lat = dt[in_window] - di[in_window]
            lat_sum = int(lat.sum())
            mean_lat = (lat_sum / n_in) / 1000.0
            rank = max(1, int(math.ceil(99.0 / 100.0 * n_in)))
            values, counts = np.unique(lat, return_counts=True)
            cum = np.cumsum(counts)
            p99 = int(values[int(np.searchsorted(cum, rank))]) / 1000.0
            last = int(dt[in_window].max())
            throughput = (n_in * packet_bytes) * 1000.0 / max(
                1, last - warmup)

    events = out.heap_events + delivered
    saturated = delivered < out.injected * saturation_threshold
    return LoadPointResult(
        network=network_name,
        pattern=pattern_name,
        offered_fraction=offered_fraction,
        mean_latency_ns=mean_lat,
        p99_latency_ns=p99,
        throughput_gb_per_s=throughput,
        delivered_packets=delivered,
        injected_packets=out.injected,
        saturated=saturated,
        events_dispatched=events,
        stop_reason="horizon" if pending else "drained",
        stopped_at_ps=horizon,
    )


def _run_adaptive(network_name: str, pattern_name: str,
                  offered_fraction: float, packet_bytes: int,
                  plan: InjectionPlan, out: KernelOutput, kernel, net,
                  cfg, saturation_threshold: float):
    """Replay the checkpointed executor's decision loop over kernel output.

    The scalar adaptive path (:func:`repro.core.adaptive.execute_adaptive`)
    steps the simulator in horizon slices and evaluates its stop rules
    from monotone counters: injected/delivered packet counts, the
    latency collector's count and sum, and the queue-empty test.  All of
    those are pure functions of *which events have dispatched by the
    checkpoint time* — so instead of stepping an event loop, this
    replays the decision loop over the kernel's arrays: per-checkpoint
    counter snapshots come from ``searchsorted`` on the sorted delivery/
    injection times, and every float expression is evaluated in exactly
    the order the scalar executor evaluates it, so the stop decisions
    (reason *and* checkpoint) are bit-identical.

    When no rule fires the run is exactly the fixed-window run (the
    scalar executor's slicing dispatches the same events in the same
    order), so the ordinary assembler produces the result.  When a rule
    fires at checkpoint ``c``, the early-stop result needs the event
    count the scalar run would have dispatched by ``c`` — the kernel is
    re-run with ``horizon_ps = c``: dispatch order is a pure function of
    ``(time, seq)``, so the events at or before ``c`` are a prefix and
    the truncated replay dispatches exactly them.
    """
    horizon = plan.horizon_ps
    window = plan.window_end_ps
    warmup = plan.warmup_ps
    planned = plan.num_sites * plan.pps
    slice_ps = max(1, int(window * cfg.slice_fraction))

    dt = np.asarray(out.deliver_t, dtype=np.int64)
    di = np.asarray(out.deliver_inject, dtype=np.int64)
    order = np.argsort(dt, kind="stable")
    dt_sorted = dt[order]
    lat_sorted = (dt - di)[order]
    in_win = (dt_sorted >= warmup) & (dt_sorted <= window)
    win_dt = dt_sorted[in_win]  # ascending: latency-collector feed order
    win_lat = lat_sorted[in_win]
    win_cum = np.cumsum(win_lat)
    inj_sorted = np.sort(np.concatenate(plan.site_times_np)) \
        if plan.num_sites else np.empty(0, dtype=np.int64)

    # the instant the event queue empties, or None if events (deliver or
    # otherwise) outlive the horizon and it never does
    empty_at = None
    if not out.heap_pending and (dt.size == 0
                                 or int(dt_sorted[-1]) <= horizon):
        empty_at = max(out.last_event_ps,
                       int(dt_sorted[-1]) if dt.size else 0)

    sat_deficit = (1.0 - saturation_threshold) * planned
    batch_means: List[float] = []
    prev_count = 0
    prev_sum = 0
    prev_backlog: Optional[int] = None
    prev_delivered = 0
    streak = 0
    stop_reason = None
    now = 0
    while now < horizon:
        now = min(now + slice_ps, horizon)
        if empty_at is not None and empty_at <= now:
            # queue empty at this checkpoint: the scalar executor
            # returns ('drained', horizon) with the full event count —
            # exactly the fixed-window result
            return _assemble_result(network_name, pattern_name,
                                    offered_fraction, packet_bytes, plan,
                                    out, saturation_threshold)

        delivered = int(np.searchsorted(dt_sorted, now, side="right"))
        injected_now = int(np.searchsorted(inj_sorted, now, side="right"))
        past_warmup = now > warmup
        backlog = injected_now - delivered
        delivery_rate = (delivered - prev_delivered) / slice_ps
        remaining = planned - injected_now
        inject_left = max(0, window - now)
        drain_left = horizon - max(now, window)

        if cfg.saturation_abort and past_warmup:
            capacity = (delivery_rate * inject_left
                        + cfg.drain_rate_factor * delivery_rate
                        * drain_left)
            if now <= window:
                growing = prev_backlog is not None and backlog > prev_backlog
            else:
                growing = True
            proven = (
                injected_now >= cfg.min_abort_injected
                and backlog + remaining - capacity
                > cfg.abort_margin * sat_deficit)
            streak = streak + 1 if (proven and growing) else 0
            if streak >= cfg.abort_streak:
                stop_reason = "saturated"
                break

        prev_backlog = backlog
        prev_delivered = delivered

        if (cfg.convergence_stop and past_warmup
                and planned >= cfg.min_converge_planned):
            count = int(np.searchsorted(win_dt, now, side="right"))
            delta_n = count - prev_count
            if delta_n > 0:
                total = int(win_cum[count - 1]) if count else 0
                batch_means.append((total - prev_sum) / delta_n)
                prev_count, prev_sum = count, total
                clears = (backlog + remaining
                          - delivery_rate * (inject_left + drain_left)
                          <= 0.0)
                if len(batch_means) >= cfg.min_batches and clears:
                    k = len(batch_means)
                    grand = sum(batch_means) / k
                    var = sum((b - grand) ** 2
                              for b in batch_means) / (k - 1)
                    half_width = cfg.confidence_z * math.sqrt(var / k)
                    if grand > 0 and half_width <= cfg.rel_precision * grand:
                        stop_reason = "converged"
                        break

    if stop_reason is None:
        # no rule fired and the queue never emptied at a checkpoint: the
        # scalar executor returns ('horizon', horizon) having dispatched
        # every in-horizon event — the fixed-window result again
        return _assemble_result(network_name, pattern_name,
                                offered_fraction, packet_bytes, plan,
                                out, saturation_threshold)

    # early stop at checkpoint `now`: re-run the kernel truncated at the
    # stop time for the prefix event count, and read the stop-time stats
    # snapshots off the same sorted arrays
    from .sweep import LoadPointResult

    truncated = InjectionPlan(plan.num_sites, plan.pps, packet_bytes,
                              now, warmup, window,
                              plan.site_gaps, plan.site_dsts,
                              scratch=plan.scratch)
    delivered = int(np.searchsorted(dt_sorted, now, side="right"))
    injected_now = int(np.searchsorted(inj_sorted, now, side="right"))
    events = kernel(net, truncated).heap_events + delivered

    count = int(np.searchsorted(win_dt, now, side="right"))
    mean_lat = float("nan")
    p99 = float("nan")
    throughput = 0.0
    if count:
        lat_sum = int(win_cum[count - 1])
        mean_lat = (lat_sum / count) / 1000.0
        rank = max(1, int(math.ceil(99.0 / 100.0 * count)))
        values, counts = np.unique(win_lat[:count], return_counts=True)
        cum = np.cumsum(counts)
        p99 = int(values[int(np.searchsorted(cum, rank))]) / 1000.0
        last = int(win_dt[count - 1])
        throughput = (count * packet_bytes) * 1000.0 / max(1, last - warmup)

    return LoadPointResult(
        network=network_name,
        pattern=pattern_name,
        offered_fraction=offered_fraction,
        mean_latency_ns=mean_lat,
        p99_latency_ns=p99,
        throughput_gb_per_s=throughput,
        delivered_packets=delivered,
        injected_packets=injected_now,
        saturated=stop_reason == "saturated",
        events_dispatched=events,
        stop_reason=stop_reason,
        stopped_at_ps=now,
    )


def fifo_channel_delivery(np_mod, key, t, tx: int, prop):
    """Closed-form per-channel FIFO service for channel networks.

    ``key`` assigns each send to its channel, ``t`` is the send time
    (both int64 arrays in any order), ``tx`` the (shared) serialization
    time, ``prop[key]`` the per-channel propagation.  Returns
    ``(deliver_times, order)`` where ``order`` is the stable sort
    permutation applied — gather any per-packet auxiliary array (e.g.
    injection times) through it to stay aligned with ``deliver_times``.

    The engine's ``Channel.send`` recurrence is
    ``finish_i = max(t_i, finish_{i-1}) + tx`` per channel in dispatch
    order.  Substituting ``g_i = finish_i - tx*(i+1)`` (local index)
    turns it into a running maximum ``g_i = max(t_i - tx*i, g_{i-1})``,
    which a segmented cumulative maximum evaluates for every channel at
    once.  The stable sort preserves each channel's dispatch order
    (send times are non-decreasing per channel by construction).
    """
    np = np_mod
    order = np.argsort(key, kind="stable")
    sk = key[order]
    st = t[order]
    n_tot = sk.shape[0]
    boundaries = np.empty(n_tot, dtype=bool)
    boundaries[0] = True
    np.not_equal(sk[1:], sk[:-1], out=boundaries[1:])
    seg_ids = np.cumsum(boundaries) - 1
    first_idx = np.flatnonzero(boundaries)
    local = np.arange(n_tot, dtype=np.int64) - first_idx[seg_ids]
    v = st - tx * local
    span = int(v.max()) - int(v.min()) + 1
    bumped = v + seg_ids * span
    run_max = np.maximum.accumulate(bumped) - seg_ids * span
    finish = run_max + tx * (local + 1)
    return finish + prop[sk], order
