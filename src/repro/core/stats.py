"""Statistics collection for network and system simulations.

Provides:

* :class:`LatencySample` — streaming mean/min/max/percentile collector.
* :class:`ThroughputMeter` — bytes delivered inside a measurement window,
  with warmup exclusion.
* :class:`NetworkStats` — the bundle every network run produces: per-packet
  latency, delivered bytes, energy counters.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from .units import to_ns


class LatencySample:
    """Streaming latency statistics (values in picoseconds).

    Observations are binned into an exact-value histogram: insertion is
    one O(1) bucket increment (plus running sum and min/max updates), and
    nearest-rank percentiles walk the sorted *distinct* values — typically
    far fewer than the raw observation count — so exact percentiles stay
    available without retaining (or re-sorting) every sample.
    """

    __slots__ = ("_counts", "_n", "_sum", "_min", "_max")

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._n = 0
        self._sum = 0
        self._min: Optional[int] = None
        self._max: Optional[int] = None

    def reset(self) -> None:
        """Drop every observation (in place; the histogram dict is kept
        so a long-lived collector does not thrash the allocator)."""
        self._counts.clear()
        self._n = 0
        self._sum = 0
        self._min = None
        self._max = None

    def add(self, value_ps: int) -> None:
        """Record one latency observation."""
        counts = self._counts
        counts[value_ps] = counts.get(value_ps, 0) + 1
        self._n += 1
        self._sum += value_ps
        if self._min is None or value_ps < self._min:
            self._min = value_ps
        if self._max is None or value_ps > self._max:
            self._max = value_ps

    def __len__(self) -> int:
        return self._n

    @property
    def count(self) -> int:
        return self._n

    @property
    def sum_ps(self) -> int:
        """Running sum of all observations, in picoseconds.  Together
        with :attr:`count` this lets checkpointed readers (the adaptive
        executor's batch-means test) compute the mean of any
        inter-checkpoint span as a pair of O(1) snapshot deltas."""
        return self._sum

    @property
    def mean_ps(self) -> float:
        if not self._n:
            return float("nan")
        return self._sum / self._n

    @property
    def mean_ns(self) -> float:
        return self.mean_ps / 1000.0

    @property
    def min_ps(self) -> int:
        if self._min is None:
            raise ValueError("no samples recorded")
        return self._min

    @property
    def max_ps(self) -> int:
        if self._max is None:
            raise ValueError("no samples recorded")
        return self._max

    @property
    def max_ns(self) -> float:
        return self.max_ps / 1000.0

    def percentile_ps(self, pct: float) -> int:
        """Exact percentile (nearest-rank) of recorded latencies."""
        if not self._n:
            raise ValueError("no samples recorded")
        if not 0.0 <= pct <= 100.0:
            raise ValueError("percentile must be in [0, 100], got %r" % pct)
        rank = max(1, int(math.ceil(pct / 100.0 * self._n)))
        seen = 0
        for value in sorted(self._counts):
            seen += self._counts[value]
            if seen >= rank:
                return value
        return self._max  # pragma: no cover - rank <= n guarantees a hit

    def percentile_ns(self, pct: float) -> float:
        return self.percentile_ps(pct) / 1000.0


class StreamingLatency:
    """Bounded-memory online latency collector.

    API-compatible with :class:`LatencySample` (``add``/``reset``/
    ``mean_ps``/``percentile_ps``/...), but its histogram memory is
    capped: observations are binned at ``bucket_ps`` resolution and,
    whenever the number of live buckets exceeds ``max_buckets``, the
    resolution doubles and existing buckets merge in place.  Count, sum
    (hence mean), min and max stay *exact* integers forever — only
    percentile resolution coarsens — so a multi-million-packet replay
    runs in flat memory.

    At the defaults (``bucket_ps=1``, no cap) nothing ever coarsens and
    the collector is bit-identical to :class:`LatencySample`: same
    buckets, same nearest-rank percentiles, same sums.  That identity is
    what lets :class:`NetworkStats` accept either collector
    interchangeably (see its ``latency`` parameter) and is pinned by the
    differential tests.

    Percentiles return the *lower bound* of the nearest-rank bucket —
    exact at 1 ps resolution, conservative (never above the true value
    by more than ``bucket_ps - 1``) after coarsening.
    """

    __slots__ = ("_counts", "_n", "_sum", "_min", "_max", "bucket_ps",
                 "max_buckets", "_initial_bucket_ps")

    def __init__(self, bucket_ps: int = 1,
                 max_buckets: Optional[int] = None) -> None:
        if bucket_ps < 1:
            raise ValueError("bucket width must be >= 1 ps")
        if max_buckets is not None and max_buckets < 2:
            raise ValueError("need at least 2 buckets to coarsen into")
        self.bucket_ps = int(bucket_ps)
        self._initial_bucket_ps = self.bucket_ps
        self.max_buckets = max_buckets
        self._counts: Dict[int, int] = {}
        self._n = 0
        self._sum = 0
        self._min: Optional[int] = None
        self._max: Optional[int] = None

    def reset(self) -> None:
        """Drop every observation and restore the as-constructed bucket
        resolution (a coarsened collector re-coarsens only if the next
        run needs it)."""
        self._counts.clear()
        self._n = 0
        self._sum = 0
        self._min = None
        self._max = None
        self.bucket_ps = self._initial_bucket_ps

    def add(self, value_ps: int) -> None:
        counts = self._counts
        width = self.bucket_ps
        bucket = value_ps if width == 1 else value_ps - value_ps % width
        counts[bucket] = counts.get(bucket, 0) + 1
        self._n += 1
        self._sum += value_ps
        if self._min is None or value_ps < self._min:
            self._min = value_ps
        if self._max is None or value_ps > self._max:
            self._max = value_ps
        if self.max_buckets is not None and len(counts) > self.max_buckets:
            self._coarsen()

    def _coarsen(self) -> None:
        """Double the bucket width (possibly repeatedly) until the live
        bucket count fits the cap again."""
        while len(self._counts) > self.max_buckets:
            self.bucket_ps *= 2
            width = self.bucket_ps
            merged: Dict[int, int] = {}
            for bucket, count in self._counts.items():
                low = bucket - bucket % width
                merged[low] = merged.get(low, 0) + count
            self._counts = merged

    def __len__(self) -> int:
        return self._n

    @property
    def count(self) -> int:
        return self._n

    @property
    def sum_ps(self) -> int:
        return self._sum

    @property
    def mean_ps(self) -> float:
        if not self._n:
            return float("nan")
        return self._sum / self._n

    @property
    def mean_ns(self) -> float:
        return self.mean_ps / 1000.0

    @property
    def min_ps(self) -> int:
        if self._min is None:
            raise ValueError("no samples recorded")
        return self._min

    @property
    def max_ps(self) -> int:
        if self._max is None:
            raise ValueError("no samples recorded")
        return self._max

    @property
    def max_ns(self) -> float:
        return self.max_ps / 1000.0

    def percentile_ps(self, pct: float) -> int:
        """Nearest-rank percentile over the bucketed histogram (exact
        while ``bucket_ps == 1``)."""
        if not self._n:
            raise ValueError("no samples recorded")
        if not 0.0 <= pct <= 100.0:
            raise ValueError("percentile must be in [0, 100], got %r" % pct)
        rank = max(1, int(math.ceil(pct / 100.0 * self._n)))
        seen = 0
        for value in sorted(self._counts):
            seen += self._counts[value]
            if seen >= rank:
                return value
        return self._max  # pragma: no cover - rank <= n guarantees a hit

    def percentile_ns(self, pct: float) -> float:
        return self.percentile_ps(pct) / 1000.0

    @property
    def live_buckets(self) -> int:
        """Histogram entries currently held — the bounded quantity."""
        return len(self._counts)


class ThroughputMeter:
    """Measures delivered bytes inside ``[warmup_ps, window_end_ps]``.

    ``window_end_ps`` (optional) bounds the measurement window so the
    post-injection drain of a saturated run does not dilute the sustained
    rate; deliveries after it are ignored.
    """

    __slots__ = ("warmup_ps", "window_end_ps", "_bytes", "_first_ps",
                 "_last_ps", "_packets")

    def __init__(self, warmup_ps: int = 0,
                 window_end_ps: Optional[int] = None) -> None:
        self.warmup_ps = warmup_ps
        self.window_end_ps = window_end_ps
        self._bytes = 0
        self._packets = 0
        self._first_ps: Optional[int] = None
        self._last_ps: Optional[int] = None

    def reset(self, window_end_ps: Optional[int] = None) -> None:
        """Zero the meter; ``window_end_ps`` restores the measurement
        window (warm-start runs set it per run anyway, exactly as the
        sweep harness does after constructing fresh stats)."""
        self.window_end_ps = window_end_ps
        self._bytes = 0
        self._packets = 0
        self._first_ps = None
        self._last_ps = None

    def record(self, time_ps: int, size_bytes: int) -> None:
        if time_ps < self.warmup_ps:
            return
        if self.window_end_ps is not None and time_ps > self.window_end_ps:
            return
        self._bytes += size_bytes
        self._packets += 1
        if self._first_ps is None:
            self._first_ps = time_ps
        self._last_ps = time_ps

    @property
    def bytes(self) -> int:
        return self._bytes

    @property
    def packets(self) -> int:
        return self._packets

    def bytes_per_ns(self, end_ps: Optional[int] = None) -> float:
        """Delivered bandwidth over the measurement interval, in bytes/ns
        (numerically equal to GB/s)."""
        if self._first_ps is None:
            return 0.0
        last = end_ps if end_ps is not None else self._last_ps
        assert last is not None
        span = max(1, last - self.warmup_ps)
        return self._bytes * 1000.0 / span


class EnergyAccount:
    """Accumulates dynamic energy by category, in picojoules."""

    __slots__ = ("_by_category",)

    def __init__(self) -> None:
        self._by_category: Dict[str, float] = {}

    def reset(self) -> None:
        self._by_category.clear()

    def add(self, category: str, picojoules: float) -> None:
        self._by_category[category] = self._by_category.get(category, 0.0) + picojoules

    def get(self, category: str) -> float:
        return self._by_category.get(category, 0.0)

    @property
    def total_pj(self) -> float:
        return sum(self._by_category.values())

    def categories(self) -> Dict[str, float]:
        return dict(self._by_category)


class NetworkStats:
    """Everything a single network run records.

    Latency sampling and the throughput meter share one measurement
    window ``[warmup_ps, window_end_ps]`` (set ``window_end_ps`` through
    :attr:`throughput`): deliveries during the post-window drain count
    toward ``delivered_packets`` but are excluded from *both* meters, so
    a saturated run's drain can neither dilute the sustained rate nor
    inflate mean/p99 latency.
    """

    def __init__(self, warmup_ps: int = 0,
                 window_end_ps: Optional[int] = None,
                 latency=None) -> None:
        #: Latency collector — :class:`LatencySample` by default, but any
        #: object with its add/reset/mean/percentile surface works; pass a
        #: :class:`StreamingLatency` to cap histogram memory on runs with
        #: millions of packets.
        self.latency = latency if latency is not None else LatencySample()
        self.throughput = ThroughputMeter(warmup_ps, window_end_ps)
        self.energy = EnergyAccount()
        self.injected_packets = 0
        self.delivered_packets = 0
        self.dropped_packets = 0
        # remembered so reset() restores the as-constructed window even
        # after a run has moved throughput.window_end_ps
        self._constructed_window_end_ps = window_end_ps

    def reset(self) -> None:
        """Return to freshly-constructed state (same warmup and window
        as the constructor call) so one instance can serve every load
        point of a warm-start sweep."""
        self.latency.reset()
        self.throughput.reset(self._constructed_window_end_ps)
        self.energy.reset()
        self.injected_packets = 0
        self.delivered_packets = 0
        self.dropped_packets = 0

    @property
    def in_flight(self) -> int:
        """Packets accepted but not yet delivered (or dropped).  A fully
        drained run must end at zero; the invariant checkers
        (:mod:`repro.core.invariants`) cross-validate this against the
        recorded trace."""
        return self.injected_packets - self.delivered_packets - self.dropped_packets

    def on_inject(self) -> None:
        self.injected_packets += 1

    def on_deliver(self, now_ps: int, inject_ps: int, size_bytes: int) -> None:
        self.delivered_packets += 1
        window_end = self.throughput.window_end_ps
        if (now_ps >= self.throughput.warmup_ps
                and (window_end is None or now_ps <= window_end)):
            self.latency.add(now_ps - inject_ps)
        self.throughput.record(now_ps, size_bytes)

    def summary(self) -> Dict[str, float]:
        """A plain-dict summary convenient for tables and tests."""
        return {
            "injected": self.injected_packets,
            "delivered": self.delivered_packets,
            "mean_latency_ns": self.latency.mean_ns if len(self.latency) else float("nan"),
            "p99_latency_ns": (
                self.latency.percentile_ns(99.0) if len(self.latency) else float("nan")
            ),
            "throughput_gbps": self.throughput.bytes_per_ns(),
            "energy_pj": self.energy.total_pj,
        }


def mean(values: List[float]) -> float:
    """Arithmetic mean; NaN for an empty list (explicit, non-raising)."""
    if not values:
        return float("nan")
    return sum(values) / len(values)


def format_ns(ps: int) -> str:
    """Human-readable time: '12.8 ns'."""
    return "%.1f ns" % to_ns(ps)
