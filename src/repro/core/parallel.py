"""Process-parallel execution of independent simulation shards.

The experiment grid behind the paper's evaluation — load points in a
Figure 6 sweep, (workload, network) replay pairs in Figures 7-10 — is
embarrassingly parallel: every simulation is independent, seeded, and
returns a small result record.  This module provides the shared harness
that shards such grids across worker processes:

* :func:`derive_seed` — stable, collision-resistant derivation of
  per-shard (and per-site) RNG streams from one base seed, so a shard
  produces *bit-identical* results no matter which worker runs it, in
  what order, or whether it runs in-process.
* :class:`Shard` — one picklable unit of work (a module-level callable
  plus arguments).
* :func:`run_sharded` — execute a list of shards on a pluggable
  :class:`Executor` backend, returning results in submission order
  together with per-shard telemetry (:class:`ShardReport`).
* :class:`Executor` / :class:`SerialExecutor` / :class:`PoolExecutor` /
  :class:`RemoteExecutor` — the executor layer: serial in-process, local
  ``multiprocessing`` pool, and a documented-contract stub for remote
  socket workers.  Every backend is *fault-tolerant*: a raising shard, a
  vanished (OOM-killed, crashed) worker, or a hung shard degrades to a
  per-shard :class:`ShardError` result slot — never a run-wide abort
  that loses the completed results.
* :class:`WorkerPool` — a persistent pool of worker processes that lives
  *across* ``run_sharded`` calls (pass it as ``pool=``), so a multi-call
  driver (figure sweeps, campaigns, benchmarks) pays process spin-up
  once instead of per call.
* :class:`SimContext` / :func:`get_context` — the warm-start context
  registry: one constructed ``(network, config)`` simulation instance
  per process, keyed by config fingerprint and reset between uses, so an
  entire sweep reuses one network instead of rebuilding channels and
  derived tables per load point (see ``repro.core.sweep``, ``warm=``).
  The registry is LRU-bounded (:func:`set_context_cache_limit`) so
  long-lived workers never grow it without limit.

Determinism contract
--------------------
``run_sharded`` guarantees that the *results* list is a pure function of
the shards themselves: execution order, worker count, start method, the
executor backend, retries, and worker deaths never leak into it.  Shard
callables must therefore derive any randomness from their own arguments
(see :func:`derive_seed`) and must not mutate shared state.  This is
what makes fault tolerance cheap: a shard re-executed after its worker
vanished — on a rebuilt pool or serially in the parent — is
*bit-identical* to the run that was lost, so recovery never needs to
checkpoint partial simulation state, only to re-run the shard.  A shard
that fails identically on every attempt yields the same
:class:`ShardError` slot under any backend.  Telemetry (wall-clock,
pids, attempt counts) is reported separately and is explicitly *not*
deterministic.

Error policy
------------
Every executor applies the same per-shard policy (``on_error=``):

* ``'raise'`` (default) — re-raise the first shard exception in the
  caller, matching the historical behavior;
* ``'collect'`` — store a :class:`ShardError` in the failing shard's
  result slot and keep going: a 1000-shard campaign with one bad shard
  returns 999 results plus one structured failure record;
* ``'retry'`` — re-execute the failing shard up to ``max_retries``
  times (bit-identical by the determinism contract), then collect.

``timeout_s`` bounds each shard's execution on pool backends: a shard
that exceeds it is recorded as a ``'timeout'`` :class:`ShardError`, the
hung worker is destroyed, and the pool is rebuilt (timeouts are never
retried — a deterministic hang would just hang again).  The serial
backend cannot preempt in-process work and documents ``timeout_s`` as
best-effort-ignored.
"""

from __future__ import annotations

import hashlib
import math
import os
import pickle
import threading
import time
import traceback as _traceback
import warnings
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Sequence, Set,
                    Tuple)

__all__ = [
    "available_cpus",
    "clear_contexts",
    "context_cache_limit",
    "derive_seed",
    "get_context",
    "resolve_workers",
    "set_context_cache_limit",
    "ErrorPolicy",
    "Executor",
    "PoolExecutor",
    "RemoteExecutor",
    "SerialExecutor",
    "Shard",
    "ShardError",
    "ShardExecutionError",
    "ShardReport",
    "ShardTimeoutError",
    "ShardedRun",
    "SimContext",
    "run_sharded",
    "WorkerPool",
]

#: seeds are kept inside 63 bits so they stay exact in JSON and C longs
_SEED_MASK = (1 << 63) - 1


def derive_seed(base: int, *components: Any) -> int:
    """Derive a deterministic 63-bit seed from ``base`` and a component path.

    ``derive_seed(seed, "gap", site)`` gives every site of every load
    point its own independent RNG stream: two distinct component paths
    collide with negligible probability (SHA-256), and the result depends
    only on the values, never on process, platform, or hash
    randomization (unlike ``hash()``).
    """
    digest = hashlib.sha256()
    digest.update(repr(int(base)).encode("utf-8"))
    for component in components:
        digest.update(b"\x1f")
        digest.update(repr(component).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") & _SEED_MASK


def available_cpus() -> int:
    """CPUs actually available to this process, never less than 1.

    Prefers the scheduling affinity mask (which respects cgroup/taskset
    limits on Linux); on hosts without ``os.sched_getaffinity`` — macOS,
    Windows — or where the call fails, falls back to ``os.cpu_count()``,
    and to 1 when even that is unknown.  Shared by the parallel runner
    and the benchmark harness so both report cores the same way.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - exotic kernels
            pass
    return max(1, os.cpu_count() or 1)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` request: ``None``/``0`` means one worker
    per available CPU; anything else is clamped to at least 1."""
    if workers is None or workers == 0:
        return available_cpus()
    return max(1, int(workers))


@dataclass(frozen=True)
class Shard:
    """One unit of parallel work.

    ``fn`` must be a module-level callable (picklable by reference) and
    ``args``/``kwargs`` must be picklable values; ``label`` is used for
    progress messages and telemetry only.
    """

    fn: Callable[..., Any]
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""


@dataclass(frozen=True)
class ShardReport:
    """Telemetry for one executed shard (never affects results)."""

    index: int
    label: str
    wall_clock_s: float
    events_dispatched: int
    worker_pid: int
    #: executions that produced an outcome (1 unless the shard was
    #: retried); worker-loss re-runs that never returned are not counted
    attempts: int = 1


@dataclass(frozen=True)
class ShardError:
    """Structured record of one failed shard.

    Under ``on_error='collect'`` (or ``'retry'``, after the retry budget
    is exhausted) this object occupies the shard's slot in
    ``ShardedRun.results`` instead of a result — it is a *value*, never
    raised.  ``kind`` is ``'exception'`` for a raising shard and
    ``'timeout'`` for one that exceeded ``timeout_s``; ``traceback`` is
    the formatted worker-side traceback text (empty for timeouts — a
    hung worker is killed, not introspected).
    """

    index: int
    label: str
    kind: str  # 'exception' | 'timeout'
    error_type: str
    message: str
    traceback: str = ""
    attempts: int = 1
    worker_pid: int = 0

    def __str__(self) -> str:
        return ("shard %d (%s) failed [%s] after %d attempt(s): %s: %s"
                % (self.index, self.label or "unlabeled", self.kind,
                   self.attempts, self.error_type, self.message))


class ShardExecutionError(RuntimeError):
    """Raised under ``on_error='raise'`` when the original worker
    exception could not be transported back (unpicklable); the message
    embeds the worker-side traceback."""


class ShardTimeoutError(TimeoutError):
    """Raised under ``on_error='raise'`` when a shard exceeds the
    policy's ``timeout_s`` on a pool backend."""


@dataclass(frozen=True)
class ErrorPolicy:
    """Per-shard failure policy shared by every executor backend.

    ``on_error`` is ``'raise'`` (propagate the first failure — the
    historical behavior and the default), ``'collect'`` (a failing shard
    becomes a :class:`ShardError` result slot; the rest of the run
    completes), or ``'retry'`` (re-execute up to ``max_retries`` extra
    times — bit-identical re-runs by the determinism contract — then
    collect).  ``timeout_s`` bounds a shard's execution on pool
    backends; ``None`` disables the bound.  Timeouts are terminal under
    every policy: retrying a deterministic hang would only hang again.
    """

    on_error: str = "raise"
    max_retries: int = 2
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.on_error not in ("raise", "collect", "retry"):
            raise ValueError("on_error must be 'raise', 'collect' or "
                             "'retry', got %r" % (self.on_error,))
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0, got %r"
                             % (self.max_retries,))
        if self.timeout_s is not None and not self.timeout_s > 0:
            raise ValueError("timeout_s must be positive or None, got %r"
                             % (self.timeout_s,))


@dataclass
class ShardedRun:
    """Results (in submission order) plus run-level telemetry."""

    results: List[Any]
    reports: List[ShardReport]
    workers: int
    mode: str  # 'serial' | 'fork' | 'spawn' | 'forkserver' | 'remote'
    wall_clock_s: float

    @property
    def total_shard_seconds(self) -> float:
        """Sum of per-shard wall-clock — the serial-equivalent cost."""
        return sum(r.wall_clock_s for r in self.reports)

    @property
    def total_events(self) -> int:
        return sum(r.events_dispatched for r in self.reports)

    @property
    def errors(self) -> List[ShardError]:
        """Every :class:`ShardError` result slot, in submission order."""
        return [r for r in self.results if isinstance(r, ShardError)]

    @property
    def failed(self) -> int:
        """Number of shards that ended in a :class:`ShardError`."""
        return len(self.errors)

    @property
    def ok(self) -> bool:
        """True when every shard produced a real result."""
        return self.failed == 0

    @property
    def speedup(self) -> float:
        """Observed speedup over running the same shards back-to-back.

        Always finite: on very fast runs the wall clock can quantize to
        zero (or, through telemetry arithmetic, go NaN), in which case no
        speedup is measurable and 1.0 is reported instead of ``inf``/
        ``nan`` leaking into reports and JSON artifacts.
        """
        wall = self.wall_clock_s
        if not (wall > 0.0) or not math.isfinite(wall):
            return 1.0
        ratio = self.total_shard_seconds / wall
        if not math.isfinite(ratio):
            return 1.0
        return ratio

    def summary(self) -> str:
        text = ("%d shards on %d worker(s) [%s]: %.2fs wall, %.2fs "
                "aggregate, %.2fx speedup, %d events" %
                (len(self.reports), self.workers, self.mode,
                 self.wall_clock_s, self.total_shard_seconds,
                 self.speedup, self.total_events))
        if self.failed:
            text += ", %d failed" % self.failed
        return text

    def failure_report(self) -> str:
        """Multi-line structured report of every failed shard (empty
        string when the run was clean)."""
        errors = self.errors
        if not errors:
            return ""
        lines = ["%d/%d shard(s) failed:" % (len(errors), len(self.results))]
        lines.extend("  " + str(e) for e in errors)
        return "\n".join(lines)


def _events_of(result: Any) -> int:
    """Best-effort events-dispatched telemetry from a shard result."""
    events = getattr(result, "events_dispatched", 0)
    if isinstance(result, dict):
        events = result.get("events_dispatched", 0)
    try:
        return int(events)
    except (TypeError, ValueError):
        return 0


# -- guarded shard invocation -------------------------------------------------

@dataclass
class _CapturedFailure:
    """Picklable envelope for an exception raised inside a shard: the
    original exception object when it survives a pickle round trip (so
    ``on_error='raise'`` can re-raise the real type), plus the rendered
    type/message/traceback either way."""

    exc: Optional[BaseException]
    error_type: str
    message: str
    traceback_text: str


def _capture_failure(exc: BaseException,
                     require_picklable: bool = True) -> _CapturedFailure:
    tb = "".join(_traceback.format_exception(type(exc), exc,
                                             exc.__traceback__))
    carried: Optional[BaseException] = exc
    if require_picklable:
        try:
            pickle.loads(pickle.dumps(exc))
        except Exception:
            carried = None
    return _CapturedFailure(exc=carried, error_type=type(exc).__name__,
                            message=str(exc), traceback_text=tb)


def _invoke_guarded(payload: Tuple[int, Shard]
                    ) -> Tuple[int, bool, Any, float, int]:
    """Run one shard (in a worker or in-process), timing it and trapping
    any exception into a :class:`_CapturedFailure` so a raising shard
    never poisons the pool's result channel.  Returns
    ``(index, ok, result_or_failure, elapsed_s, pid)``."""
    index, shard = payload
    started = time.perf_counter()
    try:
        result = shard.fn(*shard.args, **shard.kwargs)
    except Exception as exc:
        elapsed = time.perf_counter() - started
        return index, False, _capture_failure(exc), elapsed, os.getpid()
    return index, True, result, time.perf_counter() - started, os.getpid()


def _failure_to_error(index: int, shard: Shard, failure: _CapturedFailure,
                      attempts: int, pid: int) -> ShardError:
    return ShardError(index=index, label=shard.label, kind="exception",
                      error_type=failure.error_type,
                      message=failure.message,
                      traceback=failure.traceback_text,
                      attempts=attempts, worker_pid=pid)


def _reraise(failure: _CapturedFailure, shard: Shard) -> None:
    """Re-raise a captured shard failure in the caller (``'raise'``
    policy): the original exception object when it was transportable,
    else a :class:`ShardExecutionError` embedding the worker traceback."""
    if failure.exc is not None:
        raise failure.exc
    raise ShardExecutionError(
        "shard %r raised unpicklable %s: %s\n--- worker traceback ---\n%s"
        % (shard.label, failure.error_type, failure.message,
           failure.traceback_text))


#: signature every executor's result callback follows:
#: emit(index, result_or_ShardError, elapsed_s, worker_pid, attempts)
EmitFn = Callable[[int, Any, float, int, int], None]


def _execute_serially(tasks: Sequence[Tuple[int, Shard]],
                      policy: ErrorPolicy, emit: EmitFn) -> None:
    """The shared in-process execution loop: used by
    :class:`SerialExecutor` and as the degradation path when no pool can
    be created.  ``timeout_s`` is not enforceable in-process (a shard
    cannot be preempted from its own thread) and is ignored here."""
    for index, shard in tasks:
        failures = 0
        while True:
            _, ok, value, elapsed, pid = _invoke_guarded((index, shard))
            if ok:
                emit(index, value, elapsed, pid, failures + 1)
                break
            failures += 1
            if policy.on_error == "raise":
                _reraise(value, shard)
            if policy.on_error == "retry" and failures <= policy.max_retries:
                continue
            emit(index, _failure_to_error(index, shard, value, failures, pid),
                 elapsed, pid, failures)
            break


# -- the executor layer -------------------------------------------------------

class Executor:
    """Abstract execution backend for :func:`run_sharded`.

    An executor runs a list of ``(index, shard)`` tasks and reports each
    outcome exactly once through the ``emit`` callback — a real result
    or a :class:`ShardError`, per the :class:`ErrorPolicy`.  Only under
    ``on_error='raise'`` may ``execute`` raise instead of emitting.
    Implementations must uphold the module's determinism contract:
    *which* results come back is a pure function of the shards, however
    the backend schedules, retries, or recovers them.
    """

    #: telemetry label for ShardedRun.mode
    mode = "abstract"

    def execute(self, tasks: Sequence[Tuple[int, Shard]],
                policy: ErrorPolicy, emit: EmitFn) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (idempotent; no-op by default)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-process execution — the deterministic baseline every other
    backend must match bit-for-bit.  Fault tolerance still applies
    (exception capture, retries, collection); only ``timeout_s`` is
    ignored, since in-process work cannot be preempted."""

    mode = "serial"
    workers = 1

    def execute(self, tasks: Sequence[Tuple[int, Shard]],
                policy: ErrorPolicy, emit: EmitFn) -> None:
        _execute_serially(tasks, policy, emit)


@dataclass
class _InFlight:
    """Book-keeping for one shard currently submitted to the pool."""

    shard: Shard
    async_result: Any
    submitted_at: float


class PoolExecutor(Executor):
    """Fault-tolerant execution on a local ``multiprocessing`` pool.

    Shards are submitted through a sliding window of at most
    ``workers`` concurrent tasks (so a submitted shard is actually
    *running*, which is what makes ``timeout_s`` meaningful), and the
    pool is health-checked whenever no result is ready:

    * **raising shard** — the worker-side guard traps the exception and
      ships it back as data; the pool stays healthy and the policy
      decides (re-raise / collect / retry).
    * **vanished worker** (OOM-killed, segfaulted, ``kill -9``) — the
      executor notices the pid disappearing, rebuilds the pool, and
      re-executes the lost in-flight shards *serially in the parent*:
      by the determinism contract the re-run is bit-identical to the
      run that died, so nothing else is needed.
    * **hung shard** — after ``timeout_s`` the pool is torn down
      (killing the stuck worker) and rebuilt; the hung shard becomes a
      ``'timeout'`` :class:`ShardError` (never retried — a
      deterministic hang would hang again) and innocent in-flight
      shards are resubmitted to the fresh pool.

    Wraps an owned or borrowed :class:`WorkerPool`; borrowed pools are
    left alive for the caller (but may be transparently rebuilt by the
    recovery paths above — worker processes, and therefore their warm
    caches, are expendable by design).  If no pool can be created at
    all, execution degrades to the serial loop, results unchanged.
    """

    #: seconds between health checks while no shard has completed
    poll_interval_s = 0.01

    def __init__(self, workers: Optional[int] = None,
                 start_method: Optional[str] = None,
                 pool: Optional[WorkerPool] = None) -> None:
        if pool is not None:
            self._pool = pool
            self._owns_pool = False
        else:
            self._pool = WorkerPool(workers, start_method)
            self._owns_pool = True

    @property
    def workers(self) -> int:
        return self._pool.workers

    @property
    def mode(self) -> str:
        return self._pool.mode

    def close(self) -> None:
        if self._owns_pool:
            self._pool.close()

    def execute(self, tasks: Sequence[Tuple[int, Shard]],
                policy: ErrorPolicy, emit: EmitFn) -> None:
        mp_pool = self._pool.acquire()
        if mp_pool is None:
            _execute_serially(tasks, policy, emit)
            return
        try:
            self._execute_on_pool(mp_pool, tasks, policy, emit)
        except Exception:
            # a raising run must not wait on (or hang behind) the rest
            # of the grid: abandon in-flight work hard.  The pool object
            # stays reusable — fresh workers spawn on the next acquire()
            self._pool.rebuild()
            raise

    def _execute_on_pool(self, mp_pool, tasks, policy, emit) -> None:
        pending: deque = deque(tasks)
        in_flight: Dict[int, _InFlight] = {}
        failures: Dict[int, int] = {}
        known_pids: Set[int] = set(self._pool.worker_pids())
        window = max(1, self._pool.workers)

        def finish(index: int, shard: Shard, ok: bool, value: Any,
                   elapsed: float, pid: int) -> None:
            """Apply the error policy to one completed execution."""
            if ok:
                emit(index, value, elapsed, pid, failures.get(index, 0) + 1)
                return
            count = failures.get(index, 0) + 1
            failures[index] = count
            if policy.on_error == "raise":
                _reraise(value, shard)
            if policy.on_error == "retry" and count <= policy.max_retries:
                pending.append((index, shard))
                return
            emit(index, _failure_to_error(index, shard, value, count, pid),
                 elapsed, pid, count)

        def run_in_parent(index: int, shard: Shard) -> None:
            """Serial re-execution fallback for a shard whose worker
            vanished (bit-identical by the determinism contract)."""
            _, ok, value, elapsed, pid = _invoke_guarded((index, shard))
            finish(index, shard, ok, value, elapsed, pid)

        def rebuild() -> Any:
            """Tear down and respawn the workers; returns the fresh pool
            (or None when respawn fails — callers fall back to serial)."""
            nonlocal known_pids
            self._pool.rebuild()
            fresh = self._pool.acquire()
            known_pids = set(self._pool.worker_pids())
            return fresh

        while pending or in_flight:
            # keep the submission window full: at most `workers` shards
            # in flight, so each is actually running on a worker and the
            # per-shard timeout clock is honest
            while pending and len(in_flight) < window and mp_pool is not None:
                index, shard = pending.popleft()
                in_flight[index] = _InFlight(
                    shard,
                    mp_pool.apply_async(_invoke_guarded, ((index, shard),)),
                    time.monotonic())
            if mp_pool is None:
                # pool could not be rebuilt: drain the rest in-process
                while pending:
                    index, shard = pending.popleft()
                    run_in_parent(index, shard)
                continue

            ready = [i for i, f in in_flight.items()
                     if f.async_result.ready()]
            if ready:
                for index in ready:
                    flight = in_flight.pop(index)
                    try:
                        _, ok, value, elapsed, pid = flight.async_result.get()
                    except Exception as exc:
                        # result transport failed (e.g. the shard's
                        # return value would not pickle): treat as a
                        # shard failure, not a run abort
                        ok = False
                        value = _capture_failure(exc,
                                                 require_picklable=False)
                        elapsed = time.monotonic() - flight.submitted_at
                        pid = 0
                    finish(index, flight.shard, ok, value, elapsed, pid)
                continue

            # nothing completed: health-check before sleeping
            current = set(self._pool.worker_pids())
            if known_pids - current:
                # a worker vanished without reporting back.  We cannot
                # know which in-flight shard it held, so rebuild the
                # pool and re-run everything in flight serially — cheap
                # (at most `workers` shards) and bit-identical
                lost = sorted(in_flight.items())
                in_flight.clear()
                mp_pool = rebuild()
                for index, flight in lost:
                    run_in_parent(index, flight.shard)
                continue
            known_pids |= current

            if policy.timeout_s is not None:
                now = time.monotonic()
                expired = [i for i, f in in_flight.items()
                           if now - f.submitted_at >= policy.timeout_s]
                if expired:
                    survivors = [(i, f) for i, f in in_flight.items()
                                 if i not in expired]
                    hung = [(i, in_flight[i]) for i in sorted(expired)]
                    in_flight.clear()
                    # destroy the hung worker(s) — terminate is the only
                    # way out of a stuck task — and respawn
                    mp_pool = rebuild()
                    for index, flight in hung:
                        self._finish_timeout(index, flight, policy, emit,
                                             failures)
                    # innocent shards lost to the teardown go back in
                    # the queue (a re-run is bit-identical)
                    for index, flight in survivors:
                        pending.appendleft((index, flight.shard))
                    continue

            time.sleep(self.poll_interval_s)

    def _finish_timeout(self, index: int, flight: _InFlight,
                        policy: ErrorPolicy, emit: EmitFn,
                        failures: Dict[int, int]) -> None:
        elapsed = time.monotonic() - flight.submitted_at
        attempts = failures.get(index, 0) + 1
        failures[index] = attempts
        message = ("exceeded timeout_s=%.3g (%.2fs elapsed)"
                   % (policy.timeout_s, elapsed))
        if policy.on_error == "raise":
            raise ShardTimeoutError("shard %d (%s) %s"
                                    % (index, flight.shard.label, message))
        emit(index,
             ShardError(index=index, label=flight.shard.label,
                        kind="timeout", error_type="ShardTimeoutError",
                        message=message, attempts=attempts),
             elapsed, 0, attempts)


class RemoteExecutor(Executor):
    """Socket-distributed execution backend — documented contract stub.

    The intended fleet deployment (see ROADMAP: "from one box to a
    fleet") runs a small agent per remote host that owns a local
    :class:`WorkerPool`.  A future implementation must honor this
    contract, which is exactly the one the local backends already obey:

    * **wire format** — each task ships as the pickled ``(index,
      Shard)`` payload `_invoke_guarded` takes, and each outcome returns
      as the pickled ``(index, ok, value, elapsed_s, pid)`` tuple it
      produces, so the parent-side policy/emit machinery is reused
      verbatim;
    * **determinism** — results are a pure function of the shards:
      any host may run any shard, in any order, and a retry may land on
      a different host (:func:`derive_seed` makes the re-run
      bit-identical);
    * **fault tolerance** — a dropped connection is a vanished worker
      (serial re-execution fallback in the parent), a missed heartbeat
      past ``timeout_s`` is a hung shard (``'timeout'``
      :class:`ShardError`, host quarantined), and a raising shard comes
      back as a :class:`_CapturedFailure` like any local failure;
    * **warm caches** — per-host processes keep the same per-process
      context/draw-bank registries the local pool enjoys; eviction is
      the host's concern (the LRU caps apply per process).

    Instantiating it raises ``NotImplementedError`` until a transport
    lands; the class exists so callers can program against the executor
    interface today.
    """

    mode = "remote"

    def __init__(self, endpoints: Sequence[str]) -> None:
        raise NotImplementedError(
            "RemoteExecutor is a documented contract stub: no socket "
            "transport ships in this repo yet (endpoints requested: %r). "
            "Use SerialExecutor or PoolExecutor, or implement the wire "
            "contract in this class's docstring." % (list(endpoints),))


def _submission_order(shards: Sequence[Shard],
                      cost_key: Optional[Callable[[Shard], float]]
                      ) -> List[int]:
    """Pool-submission order: most expensive shards first.

    With a ``cost_key`` the indices are sorted by descending estimated
    cost (ties keep submission order — the sort is stable), so a long
    shard starts immediately instead of serializing the pool's tail; an
    adaptive sweep whose saturated points abort early would otherwise
    idle every worker while one late-submitted expensive point finishes.
    Without a key, natural order is kept.  This never affects results:
    they are keyed by original index either way.
    """
    indices = list(range(len(shards)))
    if cost_key is not None:
        indices.sort(key=lambda i: -float(cost_key(shards[i])))
    return indices


class SimContext:
    """One reusable (network, config) simulation instance.

    Owns a :class:`~repro.core.engine.Simulator` and the network built
    on it.  :meth:`reset` rewinds both to freshly-constructed state; the
    warm-start sweep path (``run_load_point(..., warm=True)``) calls it
    before every reuse, so results are bit-identical to cold
    construction (the contract ``tests/test_warmstart.py`` locks).
    """

    __slots__ = ("sim", "network", "network_name", "warmup_ps", "uses")

    def __init__(self, network_name: str, config: Any, warmup_ps: int,
                 network_kwargs: Optional[Dict[str, Any]] = None) -> None:
        # deferred import: repro.core must stay importable without the
        # network models (and this avoids a core <-> networks cycle at
        # module-import time)
        from ..core.engine import Simulator
        from ..networks.factory import build_network

        self.network_name = network_name
        self.warmup_ps = warmup_ps
        self.sim = Simulator()
        self.network = build_network(network_name, config, self.sim,
                                     warmup_ps=warmup_ps,
                                     **(network_kwargs or {}))
        #: how many runs this context has served (diagnostics/tests)
        self.uses = 0

    def reset(self) -> None:
        """Rewind simulator and network to as-constructed state."""
        self.sim.reset()
        self.network.reset()


#: per-process warm-start context registry, keyed by the full context
#: fingerprint and LRU-bounded (a long campaign cycling through many
#: configs in persistent workers must not grow memory without limit).
#: Workers forked *before* the parent populated it start empty and build
#: their own; contexts are never shipped across processes (Simulator
#: callbacks are not picklable, and need not be — the registry is looked
#: up inside the shard body).
_CONTEXTS: "OrderedDict[Any, SimContext]" = OrderedDict()

#: default cap on cached warm contexts per process: a full Figure 6 run
#: needs one per (network, window) pair — six networks a few windows
#: deep fit comfortably; eviction only costs a rebuild on next use
DEFAULT_CONTEXT_CACHE_LIMIT = 32
_context_cache_limit = DEFAULT_CONTEXT_CACHE_LIMIT


def context_cache_limit() -> int:
    """Current LRU cap on the per-process warm-context registry."""
    return _context_cache_limit


def set_context_cache_limit(limit: int) -> int:
    """Set the warm-context LRU cap (>= 1); evicts least-recently-used
    entries immediately if the registry is over the new cap.  Returns
    the previous limit so tests/benchmarks can restore it."""
    global _context_cache_limit
    limit = int(limit)
    if limit < 1:
        raise ValueError("context cache limit must be >= 1, got %r"
                         % (limit,))
    previous = _context_cache_limit
    _context_cache_limit = limit
    while len(_CONTEXTS) > _context_cache_limit:
        _CONTEXTS.popitem(last=False)
    return previous


def _context_key(network_name: str, config: Any, warmup_ps: int,
                 network_kwargs: Optional[Dict[str, Any]]) -> Any:
    """Hashable fingerprint of everything that shapes a built network.
    The config dataclasses are frozen (hashable, value-compared), so
    equal configs — however constructed — share a context."""
    kwargs = tuple(sorted((network_kwargs or {}).items()))
    return (network_name, config, warmup_ps, kwargs)


def get_context(network_name: str, config: Any, warmup_ps: int,
                network_kwargs: Optional[Dict[str, Any]] = None
                ) -> SimContext:
    """The process's warm context for this fingerprint, reset and ready.

    First use constructs (fresh by definition); every later use resets
    the cached instance, which the reset protocol guarantees is
    indistinguishable from fresh construction.  The registry is
    LRU-bounded (:func:`set_context_cache_limit`): evicting a context
    never affects results — only whether the next use pays construction.
    """
    key = _context_key(network_name, config, warmup_ps, network_kwargs)
    ctx = _CONTEXTS.get(key)
    if ctx is None:
        ctx = SimContext(network_name, config, warmup_ps, network_kwargs)
        _CONTEXTS[key] = ctx
        while len(_CONTEXTS) > _context_cache_limit:
            _CONTEXTS.popitem(last=False)
    else:
        _CONTEXTS.move_to_end(key)
        ctx.reset()
    ctx.uses += 1
    return ctx


def clear_contexts() -> int:
    """Drop every cached warm context (tests / memory pressure); returns
    how many were dropped."""
    n = len(_CONTEXTS)
    _CONTEXTS.clear()
    return n


def _pick_context(start_method: Optional[str]):
    """Choose a multiprocessing context, preferring ``fork`` (cheap,
    inherits ``sys.path``) and falling back to the platform default."""
    import multiprocessing

    if start_method is not None:
        return multiprocessing.get_context(start_method)
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _join_pool_with_timeout(pool, timeout_s: float) -> bool:
    """Join a multiprocessing pool from a daemon thread so a stuck
    worker cannot hang the caller; True when the join completed."""
    def _join():
        try:
            pool.join()
        except Exception:  # pragma: no cover - defensive
            pass

    joiner = threading.Thread(target=_join, daemon=True,
                              name="workerpool-join")
    joiner.start()
    joiner.join(timeout_s)
    return not joiner.is_alive()


class WorkerPool:
    """A persistent multiprocessing pool that outlives ``run_sharded``.

    ``run_sharded`` normally creates and tears down a fresh pool per
    call; drivers that issue many calls (a figure's per-pattern sweeps,
    a campaign's trace build + replay grid, benchmark loops) pay that
    spin-up each time.  A ``WorkerPool`` is created lazily on first use,
    then passed to any number of ``run_sharded(..., pool=...)`` calls;
    worker processes — and therefore their per-process warm-start
    context registries (:func:`get_context`) and interned tables — stay
    alive between calls.  Close it (or use it as a context manager) when
    the run is over.

    Shutdown is bounded: :meth:`close` joins the workers with
    ``close_timeout_s`` and falls back to ``terminate()`` when a stuck
    worker will not exit, so closing a pool can never hang the caller;
    after shutdown ``mode`` reads ``"serial"`` until the next
    :meth:`acquire` spawns fresh workers.  :meth:`rebuild` is the hard
    variant (terminate first) used by the fault-tolerant executor after
    a dead-worker detection or a hung shard.

    Falls back to serial exactly like ``run_sharded`` does when the
    platform cannot provide a pool; ``workers=1`` never creates
    processes at all.
    """

    def __init__(self, workers: Optional[int] = None,
                 start_method: Optional[str] = None,
                 close_timeout_s: float = 5.0) -> None:
        self.workers = resolve_workers(workers)
        self._start_method = start_method
        self._pool = None
        self._failed = False
        self.mode = "serial"
        self.close_timeout_s = close_timeout_s

    def acquire(self):
        """The live multiprocessing pool, created on first use; None
        when serial (workers=1 or pool creation failed)."""
        if self._pool is None and not self._failed and self.workers > 1:
            try:
                context = _pick_context(self._start_method)
                self._pool = context.Pool(processes=self.workers)
                self.mode = context.get_start_method()
            except (ImportError, OSError, ValueError):
                self._failed = True
                self.mode = "serial"
        return self._pool

    def worker_pids(self) -> Tuple[int, ...]:
        """Pids of the live worker processes (empty when serial, or if
        the pool internals are unavailable — health checks then degrade
        to timeout-only detection)."""
        pool = self._pool
        procs = getattr(pool, "_pool", None) if pool is not None else None
        if not procs:
            return ()
        try:
            return tuple(p.pid for p in procs if p.pid is not None)
        except Exception:  # pragma: no cover - pool internals changed
            return ()

    def rebuild(self) -> None:
        """Terminate the current workers *hard* and forget them; the
        next :meth:`acquire` spawns a fresh set.  Used after a worker
        died or a shard hung — queued work on the old pool is lost,
        which the determinism contract makes safe to re-run."""
        pool, self._pool = self._pool, None
        self.mode = "serial"
        if pool is not None:
            pool.terminate()
            _join_pool_with_timeout(pool, self.close_timeout_s)

    def close(self) -> None:
        """Shut the workers down; idempotent and bounded (a stuck worker
        is terminated after ``close_timeout_s`` instead of hanging the
        join forever).  The pool object can be reused afterwards (a new
        set of workers spawns on next use); until then ``mode`` reports
        ``"serial"``."""
        pool, self._pool = self._pool, None
        self.mode = "serial"
        if pool is None:
            return
        pool.close()
        if not _join_pool_with_timeout(pool, self.close_timeout_s):
            pool.terminate()
            _join_pool_with_timeout(pool, self.close_timeout_s)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_sharded(shards: Sequence[Shard],
                workers: Optional[int] = 1,
                progress: Optional[Callable[[str], None]] = None,
                start_method: Optional[str] = None,
                cost_key: Optional[Callable[[Shard], float]] = None,
                pool: Optional[WorkerPool] = None,
                on_error: str = "raise",
                max_retries: int = 2,
                timeout_s: Optional[float] = None,
                executor: Optional[Executor] = None
                ) -> ShardedRun:
    """Execute every shard and return results in submission order.

    ``workers=1`` (the default) runs everything in-process — the
    deterministic serial fallback.  ``workers=None`` (or 0) uses one
    worker per available CPU.  If the pool cannot be created (platforms
    without working ``multiprocessing`` primitives), the run silently
    degrades to serial execution; results are identical either way.

    ``on_error`` / ``max_retries`` / ``timeout_s`` form the per-shard
    fault policy (see :class:`ErrorPolicy`): ``'raise'`` propagates the
    first failure like the historical behavior, ``'collect'`` turns each
    failing shard into a :class:`ShardError` result slot while every
    other shard's result survives, and ``'retry'`` re-executes failures
    up to ``max_retries`` times first (a retried shard is bit-identical
    by the determinism contract).  ``timeout_s`` bounds each shard on
    pool backends; hung workers are destroyed and the pool rebuilt.

    ``cost_key`` (optional) estimates a shard's relative cost; when a
    pool is used, shards are *submitted* in descending-cost order so the
    expensive ones never serialize the run's tail.  Because results are
    reassembled by original index, the returned lists are bit-identical
    with or without a cost key — ordering is purely a wall-clock
    optimization (see the determinism contract above).

    ``pool`` (optional) is a :class:`WorkerPool` to run on instead of a
    throwaway per-call pool; the pool's worker count takes precedence
    over ``workers`` and the workers stay alive after the call (the
    caller owns shutdown).  Results are bit-identical either way — a
    persistent pool only changes where process spin-up cost is paid.

    ``executor`` (optional) supplies an explicit :class:`Executor`
    backend instead of the serial/pool choice made from ``workers``/
    ``pool``; the caller owns its lifecycle (``run_sharded`` never
    closes a passed-in executor).  A raising ``progress`` callback is
    disarmed after its first failure and can never corrupt results —
    telemetry is strictly write-only.
    """
    shards = list(shards)
    policy = ErrorPolicy(on_error=on_error, max_retries=max_retries,
                         timeout_s=timeout_s)
    if pool is not None:
        workers = pool.workers
    n_workers = min(resolve_workers(workers), max(1, len(shards)))
    started = time.perf_counter()
    results: List[Any] = [None] * len(shards)
    reports: List[Optional[ShardReport]] = [None] * len(shards)
    progress_disarmed = False

    def _emit(index: int, value: Any, elapsed: float, pid: int,
              attempts: int) -> None:
        nonlocal progress_disarmed
        results[index] = value
        reports[index] = ShardReport(
            index=index,
            label=shards[index].label,
            wall_clock_s=elapsed,
            events_dispatched=_events_of(value),
            worker_pid=pid,
            attempts=attempts,
        )
        if progress is None or progress_disarmed:
            return
        if isinstance(value, ShardError):
            message = ("shard %d/%d %s FAILED [%s] after %d attempt(s): %s"
                       % (index + 1, len(shards), shards[index].label,
                          value.kind, attempts, value.message))
        else:
            message = ("shard %d/%d %s (%.2fs)"
                       % (index + 1, len(shards),
                          shards[index].label, elapsed))
        try:
            progress(message)
        except Exception:
            # telemetry must never corrupt results: disarm the callback
            # and keep executing
            progress_disarmed = True
            warnings.warn("progress callback raised; suppressing further "
                          "progress messages (results are unaffected)",
                          RuntimeWarning, stacklevel=2)

    own_executor: Optional[Executor] = None
    if executor is None:
        if n_workers > 1 and len(shards) > 1:
            if pool is not None:
                executor = PoolExecutor(pool=pool)
            else:
                executor = own_executor = PoolExecutor(
                    workers=n_workers, start_method=start_method)
        else:
            executor = SerialExecutor()

    # serial runs keep natural order (legacy behavior — results are
    # index-keyed, so ordering is progress-message cosmetics only);
    # everything else gets the cost-sorted submission order
    if isinstance(executor, SerialExecutor):
        order = list(range(len(shards)))
    else:
        order = _submission_order(shards, cost_key)
    tasks = [(i, shards[i]) for i in order]

    try:
        executor.execute(tasks, policy, _emit)
        mode = executor.mode
    finally:
        if own_executor is not None:
            own_executor.close()

    return ShardedRun(
        results=results,
        reports=[r for r in reports if r is not None],
        workers=1 if mode == "serial" else n_workers,
        mode=mode,
        wall_clock_s=time.perf_counter() - started,
    )
