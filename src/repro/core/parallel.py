"""Process-parallel execution of independent simulation shards.

The experiment grid behind the paper's evaluation — load points in a
Figure 6 sweep, (workload, network) replay pairs in Figures 7-10 — is
embarrassingly parallel: every simulation is independent, seeded, and
returns a small result record.  This module provides the shared harness
that shards such grids across worker processes:

* :func:`derive_seed` — stable, collision-resistant derivation of
  per-shard (and per-site) RNG streams from one base seed, so a shard
  produces *bit-identical* results no matter which worker runs it, in
  what order, or whether it runs in-process.
* :class:`Shard` — one picklable unit of work (a module-level callable
  plus arguments).
* :func:`run_sharded` — execute a list of shards serially (``workers=1``,
  the deterministic fallback) or on a ``multiprocessing`` pool, returning
  results in submission order together with per-shard telemetry
  (:class:`ShardReport`: wall-clock, events dispatched, worker pid).
* :class:`WorkerPool` — a persistent pool of worker processes that lives
  *across* ``run_sharded`` calls (pass it as ``pool=``), so a multi-call
  driver (figure sweeps, campaigns, benchmarks) pays process spin-up
  once instead of per call.
* :class:`SimContext` / :func:`get_context` — the warm-start context
  registry: one constructed ``(network, config)`` simulation instance
  per process, keyed by config fingerprint and reset between uses, so an
  entire sweep reuses one network instead of rebuilding channels and
  derived tables per load point (see ``repro.core.sweep``, ``warm=``).

Determinism contract
--------------------
``run_sharded`` guarantees that the *results* list is a pure function of
the shards themselves: execution order, worker count, and start method
never leak into it.  Shard callables must therefore derive any randomness
from their own arguments (see :func:`derive_seed`) and must not mutate
shared state.  Telemetry (wall-clock, pids) is reported separately and is
explicitly *not* deterministic.
"""

from __future__ import annotations

import hashlib
import math
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "available_cpus",
    "clear_contexts",
    "derive_seed",
    "get_context",
    "resolve_workers",
    "Shard",
    "ShardReport",
    "ShardedRun",
    "SimContext",
    "run_sharded",
    "WorkerPool",
]

#: seeds are kept inside 63 bits so they stay exact in JSON and C longs
_SEED_MASK = (1 << 63) - 1


def derive_seed(base: int, *components: Any) -> int:
    """Derive a deterministic 63-bit seed from ``base`` and a component path.

    ``derive_seed(seed, "gap", site)`` gives every site of every load
    point its own independent RNG stream: two distinct component paths
    collide with negligible probability (SHA-256), and the result depends
    only on the values, never on process, platform, or hash
    randomization (unlike ``hash()``).
    """
    digest = hashlib.sha256()
    digest.update(repr(int(base)).encode("utf-8"))
    for component in components:
        digest.update(b"\x1f")
        digest.update(repr(component).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") & _SEED_MASK


def available_cpus() -> int:
    """CPUs actually available to this process, never less than 1.

    Prefers the scheduling affinity mask (which respects cgroup/taskset
    limits on Linux); on hosts without ``os.sched_getaffinity`` — macOS,
    Windows — or where the call fails, falls back to ``os.cpu_count()``,
    and to 1 when even that is unknown.  Shared by the parallel runner
    and the benchmark harness so both report cores the same way.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - exotic kernels
            pass
    return max(1, os.cpu_count() or 1)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` request: ``None``/``0`` means one worker
    per available CPU; anything else is clamped to at least 1."""
    if workers is None or workers == 0:
        return available_cpus()
    return max(1, int(workers))


@dataclass(frozen=True)
class Shard:
    """One unit of parallel work.

    ``fn`` must be a module-level callable (picklable by reference) and
    ``args``/``kwargs`` must be picklable values; ``label`` is used for
    progress messages and telemetry only.
    """

    fn: Callable[..., Any]
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""


@dataclass(frozen=True)
class ShardReport:
    """Telemetry for one executed shard (never affects results)."""

    index: int
    label: str
    wall_clock_s: float
    events_dispatched: int
    worker_pid: int


@dataclass
class ShardedRun:
    """Results (in submission order) plus run-level telemetry."""

    results: List[Any]
    reports: List[ShardReport]
    workers: int
    mode: str  # 'serial' | 'fork' | 'spawn' | 'forkserver'
    wall_clock_s: float

    @property
    def total_shard_seconds(self) -> float:
        """Sum of per-shard wall-clock — the serial-equivalent cost."""
        return sum(r.wall_clock_s for r in self.reports)

    @property
    def total_events(self) -> int:
        return sum(r.events_dispatched for r in self.reports)

    @property
    def speedup(self) -> float:
        """Observed speedup over running the same shards back-to-back.

        Always finite: on very fast runs the wall clock can quantize to
        zero (or, through telemetry arithmetic, go NaN), in which case no
        speedup is measurable and 1.0 is reported instead of ``inf``/
        ``nan`` leaking into reports and JSON artifacts.
        """
        wall = self.wall_clock_s
        if not (wall > 0.0) or not math.isfinite(wall):
            return 1.0
        ratio = self.total_shard_seconds / wall
        if not math.isfinite(ratio):
            return 1.0
        return ratio

    def summary(self) -> str:
        return ("%d shards on %d worker(s) [%s]: %.2fs wall, %.2fs "
                "aggregate, %.2fx speedup, %d events" %
                (len(self.reports), self.workers, self.mode,
                 self.wall_clock_s, self.total_shard_seconds,
                 self.speedup, self.total_events))


def _events_of(result: Any) -> int:
    """Best-effort events-dispatched telemetry from a shard result."""
    events = getattr(result, "events_dispatched", 0)
    if isinstance(result, dict):
        events = result.get("events_dispatched", 0)
    try:
        return int(events)
    except (TypeError, ValueError):
        return 0


def _invoke(payload: Tuple[int, Shard]) -> Tuple[int, Any, float, int]:
    """Run one shard (in a worker or in-process) and time it."""
    index, shard = payload
    started = time.perf_counter()
    result = shard.fn(*shard.args, **shard.kwargs)
    elapsed = time.perf_counter() - started
    return index, result, elapsed, os.getpid()


def _submission_order(shards: Sequence[Shard],
                      cost_key: Optional[Callable[[Shard], float]]
                      ) -> List[int]:
    """Pool-submission order: most expensive shards first.

    With a ``cost_key`` the indices are sorted by descending estimated
    cost (ties keep submission order — the sort is stable), so a long
    shard starts immediately instead of serializing the pool's tail; an
    adaptive sweep whose saturated points abort early would otherwise
    idle every worker while one late-submitted expensive point finishes.
    Without a key, natural order is kept.  This never affects results:
    they are keyed by original index either way.
    """
    indices = list(range(len(shards)))
    if cost_key is not None:
        indices.sort(key=lambda i: -float(cost_key(shards[i])))
    return indices


class SimContext:
    """One reusable (network, config) simulation instance.

    Owns a :class:`~repro.core.engine.Simulator` and the network built
    on it.  :meth:`reset` rewinds both to freshly-constructed state; the
    warm-start sweep path (``run_load_point(..., warm=True)``) calls it
    before every reuse, so results are bit-identical to cold
    construction (the contract ``tests/test_warmstart.py`` locks).
    """

    __slots__ = ("sim", "network", "network_name", "warmup_ps", "uses")

    def __init__(self, network_name: str, config: Any, warmup_ps: int,
                 network_kwargs: Optional[Dict[str, Any]] = None) -> None:
        # deferred import: repro.core must stay importable without the
        # network models (and this avoids a core <-> networks cycle at
        # module-import time)
        from ..core.engine import Simulator
        from ..networks.factory import build_network

        self.network_name = network_name
        self.warmup_ps = warmup_ps
        self.sim = Simulator()
        self.network = build_network(network_name, config, self.sim,
                                     warmup_ps=warmup_ps,
                                     **(network_kwargs or {}))
        #: how many runs this context has served (diagnostics/tests)
        self.uses = 0

    def reset(self) -> None:
        """Rewind simulator and network to as-constructed state."""
        self.sim.reset()
        self.network.reset()


#: per-process warm-start context registry, keyed by the full context
#: fingerprint.  Workers forked *before* the parent populated it start
#: empty and build their own; contexts are never shipped across
#: processes (Simulator callbacks are not picklable, and need not be —
#: the registry is looked up inside the shard body).
_CONTEXTS: Dict[Any, SimContext] = {}


def _context_key(network_name: str, config: Any, warmup_ps: int,
                 network_kwargs: Optional[Dict[str, Any]]) -> Any:
    """Hashable fingerprint of everything that shapes a built network.
    The config dataclasses are frozen (hashable, value-compared), so
    equal configs — however constructed — share a context."""
    kwargs = tuple(sorted((network_kwargs or {}).items()))
    return (network_name, config, warmup_ps, kwargs)


def get_context(network_name: str, config: Any, warmup_ps: int,
                network_kwargs: Optional[Dict[str, Any]] = None
                ) -> SimContext:
    """The process's warm context for this fingerprint, reset and ready.

    First use constructs (fresh by definition); every later use resets
    the cached instance, which the reset protocol guarantees is
    indistinguishable from fresh construction.
    """
    key = _context_key(network_name, config, warmup_ps, network_kwargs)
    ctx = _CONTEXTS.get(key)
    if ctx is None:
        ctx = SimContext(network_name, config, warmup_ps, network_kwargs)
        _CONTEXTS[key] = ctx
    else:
        ctx.reset()
    ctx.uses += 1
    return ctx


def clear_contexts() -> int:
    """Drop every cached warm context (tests / memory pressure); returns
    how many were dropped."""
    n = len(_CONTEXTS)
    _CONTEXTS.clear()
    return n


def _pick_context(start_method: Optional[str]):
    """Choose a multiprocessing context, preferring ``fork`` (cheap,
    inherits ``sys.path``) and falling back to the platform default."""
    import multiprocessing

    if start_method is not None:
        return multiprocessing.get_context(start_method)
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class WorkerPool:
    """A persistent multiprocessing pool that outlives ``run_sharded``.

    ``run_sharded`` normally creates and tears down a fresh pool per
    call; drivers that issue many calls (a figure's per-pattern sweeps,
    a campaign's trace build + replay grid, benchmark loops) pay that
    spin-up each time.  A ``WorkerPool`` is created lazily on first use,
    then passed to any number of ``run_sharded(..., pool=...)`` calls;
    worker processes — and therefore their per-process warm-start
    context registries (:func:`get_context`) and interned tables — stay
    alive between calls.  Close it (or use it as a context manager) when
    the run is over.

    Falls back to serial exactly like ``run_sharded`` does when the
    platform cannot provide a pool; ``workers=1`` never creates
    processes at all.
    """

    def __init__(self, workers: Optional[int] = None,
                 start_method: Optional[str] = None) -> None:
        self.workers = resolve_workers(workers)
        self._start_method = start_method
        self._pool = None
        self._failed = False
        self.mode = "serial"

    def acquire(self):
        """The live multiprocessing pool, created on first use; None
        when serial (workers=1 or pool creation failed)."""
        if self._pool is None and not self._failed and self.workers > 1:
            try:
                context = _pick_context(self._start_method)
                self._pool = context.Pool(processes=self.workers)
                self.mode = context.get_start_method()
            except (ImportError, OSError, ValueError):
                self._failed = True
                self.mode = "serial"
        return self._pool

    def close(self) -> None:
        """Shut the workers down; idempotent.  The pool object can be
        reused afterwards (a new set of workers spawns on next use)."""
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.close()
            pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_sharded(shards: Sequence[Shard],
                workers: Optional[int] = 1,
                progress: Optional[Callable[[str], None]] = None,
                start_method: Optional[str] = None,
                cost_key: Optional[Callable[[Shard], float]] = None,
                pool: Optional[WorkerPool] = None
                ) -> ShardedRun:
    """Execute every shard and return results in submission order.

    ``workers=1`` (the default) runs everything in-process — the
    deterministic serial fallback.  ``workers=None`` (or 0) uses one
    worker per available CPU.  If the pool cannot be created (platforms
    without working ``multiprocessing`` primitives), the run silently
    degrades to serial execution; results are identical either way.

    ``cost_key`` (optional) estimates a shard's relative cost; when a
    pool is used, shards are *submitted* in descending-cost order so the
    expensive ones never serialize the run's tail.  Because results are
    reassembled by original index, the returned lists are bit-identical
    with or without a cost key — ordering is purely a wall-clock
    optimization (see the determinism contract above).

    ``pool`` (optional) is a :class:`WorkerPool` to run on instead of a
    throwaway per-call pool; the pool's worker count takes precedence
    over ``workers`` and the workers stay alive after the call (the
    caller owns shutdown).  Results are bit-identical either way — a
    persistent pool only changes where process spin-up cost is paid.
    """
    shards = list(shards)
    if pool is not None:
        workers = pool.workers
    n_workers = min(resolve_workers(workers), max(1, len(shards)))
    started = time.perf_counter()
    results: List[Any] = [None] * len(shards)
    reports: List[Optional[ShardReport]] = [None] * len(shards)

    def _record(index: int, result: Any, elapsed: float, pid: int) -> None:
        results[index] = result
        reports[index] = ShardReport(
            index=index,
            label=shards[index].label,
            wall_clock_s=elapsed,
            events_dispatched=_events_of(result),
            worker_pid=pid,
        )
        if progress:
            progress("shard %d/%d %s (%.2fs)"
                     % (index + 1, len(shards),
                        shards[index].label, elapsed))

    mode = "serial"
    mp_pool = None
    owns_pool = False
    if n_workers > 1 and len(shards) > 1:
        if pool is not None:
            mp_pool = pool.acquire()
            mode = pool.mode
        else:
            try:
                context = _pick_context(start_method)
                mp_pool = context.Pool(processes=n_workers)
                mode = context.get_start_method()
                owns_pool = True
            except (ImportError, OSError, ValueError):
                mp_pool = None
                mode = "serial"

    if mp_pool is None:
        n_workers = 1
        mode = "serial"
        for payload in enumerate(shards):
            _record(*_invoke(payload))
    else:
        try:
            # unordered completion is fine: results are keyed by index,
            # so the returned list never depends on scheduling order —
            # which is also why cost-sorted submission is safe
            payloads = [(i, shards[i])
                        for i in _submission_order(shards, cost_key)]
            for index, result, elapsed, pid in mp_pool.imap_unordered(
                    _invoke, payloads):
                _record(index, result, elapsed, pid)
        finally:
            if owns_pool:
                mp_pool.close()
                mp_pool.join()

    return ShardedRun(
        results=results,
        reports=[r for r in reports if r is not None],
        workers=n_workers,
        mode=mode,
        wall_clock_s=time.perf_counter() - started,
    )
