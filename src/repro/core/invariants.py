"""Invariant checkers over recorded simulation traces.

The paper's five-way comparison (Figures 6-10) is only meaningful if all
network models obey the same physical contract.  These checkers verify it
from a :class:`~repro.core.tracing.TraceRecorder` stream:

* **conservation** — every injected packet is delivered exactly once,
  nothing is delivered that was never injected, and (for a fully drained
  run) nothing is left in flight;
* **causality** — per-packet event streams start at INJECT, end at
  DELIVER, carry non-negative and monotonically non-decreasing modeled
  times, and cross-site delivery is strictly later than injection;
* **channel non-overlap** — a serialized channel never transmits two
  packets at once (TX intervals per channel are disjoint; back-to-back
  is allowed);
* **grant exclusivity** — arbitrated resources (two-phase slots and
  switch trees, token-ring tokens, circuit-switched engines and receiver
  ports) are never oversubscribed beyond their declared capacity.

Two ways to run them:

* **live attachment** — :class:`InvariantMonitor` wires a recorder into a
  network before the run and ``verify()`` raises
  :class:`InvariantViolation` afterwards (what
  ``run_load_point(check_invariants=True)`` uses);
* **post-hoc** — :func:`check_trace` over any recorded event list.

``python -m repro.core.invariants`` runs the CI smoke: the five Figure 6
networks plus the HERMES extension under several loads/patterns with
every checker enabled.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from .tracing import (DELIVER, GRANT, INJECT, RELEASE, TX_START, TraceEvent,
                      TraceRecorder)


class InvariantViolation(AssertionError):
    """One or more physical invariants were violated by a recorded run."""

    def __init__(self, violations: Sequence["Violation"]) -> None:
        self.violations = list(violations)
        lines = ["%d invariant violation(s):" % len(self.violations)]
        lines += ["  [%s] %s" % (v.checker, v.message) for v in self.violations]
        super().__init__("\n".join(lines))


class Violation(NamedTuple):
    """One detected contract breach; ``checker`` names the checker class
    ('conservation', 'causality', 'overlap', 'exclusivity', 'stats')."""

    checker: str
    message: str


# -- individual checkers ------------------------------------------------------

def check_conservation(events: Iterable[TraceEvent],
                       expect_drained: bool = True) -> List[Violation]:
    """Exactly-once delivery; optionally, no in-flight packets at drain."""
    injected: Dict[int, TraceEvent] = {}
    delivered: Dict[int, int] = {}
    out: List[Violation] = []
    for e in events:
        if e.etype == INJECT:
            if e.pid in injected:
                out.append(Violation(
                    "conservation", "packet %d injected twice" % e.pid))
            injected[e.pid] = e
        elif e.etype == DELIVER:
            delivered[e.pid] = delivered.get(e.pid, 0) + 1
    for pid, count in sorted(delivered.items()):
        if pid not in injected:
            out.append(Violation(
                "conservation",
                "packet %d delivered but never injected" % pid))
        if count > 1:
            out.append(Violation(
                "conservation",
                "packet %d delivered %d times (exactly-once violated)"
                % (pid, count)))
    if expect_drained:
        missing = sorted(pid for pid in injected if pid not in delivered)
        for pid in missing[:10]:
            e = injected[pid]
            out.append(Violation(
                "conservation",
                "packet %d (%d->%d) injected at %d ps but never delivered"
                % (pid, e.src, e.dst, e.time_ps)))
        if len(missing) > 10:
            out.append(Violation(
                "conservation",
                "... and %d more undelivered packets" % (len(missing) - 10)))
    return out


def check_causality(events: Iterable[TraceEvent]) -> List[Violation]:
    """Per-packet streams are causally ordered with sane timestamps."""
    out: List[Violation] = []
    streams: Dict[int, List[TraceEvent]] = {}
    for e in events:
        if e.time_ps < 0:
            out.append(Violation(
                "causality", "negative timestamp on record %r" % (e,)))
        if e.pid >= 0:
            streams.setdefault(e.pid, []).append(e)
    for pid, stream in sorted(streams.items()):
        if stream[0].etype != INJECT:
            out.append(Violation(
                "causality",
                "packet %d stream starts with %s, not inject"
                % (pid, stream[0].etype)))
        prev = stream[0]
        for e in stream[1:]:
            if e.time_ps < prev.time_ps:
                out.append(Violation(
                    "causality",
                    "packet %d time goes backwards: %s@%d after %s@%d"
                    % (pid, e.etype, e.time_ps, prev.etype, prev.time_ps)))
            if prev.etype == DELIVER:
                out.append(Violation(
                    "causality",
                    "packet %d has %s after deliver" % (pid, e.etype)))
            prev = e
        last = stream[-1]
        if last.etype == DELIVER:
            first = stream[0]
            if first.src != first.dst and last.time_ps <= first.time_ps:
                out.append(Violation(
                    "causality",
                    "packet %d (%d->%d) delivered at %d ps, not strictly "
                    "after injection at %d ps"
                    % (pid, first.src, first.dst, last.time_ps,
                       first.time_ps)))
    return out


def check_channel_overlap(events: Iterable[TraceEvent]) -> List[Violation]:
    """TX intervals on one channel never overlap (back-to-back allowed)."""
    out: List[Violation] = []
    intervals: Dict[str, List[Tuple[int, int, int]]] = {}
    for e in events:
        if e.etype == TX_START:
            intervals.setdefault(e.resource, []).append(
                (e.start_ps, e.end_ps, e.pid))
    for resource, spans in sorted(intervals.items()):
        spans.sort()
        for (s0, e0, p0), (s1, e1, p1) in zip(spans, spans[1:]):
            if s1 < e0:
                out.append(Violation(
                    "overlap",
                    "channel %s transmits packets %d and %d concurrently "
                    "([%d,%d) overlaps [%d,%d))"
                    % (resource, p0, p1, s0, e0, s1, e1)))
    return out


def check_grant_exclusivity(events: Iterable[TraceEvent],
                            capacities: Optional[Dict[str, int]] = None
                            ) -> List[Violation]:
    """Arbitrated resources never exceed their capacity (default 1).

    Closed grants carry their hold interval in ``[start_ps, end_ps)``;
    open grants (``end_ps == -1``) are closed by the next RELEASE on the
    same resource.  Concurrency is checked with a sweep line; a release
    at the same instant as a new grant is back-to-back, not a conflict.
    """
    capacities = capacities or {}
    out: List[Violation] = []
    # per resource: list of (time, delta) endpoints
    endpoints: Dict[str, List[Tuple[int, int]]] = {}
    open_holds: Dict[str, int] = {}
    for e in events:
        if e.etype == GRANT:
            pts = endpoints.setdefault(e.resource, [])
            pts.append((e.start_ps if e.start_ps >= 0 else e.time_ps, +1))
            if e.end_ps >= 0:
                if e.end_ps <= max(e.start_ps, 0):
                    out.append(Violation(
                        "exclusivity",
                        "grant on %s has empty/inverted hold [%d,%d)"
                        % (e.resource, e.start_ps, e.end_ps)))
                pts.append((e.end_ps, -1))
            else:
                open_holds[e.resource] = open_holds.get(e.resource, 0) + 1
        elif e.etype == RELEASE:
            pts = endpoints.setdefault(e.resource, [])
            pts.append((e.time_ps, -1))
            held = open_holds.get(e.resource, 0)
            if held <= 0:
                out.append(Violation(
                    "exclusivity",
                    "release on %s at %d ps without an open grant"
                    % (e.resource, e.time_ps)))
            else:
                open_holds[e.resource] = held - 1
    for resource, pts in sorted(endpoints.items()):
        capacity = capacities.get(resource, 1)
        # releases sort before grants at the same instant: back-to-back ok
        pts.sort(key=lambda p: (p[0], p[1]))
        held = 0
        for time_ps, delta in pts:
            held += delta
            if held > capacity:
                out.append(Violation(
                    "exclusivity",
                    "resource %s held %d times concurrently at %d ps "
                    "(capacity %d)" % (resource, held, time_ps, capacity)))
                break  # one report per resource is enough
    return out


def check_stats_consistency(events: Sequence[TraceEvent],
                            stats) -> List[Violation]:
    """The trace and :class:`~repro.core.stats.NetworkStats` agree on
    injected/delivered counts and the derived in-flight population."""
    out: List[Violation] = []
    injected = sum(1 for e in events if e.etype == INJECT)
    delivered = sum(1 for e in events if e.etype == DELIVER)
    if injected != stats.injected_packets:
        out.append(Violation(
            "stats", "trace saw %d injections, stats counted %d"
            % (injected, stats.injected_packets)))
    if delivered != stats.delivered_packets:
        out.append(Violation(
            "stats", "trace saw %d deliveries, stats counted %d"
            % (delivered, stats.delivered_packets)))
    if stats.in_flight != injected - delivered:
        out.append(Violation(
            "stats", "stats.in_flight=%d but trace implies %d"
            % (stats.in_flight, injected - delivered)))
    return out


def check_trace(events: Sequence[TraceEvent],
                capacities: Optional[Dict[str, int]] = None,
                stats=None,
                expect_drained: bool = True) -> List[Violation]:
    """Run every checker over a recorded event stream."""
    out = check_conservation(events, expect_drained=expect_drained)
    out += check_causality(events)
    out += check_channel_overlap(events)
    out += check_grant_exclusivity(events, capacities=capacities)
    if stats is not None:
        out += check_stats_consistency(events, stats)
    return out


# -- live attachment ----------------------------------------------------------

class InvariantMonitor:
    """Wire a recorder into a network and verify invariants after a run.

    >>> sim = Simulator(); net = build_network("token_ring", cfg, sim)
    >>> monitor = InvariantMonitor(net)
    >>> ...inject traffic, sim.run()...
    >>> monitor.verify()          # raises InvariantViolation on breach
    """

    def __init__(self, network,
                 recorder: Optional[TraceRecorder] = None) -> None:
        self.network = network
        self.recorder = recorder if recorder is not None else TraceRecorder()
        network.set_tracer(self.recorder)

    @property
    def events(self) -> List[TraceEvent]:
        return self.recorder.events

    def problems(self, expect_drained: bool = True) -> List[Violation]:
        return check_trace(
            self.events,
            capacities=self.network.invariant_capacities(),
            stats=self.network.stats,
            expect_drained=expect_drained)

    def verify(self, expect_drained: bool = True) -> None:
        problems = self.problems(expect_drained=expect_drained)
        if problems:
            raise InvariantViolation(problems)


# -- CI smoke -----------------------------------------------------------------

def run_smoke(networks: Optional[Sequence[str]] = None,
              loads: Sequence[float] = (0.05, 0.4),
              patterns: Sequence[str] = ("uniform", "neighbor"),
              seeds: Sequence[int] = (12345,),
              window_ns: float = 120.0,
              verbose: bool = True) -> int:
    """Run invariant-checked load points over the extended network set
    (the five Figure 6 networks plus HERMES).

    Returns the number of load points checked; raises
    :class:`InvariantViolation` on the first breach.  This is the CI
    smoke job (`python -m repro.core.invariants`).
    """
    from .sweep import run_load_point
    from ..macrochip.config import small_test_config
    from ..networks.factory import EXTENDED_NETWORKS
    from ..workloads.synthetic import make_pattern

    if networks is None:
        networks = EXTENDED_NETWORKS
    config = small_test_config(4, 4)
    checked = 0
    for network in networks:
        for pattern_name in patterns:
            pattern = make_pattern(pattern_name, config.layout)
            for load in loads:
                for seed in seeds:
                    result = run_load_point(
                        network, config, pattern, load,
                        window_ns=window_ns, seed=seed,
                        check_invariants=True)
                    checked += 1
                    if verbose:
                        print("ok %-24s %-9s load=%.2f seed=%d "
                              "(%d delivered / %d injected)"
                              % (network, pattern_name, load, seed,
                                 result.delivered_packets,
                                 result.injected_packets))
    if verbose:
        print("invariant smoke passed: %d load points, all checkers on"
              % checked)
    return checked


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    run_smoke()
