"""Open-loop load sweeps: the harness behind Figure 6.

Every site injects fixed-size packets (64 B cache lines) with exponential
inter-arrival times at a configured *offered load*, expressed as a
fraction of the per-site peak of 320 bytes/ns, exactly the x-axis of
Figure 6.  Injection runs for a fixed window; the simulation then drains
(up to a bounded horizon, since a saturated network never finishes) and we
report mean delivered latency and sustained throughput measured after a
warmup interval.

Saturation shows up exactly as in the paper: past the knee, throughput
plateaus and latency grows with the measurement window (the vertical
asymptote of the latency-load curve).
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from collections import OrderedDict

from .adaptive import AdaptiveConfig, execute_adaptive
from .engine import Simulator
from .parallel import (Shard, ShardError, WorkerPool, derive_seed,
                       get_context, run_sharded)
from .tracing import TraceRecorder
from .units import serialization_ps
from ..macrochip.config import MacrochipConfig
from ..networks.base import Packet
from ..networks.factory import build_network
from ..workloads.synthetic import TrafficPattern


@dataclass(frozen=True)
class LoadPointResult:
    """One (network, pattern, load) measurement."""

    network: str
    pattern: str
    offered_fraction: float
    mean_latency_ns: float
    p99_latency_ns: float
    throughput_gb_per_s: float  # aggregate delivered, measured window
    delivered_packets: int
    injected_packets: int
    saturated: bool
    #: simulator events dispatched — deterministic for a fixed seed, so
    #: it participates in the bit-identical serial-vs-parallel contract
    events_dispatched: int = 0
    #: why the simulation ceased: 'drained' (queue emptied) or 'horizon'
    #: (window + drain fully simulated) on the fixed path; adaptive runs
    #: may add 'converged' or 'saturated' (see repro.core.adaptive)
    stop_reason: str = "horizon"
    #: simulation clock when it ceased — the horizon for 'drained'/
    #: 'horizon' (matching the single-shot run's clock convention), the
    #: firing checkpoint for adaptive early stops
    stopped_at_ps: int = 0


class _DrawBank:
    """Interned per-(seed, pattern, sites) injection draw streams.

    A load point's injection schedule is built from two per-site RNG
    streams: exponential inter-arrival gaps and destination draws.  The
    destination stream depends only on ``(seed, site, pattern)`` — not
    on the offered load — and the gap stream factors as
    ``expovariate(lambd) == -log(1 - random()) / lambd`` in CPython, so
    the *unit*-exponential part ``x = -log(1 - u)`` is load-independent
    too.  The bank caches both per site and materializes a given load's
    gaps as ``max(1, int(x / lambd))`` — floating-point identical to the
    historical ``max(1, int(rng.expovariate(1.0 / mean_gap_ps)))`` draw,
    because that is literally the same division on the same ``x``.

    One bank therefore serves *every* load point of a sweep (and every
    network — schedules are network-independent), with each site's
    stream prefix growing monotonically, exactly as the legacy per-point
    prefetch would have drawn it.
    """

    __slots__ = ("_gap_rngs", "_site_patterns", "_unit", "_dsts")

    def __init__(self, pattern: TrafficPattern, seed: int,
                 num_sites: int) -> None:
        self._gap_rngs = [random.Random(derive_seed(seed, "gap", site))
                          for site in range(num_sites)]
        self._site_patterns = [pattern.split(derive_seed(seed, "dst", site))
                               for site in range(num_sites)]
        self._unit: List[List[float]] = [[] for _ in range(num_sites)]
        self._dsts: List[List[int]] = [[] for _ in range(num_sites)]

    def draws(self, mean_gap_ps: int, count: int
              ) -> Tuple[List[List[int]], List[List[int]]]:
        """(site_gaps, site_dsts) for one load point: per-site lists
        with at least ``count`` entries each (destination lists may be
        longer — injectors index, they never iterate)."""
        lambd = 1.0 / mean_gap_ps
        log = math.log
        site_gaps: List[List[int]] = []
        for site, unit in enumerate(self._unit):
            need = count - len(unit)
            if need > 0:
                rand = self._gap_rngs[site].random
                unit.extend(-log(1.0 - rand()) for _ in range(need))
            dsts = self._dsts[site]
            need = count - len(dsts)
            if need > 0:
                dsts.extend(self._site_patterns[site].destinations(site,
                                                                   need))
            gaps: List[int] = []
            append = gaps.append
            for x in unit[:count] if len(unit) != count else unit:
                g = int(x / lambd)
                append(g if g >= 1 else 1)
            site_gaps.append(gaps)
        return site_gaps, self._dsts


#: per-process draw-bank registry.  Keyed by everything the draws depend
#: on; pattern constructor seeds are irrelevant (split() replaces the
#: RNG), so the class + layout + draw signature (parametrized patterns'
#: knobs) identify the destination function.  The
#: registry is LRU-bounded: banks grow with the deepest load point they
#: served, so a long-lived worker cycling through many (seed, pattern)
#: combinations must not keep them all.
_DRAW_BANKS: "OrderedDict[Any, _DrawBank]" = OrderedDict()

#: default cap on cached draw banks per process: one bank serves every
#: network and every load point of a sweep, so even a multi-pattern
#: figure needs only a handful live at once
DEFAULT_DRAW_BANK_CACHE_LIMIT = 8
_draw_bank_cache_limit = DEFAULT_DRAW_BANK_CACHE_LIMIT


def draw_bank_cache_limit() -> int:
    """Current LRU cap on the per-process draw-bank registry."""
    return _draw_bank_cache_limit


def set_draw_bank_cache_limit(limit: int) -> int:
    """Set the draw-bank LRU cap (>= 1); evicts least-recently-used
    banks immediately if over the new cap.  Returns the previous limit.
    Eviction never affects results — a rebuilt bank replays the same
    derived streams — only whether the next sweep pays the draws again."""
    global _draw_bank_cache_limit
    limit = int(limit)
    if limit < 1:
        raise ValueError("draw-bank cache limit must be >= 1, got %r"
                         % (limit,))
    previous = _draw_bank_cache_limit
    _draw_bank_cache_limit = limit
    while len(_DRAW_BANKS) > _draw_bank_cache_limit:
        _DRAW_BANKS.popitem(last=False)
    return previous


def _get_draw_bank(pattern: TrafficPattern, seed: int,
                   num_sites: int) -> _DrawBank:
    # draw_signature() carries any constructor knobs that alter the
    # destination streams (e.g. a hotspot fraction), so differently
    # parametrized instances of one pattern class never share a bank
    key = (seed, pattern.__class__, pattern.layout, num_sites,
           getattr(pattern, "draw_signature", tuple)())
    bank = _DRAW_BANKS.get(key)
    if bank is None:
        bank = _DrawBank(pattern, seed, num_sites)
        _DRAW_BANKS[key] = bank
        while len(_DRAW_BANKS) > _draw_bank_cache_limit:
            _DRAW_BANKS.popitem(last=False)
    else:
        _DRAW_BANKS.move_to_end(key)
    return bank


def clear_draw_banks() -> int:
    """Drop every cached draw bank (tests / memory pressure)."""
    n = len(_DRAW_BANKS)
    _DRAW_BANKS.clear()
    return n


#: execution backends for run_load_point: 'python' is the exact scalar
#: event loop, 'vectorized' the numpy-batched fast path (see
#: repro.core.vectorized) that falls back to 'python' whenever exactness
#: would need real event dispatch
BACKENDS = ("python", "vectorized")


def _draw_schedules(pattern: TrafficPattern, config: MacrochipConfig,
                    seed: int, mean_gap_ps: int, packets_per_site: int,
                    rng_block: int, warm: bool
                    ) -> Tuple[List[List[int]], List[List[int]]]:
    """Per-site (gaps, destinations) for one load point's injections.

    Shared by both execution backends, so their schedules are the same
    lists — bit-identical by construction, not by reproof.  ``warm``
    draws come from the interned :class:`_DrawBank` (unless the pattern
    shapes arrival time itself); cold draws replay the same derived
    streams block by block.
    """
    custom_gaps = getattr(pattern, "uses_custom_gaps", False)
    if warm and not custom_gaps:
        # draw from the interned bank: same streams, but the unit
        # exponentials and destinations persist across load points.
        # Patterns that shape arrival time (uses_custom_gaps) skip
        # the bank — it factors *unit* exponentials, which cannot
        # represent a modulated process — and draw directly below
        # (warm network contexts still apply either way).
        return _get_draw_bank(pattern, seed, config.num_sites).draws(
            mean_gap_ps, packets_per_site)
    # Every site draws gaps and destinations from its own derived RNG
    # streams, so site k's traffic depends only on (seed, k) — never on
    # how the other sites' events happen to interleave.  This is what
    # makes load points shard-stable under parallel decomposition.
    # Gaps go through the pattern's gap_draws hook, whose default is
    # bit-identical to the historical exponential stream.
    gap_rngs = [random.Random(derive_seed(seed, "gap", site))
                for site in range(config.num_sites)]
    site_patterns = [pattern.split(derive_seed(seed, "dst", site))
                     for site in range(config.num_sites)]
    site_gaps: List[List[int]] = []
    site_dsts: List[List[int]] = []
    for site in range(config.num_sites):
        rng = gap_rngs[site]
        pat = site_patterns[site]
        gaps: List[int] = []
        dsts: List[int] = []
        remaining = packets_per_site
        while remaining > 0:
            take = rng_block if remaining > rng_block else remaining
            gaps.extend(pat.gap_draws(rng, mean_gap_ps, take))
            dsts.extend(pat.destinations(site, take))
            remaining -= take
        site_gaps.append(gaps)
        site_dsts.append(dsts)
    return site_gaps, site_dsts


def _prewarm_draw_bank(config: MacrochipConfig, pattern: TrafficPattern,
                       fractions: List[float], window_ns: float,
                       kwargs: dict) -> None:
    """Draw every load point of a sweep's schedules in one bank pass.

    All of a sweep's load points share one :class:`_DrawBank` (the
    draw streams are load-independent), so extending the bank once to
    the *deepest* point's packet count replaces the per-point
    incremental extensions with a single pass — each load point then
    materializes its gaps from the cached draws.  Results are unchanged
    by construction: the bank consumes each site's streams in the same
    order regardless of extension granularity.  Serial sweeps only
    (worker processes keep their own banks), and only for patterns the
    bank serves (``uses_custom_gaps`` draws stay per point).
    """
    rng_block = kwargs.get("rng_block", 256)
    if rng_block <= 0 or getattr(pattern, "uses_custom_gaps", False):
        return
    f_max = max(fractions)
    if f_max <= 0.0:
        return  # run_load_point raises the proper error per point
    packet_bytes = kwargs.get("packet_bytes", 64)
    seed = kwargs.get("seed", 12345)
    mean_gap_ps = serialization_ps(
        packet_bytes, f_max * config.site_bandwidth_gb_per_s)
    inject_window_ps = int(window_ns * 1000)
    packets_per_site = max(1, inject_window_ps // mean_gap_ps)
    _get_draw_bank(pattern, seed, config.num_sites).draws(
        mean_gap_ps, packets_per_site)


@dataclass(frozen=True)
class SweepPoint:
    offered_fraction: float
    mean_latency_ns: float
    p99_latency_ns: float
    delivered_fraction: float
    saturated: bool


def run_load_point(network_name: str,
                   config: MacrochipConfig,
                   pattern: TrafficPattern,
                   offered_fraction: float,
                   window_ns: float = 2000.0,
                   packet_bytes: int = 64,
                   seed: int = 12345,
                   drain_factor: float = 1.0,
                   warmup_fraction: float = 0.25,
                   network_kwargs: Optional[dict] = None,
                   tracer: Optional[TraceRecorder] = None,
                   check_invariants: bool = False,
                   rng_block: int = 256,
                   saturation_threshold: float = 0.99,
                   adaptive: Optional[AdaptiveConfig] = None,
                   warm: bool = False,
                   backend: str = "python") -> LoadPointResult:
    """Simulate one point of a latency-vs-load curve.

    ``offered_fraction`` is per-site offered load as a fraction of the
    320 bytes/ns site peak.  Every site injects Poisson traffic during a
    fixed ``window_ns`` window; throughput and latency are measured for
    deliveries inside ``[warmup, window]`` so the post-injection drain of
    a saturated network cannot dilute the sustained rate.  The run then
    drains for up to ``drain_factor`` extra windows (a saturated network
    never finishes, which is the point).

    ``tracer`` attaches a :class:`~repro.core.tracing.TraceRecorder` to
    the network for the run; ``check_invariants=True`` additionally runs
    every invariant checker over the recorded trace afterwards and raises
    :class:`~repro.core.invariants.InvariantViolation` on a breach
    (conservation is checked in exactly-once form only — the bounded
    drain horizon legitimately leaves saturated runs with packets in
    flight).  Both keywords pass through ``sweep(...)`` to every load
    point of a curve.

    ``rng_block`` sets the per-site RNG prefetch block size: gap and
    destination draws are pulled from each site's private streams in
    blocks of this many instead of one call per packet.  The draws
    themselves are stream-identical either way (see
    :meth:`~repro.workloads.synthetic.TrafficPattern.destinations` and
    :func:`~repro.workloads.synthetic.exponential_gaps`), so every block
    size — including ``rng_block=0``, the legacy one-draw-per-packet
    path kept for differential testing — produces bit-identical results.

    ``saturation_threshold`` defines the saturation verdict, shared by
    the fixed and adaptive paths: a point is saturated when it delivers
    less than this fraction of what it injected by the end of the drain
    (the pre-PR-4 behavior hard-coded 0.99 — still the default — which
    tolerates the <1% of packets legitimately in flight when a healthy
    run hits the bounded drain horizon).

    ``adaptive`` opts into checkpointed execution
    (:mod:`repro.core.adaptive`): the run is stepped in horizon slices
    and may stop early once the mean latency converges (verdict:
    unsaturated) or saturation is proven (verdict: saturated) — see
    :attr:`LoadPointResult.stop_reason`.  ``adaptive=None`` (the
    default) keeps the exact legacy fixed-window run; a config with both
    stop rules disabled is bit-identical to it.

    ``warm=True`` opts into warm-start execution: the (simulator,
    network) pair comes from the per-process context registry
    (:func:`repro.core.parallel.get_context`) — reset to as-constructed
    state instead of rebuilt — and the injection draws come from an
    interned :class:`_DrawBank` shared across load points.  Both reuse
    layers are bit-identical to cold construction (the reset protocol
    and the draw-stream factoring are each differentially tested), so
    ``warm`` changes wall-clock only, never results.

    ``backend`` selects the execution engine: ``"python"`` (default) is
    the scalar event loop; ``"vectorized"`` routes the run through
    :mod:`repro.core.vectorized` — numpy-batched kernels proven
    bit-identical to the scalar path, including ``adaptive=`` runs
    (whose checkpoint decisions are replayed from the kernel's arrays)
    — and silently falls back to ``"python"`` whenever exactness needs
    real event dispatch (tracer attached, invariants on,
    ``rng_block=0``, numpy missing, or a network without a registered
    kernel; the missing-numpy fallback warns once per call site, naming
    the resolved backend).  Either way the returned result is the same
    bits; ``backend`` is wall-clock only.
    """
    if backend not in BACKENDS:
        raise ValueError("unknown backend %r; valid backends: %s"
                         % (backend, ", ".join(BACKENDS)))
    if not 0.0 < offered_fraction:
        raise ValueError("offered load must be positive")
    site_peak = config.site_bandwidth_gb_per_s  # 320 GB/s = bytes/ns
    rate_gb_per_s = offered_fraction * site_peak
    mean_gap_ps = serialization_ps(packet_bytes, rate_gb_per_s)
    inject_window_ps = int(window_ns * 1000)
    packets_per_site = max(1, inject_window_ps // mean_gap_ps)
    warmup_ps = int(inject_window_ps * warmup_fraction)
    horizon = int(inject_window_ps * (1.0 + drain_factor))

    site_gaps = site_dsts = None
    if rng_block > 0:
        site_gaps, site_dsts = _draw_schedules(
            pattern, config, seed, mean_gap_ps, packets_per_site,
            rng_block, warm)

    if backend == "vectorized":
        from .vectorized import try_run_vectorized

        result = try_run_vectorized(
            network_name, config, pattern, offered_fraction,
            packet_bytes=packet_bytes,
            inject_window_ps=inject_window_ps,
            packets_per_site=packets_per_site,
            warmup_ps=warmup_ps,
            horizon_ps=horizon,
            site_gaps=site_gaps,
            site_dsts=site_dsts,
            network_kwargs=network_kwargs,
            warm=warm,
            tracer=tracer,
            check_invariants=check_invariants,
            adaptive=adaptive,
            saturation_threshold=saturation_threshold,
            call_site="adaptive" if adaptive is not None else "sweep")
        if result is not None:
            return result

    if warm:
        ctx = get_context(network_name, config, warmup_ps,
                          network_kwargs=network_kwargs)
        sim = ctx.sim
        net = ctx.network
    else:
        sim = Simulator()
        net = build_network(network_name, config, sim, warmup_ps=warmup_ps,
                            **(network_kwargs or {}))
    if check_invariants and tracer is None:
        tracer = TraceRecorder()
    if tracer is not None:
        net.set_tracer(tracer)
    net.stats.throughput.window_end_ps = inject_window_ps
    #: per-run packet ids: pids restart at 0 for every load point, so a
    #: run's raw pids are a pure function of its arguments — independent
    #: of process history (how many packets this worker made before)
    pids = itertools.count()

    if rng_block > 0:
        # fast path: the site draws were prefetched above (shared with
        # the vectorized backend).  Each site's two streams are consumed
        # in exactly the order the per-packet path consumes them, so the
        # schedules (and hence event counts, latencies, everything) are
        # bit-identical; the per-event work drops to two list indexes.

        def injector(site: int, idx: int) -> None:
            net.inject(Packet(site, site_dsts[site][idx], packet_bytes,
                              pid=next(pids)))
            nxt = idx + 1
            if nxt < packets_per_site:
                sim.schedule(site_gaps[site][nxt], injector, site, nxt)

        sim.at_many((site_gaps[site][0], injector, (site, 0))
                    for site in range(config.num_sites))
    else:
        # legacy path: one RNG call per packet (kept for differential
        # tests pinning the batched path's equivalence)
        gap_rngs = [random.Random(derive_seed(seed, "gap", site))
                    for site in range(config.num_sites)]
        site_patterns = [pattern.split(derive_seed(seed, "dst", site))
                         for site in range(config.num_sites)]

        def injector(site: int, remaining: int) -> None:
            dst = site_patterns[site].destination(site)
            net.inject(Packet(site, dst, packet_bytes, pid=next(pids)))
            if remaining > 1:
                gap = site_patterns[site].gap_draws(
                    gap_rngs[site], mean_gap_ps, 1)[0]
                sim.schedule(gap, injector, site, remaining - 1)

        for site in range(config.num_sites):
            first = site_patterns[site].gap_draws(
                gap_rngs[site], mean_gap_ps, 1)[0]
            sim.at(first, injector, site, packets_per_site)

    if adaptive is not None:
        events, stop_reason, stopped_at_ps = execute_adaptive(
            sim, net.stats, inject_window_ps, horizon, adaptive,
            saturation_threshold,
            planned_injections=packets_per_site * config.num_sites)
    else:
        events = sim.run(until_ps=horizon)
        stop_reason = "horizon" if sim.pending() else "drained"
        stopped_at_ps = horizon

    if check_invariants:
        from .invariants import InvariantViolation, check_trace

        problems = check_trace(tracer.events,
                               capacities=net.invariant_capacities(),
                               stats=net.stats,
                               expect_drained=False)
        if problems:
            raise InvariantViolation(problems)

    stats = net.stats
    delivered = stats.delivered_packets
    injected = stats.injected_packets
    if stop_reason == "saturated":
        saturated = True
    elif stop_reason == "converged":
        saturated = False
    else:
        saturated = delivered < injected * saturation_threshold
    mean_lat = stats.latency.mean_ns if len(stats.latency) else float("nan")
    p99 = stats.latency.percentile_ns(99.0) if len(stats.latency) else float("nan")
    # measure over [warmup, last delivery]: an unsaturated network drains
    # early, a saturated one delivers right up to the horizon
    throughput = stats.throughput.bytes_per_ns()
    return LoadPointResult(
        network=network_name,
        pattern=pattern.name,
        offered_fraction=offered_fraction,
        mean_latency_ns=mean_lat,
        p99_latency_ns=p99,
        throughput_gb_per_s=throughput,
        delivered_packets=delivered,
        injected_packets=injected,
        saturated=saturated,
        events_dispatched=events,
        stop_reason=stop_reason,
        stopped_at_ps=stopped_at_ps,
    )


def to_sweep_point(result: LoadPointResult,
                   config: MacrochipConfig) -> SweepPoint:
    """Normalize one load-point result to a sweep point (throughput as a
    fraction of the aggregate peak)."""
    total_peak = config.num_sites * config.site_bandwidth_gb_per_s
    return SweepPoint(
        offered_fraction=result.offered_fraction,
        mean_latency_ns=result.mean_latency_ns,
        p99_latency_ns=result.p99_latency_ns,
        delivered_fraction=result.throughput_gb_per_s / total_peak,
        saturated=result.saturated,
    )


def sweep(network_name: str,
          config: MacrochipConfig,
          pattern: TrafficPattern,
          fractions: List[float],
          window_ns: float = 2000.0,
          workers: int = 1,
          progress: Optional[Callable[[str], None]] = None,
          warm: bool = True,
          pool: Optional[WorkerPool] = None,
          on_error: str = "raise",
          max_retries: int = 2,
          timeout_s: Optional[float] = None,
          **kwargs) -> List[SweepPoint]:
    """Run a list of load points and normalize throughput to total peak.

    Load points are independent simulations, so with ``workers > 1`` they
    are sharded across processes via :func:`repro.core.parallel.
    run_sharded`; every point's RNG streams derive from its own arguments,
    so results are bit-identical to the ``workers=1`` serial path.  High
    loads inject (and queue) the most packets, so shards are submitted in
    descending-load order — the run never serializes on a late-submitted
    expensive tail.  Extra keywords (``adaptive``, ``rng_block``,
    ``saturation_threshold``, ``check_invariants``, ...) pass through to
    every :func:`run_load_point`.

    Sweeps warm-start by default (``warm=True``): every load point after
    the first reuses the reset (simulator, network) context and the
    interned draw bank instead of rebuilding them — bit-identical
    results, less wall-clock.  Serial warm sweeps additionally draw all
    load points' schedules in one bank pass up front
    (:func:`_prewarm_draw_bank`) and, on the vectorized backend, reuse
    a per-process kernel scratch arena keyed by the warm-context
    fingerprint — both pure amortizations, results unchanged.  ``warm=False`` forces cold construction
    everywhere (the escape hatch exposed as ``--cold`` on the experiment
    CLIs).  ``pool`` lends a persistent
    :class:`~repro.core.parallel.WorkerPool` so consecutive sweeps reuse
    worker processes (and their warm contexts) instead of re-spawning.

    ``on_error`` / ``max_retries`` / ``timeout_s`` are the per-shard
    fault policy (see :class:`~repro.core.parallel.ErrorPolicy`).  Under
    ``'collect'``/``'retry'`` a load point that ultimately fails is
    *dropped from the returned curve* — the surviving points keep their
    order — rather than aborting the sweep; callers that need the
    structured :class:`~repro.core.parallel.ShardError` records should
    drive :func:`run_sharded` directly (as the figure drivers do).

    ``backend="vectorized"`` (an extra keyword, like the others it
    reaches every load point) routes each point through the numpy
    fast path — bit-identical results, see :mod:`repro.core.vectorized`.
    """
    if warm and workers == 1 and fractions:
        _prewarm_draw_bank(config, pattern, fractions, window_ns, kwargs)
    shards = [
        Shard(run_load_point,
              args=(network_name, config, pattern, f),
              kwargs=dict(window_ns=window_ns, warm=warm, **kwargs),
              label="%s/%s @%.3f" % (network_name, pattern.name, f))
        for f in fractions
    ]
    run = run_sharded(shards, workers=workers, progress=progress,
                      cost_key=lambda s: s.args[3], pool=pool,
                      on_error=on_error, max_retries=max_retries,
                      timeout_s=timeout_s)
    return [to_sweep_point(r, config) for r in run.results
            if not isinstance(r, ShardError)]


def saturation_fraction(points: List[SweepPoint]) -> float:
    """The highest delivered fraction observed over a sweep — the paper's
    'sustained bandwidth, % of peak'."""
    if not points:
        raise ValueError("empty sweep")
    return max(p.delivered_fraction for p in points)
