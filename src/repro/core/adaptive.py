"""Adaptive load-point execution: checkpointed early termination.

The fixed-grid Figure 6 methodology simulates every (network, pattern,
load) point for a full injection window plus drain — even when the point
is deep in saturation (where only the binary "saturated" verdict is
needed) or the mean latency converged long ago.  This module makes the
sweep harness simulate dramatically fewer events for the same curves:

* :class:`AdaptiveConfig` + :func:`execute_adaptive` — step
  ``Simulator.run`` in horizon *slices* and evaluate stop rules at every
  checkpoint:

  - **convergence stop**: a batch-means relative-precision test on mean
    delivered latency.  Each inter-checkpoint span of post-warmup
    deliveries is one batch; once ``min_batches`` batches exist and the
    confidence half-width of the batch-mean estimator drops under
    ``rel_precision`` of the running mean, the point is declared
    converged and the rest of the window/drain is skipped.
  - **saturation fast-abort**: the fixed path's verdict is "saturated
    iff the end-of-drain in-flight backlog exceeds ``(1 - threshold)``
    of all injected packets".  At every checkpoint the executor projects
    that final backlog from the current backlog, the known remaining
    injections, and the measured delivery rate; once the projection
    exceeds the saturation deficit by ``abort_margin`` for
    ``abort_streak`` consecutive checkpoints of strictly growing
    backlog, the point is recorded as saturated without simulating the
    rest of the window or the drain.  The margin plus the streak make
    the abort *conservative*: quasi-saturated points whose drain would
    still clear the backlog run to completion and get the legacy
    verdict.

  With both rules disabled the sliced executor dispatches exactly the
  events the single-shot ``sim.run(until_ps=horizon)`` call would — in
  the same order, with the same final clock — so results are
  bit-identical to the legacy fixed-window path (pinned by
  ``tests/test_fastpath_equivalence.py``).

* :func:`refine_knee` — a knee-seeking sweep driver that replaces a
  fixed load grid with coarse probing plus bisection between the last
  unsaturated and first saturated load.  The knee (the paper's "maximum
  sustainable bandwidth", read off the vertical asymptote of the
  latency-load curve) is located at equal-or-better resolution with far
  fewer simulated points, each of which may itself stop early.

Adaptive execution is *opt-in* (``run_load_point(..., adaptive=cfg)``);
every default path keeps the exact legacy fixed-window behavior, so
golden pins and differential tests are untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = [
    "AdaptiveConfig",
    "KneeResult",
    "execute_adaptive",
    "refine_knee",
]


@dataclass(frozen=True)
class AdaptiveConfig:
    """Stop-rule knobs for checkpointed load-point execution.

    ``slice_fraction`` sets the checkpoint cadence as a fraction of the
    injection window (1/32 by default: stop rules are evaluated 32 times
    per window and at the same cadence through the drain).  The two stop
    rules are independently switchable; with both off the executor is a
    pure re-slicing of the legacy single-shot run.
    """

    #: checkpoint interval as a fraction of the injection window
    slice_fraction: float = 0.03125

    # -- convergence stop (unsaturated points) --------------------------------
    #: enable the batch-means relative-precision test
    convergence_stop: bool = True
    #: stop once half-width <= rel_precision * mean of batch means (10%
    #: by default: adaptive mode deliberately trades a small latency-mean
    #: bias on near-knee points for skipping the rest of their window —
    #: the delivered *rate*, which sets the knee, settles much earlier
    #: than the mean latency)
    rel_precision: float = 0.10
    #: minimum number of non-empty post-warmup batches before testing
    min_batches: int = 10
    #: normal critical value for the confidence half-width (1.96 = 95%)
    confidence_z: float = 1.96
    #: never converge-stop a point planning fewer injections than this:
    #: small runs have single-digit saturation deficits, so per-slice
    #: rate noise can flip their verdict (a barely-saturated
    #: circuit-switched run whose drain stalls on starved circuits looks
    #: clearable mid-window) — and skipping the tail of a small run
    #: saves next to nothing, so they simply run to the legacy verdict
    min_converge_planned: int = 20000

    # -- saturation fast-abort (saturated points) -----------------------------
    #: enable the projected-backlog + backlog-growth abort
    saturation_abort: bool = True
    #: consecutive checkpoints of over-deficit projection + growing backlog
    abort_streak: int = 4
    #: never abort before this many packets were injected
    min_abort_injected: int = 256
    #: the projected end-of-drain backlog must exceed the saturation
    #: deficit by this factor — headroom for delivery-rate estimation
    #: error, so a drain that would clear the backlog is never aborted
    abort_margin: float = 2.0
    #: the projection credits remaining drain time with this multiple of
    #: the measured delivery rate: networks often drain much faster once
    #: injection-side contention stops (the limited point-to-point
    #: network roughly doubles, and only after half the drain has
    #: passed), and underestimating the drain is what turns a clearable
    #: backlog into a false abort
    drain_rate_factor: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 < self.slice_fraction <= 1.0:
            raise ValueError("slice_fraction must be in (0, 1], got %r"
                             % (self.slice_fraction,))
        if not 0.0 < self.rel_precision < 1.0:
            raise ValueError("rel_precision must be in (0, 1), got %r"
                             % (self.rel_precision,))
        if self.min_batches < 2:
            raise ValueError("min_batches must be >= 2 (batch-means needs "
                             "a variance), got %r" % (self.min_batches,))
        if self.min_converge_planned < 0:
            raise ValueError("min_converge_planned must be >= 0, got %r"
                             % (self.min_converge_planned,))
        if self.abort_streak < 1:
            raise ValueError("abort_streak must be >= 1, got %r"
                             % (self.abort_streak,))
        if self.abort_margin < 1.0:
            raise ValueError("abort_margin must be >= 1 (a sub-unity "
                             "margin aborts runs the drain would save), "
                             "got %r" % (self.abort_margin,))
        if self.drain_rate_factor < 1.0:
            raise ValueError("drain_rate_factor must be >= 1 (the drain "
                             "is never slower to a first approximation; "
                             "under-crediting it causes false aborts), "
                             "got %r" % (self.drain_rate_factor,))

    def disabled(self) -> "AdaptiveConfig":
        """A copy with both stop rules off — the pure re-slicing used by
        the differential tests."""
        return replace(self, convergence_stop=False, saturation_abort=False)


def execute_adaptive(sim,
                     stats,
                     inject_window_ps: int,
                     horizon_ps: int,
                     cfg: AdaptiveConfig,
                     saturation_threshold: float,
                     planned_injections: int) -> Tuple[int, str, int]:
    """Step ``sim`` to ``horizon_ps`` in slices, checking stop rules.

    ``stats`` is the network's :class:`~repro.core.stats.NetworkStats`;
    the latency sample and packet counters it accumulates *are* the
    checkpoint state — no extra instrumentation runs between checkpoints,
    so the dispatched event stream is identical to an uninterrupted run.
    ``planned_injections`` is the total packet count the injectors will
    schedule over the window (known up front: injection is open-loop),
    which anchors the fast-abort's projection of the legacy verdict.

    Returns ``(events_dispatched, stop_reason, stopped_at_ps)`` where
    ``stop_reason`` is one of:

    * ``'converged'`` — the batch-means test passed; the point is
      unsaturated and its mean latency is statistically settled;
    * ``'saturated'`` — the fast-abort proved saturation;
    * ``'drained'`` — the event queue emptied before the horizon (every
      injected packet delivered), exactly like the legacy path;
    * ``'horizon'`` — the full window + drain was simulated with no rule
      firing (also the verdict-neutral outcome: the caller applies the
      legacy delivered/injected test).

    For ``'drained'``/``'horizon'`` the clock convention matches the
    single-shot run (``stopped_at_ps == horizon_ps``); for early stops it
    is the checkpoint time at which the rule fired.
    """
    slice_ps = max(1, int(inject_window_ps * cfg.slice_fraction))
    warmup_ps = stats.throughput.warmup_ps
    events = 0

    # the fixed path declares saturation when the end-of-drain backlog
    # exceeds this many packets (delivered < threshold * injected)
    sat_deficit = (1.0 - saturation_threshold) * planned_injections

    # convergence state: batch means of delivered latency between
    # checkpoints (post-warmup, non-empty batches only)
    batch_means: List[float] = []
    prev_count = stats.latency.count
    prev_sum = stats.latency.sum_ps

    # fast-abort state: backlog trajectory + last-slice delivery rate
    prev_backlog: Optional[int] = None
    prev_delivered = stats.delivered_packets
    streak = 0

    now = 0
    while now < horizon_ps:
        now = min(now + slice_ps, horizon_ps)
        events += sim.run(until_ps=now)

        if sim.pending() == 0:
            # all injections fired and every packet delivered: the legacy
            # single-shot run would have returned here too
            return events, "drained", horizon_ps

        past_warmup = now > warmup_ps
        backlog = stats.in_flight
        delivered = stats.delivered_packets
        # shared projection state: the measured per-slice delivery rate,
        # the injections still to come (known up front — injection is
        # open-loop), and the time left in each phase
        delivery_rate = (delivered - prev_delivered) / slice_ps
        remaining = planned_injections - stats.injected_packets
        inject_left = max(0, inject_window_ps - now)
        drain_left = horizon_ps - max(now, inject_window_ps)

        if cfg.saturation_abort and past_warmup:
            # project the legacy verdict: will the end-of-drain backlog
            # clear the saturation deficit?  Only a projection over the
            # deficit with margin counts toward the abort streak.  The
            # remaining drain time is credited at drain_rate_factor x
            # the measured rate even mid-drain: contention can take a
            # sizable fraction of the drain to dissipate (the limited
            # point-to-point network holds its in-window rate for half
            # the drain, then doubles), and extrapolating the not-yet-
            # accelerated rate is what turns a clearable backlog into a
            # false abort
            capacity = (delivery_rate * inject_left
                        + cfg.drain_rate_factor * delivery_rate
                        * drain_left)
            if now <= inject_window_ps:
                # while injecting, only a strictly growing backlog
                # counts toward the streak
                growing = prev_backlog is not None and backlog > prev_backlog
            else:
                # in the drain the backlog shrinks by construction, so
                # the projection alone gates it
                growing = True
            proven = (
                stats.injected_packets >= cfg.min_abort_injected
                and backlog + remaining - capacity
                > cfg.abort_margin * sat_deficit)
            streak = streak + 1 if (proven and growing) else 0
            if streak >= cfg.abort_streak:
                return events, "saturated", now

        prev_backlog = backlog
        prev_delivered = delivered

        if (cfg.convergence_stop and past_warmup
                and planned_injections >= cfg.min_converge_planned):
            count = stats.latency.count
            delta_n = count - prev_count
            if delta_n > 0:
                total = stats.latency.sum_ps
                batch_means.append((total - prev_sum) / delta_n)
                prev_count, prev_sum = count, total
                # the projection gate keeps borderline points honest: a
                # converged mean only ends the run if the drain provably
                # clears the whole backlog *at the measured rate, with no
                # drain-acceleration credit* — the conservative mirror
                # image of the fast-abort (which needs the credited
                # projection to *exceed* the deficit with margin, so the
                # two rules can never claim the same checkpoint)
                clears = (backlog + remaining
                          - delivery_rate * (inject_left + drain_left)
                          <= 0.0)
                if len(batch_means) >= cfg.min_batches and clears:
                    k = len(batch_means)
                    grand = sum(batch_means) / k
                    var = sum((b - grand) ** 2 for b in batch_means) / (k - 1)
                    half_width = cfg.confidence_z * math.sqrt(var / k)
                    if grand > 0 and half_width <= cfg.rel_precision * grand:
                        return events, "converged", now

    return events, "horizon", horizon_ps


# -- knee refinement ----------------------------------------------------------

@dataclass(frozen=True)
class KneeResult:
    """Outcome of a knee-seeking sweep for one (network, pattern) pair."""

    network: str
    pattern: str
    #: sustained delivered fraction at the knee — the paper's "maximum
    #: sustainable bandwidth, % of peak" (best unsaturated point, falling
    #: back to the best overall if every probe saturated)
    knee_fraction: float
    #: offered load of the point that achieved ``knee_fraction``
    knee_offered: float
    #: highest offered load proven unsaturated (0.0 if every probe saturated)
    bracket_low: float
    #: lowest offered load proven saturated (``inf`` if none saturated)
    bracket_high: float
    #: final bisection interval width — the knee's offered-load resolution
    resolution: float
    #: every probed point (coarse + bisection), ascending offered load
    points: Tuple = ()
    #: coarse loads the ascending walk never probed: saturation is
    #: monotone in offered load, so everything above the first saturated
    #: probe is skipped (recorded here, not silently dropped)
    skipped_loads: Tuple[float, ...] = ()
    #: total simulator events across all probes
    events_dispatched: int = 0
    #: number of load points simulated
    load_points: int = 0
    #: probes that failed under ``on_error='collect'``: tuples of
    #: ``(offered_fraction, error_type, message)``, ascending load.
    #: Empty on a clean refinement (and always under ``'raise'``)
    failures: Tuple = ()


def refine_knee(network_name: str,
                config,
                pattern,
                coarse_fractions: Sequence[float],
                window_ns: float = 2000.0,
                bisections: int = 4,
                adaptive: Optional[AdaptiveConfig] = AdaptiveConfig(),
                progress: Optional[Callable[[str], None]] = None,
                on_error: str = "raise",
                **kwargs) -> KneeResult:
    """Locate the saturation knee with coarse probing plus bisection.

    The ``coarse_fractions`` grid (typically every few points of the
    fixed Figure 6 grid, plus its endpoint) is walked in ascending order;
    saturation is monotone in offered load, so the walk stops at the
    first saturated probe and skips everything above it (recorded in
    :attr:`KneeResult.skipped_loads`).  Bisection then halves the
    interval between the last unsaturated and first saturated load
    ``bisections`` times, so the knee's offered-load resolution is
    ``(hi - lo) / 2**bisections`` — equal or better than the fixed
    grid's spacing with far fewer simulated points, each of which may
    itself stop early under ``adaptive`` (pass ``adaptive=None`` to
    probe with full fixed-window runs).  Every step depends on the
    previous verdict, so a single refinement is inherently serial;
    parallelism lives one level up, across (pattern, network) pairs
    (see :func:`repro.experiments.figure6.run_figure6_adaptive`).

    ``on_error='collect'`` makes the refinement fault-tolerant: a probe
    that raises is recorded in :attr:`KneeResult.failures` and skipped —
    the ascending walk moves to the next coarse load (the failed probe's
    verdict is unknown, not assumed), and a failed bisection probe ends
    the bisection at the bracket reached so far.  The refinement only
    raises if *every* probe failed.  ``'raise'`` (the default) keeps the
    historical propagate-first-error behavior.

    Extra ``kwargs`` (``seed``, ``rng_block``, ``saturation_threshold``,
    ...) pass through to every ``run_load_point`` call.
    """
    from .sweep import run_load_point, to_sweep_point

    if on_error not in ("raise", "collect"):
        raise ValueError("refine_knee on_error must be 'raise' or "
                         "'collect', got %r" % (on_error,))
    fractions = sorted(set(float(f) for f in coarse_fractions))
    if not fractions:
        raise ValueError("refine_knee needs at least one coarse fraction")

    failures = []

    def probe(f):
        """One guarded load-point probe: the result, or None when it
        failed under 'collect' (failure recorded)."""
        try:
            return run_load_point(network_name, config, pattern, f,
                                  **point_kwargs)
        except Exception as exc:
            if on_error == "raise":
                raise
            failures.append((f, type(exc).__name__, str(exc)))
            return None

    point_kwargs = dict(window_ns=window_ns, adaptive=adaptive, **kwargs)
    results = []
    skipped: Tuple[float, ...] = ()
    events = 0
    for i, f in enumerate(fractions):
        if progress:
            progress("knee %s/%s probe @%.4f"
                     % (network_name, pattern.name, f))
        r = probe(f)
        if r is None:
            continue
        results.append(r)
        events += r.events_dispatched
        if r.saturated:
            skipped = tuple(fractions[i + 1:])
            break

    if not results:
        raise RuntimeError(
            "every knee probe failed for %s/%s: %s"
            % (network_name, pattern.name,
               "; ".join("@%.4f %s: %s" % f for f in failures)))

    def bracket(rs):
        unsat = [r.offered_fraction for r in rs if not r.saturated]
        sat = [r.offered_fraction for r in rs if r.saturated]
        return (max(unsat) if unsat else 0.0,
                min(sat) if sat else float("inf"))

    lo, hi = bracket(results)
    if math.isfinite(hi):
        for _ in range(max(0, bisections)):
            mid = 0.5 * (lo + hi)
            if mid <= 0.0 or mid in (lo, hi):
                break
            if progress:
                progress("knee %s/%s bisect @%.4f"
                         % (network_name, pattern.name, mid))
            r = probe(mid)
            if r is None:
                # the midpoint's verdict is unknown, so the bracket
                # cannot shrink: keep the resolution reached so far
                break
            results.append(r)
            events += r.events_dispatched
            if r.saturated:
                hi = mid
            else:
                lo = mid

    results.sort(key=lambda r: r.offered_fraction)
    unsat = [r for r in results if not r.saturated]
    candidates = unsat or results
    best = max(candidates,
               key=lambda r: to_sweep_point(r, config).delivered_fraction)
    best_point = to_sweep_point(best, config)
    return KneeResult(
        network=network_name,
        pattern=pattern.name,
        knee_fraction=best_point.delivered_fraction,
        knee_offered=best.offered_fraction,
        bracket_low=lo,
        bracket_high=hi,
        resolution=(hi - lo) if math.isfinite(hi) else float("inf"),
        points=tuple(to_sweep_point(r, config) for r in results),
        skipped_loads=skipped,
        events_dispatched=events,
        load_points=len(results),
        failures=tuple(failures),
    )
