"""Core simulation infrastructure: event engine, units, statistics,
structured tracing, and invariant checking."""

from .adaptive import AdaptiveConfig, KneeResult, refine_knee
from .engine import SimulationError, Simulator
from .invariants import InvariantMonitor, InvariantViolation, Violation, check_trace
from .stats import EnergyAccount, LatencySample, NetworkStats, ThroughputMeter
from .sweep import LoadPointResult, SweepPoint, run_load_point, sweep
from .tracing import TraceEvent, TraceRecorder

__all__ = [
    "Simulator",
    "SimulationError",
    "AdaptiveConfig",
    "KneeResult",
    "refine_knee",
    "NetworkStats",
    "LatencySample",
    "ThroughputMeter",
    "EnergyAccount",
    "run_load_point",
    "sweep",
    "LoadPointResult",
    "SweepPoint",
    "TraceEvent",
    "TraceRecorder",
    "InvariantMonitor",
    "InvariantViolation",
    "Violation",
    "check_trace",
]
