"""Core simulation infrastructure: event engine, units, statistics."""

from .engine import SimulationError, Simulator
from .stats import EnergyAccount, LatencySample, NetworkStats, ThroughputMeter
from .sweep import LoadPointResult, SweepPoint, run_load_point, sweep

__all__ = [
    "Simulator",
    "SimulationError",
    "NetworkStats",
    "LatencySample",
    "ThroughputMeter",
    "EnergyAccount",
    "run_load_point",
    "sweep",
    "LoadPointResult",
    "SweepPoint",
]
