"""Structured event tracing for network simulations.

Every network model emits a stream of :class:`TraceEvent` records through
an optional :class:`TraceRecorder` — packet lifecycle events (inject,
enqueue, tx-start, tx-end, deliver) plus resource-grant events for the
arbitrated resources (two-phase slots and switch trees, token-ring
tokens, circuit engines and receiver ports).  The trace is the substrate
for :mod:`repro.core.invariants`, which checks the physical contract all
five architectures must share for the paper's comparison to mean
anything.

Design constraints:

* **Zero cost when disabled.**  Networks hold ``tracer = None`` by
  default and guard every emission with ``if tracer is not None`` — an
  attribute test, no call, no allocation.  The acceptance bar is < 3%
  regression on an untraced ``bench_runner`` load point.
* **Deterministic.**  Records are plain tuples of ints and interned
  strings; two identical runs produce identical streams.  Because packet
  ids come from a process-global counter, :meth:`TraceRecorder.
  canonical_lines` renumbers pids by first appearance so traces from
  separate runs in one process are byte-comparable.
* **Decision-time emission.**  A record is emitted when the model
  *decides* an occupancy, with the modeled interval in ``start_ps`` /
  ``end_ps`` (e.g. a slot reservation is recorded at request time, for a
  slot in the future).  ``time_ps`` is the modeled event time; per-packet
  streams are causally ordered, the global stream is ordered by ``seq``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional

# -- event types --------------------------------------------------------------

#: packet accepted by the network at the current simulation time
INJECT = "inject"
#: packet queued on a resource (channel FIFO, engine queue, token queue)
ENQUEUE = "enqueue"
#: first bit starts serializing onto a channel
TX_START = "tx_start"
#: last bit has left the transmitter (arrival end, if known, in end_ps)
TX_END = "tx_end"
#: packet handed to the sink
DELIVER = "deliver"
#: exclusive resource granted for [start_ps, end_ps); end_ps == -1 means
#: the hold is open-ended and closed by a later RELEASE
GRANT = "grant"
#: open-ended GRANT on the same resource is released
RELEASE = "release"
#: a granted resource interval went unused (e.g. a wasted two-phase slot)
WASTE = "waste"

PACKET_LIFECYCLE = (INJECT, ENQUEUE, TX_START, TX_END, DELIVER)


class TraceEvent(NamedTuple):
    """One structured trace record.

    Unused integer fields are ``-1``; unused strings are ``""``.
    ``start_ps``/``end_ps`` carry the modeled occupancy interval for
    TX/GRANT/WASTE records (``end_ps`` of TX_START is the serialization
    end; of TX_END the far-end arrival).
    """

    seq: int
    time_ps: int
    etype: str
    pid: int = -1
    src: int = -1
    dst: int = -1
    size_bytes: int = -1
    resource: str = ""
    start_ps: int = -1
    end_ps: int = -1

    def to_line(self) -> str:
        """Stable tab-separated serialization (one record per line)."""
        return "%d\t%d\t%s\t%d\t%d\t%d\t%d\t%s\t%d\t%d" % self


class TraceRecorder:
    """Append-only sink for :class:`TraceEvent` records."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, time_ps: int, etype: str, pid: int = -1, src: int = -1,
             dst: int = -1, size_bytes: int = -1, resource: str = "",
             start_ps: int = -1, end_ps: int = -1) -> None:
        self.events.append(TraceEvent(
            len(self.events), time_ps, etype, pid, src, dst, size_bytes,
            resource, start_ps, end_ps))

    def __len__(self) -> int:
        return len(self.events)

    def by_type(self, etype: str) -> List[TraceEvent]:
        return [e for e in self.events if e.etype == etype]

    def packet_ids(self) -> List[int]:
        """Distinct pids in first-appearance order."""
        seen: Dict[int, None] = {}
        for e in self.events:
            if e.pid >= 0 and e.pid not in seen:
                seen[e.pid] = None
        return list(seen)

    def packet_events(self) -> Dict[int, List[TraceEvent]]:
        """Per-packet event streams, in emission (causal) order."""
        streams: Dict[int, List[TraceEvent]] = {}
        for e in self.events:
            if e.pid >= 0:
                streams.setdefault(e.pid, []).append(e)
        return streams

    def resources(self) -> List[str]:
        return sorted({e.resource for e in self.events if e.resource})

    def to_lines(self) -> List[str]:
        return [e.to_line() for e in self.events]

    def canonical_lines(self) -> List[str]:
        """Serialized records with pids renumbered by first appearance.

        Packet ids come from a process-global counter, so two otherwise
        identical runs in one process disagree on raw pids; canonical
        renumbering restores byte-identity (the determinism contract
        ``tests/test_engine.py`` pins).
        """
        remap: Dict[int, int] = {}
        out = []
        for e in self.events:
            if e.pid >= 0:
                pid = remap.setdefault(e.pid, len(remap))
                e = e._replace(pid=pid)
            out.append(e.to_line())
        return out


def iter_grant_intervals(events: Iterable[TraceEvent],
                         resource: str) -> Iterator[TraceEvent]:
    """GRANT/RELEASE/WASTE records touching ``resource``, in seq order."""
    for e in events:
        if e.resource == resource and e.etype in (GRANT, RELEASE, WASTE):
            yield e


def attach(network, recorder: Optional[TraceRecorder] = None) -> TraceRecorder:
    """Attach a (new, unless given) recorder to a network; returns it."""
    rec = recorder if recorder is not None else TraceRecorder()
    network.set_tracer(rec)
    return rec
