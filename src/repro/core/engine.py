"""Discrete-event simulation kernel.

A small, fast, deterministic event engine.  Design choices:

* **Callback style**, not coroutine style: each event is ``(time, seq, fn,
  args)``.  Callback dispatch is the cheapest process model in CPython and
  the networks in this package are naturally written as state machines.
* **Integer picosecond timestamps** with a monotonically increasing
  sequence number as tie-breaker, so simultaneous events fire in the order
  they were scheduled and runs are exactly reproducible.
* ``Simulator.run`` supports an optional horizon and an explicit ``stop()``
  for open-ended workloads (e.g. load sweeps that stop after N packets).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised on simulator misuse (negative delays, running twice, ...)."""


class Simulator:
    """A discrete-event simulator with integer-picosecond time.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.at(100, fired.append, "a")
    >>> sim.at(50, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    __slots__ = ("_now", "_queue", "_seq", "_running", "_stopped", "trace")

    def __init__(self) -> None:
        self._now = 0
        self._queue: List[Tuple[int, int, Callable[..., Any], tuple]] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        #: Optional callable(time_ps, fn, args) invoked before each dispatch;
        #: used by tests and debugging tools.
        #:
        #: Contract (pinned by test_engine.py): the hook fires for *every*
        #: dispatched event — including the event whose callback requests
        #: ``stop()`` and events whose callbacks raise.  ``stop()`` takes
        #: effect only after the current callback returns, and no further
        #: events are dispatched (hence none traced) until the next
        #: ``run()``: dispatch and trace never disagree.
        self.trace: Optional[Callable[[int, Callable, tuple], None]] = None

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    def schedule(self, delay_ps: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay_ps`` after the current time."""
        if delay_ps < 0:
            raise SimulationError("cannot schedule into the past (delay=%d)" % delay_ps)
        self.at(self._now + delay_ps, fn, *args)

    def at(self, time_ps: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``time_ps``."""
        if time_ps < self._now:
            raise SimulationError(
                "cannot schedule at %d before now=%d" % (time_ps, self._now)
            )
        heapq.heappush(self._queue, (time_ps, self._seq, fn, args))
        self._seq += 1

    def stop(self) -> None:
        """Stop the run loop after the currently dispatching event returns."""
        self._stopped = True

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def run(self, until_ps: Optional[int] = None) -> int:
        """Dispatch events in time order.

        Runs until the queue drains, ``stop()`` is called, or the next event
        would fire strictly after ``until_ps``.  When a horizon is given the
        clock is advanced to the horizon on return.  Returns the number of
        events dispatched.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        dispatched = 0
        queue = self._queue
        try:
            while queue and not self._stopped:
                time_ps, _seq, fn, args = queue[0]
                if until_ps is not None and time_ps > until_ps:
                    break
                heapq.heappop(queue)
                self._now = time_ps
                if self.trace is not None:
                    self.trace(time_ps, fn, args)
                fn(*args)
                dispatched += 1
        finally:
            self._running = False
        if until_ps is not None and not self._stopped and self._now < until_ps:
            self._now = until_ps
        return dispatched
