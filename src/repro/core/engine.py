"""Discrete-event simulation kernel.

A small, fast, deterministic event engine.  Design choices:

* **Callback style**, not coroutine style: each event is ``(time, seq, fn,
  args)``.  Callback dispatch is the cheapest process model in CPython and
  the networks in this package are naturally written as state machines.
* **Integer picosecond timestamps** with a monotonically increasing
  sequence number as tie-breaker, so simultaneous events fire in the order
  they were scheduled and runs are exactly reproducible.
* ``Simulator.run`` supports an optional horizon and an explicit ``stop()``
  for open-ended workloads (e.g. load sweeps that stop after N packets).
* **Two-tier event queue.**  Ordinary ``at``/``schedule`` calls go through
  a binary heap; :meth:`Simulator.at_many` installs a pre-sorted *bulk run*
  consumed by O(1) pops from the tail.  The dispatch loop always takes the
  global ``(time, seq)`` minimum of the two tiers, so the observable order
  is exactly what a heap-only engine would produce — bulk scheduling is a
  throughput optimization, never a semantic one.
* **Fast/slow dispatch loops.**  The trace hook is hoisted out of the hot
  loop: with ``trace is None`` the engine spins in a loop that never calls
  the hook; installing a hook (even mid-run, from a callback) switches to
  the traced loop at the next event, and removing it switches back.
  Dispatch order, stop() cutoff, and horizon semantics are identical in
  both loops.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Iterable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised on simulator misuse (negative delays, running twice, ...)."""


class Simulator:
    """A discrete-event simulator with integer-picosecond time.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.at(100, fired.append, "a")
    >>> sim.at(50, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    __slots__ = ("_now", "_queue", "_bulk", "_seq", "_running", "_stopped",
                 "trace")

    def __init__(self) -> None:
        self._now = 0
        self._queue: List[Tuple[int, int, Callable[..., Any], tuple]] = []
        # descending-sorted bulk run, consumed from the tail via pop();
        # mutated only in place (never rebound) so the run loop's local
        # alias stays valid across at_many() calls from callbacks
        self._bulk: List[Tuple[int, int, Callable[..., Any], tuple]] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        #: Optional callable(time_ps, fn, args) invoked before each dispatch;
        #: used by tests and debugging tools.
        #:
        #: Contract (pinned by test_engine.py): the hook fires for *every*
        #: dispatched event — including the event whose callback requests
        #: ``stop()`` and events whose callbacks raise.  ``stop()`` takes
        #: effect only after the current callback returns, and no further
        #: events are dispatched (hence none traced) until the next
        #: ``run()``: dispatch and trace never disagree.  The hook may be
        #: installed or removed mid-run (by a callback); the switch takes
        #: effect at the next dispatched event.
        self.trace: Optional[Callable[[int, Callable, tuple], None]] = None

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    def schedule(self, delay_ps: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay_ps`` after the current time."""
        if delay_ps < 0:
            raise SimulationError("cannot schedule into the past (delay=%d)" % delay_ps)
        seq = self._seq
        heappush(self._queue, (self._now + delay_ps, seq, fn, args))
        self._seq = seq + 1

    def at(self, time_ps: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``time_ps``."""
        if time_ps < self._now:
            raise SimulationError(
                "cannot schedule at %d before now=%d" % (time_ps, self._now)
            )
        seq = self._seq
        heappush(self._queue, (time_ps, seq, fn, args))
        self._seq = seq + 1

    def at_many(self,
                events: Iterable[Tuple[int, Callable[..., Any], tuple]]) -> int:
        """Bulk-schedule ``(time_ps, fn, args)`` triples; returns the count.

        Semantically identical to calling :meth:`at` once per triple in
        iteration order (sequence numbers are assigned in that order, so
        ties break exactly the same way) but far cheaper for large
        batches: the batch is sorted once and consumed by O(1) pops
        instead of per-event heap sifts.  The call is atomic — if any
        timestamp lies in the past, ``SimulationError`` is raised and
        *no* event of the batch is scheduled.
        """
        now = self._now
        seq = self._seq
        stamped = []
        append = stamped.append
        for time_ps, fn, args in events:
            if time_ps < now:
                raise SimulationError(
                    "cannot schedule at %d before now=%d" % (time_ps, now)
                )
            append((time_ps, seq, fn, args))
            seq += 1
        if not stamped:
            return 0
        self._seq = seq
        bulk = self._bulk
        if bulk:
            # a bulk run is already being consumed: fall back to the heap
            # (correct for any interleaving, just not O(1) per event)
            queue = self._queue
            for item in stamped:
                heappush(queue, item)
        else:
            # (time, seq) prefixes are unique, so sort never compares fns
            stamped.sort(reverse=True)
            bulk[:] = stamped
        return len(stamped)

    def stop(self) -> None:
        """Stop the run loop after the currently dispatching event returns."""
        self._stopped = True

    def reset(self) -> None:
        """Return to freshly-constructed state so the instance can be
        reused for another run (the warm-start protocol).

        Clears both queue tiers **in place** — ``_bulk`` must never be
        rebound (the run loop holds a local alias) — and rewinds the
        clock and sequence counter, so a reused simulator schedules and
        dispatches exactly like a new one.  Must not be called from
        inside a running dispatch loop.
        """
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        self._now = 0
        self._queue.clear()
        self._bulk.clear()
        self._seq = 0
        self._stopped = False
        self.trace = None

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue) + len(self._bulk)

    def _pop_next(self):
        """Pop the globally next event, or None when both tiers are empty."""
        bulk = self._bulk
        queue = self._queue
        if bulk:
            if queue and queue[0] < bulk[-1]:
                return heappop(queue)
            return bulk.pop()
        if queue:
            return heappop(queue)
        return None

    def _unpop(self, item) -> None:
        """Return an event popped by the horizon peek to its tier.

        Appending to the bulk tail is valid only while ``item`` precedes
        every remaining bulk event; otherwise the heap absorbs it (tier
        membership is internal — dispatch order only depends on
        ``(time, seq)``).
        """
        bulk = self._bulk
        if bulk and item < bulk[-1]:
            bulk.append(item)
        else:
            heappush(self._queue, item)

    def run(self, until_ps: Optional[int] = None) -> int:
        """Dispatch events in time order.

        Runs until the queue drains, ``stop()`` is called, or the next event
        would fire strictly after ``until_ps``.  When a horizon is given the
        clock is advanced to the horizon on return.  Returns the number of
        events dispatched.

        ``run`` is *resumable*: calling it again with a later horizon
        continues exactly where the previous call left off.  Slicing one
        horizon into ``run(t1); run(t2); ...; run(tN)`` dispatches the
        same events in the same order as a single ``run(tN)`` (an event
        peeked past an intermediate horizon is returned to its tier by
        ``_unpop`` untouched), which is what lets the adaptive sweep
        executor (:mod:`repro.core.adaptive`) checkpoint stop rules
        between slices while staying bit-identical when no rule fires.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        dispatched = 0
        queue = self._queue
        bulk = self._bulk
        pop = heappop
        finished = False  # both tiers drained, or the horizon was reached
        try:
            while not (finished or self._stopped):
                if self.trace is None:
                    # -- fast loops: the hook is never consulted per event;
                    # the two variants keep the horizon compare out of the
                    # unbounded case entirely
                    if until_ps is None:
                        while True:
                            if bulk:
                                if queue and queue[0] < bulk[-1]:
                                    item = pop(queue)
                                else:
                                    item = bulk.pop()
                            elif queue:
                                item = pop(queue)
                            else:
                                finished = True
                                break
                            self._now = item[0]
                            item[2](*item[3])
                            dispatched += 1
                            if self._stopped or self.trace is not None:
                                break
                    else:
                        while True:
                            if bulk:
                                if queue and queue[0] < bulk[-1]:
                                    item = pop(queue)
                                else:
                                    item = bulk.pop()
                            elif queue:
                                item = pop(queue)
                            else:
                                finished = True
                                break
                            time_ps = item[0]
                            if time_ps > until_ps:
                                self._unpop(item)
                                finished = True
                                break
                            self._now = time_ps
                            item[2](*item[3])
                            dispatched += 1
                            if self._stopped or self.trace is not None:
                                break
                else:
                    # -- slow loop: trace every dispatched event -----------
                    while True:
                        trace = self.trace
                        if trace is None:
                            break  # hook removed mid-run: back to fast loop
                        item = self._pop_next()
                        if item is None:
                            finished = True
                            break
                        time_ps = item[0]
                        if until_ps is not None and time_ps > until_ps:
                            self._unpop(item)
                            finished = True
                            break
                        self._now = time_ps
                        trace(time_ps, item[2], item[3])
                        item[2](*item[3])
                        dispatched += 1
                        if self._stopped:
                            break
        finally:
            self._running = False
        if until_ps is not None and not self._stopped and self._now < until_ps:
            self._now = until_ps
        return dispatched
