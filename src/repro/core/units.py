"""Unit helpers for the macrochip simulator.

The simulator keeps all times as **integer picoseconds** so that event
ordering is exact and runs are bit-reproducible across platforms.  This
module centralizes the conversions between the units the paper speaks in
(nanoseconds, GB/s, 5 GHz cycles, dB, mW) and the integer time base.

Conventions
-----------
* time        -> int picoseconds (``ps``)
* bandwidth   -> float bytes per picosecond internally; public helpers
  accept GB/s (the paper's unit, 1 GB/s = 1e9 bytes/s)
* distance    -> float centimeters (waveguide routing scale)
* optical loss-> float dB; optical power -> float mW
"""

from __future__ import annotations

PS_PER_NS = 1000
PS_PER_US = 1000 * PS_PER_NS
PS_PER_MS = 1000 * PS_PER_US
PS_PER_S = 1000 * PS_PER_MS

#: Signal propagation velocity in SOI waveguides (paper section 2: ~0.3c,
#: quoted as 0.1 ns/cm latency).
WAVEGUIDE_DELAY_PS_PER_CM = 100


def ns(value: float) -> int:
    """Convert nanoseconds to integer picoseconds (rounded)."""
    return int(round(value * PS_PER_NS))


def us(value: float) -> int:
    """Convert microseconds to integer picoseconds (rounded)."""
    return int(round(value * PS_PER_US))


def to_ns(ps: int) -> float:
    """Convert integer picoseconds to float nanoseconds."""
    return ps / PS_PER_NS


def gbps_to_bytes_per_ps(gb_per_s: float) -> float:
    """Convert a bandwidth in GB/s (1e9 bytes/s) to bytes per picosecond."""
    return gb_per_s * 1e9 / PS_PER_S


def serialization_ps(size_bytes: int, gb_per_s: float) -> int:
    """Time (ps) to serialize ``size_bytes`` onto a ``gb_per_s`` channel.

    Always at least 1 ps so that a transmission never has zero duration,
    which keeps channel occupancy intervals well ordered.
    """
    if gb_per_s <= 0:
        raise ValueError("bandwidth must be positive, got %r" % gb_per_s)
    return max(1, int(round(size_bytes / gbps_to_bytes_per_ps(gb_per_s))))


def propagation_ps(distance_cm: float) -> int:
    """Optical propagation delay (ps) across ``distance_cm`` of waveguide."""
    return int(round(distance_cm * WAVEGUIDE_DELAY_PS_PER_CM))


def cycles_to_ps(cycles: float, clock_ghz: float) -> int:
    """Convert clock cycles at ``clock_ghz`` to integer picoseconds."""
    if clock_ghz <= 0:
        raise ValueError("clock must be positive, got %r" % clock_ghz)
    return int(round(cycles * 1000.0 / clock_ghz))


def db_to_factor(db: float) -> float:
    """Convert an optical loss in dB to a linear power multiplication factor.

    A loss of 10 dB means the laser must supply 10x the power, so
    ``db_to_factor(10.0) == 10.0``.
    """
    return 10.0 ** (db / 10.0)


def factor_to_db(factor: float) -> float:
    """Convert a linear power factor back to dB."""
    if factor <= 0:
        raise ValueError("power factor must be positive, got %r" % factor)
    import math

    return 10.0 * math.log10(factor)
