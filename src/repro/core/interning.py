"""Process-wide interning of expensive, read-only derived tables.

The network models derive a number of tables from the (immutable)
:class:`~repro.macrochip.config.MacrochipConfig` alone: per-pair
forwarder/routing tables, snake-ring geometry, circuit-switched
setup/flight tables, per-size slot and energy memos.  Every one of them
is a pure function of its key, so two network instances built from equal
configs can share a single copy.  This module is the registry that makes
that sharing explicit:

* within one process, every load point of a sweep (and every warm-start
  :class:`~repro.core.parallel.SimContext`) reuses the same tables
  instead of recomputing them per construction;
* under the ``fork`` start method, tables built in the parent before the
  worker pool spawns are shared across all workers via copy-on-write —
  they are never written after construction, so the pages stay shared.

Two flavors:

* :func:`intern_table` — build-once immutable values (lists the caller
  must not mutate after construction);
* :func:`intern_memo` — shared *memo dictionaries/lists* that are filled
  lazily with pure values (e.g. per-size serialization times).  Sharing
  a memo is safe exactly because every writer computes the same value
  for a given key, so fills are idempotent.

Keys must be hashable; the frozen config dataclasses qualify.  The
registry is never consulted on a hot path — only at network
construction — so a plain dict probe is all the machinery needed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable

__all__ = ["intern_table", "intern_memo", "clear_interned",
           "interned_count"]

_TABLES: Dict[Hashable, Any] = {}


def intern_table(key: Hashable, build: Callable[[], Any]) -> Any:
    """Return the interned value for ``key``, building it on first use.

    ``build`` must be a pure function of ``key`` (same key, same value —
    byte for byte), and callers must treat the result as immutable.
    """
    value = _TABLES.get(key)
    if value is None:
        value = build()
        _TABLES[key] = value
    return value


def intern_memo(key: Hashable, build: Callable[[], Any]) -> Any:
    """Like :func:`intern_table` but the value is a shared lazily-filled
    memo (dict or sentinel-initialized list): callers may fill entries,
    provided every fill is a pure function of the entry key and ``key``.
    """
    return intern_table(key, build)


def clear_interned() -> int:
    """Drop every interned table (tests / memory pressure); returns how
    many entries were dropped.  Safe at any time — live references keep
    their tables, future constructions simply rebuild."""
    n = len(_TABLES)
    _TABLES.clear()
    return n


def interned_count() -> int:
    return len(_TABLES)
