"""Markdown report generation.

Turns experiment outputs (suite grids, figure-6 results, tables) into
GitHub-flavored markdown — the format EXPERIMENTS.md quotes — so the
record of a campaign can be regenerated mechanically::

    from repro.experiments.evaluation import run_suite
    from repro.analysis.report import suite_markdown
    print(suite_markdown(run_suite("quick")))
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .edp import energy_breakdown, normalized_edp, speedups
from ..networks.factory import NETWORK_CLASSES


def markdown_table(headers: Sequence[str],
                   rows: Sequence[Sequence[str]]) -> str:
    """Render a GitHub-flavored markdown table."""
    if not headers:
        raise ValueError("need at least one column")
    out = ["| " + " | ".join(str(h) for h in headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width %d != header width %d"
                             % (len(row), len(headers)))
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def speedup_markdown(suite) -> str:
    """Figure 7 as a markdown table."""
    from ..experiments.figures7_10 import figure7_speedups

    data = figure7_speedups(suite)
    nets = suite.networks()
    headers = ["Workload"] + [NETWORK_CLASSES[n].name for n in nets]
    rows = [[workload] + ["%.2fx" % data[workload][n] for n in nets]
            for workload in suite.workloads()]
    return ("### Figure 7 — speedup vs. circuit-switched\n\n"
            + markdown_table(headers, rows))


def latency_markdown(suite) -> str:
    """Figure 8 as a markdown table."""
    from ..experiments.figures7_10 import figure8_latencies

    data = figure8_latencies(suite)
    nets = suite.networks()
    headers = ["Workload"] + [NETWORK_CLASSES[n].name for n in nets]
    rows = [[workload] + ["%.1f" % data[workload][n] for n in nets]
            for workload in suite.workloads()]
    return ("### Figure 8 — latency per coherence operation (ns)\n\n"
            + markdown_table(headers, rows))


def edp_markdown(suite) -> str:
    """Figure 10 as a markdown table."""
    from ..experiments.figures7_10 import figure10_edp

    data = figure10_edp(suite)
    nets = suite.networks()
    headers = ["Workload"] + [NETWORK_CLASSES[n].name for n in nets]
    rows = [[workload] + ["%.1f" % data[workload][n] for n in nets]
            for workload in suite.workloads()]
    return ("### Figure 10 — EDP normalized to point-to-point\n\n"
            + markdown_table(headers, rows))


def router_energy_markdown(suite) -> str:
    """Figure 9 as a markdown table."""
    from ..experiments.figures7_10 import figure9_router_fractions

    data = figure9_router_fractions(suite)
    rows = [[w, "%.1f%%" % (f * 100)] for w, f in data.items()]
    return ("### Figure 9 — router energy in the limited P2P network\n\n"
            + markdown_table(["Workload", "Router energy (% of total)"],
                             rows))


def suite_markdown(suite) -> str:
    """The full figures section, ready to paste into EXPERIMENTS.md."""
    parts = [speedup_markdown(suite), latency_markdown(suite)]
    if "limited_point_to_point" in suite.networks():
        parts.append(router_energy_markdown(suite))
    if "point_to_point" in suite.networks():
        parts.append(edp_markdown(suite))
    return "\n\n".join(parts)


def figure6_markdown(result) -> str:
    """The Figure 6 saturation summary as a markdown table."""
    rows = [[pattern, NETWORK_CLASSES[net].name, "%.1f%%" % (frac * 100)]
            for pattern, net, frac in result.saturation_table()]
    return ("### Figure 6 — sustained bandwidth at the knee\n\n"
            + markdown_table(["Pattern", "Network", "% of peak"], rows))
