"""Network power analysis (section 6.3, Table 5, Figure 9).

Static power has two parts:

* **laser power** — Table 5: laser feeds x 1 mW x the loss factor
  compensating the network's worst-case extra optical loss (both derived
  from the topology in :mod:`repro.networks.complexity`);
* **electrical static power** — modulator drive, receiver bias, and ring
  tuning, per active component (Table 1 / section 2 text).

Dynamic energy comes from the replay's own accounting: optical
transceiver energy per bit moved, plus 60 pJ/byte for every electronic
router traversal in the limited point-to-point network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..macrochip.config import MacrochipConfig, scaled_config
from ..networks import complexity
from ..networks.complexity import ComponentCount
from ..photonics.power import LaserPowerEstimate
from ..photonics.technology import Technology


@dataclass(frozen=True)
class NetworkPower:
    """Static power of one network configuration."""

    network: str
    laser_power_w: float
    loss_factor: float
    electrical_static_w: float

    @property
    def total_static_w(self) -> float:
        return self.laser_power_w + self.electrical_static_w


def electrical_static_w(count: ComponentCount, tech: Technology) -> float:
    """Modulator + receiver + tuning + switch static power in watts."""
    mw = (count.transmitters * (tech.modulator_power_mw
                                + tech.ring_tuning_power_mw)
          + count.receivers * (tech.receiver_power_mw
                               + tech.ring_tuning_power_mw))
    if "electronic" not in count.switch_kind:
        mw += count.switches * tech.switch_power_mw
    return mw / 1000.0


def network_power(count: ComponentCount,
                  tech: Technology) -> NetworkPower:
    # the signaling eye penalty (0 dB for NRZ, ~4.8 dB for PAM4) is extra
    # loss every laser feed must launch over, on top of the topology's own
    extra_db = count.extra_loss_db + tech.signaling_penalty_db
    est = LaserPowerEstimate(count.network, count.laser_feeds, extra_db)
    return NetworkPower(
        network=count.network,
        laser_power_w=est.laser_power_w,
        loss_factor=est.loss_factor,
        electrical_static_w=electrical_static_w(count, tech),
    )


@dataclass(frozen=True)
class Table5Row:
    """One Table 5 entry: network, loss factor, laser power."""

    network: str
    loss_factor: float
    laser_power_w: float


def table5_rows(config: MacrochipConfig = None) -> List[Table5Row]:
    """Regenerate Table 5 from the topology definitions.

    Rows appear in the paper's order; the two-phase data network appears
    in base and ALT forms plus its arbitration overlay, as in the paper.
    """
    cfg = config or scaled_config()
    order = [
        complexity.token_ring_count(cfg),
        complexity.p2p_count(cfg),
        complexity.circuit_switched_count(cfg),
        complexity.limited_p2p_count(cfg),
        complexity.two_phase_count(cfg, alt=False),
        complexity.two_phase_count(cfg, alt=True),
        complexity.two_phase_arbitration_count(cfg),
    ]
    rows = []
    for count in order:
        p = network_power(count, cfg.tech)
        rows.append(Table5Row(count.network, p.loss_factor,
                              p.laser_power_w))
    return rows


#: Map from network factory keys to complexity counts (for EDP).
_COUNT_BY_KEY = {
    "point_to_point": complexity.p2p_count,
    "limited_point_to_point": complexity.limited_p2p_count,
    "token_ring": complexity.token_ring_count,
    "circuit_switched": complexity.circuit_switched_count,
    "two_phase": lambda cfg: complexity.two_phase_count(cfg, alt=False),
    "two_phase_alt": lambda cfg: complexity.two_phase_count(cfg, alt=True),
    "hermes": complexity.hermes_count,
}


def static_power_w(network_key: str,
                   config: MacrochipConfig = None,
                   include_electrical: bool = True) -> float:
    """Total static power (W) of a network identified by factory key.

    The two-phase networks include their arbitration overlay.
    """
    cfg = config or scaled_config()
    try:
        count = _COUNT_BY_KEY[network_key](cfg)
    except KeyError:
        raise KeyError("unknown network key %r" % network_key) from None
    p = network_power(count, cfg.tech)
    total = p.laser_power_w + (p.electrical_static_w
                               if include_electrical else 0.0)
    if network_key.startswith("two_phase"):
        arb = network_power(
            complexity.two_phase_arbitration_count(cfg), cfg.tech)
        total += arb.laser_power_w + (arb.electrical_static_w
                                      if include_electrical else 0.0)
    return total


def router_energy_fraction(energy_by_category: Dict[str, float],
                           static_w: float, runtime_ps: int) -> float:
    """Figure 9: router dynamic energy as a fraction of total network
    energy (static power x runtime + all dynamic energy).

    1 W equals 1 pJ/ps, so static energy in pJ is W x ps.
    """
    router = energy_by_category.get("router", 0.0)
    total = sum(energy_by_category.values()) + static_w * runtime_ps
    if total <= 0:
        return 0.0
    return router / total
