"""Traffic characterization: per-class and per-pair breakdowns.

The evaluation's aggregate numbers (Figures 6-10) hide *why* a network
wins: how much of the byte volume is small control messages vs cache
lines, and how spatially concentrated the load is.  This module collects
both views from any run that registers its collector as the network
sink:

* :class:`TrafficMatrix` — bytes and packets per (source, destination)
  pair, with hotspots and a row/column marginal view;
* :class:`ClassBreakdown` — packets/bytes/latency per message class
  ('req', 'data', 'inv', 'ack', ...), the paper's small-vs-large message
  story in numbers (section 6.2: "invalidate and acknowledgment packets
  which are small in size, and so the arbitration overhead dominates").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.stats import LatencySample
from ..networks.base import Packet


class TrafficMatrix:
    """Bytes/packets per (src, dst) site pair."""

    def __init__(self, num_sites: int) -> None:
        if num_sites < 1:
            raise ValueError("need at least one site")
        self.num_sites = num_sites
        self._bytes: Dict[Tuple[int, int], int] = {}
        self._packets: Dict[Tuple[int, int], int] = {}

    def record(self, packet: Packet) -> None:
        key = (packet.src, packet.dst)
        self._bytes[key] = self._bytes.get(key, 0) + packet.size_bytes
        self._packets[key] = self._packets.get(key, 0) + 1

    def bytes_between(self, src: int, dst: int) -> int:
        return self._bytes.get((src, dst), 0)

    @property
    def total_bytes(self) -> int:
        return sum(self._bytes.values())

    @property
    def total_packets(self) -> int:
        return sum(self._packets.values())

    def intra_site_fraction(self) -> float:
        """Fraction of bytes that never leave a site (loopback traffic —
        50% for the butterfly pattern, per section 6.2)."""
        total = self.total_bytes
        if total == 0:
            return 0.0
        local = sum(b for (s, d), b in self._bytes.items() if s == d)
        return local / total

    def egress_bytes(self, site: int) -> int:
        return sum(b for (s, _), b in self._bytes.items() if s == site)

    def ingress_bytes(self, site: int) -> int:
        return sum(b for (_, d), b in self._bytes.items() if d == site)

    def hotspots(self, top: int = 5) -> List[Tuple[int, int, int]]:
        """The ``top`` heaviest (src, dst, bytes) pairs."""
        ranked = sorted(self._bytes.items(), key=lambda kv: -kv[1])
        return [(s, d, b) for (s, d), b in ranked[:top]]

    def imbalance(self) -> float:
        """Max/mean egress ratio: 1.0 for perfectly balanced sources."""
        loads = [self.egress_bytes(s) for s in range(self.num_sites)]
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 1.0
        return max(loads) / mean


@dataclass
class _ClassStats:
    packets: int = 0
    bytes: int = 0
    latency: LatencySample = field(default_factory=LatencySample)


class ClassBreakdown:
    """Packets, bytes, and latency per message class."""

    def __init__(self) -> None:
        self._classes: Dict[str, _ClassStats] = {}

    def record(self, packet: Packet) -> None:
        cls = self._classes.setdefault(packet.kind, _ClassStats())
        cls.packets += 1
        cls.bytes += packet.size_bytes
        if packet.t_deliver >= 0 and packet.t_inject >= 0:
            cls.latency.add(packet.t_deliver - packet.t_inject)

    def classes(self) -> List[str]:
        return sorted(self._classes)

    def packets_of(self, kind: str) -> int:
        return self._classes[kind].packets if kind in self._classes else 0

    def bytes_of(self, kind: str) -> int:
        return self._classes[kind].bytes if kind in self._classes else 0

    def mean_latency_ns(self, kind: str) -> float:
        return self._classes[kind].latency.mean_ns

    def control_fraction(self,
                         control_kinds: Tuple[str, ...] = ("req", "inv",
                                                           "ack", "perm",
                                                           "fwd")) -> float:
        """Fraction of *packets* that are small control messages — the
        quantity that makes per-message overhead dominate on arbitrated
        networks."""
        total = sum(c.packets for c in self._classes.values())
        if total == 0:
            return 0.0
        control = sum(self._classes[k].packets for k in control_kinds
                      if k in self._classes)
        return control / total

    def rows(self) -> List[Tuple[str, int, int, float]]:
        """(kind, packets, bytes, mean latency ns) for reporting."""
        out = []
        for kind in self.classes():
            c = self._classes[kind]
            lat = c.latency.mean_ns if len(c.latency) else float("nan")
            out.append((kind, c.packets, c.bytes, lat))
        return out


class TrafficCollector:
    """A network sink that feeds both views at once."""

    def __init__(self, num_sites: int) -> None:
        self.matrix = TrafficMatrix(num_sites)
        self.by_class = ClassBreakdown()

    def __call__(self, packet: Packet) -> None:
        self.matrix.record(packet)
        self.by_class.record(packet)


def collect_traffic(trace, network_name: str, config,
                    network_kwargs: Optional[dict] = None
                    ) -> TrafficCollector:
    """Replay a coherence trace with a traffic collector attached and
    return the filled collector."""
    from ..workloads.replay import TraceReplayer

    replayer = TraceReplayer(trace, network_name, config, network_kwargs)
    collector = TrafficCollector(config.num_sites)
    replayer.network.set_sink(collector)
    replayer.run()
    return collector
