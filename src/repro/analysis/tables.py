"""Plain-text table rendering for experiment reports.

Every experiment driver prints its results through these helpers so the
regenerated tables/figures have one consistent, diffable format (the
EXPERIMENTS.md records are produced from exactly this output).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render rows as an aligned ASCII table.

    Cells are stringified; numeric cells are right-aligned, text cells
    left-aligned.
    """
    str_rows: List[List[str]] = []
    numeric: List[bool] = [True] * len(headers)
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width %d != header width %d"
                             % (len(row), len(headers)))
        cells = []
        for i, cell in enumerate(row):
            if isinstance(cell, float):
                cells.append("%.2f" % cell)
            else:
                cells.append(str(cell))
                if not isinstance(cell, int):
                    numeric[i] = False
        str_rows.append(cells)
    widths = [len(h) for h in headers]
    for cells in str_rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str], force_left: bool = False) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if numeric[i] and not force_left:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers), force_left=True))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(cells) for cells in str_rows)
    return "\n".join(lines)


def format_count(n: int) -> str:
    """Component counts in the paper's 'K' style: 16384 -> '16K', but
    smaller round counts stay exact (the paper prints 8192, 3072, ...)."""
    if n >= 15360 and n % 1024 == 0:
        return "%dK" % (n // 1024)
    return str(n)


def render_series(title: str, xlabel: str, ylabel: str,
                  series: dict) -> str:
    """Render named (x, y) series as aligned columns — the textual stand-in
    for one figure panel."""
    names = list(series)
    xs = sorted({x for pts in series.values() for x, _ in pts})
    headers = [xlabel] + names
    rows = []
    lookup = {name: dict(pts) for name, pts in series.items()}
    for x in xs:
        row = ["%.3g" % x]
        for name in names:
            y = lookup[name].get(x)
            row.append("%.2f" % y if y is not None else "-")
        rows.append(row)
    out = render_table(headers, rows, title="%s  (y = %s)" % (title, ylabel))
    return out
