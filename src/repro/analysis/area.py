"""Waveguide area and bandwidth-density estimates (sections 2, 3, 6.4).

The paper's complexity argument is partly an *area* argument: the
token-ring adaptation needs only 8192 physical waveguides but charges
32K of effective area because every guide runs along every row, while
the point-to-point network's waveguides are short and the paper's
scalability claim rests on WDM: "the peak bandwidth for a point-to-point
network can increase without increasing the number of waveguides".

This module turns the Table 6 counts into substrate-area estimates using
the technology's 10 um global-waveguide pitch and the layout geometry,
and computes the bandwidth density (GB/s per mm of routing cross-section)
that motivates photonics over electrical I/O in section 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..macrochip.config import MacrochipConfig, scaled_config
from ..networks.complexity import ComponentCount, table6_rows


#: global waveguide pitch on the SOI routing layer (section 2: 10 um)
WAVEGUIDE_PITCH_UM = 10.0


@dataclass(frozen=True)
class AreaEstimate:
    """Routing-substrate area figures for one network."""

    network: str
    waveguides: int
    #: average routed length per effective waveguide, cm
    mean_length_cm: float
    #: total waveguide length, meters
    total_length_m: float
    #: substrate area consumed by routing, cm^2
    routing_area_cm2: float

    @property
    def routing_fraction_of(self) -> float:  # pragma: no cover - alias
        return self.routing_area_cm2


def estimate_area(count: ComponentCount,
                  config: MacrochipConfig) -> AreaEstimate:
    """Estimate routing area from an effective waveguide count.

    Effective counts (as Table 6 reports them) already charge a guide
    once per row it crosses, so the mean routed length is one row span.
    """
    layout = config.layout
    mean_length_cm = layout.row_span_cm
    total_cm = count.waveguides * mean_length_cm
    pitch_cm = WAVEGUIDE_PITCH_UM * 1e-4
    return AreaEstimate(
        network=count.network,
        waveguides=count.waveguides,
        mean_length_cm=mean_length_cm,
        total_length_m=total_cm / 100.0,
        routing_area_cm2=total_cm * pitch_cm,
    )


def area_table(config: MacrochipConfig = None) -> List[AreaEstimate]:
    """Area estimates for every Table 6 network."""
    cfg = config or scaled_config()
    return [estimate_area(c, cfg) for c in table6_rows(cfg)]


def substrate_area_cm2(config: MacrochipConfig = None) -> float:
    """Total SOI substrate area of the macrochip."""
    cfg = config or scaled_config()
    layout = cfg.layout
    return (layout.rows * layout.site_pitch_cm
            * layout.cols * layout.site_pitch_cm)


def bandwidth_density_gb_per_s_per_mm(config: MacrochipConfig = None,
                                      wavelengths: int = None) -> float:
    """Escape bandwidth per millimeter of waveguide cross-section.

    At 10 um pitch, one millimeter of routing cross-section carries 100
    waveguides; with W wavelengths at 2.5 GB/s each this is the
    bandwidth-density figure that dwarfs electrical package escape
    (section 1: fibers at 250 um pitch, solder balls coarser still).
    """
    cfg = config or scaled_config()
    w = wavelengths or cfg.wavelengths_per_waveguide
    guides_per_mm = 1000.0 / WAVEGUIDE_PITCH_UM
    return guides_per_mm * w * cfg.wavelength_gb_per_s


def wdm_scaling_table(config: MacrochipConfig = None,
                      wdm_factors: List[int] = None) -> List[tuple]:
    """(WDM factor, total P2P peak TB/s, waveguide count) — the section
    6.4 scalability claim: bandwidth grows with WDM at constant
    waveguide count."""
    from ..networks.complexity import p2p_count

    cfg = config or scaled_config()
    factors = wdm_factors or [4, 8, 16, 32]
    base = p2p_count(cfg)
    rows = []
    for w in factors:
        scaled = cfg.with_overrides(
            transmitters_per_site=cfg.transmitters_per_site
            * w // cfg.wavelengths_per_waveguide,
            receivers_per_site=cfg.receivers_per_site
            * w // cfg.wavelengths_per_waveguide,
            wavelengths_per_waveguide=w)
        count = p2p_count(scaled)
        rows.append((w, scaled.total_bandwidth_tb_per_s, count.waveguides))
    assert all(r[2] == base.waveguides for r in rows), \
        "waveguide count must stay constant under WDM scaling"
    return rows
