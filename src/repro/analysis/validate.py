"""Programmatic validation of measured results against the paper.

Encodes the paper's quantitative claims (DESIGN.md "headline claims") as
checkable expectations with tolerance bands, evaluates a set of measured
results against them, and renders a PASS/WARN/FAIL report.  This is the
machine-readable form of EXPERIMENTS.md: the integration tests assert
the same bands, and ``python -m repro.analysis.validate`` runs a quick
end-to-end check.

Bands are deliberately generous where the paper itself is approximate
("~40%", "over 10x") and tight where it is exact (Table 5/6 numbers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .power import table5_rows
from ..networks.complexity import table6_rows


@dataclass(frozen=True)
class Expectation:
    """One checkable claim."""

    claim: str
    paper_value: str
    low: float
    high: float

    def check(self, measured: float) -> "Finding":
        ok = self.low <= measured <= self.high
        return Finding(self, measured, ok)


@dataclass(frozen=True)
class Finding:
    expectation: Expectation
    measured: float
    ok: bool

    @property
    def verdict(self) -> str:
        return "PASS" if self.ok else "WARN"


#: Section 6.1 — sustained fraction of total peak on uniform traffic.
UNIFORM_SATURATION = {
    "point_to_point": Expectation(
        "P2P sustains ~95% of peak (uniform)", "95%", 0.80, 1.00),
    "limited_point_to_point": Expectation(
        "limited P2P sustains ~47% of peak (uniform)", "47%", 0.35, 0.60),
    "token_ring": Expectation(
        "token ring sustains ~40% of peak (uniform)", "40%", 0.30, 0.55),
    "two_phase": Expectation(
        "two-phase sustains ~7.5% of peak (uniform)", "7.5%", 0.04, 0.16),
    "circuit_switched": Expectation(
        "circuit-switched sustains ~2.5% of peak (uniform)", "2.5%",
        0.015, 0.04),
}

#: Table 5 — laser power in watts (circuit-switched band widened for the
#: paper's own rounding of the 31-hop loss; see EXPERIMENTS.md).
LASER_POWER_W = {
    "Token-Ring": Expectation("token-ring laser power", "155 W", 150, 160),
    "Point-to-Point": Expectation("P2P laser power", "8 W", 7.5, 9.0),
    "Circuit-Switched": Expectation(
        "circuit-switched laser power", "245 W", 240, 295),
    "Limited Point-to-Point": Expectation(
        "limited P2P laser power", "8 W", 7.5, 9.0),
    "Two-Phase Data": Expectation("two-phase laser power", "41 W", 39, 43),
    "Two-Phase Data (ALT)": Expectation(
        "two-phase ALT laser power", "65.5 W", 63, 68),
    "Two-Phase Arbitration": Expectation(
        "arbitration laser power", "1 W", 0.9, 1.2),
}

#: Table 6 — exact component counts.
COMPONENT_COUNTS = {
    ("Token-Ring", "transmitters"): 512 * 1024,
    ("Token-Ring", "waveguides"): 32 * 1024,
    ("Point-to-Point", "waveguides"): 3072,
    ("Circuit-Switched", "waveguides"): 2048,
    ("Circuit-Switched", "switches"): 1024,
    ("Limited Point-to-Point", "switches"): 128,
    ("Two-Phase Data", "switches"): 16 * 1024,
    ("Two-Phase Data (ALT)", "transmitters"): 16384,
    ("Two-Phase Arbitration", "waveguides"): 24,
}


def validate_tables(config=None) -> List[Finding]:
    """Check Tables 5 and 6 against the paper."""
    findings = []
    for row in table5_rows(config):
        exp = LASER_POWER_W.get(row.network)
        if exp is not None:
            findings.append(exp.check(row.laser_power_w))
    counts = {c.network: c for c in table6_rows(config)}
    for (network, attr), expected in sorted(COMPONENT_COUNTS.items()):
        measured = getattr(counts[network], attr)
        exp = Expectation("%s %s count" % (network, attr), str(expected),
                          expected, expected)
        findings.append(exp.check(measured))
    return findings


def validate_uniform_saturation(
        sustained_by_network: Dict[str, float]) -> List[Finding]:
    """Check measured uniform-saturation fractions (from a Figure 6 run)
    against section 6.1."""
    findings = []
    for net, exp in UNIFORM_SATURATION.items():
        if net in sustained_by_network:
            findings.append(exp.check(sustained_by_network[net]))
    return findings


def render_report(findings: List[Finding]) -> str:
    """PASS/WARN report with paper values alongside measurements."""
    lines = ["%-4s  %-55s paper=%-8s measured=%s"
             % (f.verdict, f.expectation.claim, f.expectation.paper_value,
                ("%.4g" % f.measured))
             for f in findings]
    passed = sum(1 for f in findings if f.ok)
    lines.append("-- %d/%d expectations within band" % (passed, len(findings)))
    return "\n".join(lines)


def quick_validation(window_ns: float = 1500.0) -> str:
    """Run a fast end-to-end validation: tables plus a reduced uniform
    saturation measurement for every network."""
    from ..core.sweep import run_load_point
    from ..macrochip.config import scaled_config
    from ..workloads.synthetic import UniformTraffic

    cfg = scaled_config()
    peak = cfg.num_sites * cfg.site_bandwidth_gb_per_s
    probe_loads = {
        "point_to_point": 0.95,
        "limited_point_to_point": 0.45,
        "token_ring": 0.50,
        "two_phase": 0.07,
        "circuit_switched": 0.024,
    }
    sustained = {}
    for net, load in probe_loads.items():
        r = run_load_point(net, cfg, UniformTraffic(cfg.layout), load,
                           window_ns=window_ns)
        sustained[net] = r.throughput_gb_per_s / peak
    findings = validate_tables(cfg) + validate_uniform_saturation(sustained)
    return render_report(findings)


if __name__ == "__main__":  # pragma: no cover
    print(quick_validation())
