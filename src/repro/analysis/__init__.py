"""Analysis layer: power (Table 5), EDP (Figure 10), rendering."""

from .edp import EnergyBreakdown, energy_breakdown, normalized_edp, speedups
from .power import (
    NetworkPower,
    network_power,
    router_energy_fraction,
    static_power_w,
    table5_rows,
)
from .area import area_table, bandwidth_density_gb_per_s_per_mm
from .plot import ascii_plot, plot_figure6_panel
from .report import markdown_table, suite_markdown
from .tables import format_count, render_series, render_table
from .traffic import ClassBreakdown, TrafficCollector, TrafficMatrix
from .validate import quick_validation, validate_tables

__all__ = [
    "table5_rows",
    "network_power",
    "NetworkPower",
    "static_power_w",
    "router_energy_fraction",
    "energy_breakdown",
    "EnergyBreakdown",
    "normalized_edp",
    "speedups",
    "render_table",
    "render_series",
    "format_count",
    "area_table",
    "bandwidth_density_gb_per_s_per_mm",
    "ascii_plot",
    "plot_figure6_panel",
    "markdown_table",
    "suite_markdown",
    "TrafficMatrix",
    "ClassBreakdown",
    "TrafficCollector",
    "quick_validation",
    "validate_tables",
]
