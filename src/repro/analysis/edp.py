"""Energy-delay product analysis (section 6.3, Figure 10).

For one (workload, network) replay::

    energy = static_power x runtime + dynamic_energy
    EDP    = energy x runtime

Figure 10 plots EDP normalized to the point-to-point network on a log
axis, which is how :func:`normalized_edp` reports it.  Units cancel under
normalization; internally energy is pJ and time ps (1 W == 1 pJ/ps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .power import static_power_w
from ..macrochip.config import MacrochipConfig, scaled_config
from ..workloads.replay import ReplayResult


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one replay, split by origin."""

    network: str
    workload: str
    runtime_ps: int
    static_pj: float
    optical_pj: float
    router_pj: float

    @property
    def total_pj(self) -> float:
        return self.static_pj + self.optical_pj + self.router_pj

    @property
    def edp(self) -> float:
        """Energy x delay, in pJ x ps."""
        return self.total_pj * self.runtime_ps

    @property
    def router_fraction(self) -> float:
        """Figure 9's metric."""
        total = self.total_pj
        return self.router_pj / total if total > 0 else 0.0


def energy_breakdown(result: ReplayResult, network_key: str,
                     config: MacrochipConfig = None) -> EnergyBreakdown:
    """Combine a replay's dynamic accounting with the network's static
    power over the measured runtime."""
    cfg = config or scaled_config()
    static_w = static_power_w(network_key, cfg)
    return EnergyBreakdown(
        network=result.network,
        workload=result.workload,
        runtime_ps=result.runtime_ps,
        static_pj=static_w * result.runtime_ps,
        optical_pj=result.energy_by_category.get("optical", 0.0),
        router_pj=result.energy_by_category.get("router", 0.0),
    )


def normalized_edp(breakdowns: Dict[str, EnergyBreakdown],
                   baseline_key: str = "point_to_point") -> Dict[str, float]:
    """EDP of each network divided by the baseline's (Figure 10)."""
    if baseline_key not in breakdowns:
        raise KeyError("baseline %r missing from results" % baseline_key)
    base = breakdowns[baseline_key].edp
    if base <= 0:
        raise ValueError("baseline EDP must be positive")
    return {key: b.edp / base for key, b in breakdowns.items()}


def speedups(runtimes_ps: Dict[str, int],
             baseline_key: str = "circuit_switched") -> Dict[str, float]:
    """Runtime speedup of each network over the baseline (Figure 7)."""
    if baseline_key not in runtimes_ps:
        raise KeyError("baseline %r missing from results" % baseline_key)
    base = runtimes_ps[baseline_key]
    return {key: base / rt for key, rt in runtimes_ps.items()}
