"""ASCII plotting for experiment results.

The experiment harnesses are terminal-first; this module renders the
latency-vs-load curves of Figure 6 (and any (x, y) series) as ASCII
scatter plots so the *shape* — knees, asymptotes, crossovers — is
visible without leaving the shell.

Only standard characters are used; each series gets a distinct marker
and the legend maps markers back to series names.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

Series = Sequence[Tuple[float, float]]

_MARKERS = "ox+*#@%&"


def _finite(points: Series) -> List[Tuple[float, float]]:
    return [(x, y) for x, y in points
            if not (math.isnan(x) or math.isnan(y)
                    or math.isinf(x) or math.isinf(y))]


def ascii_plot(series: Dict[str, Series],
               width: int = 64, height: int = 18,
               title: str = "", xlabel: str = "", ylabel: str = "",
               log_y: bool = False) -> str:
    """Render named (x, y) series on one ASCII canvas.

    ``log_y`` plots a log10 y-axis — useful for latency curves whose
    saturated tail is orders of magnitude above the floor (and for the
    paper's log-scale Figure 10).
    """
    if width < 16 or height < 4:
        raise ValueError("canvas too small to plot on")
    cleaned = {name: _finite(pts) for name, pts in series.items()}
    cleaned = {name: pts for name, pts in cleaned.items() if pts}
    if not cleaned:
        raise ValueError("nothing to plot")
    if len(cleaned) > len(_MARKERS):
        raise ValueError("too many series (max %d)" % len(_MARKERS))

    xs = [x for pts in cleaned.values() for x, _ in pts]
    ys = [y for pts in cleaned.values() for _, y in pts]
    if log_y:
        if min(ys) <= 0:
            raise ValueError("log_y requires positive y values")
        ys = [math.log10(y) for y in ys]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(sorted(cleaned.items()), _MARKERS):
        for x, y in pts:
            yv = math.log10(y) if log_y else y
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((yv - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    y_top = 10 ** y_hi if log_y else y_hi
    y_bot = 10 ** y_lo if log_y else y_lo
    lines: List[str] = []
    if title:
        lines.append(title)
    axis_width = 10
    for i, row in enumerate(grid):
        if i == 0:
            label = "%9.3g" % y_top
        elif i == height - 1:
            label = "%9.3g" % y_bot
        else:
            label = " " * 9
        lines.append("%s |%s" % (label, "".join(row)))
    lines.append(" " * axis_width + "+" + "-" * width)
    x_axis = "%-*.3g%*.3g" % (width // 2, x_lo, width - width // 2, x_hi)
    lines.append(" " * (axis_width + 1) + x_axis)
    if xlabel or ylabel:
        lines.append(" " * (axis_width + 1)
                     + "x: %s%s" % (xlabel,
                                    ("   y: %s" % ylabel) if ylabel else ""))
    legend = "   ".join("%c=%s" % (marker, name)
                        for (name, _), marker
                        in zip(sorted(cleaned.items()), _MARKERS))
    lines.append("  " + legend)
    return "\n".join(lines)


def plot_figure6_panel(result, pattern: str,
                       width: int = 64, height: int = 16,
                       log_y: bool = True) -> str:
    """Plot one Figure 6 panel from a
    :class:`repro.experiments.figure6.Figure6Result`."""
    from ..networks.factory import NETWORK_CLASSES

    curves = result.curves.get(pattern)
    if not curves:
        raise KeyError("pattern %r not in this result" % pattern)
    series = {
        NETWORK_CLASSES[net].name:
            [(p.offered_fraction * 100.0, p.mean_latency_ns)
             for p in points if not math.isnan(p.mean_latency_ns)]
        for net, points in curves.items()
    }
    return ascii_plot(series, width=width, height=height,
                      title="Figure 6 [%s]" % pattern,
                      xlabel="offered load (%)",
                      ylabel="mean latency (ns)", log_y=log_y)
