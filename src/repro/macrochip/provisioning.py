"""Macrochip platform provisioning (paper section 3).

Computes the laser, fiber, power, and cooling budget of a macrochip
platform from its configuration — the arithmetic behind section 3's
claims for the 2015 target system:

* 1024 transmitters/receivers per site at 20 Gb/s -> 2.56 TB/s per
  direction per site, 160 TB/s aggregate;
* 8-wavelength lasers, each wavelength power-split 8 ways -> 1024 laser
  modules feed the full interconnect;
* a macrochip supports ~2000 edge fiber connections, leaving headroom
  for off-macrochip memory and I/O;
* 64 sites at ~64 W -> ~4 kW, cooled by direct-bonded copper cold
  plates (~3 kW per 25 cm^2 commercially available).
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import MacrochipConfig, full_2015_config


@dataclass(frozen=True)
class PlatformBudget:
    """Provisioning summary for one macrochip configuration."""

    sites: int
    transmitters_per_site: int
    site_bandwidth_tb_per_s: float
    aggregate_bandwidth_tb_per_s: float
    laser_modules: int
    edge_fibers_used: int
    edge_fiber_capacity: int
    compute_power_kw: float
    cold_plate_capacity_kw: float

    @property
    def fibers_available_for_memory_io(self) -> int:
        return max(0, self.edge_fiber_capacity - self.edge_fibers_used)

    @property
    def fits_edge_fibers(self) -> bool:
        """Whether the laser plant fits the macrochip's edge-fiber
        capacity at all.  ``fibers_available_for_memory_io`` clamps at
        zero for reporting, which would silently hide an over-subscribed
        edge on a scaled-up grid (a 32x32 macrochip needs 2048 laser
        fibers against the ~2000-fiber edge) — this flag surfaces it."""
        return self.edge_fibers_used <= self.edge_fiber_capacity

    @property
    def cooling_feasible(self) -> bool:
        return self.compute_power_kw <= self.cold_plate_capacity_kw


def provision(config: MacrochipConfig = None,
              wavelengths_per_laser: int = 8,
              power_sharing_ways: int = 8,
              edge_fiber_capacity: int = 2000,
              watts_per_core: float = 1.0,
              cold_plate_kw_per_site: float = 0.48) -> PlatformBudget:
    """Compute the platform budget.

    Defaults follow section 3: 8-wavelength laser modules split 8 ways
    (64 channels per module), 2000 edge fibers, 1 W per core, and cold
    plates scaled from the commercial 3 kW / 25 cm^2 reference
    (0.12 kW/cm^2 over a ~4 cm^2 site footprint).
    """
    cfg = config or full_2015_config()
    if wavelengths_per_laser < 1 or power_sharing_ways < 1:
        raise ValueError("laser sharing parameters must be positive")
    channels = cfg.num_sites * cfg.transmitters_per_site
    channels_per_laser = wavelengths_per_laser * power_sharing_ways
    laser_modules = -(-channels // channels_per_laser)
    # each laser module arrives over one edge fiber
    fibers = laser_modules
    site_bw_tb = cfg.site_bandwidth_gb_per_s / 1000.0
    return PlatformBudget(
        sites=cfg.num_sites,
        transmitters_per_site=cfg.transmitters_per_site,
        site_bandwidth_tb_per_s=site_bw_tb,
        aggregate_bandwidth_tb_per_s=cfg.total_bandwidth_tb_per_s,
        laser_modules=laser_modules,
        edge_fibers_used=fibers,
        edge_fiber_capacity=edge_fiber_capacity,
        compute_power_kw=cfg.num_cores * watts_per_core / 1000.0,
        cold_plate_capacity_kw=cfg.num_sites * cold_plate_kw_per_site,
    )


def section3_report() -> str:
    """Render the section 3 platform numbers for the 2015 macrochip."""
    b = provision()
    lines = [
        "Macrochip 2015 platform budget (paper section 3)",
        "  sites:                 %d" % b.sites,
        "  per-site bandwidth:    %.2f TB/s each way"
        % b.site_bandwidth_tb_per_s,
        "  aggregate bandwidth:   %.1f TB/s" % b.aggregate_bandwidth_tb_per_s,
        "  laser modules:         %d (8 wavelengths x 8-way sharing)"
        % b.laser_modules,
        "  edge fibers:           %d of %d (%d free for memory/I/O)"
        % (b.edge_fibers_used, b.edge_fiber_capacity,
           b.fibers_available_for_memory_io),
        "  compute power:         %.1f kW (%s)"
        % (b.compute_power_kw,
           "coolable" if b.cooling_feasible else "OVER BUDGET"),
    ]
    return "\n".join(lines)
