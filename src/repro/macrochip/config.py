"""Macrochip system configuration (paper sections 3-5, Table 4).

Two configurations matter:

* :func:`full_2015_config` — the 2015 target platform of section 3
  (64 cores/site, 2.56 TB/s per site, 160 TB/s aggregate).  Documented for
  completeness; the paper itself never simulates it.
* :func:`scaled_config` — the simulated system of Table 4, scaled down 8x
  in compute and network bandwidth (8 cores/site, 320 GB/s per site,
  20 TB/s aggregate, 8 wavelengths/waveguide, 128 Tx + 128 Rx per site).

Fixed latencies the paper leaves implicit (directory access, local memory)
are centralized here with their rationale so every experiment shares them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..photonics.layout import MacrochipLayout
from ..photonics.technology import DEFAULT_TECHNOLOGY, Technology
from ..core.units import cycles_to_ps


@dataclass(frozen=True)
class MacrochipConfig:
    """Complete parameter set for one simulated macrochip."""

    layout: MacrochipLayout = field(default_factory=MacrochipLayout)
    tech: Technology = DEFAULT_TECHNOLOGY

    clock_ghz: float = 5.0
    cores_per_site: int = 8
    threads_per_core: int = 1
    l2_cache_kb: int = 256

    transmitters_per_site: int = 128
    receivers_per_site: int = 128
    wavelengths_per_waveguide: int = 8

    cache_line_bytes: int = 64
    control_message_bytes: int = 8
    #: data message = cache line + header
    data_header_bytes: int = 8

    #: Round, 2015-plausible fixed latencies (see DESIGN.md section 4.4):
    #: directory lookup ~10 cycles; local (site-attached, electrically
    #: proximate) memory access ~50 cycles.
    directory_latency_cycles: int = 10
    memory_latency_cycles: int = 50
    #: L2 hit latency seen by a core.
    l2_hit_latency_cycles: int = 4
    #: Outstanding misses per site (finite MSHRs, section 5).
    mshrs_per_site: int = 16
    #: Intra-site traffic uses a single-cycle loopback (section 6.2).
    loopback_latency_cycles: int = 1

    @property
    def num_sites(self) -> int:
        return self.layout.num_sites

    @property
    def num_cores(self) -> int:
        return self.num_sites * self.cores_per_site

    @property
    def cycle_ps(self) -> int:
        return cycles_to_ps(1, self.clock_ghz)

    @property
    def wavelength_gb_per_s(self) -> float:
        return self.tech.wavelength_bandwidth_gb_per_s

    @property
    def site_bandwidth_gb_per_s(self) -> float:
        """Peak injection bandwidth per site (Table 4: 320 GB/s)."""
        return self.transmitters_per_site * self.wavelength_gb_per_s

    @property
    def total_bandwidth_tb_per_s(self) -> float:
        """Peak aggregate network bandwidth (Table 4: 20 TB/s)."""
        return self.num_sites * self.site_bandwidth_gb_per_s / 1000.0

    @property
    def data_message_bytes(self) -> int:
        return self.cache_line_bytes + self.data_header_bytes

    def cycles_ps(self, cycles: float) -> int:
        return cycles_to_ps(cycles, self.clock_ghz)

    @property
    def directory_latency_ps(self) -> int:
        return self.cycles_ps(self.directory_latency_cycles)

    @property
    def memory_latency_ps(self) -> int:
        return self.cycles_ps(self.memory_latency_cycles)

    @property
    def loopback_latency_ps(self) -> int:
        return self.cycles_ps(self.loopback_latency_cycles)

    def with_overrides(self, **kwargs) -> "MacrochipConfig":
        return replace(self, **kwargs)


def scaled_config() -> MacrochipConfig:
    """The simulated configuration of Table 4 (the default everywhere)."""
    return MacrochipConfig()


def full_2015_config() -> MacrochipConfig:
    """The un-scaled 2015 platform of section 3: 64 cores/site, 1024 Tx/Rx
    per site, 16 wavelengths per waveguide, 160 TB/s aggregate."""
    return MacrochipConfig(
        cores_per_site=64,
        transmitters_per_site=1024,
        receivers_per_site=1024,
        wavelengths_per_waveguide=16,
    )


def small_test_config(rows: int = 4, cols: int = 4) -> MacrochipConfig:
    """A reduced macrochip for fast unit tests (16 sites by default)."""
    return MacrochipConfig(layout=MacrochipLayout(rows=rows, cols=cols))


def grid_config(rows: int, cols: int = None) -> MacrochipConfig:
    """A Table 4 configuration on an arbitrary ``rows x cols`` grid.

    Per-site resources (128 Tx/Rx, 8 cores, 8-wavelength WDM) are held
    at the paper's scaled point while the array grows — exactly the
    regime the scaling-limit study probes: what breaks first when the
    same site is tiled 4x4, 8x8, 16x16, 32x32?  ``grid_config(8, 8)``
    is bit-identical to :func:`scaled_config`.
    """
    if cols is None:
        cols = rows
    return MacrochipConfig(layout=MacrochipLayout(rows=rows, cols=cols))


def table4_rows(config: MacrochipConfig = None):
    """The rows of the paper's Table 4."""
    cfg = config or scaled_config()
    return [
        ("Number of sites", str(cfg.num_sites)),
        ("Shared L2 Cache per site", "%d KB" % cfg.l2_cache_kb),
        ("Bandwidth per site", "%.0f GB/sec" % cfg.site_bandwidth_gb_per_s),
        ("Total peak bandwidth", "%.0f TB/sec" % cfg.total_bandwidth_tb_per_s),
        ("Cores per site", str(cfg.cores_per_site)),
        ("Threads per core", str(cfg.threads_per_core)),
        ("FPU per core", "1"),
    ]
