"""Configuration serialization.

Experiments are parameterized by :class:`MacrochipConfig`; this module
converts configurations to and from plain dictionaries (and JSON files)
so campaigns can record exactly what they ran and ablation scripts can
be driven from config files instead of code edits.

Only fields that differ from the defaults are emitted, which keeps the
documents readable and forward-compatible: loading a document applies it
as overrides on top of the current defaults.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, IO, Union

from .config import MacrochipConfig
from ..photonics.layout import MacrochipLayout
from ..photonics.technology import Technology


def config_to_dict(config: MacrochipConfig,
                   full: bool = False) -> Dict[str, Any]:
    """Flatten a configuration to a plain dict.

    With ``full=False`` (default) only non-default values appear, under
    three sections: top-level scalars, ``layout``, and ``technology``.
    """
    default = MacrochipConfig()
    doc: Dict[str, Any] = {}
    for field in dataclasses.fields(MacrochipConfig):
        if field.name in ("layout", "tech"):
            continue
        value = getattr(config, field.name)
        if full or value != getattr(default, field.name):
            doc[field.name] = value
    layout_doc: Dict[str, Any] = {}
    for field in dataclasses.fields(MacrochipLayout):
        value = getattr(config.layout, field.name)
        if full or value != getattr(default.layout, field.name):
            layout_doc[field.name] = value
    if layout_doc:
        doc["layout"] = layout_doc
    tech_doc: Dict[str, Any] = {}
    for field in dataclasses.fields(Technology):
        value = getattr(config.tech, field.name)
        if full or value != getattr(default.tech, field.name):
            tech_doc[field.name] = value
    if tech_doc:
        doc["technology"] = tech_doc
    return doc


def config_from_dict(doc: Dict[str, Any]) -> MacrochipConfig:
    """Build a configuration from a dict of overrides."""
    doc = dict(doc)
    layout_doc = doc.pop("layout", {})
    tech_doc = doc.pop("technology", {})
    known = {f.name for f in dataclasses.fields(MacrochipConfig)}
    unknown = set(doc) - known
    if unknown:
        raise ValueError("unknown configuration keys: %s"
                         % ", ".join(sorted(unknown)))
    layout = MacrochipLayout(**layout_doc)
    tech = Technology(**tech_doc)
    return MacrochipConfig(layout=layout, tech=tech, **doc)


def save_config(config: MacrochipConfig, fp: Union[str, IO[str]],
                full: bool = False) -> None:
    doc = config_to_dict(config, full=full)
    if isinstance(fp, str):
        with open(fp, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
    else:
        json.dump(doc, fp, indent=2, sort_keys=True)


def load_config(fp: Union[str, IO[str]]) -> MacrochipConfig:
    if isinstance(fp, str):
        with open(fp) as fh:
            doc = json.load(fh)
    else:
        doc = json.load(fp)
    return config_from_dict(doc)
