"""Macrochip platform configuration."""

from .config import (
    MacrochipConfig,
    full_2015_config,
    scaled_config,
    small_test_config,
)

__all__ = [
    "MacrochipConfig",
    "scaled_config",
    "full_2015_config",
    "small_test_config",
]
