"""The shared benchmark suite behind Figures 7, 8, 9, and 10.

One call to :func:`run_suite` replays all eleven workloads (six
application kernels + five synthetic coherence benchmarks) on all six
network configurations and returns the full result grid; the per-figure
drivers then derive speedups, latencies, router-energy fractions, and
EDPs from it without re-simulating.

Presets trade fidelity for time:

* ``full``  — the sizes used for EXPERIMENTS.md (minutes of CPU time);
* ``quick`` — reduced reference counts for interactive runs;
* ``smoke`` — tiny sizes for CI/benchmark harnesses (seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.parallel import Shard, ShardError, WorkerPool, run_sharded
from ..cpu.system import generate_trace
from ..cpu.trace import CoherenceTrace
from ..macrochip.config import MacrochipConfig, scaled_config
from ..networks.factory import FIGURE7_NETWORKS
from ..workloads.kernels import FIGURE7_KERNELS
from ..workloads.replay import ReplayResult, replay
from ..workloads.sharing import mix_by_name
from ..workloads.synthetic import make_pattern
from ..workloads.synthetic_coherence import (
    FIGURE7_SYNTHETIC,
    SyntheticCoherenceSpec,
    generate_synthetic_trace,
)


@dataclass(frozen=True)
class Preset:
    """Workload sizing for one fidelity level."""

    name: str
    kernel_refs_per_core: int
    synthetic_ops_per_core: int


PRESETS: Dict[str, Preset] = {
    "full": Preset("full", kernel_refs_per_core=1000,
                   synthetic_ops_per_core=100),
    "quick": Preset("quick", kernel_refs_per_core=500,
                    synthetic_ops_per_core=40),
    "smoke": Preset("smoke", kernel_refs_per_core=120,
                    synthetic_ops_per_core=10),
}

#: workload display order of Figures 7/8/10 (six apps, five synthetics)
WORKLOAD_ORDER: List[str] = (
    [k.name for k in FIGURE7_KERNELS]
    + [name for name, _, _ in FIGURE7_SYNTHETIC]
)


@dataclass
class SuiteResult:
    """Replay results for every (workload, network) pair."""

    preset: str
    config: MacrochipConfig
    #: results[workload_name][network_key]
    results: Dict[str, Dict[str, ReplayResult]] = field(default_factory=dict)
    traces: Dict[str, CoherenceTrace] = field(default_factory=dict)
    #: trace builds or replays that failed under a collecting error
    #: policy (their grid cells are simply absent); empty on clean runs
    failures: List[ShardError] = field(default_factory=list)

    def workloads(self) -> List[str]:
        return [w for w in WORKLOAD_ORDER if w in self.results]

    def networks(self) -> List[str]:
        """Network keys actually present, in the canonical figure order."""
        present = set()
        for by_net in self.results.values():
            present.update(by_net)
        return [n for n in FIGURE7_NETWORKS if n in present]


def _kernel_trace_task(kernel_cls, refs_per_core: int,
                       config: MacrochipConfig) -> CoherenceTrace:
    """CPU-simulate one application kernel (picklable shard body)."""
    return generate_trace(kernel_cls(refs_per_core=refs_per_core), config)


def _synthetic_trace_task(name: str, pattern_key: str, mix_name: str,
                          ops_per_core: int,
                          config: MacrochipConfig) -> CoherenceTrace:
    """Synthesize one coherence benchmark trace (picklable shard body)."""
    spec = SyntheticCoherenceSpec(name, ops_per_core=ops_per_core)
    pattern = make_pattern(pattern_key, config.layout)
    trace = generate_synthetic_trace(spec, pattern,
                                     mix_by_name(mix_name), config)
    trace.workload = name
    return trace


def build_traces(preset: Preset,
                 config: MacrochipConfig,
                 progress: Optional[Callable[[str], None]] = None,
                 workloads: Optional[List[str]] = None,
                 workers: int = 1,
                 pool: Optional[WorkerPool] = None,
                 on_error: str = "raise",
                 max_retries: int = 2,
                 timeout_s: Optional[float] = None,
                 failures: Optional[List[ShardError]] = None
                 ) -> Dict[str, CoherenceTrace]:
    """Generate coherence traces (CPU simulation runs once per workload;
    replays reuse the trace).

    ``workloads`` restricts generation to the named subset (the campaign
    cache uses this to rebuild only what is missing); ``workers`` shards
    the independent per-workload simulations across processes.  ``pool``
    lends a persistent :class:`~repro.core.parallel.WorkerPool` so the
    trace build shares worker processes with the replay stage that
    follows it instead of spinning up its own.

    Under a collecting ``on_error`` policy a workload whose build failed
    is simply absent from the returned dict; its
    :class:`~repro.core.parallel.ShardError` is appended to ``failures``
    when the caller passes a list to accumulate into.
    """
    shards: List[Shard] = []
    names: List[str] = []
    for kernel_cls in FIGURE7_KERNELS:
        if workloads is not None and kernel_cls.name not in workloads:
            continue
        names.append(kernel_cls.name)
        shards.append(Shard(
            _kernel_trace_task,
            args=(kernel_cls, preset.kernel_refs_per_core, config),
            label="cpu-sim %s" % kernel_cls.name))
    for name, pattern_key, mix_name in FIGURE7_SYNTHETIC:
        if workloads is not None and name not in workloads:
            continue
        names.append(name)
        shards.append(Shard(
            _synthetic_trace_task,
            args=(name, pattern_key, mix_name,
                  preset.synthetic_ops_per_core, config),
            label="synthesize %s" % name))
    run = run_sharded(shards, workers=workers, progress=progress, pool=pool,
                      on_error=on_error, max_retries=max_retries,
                      timeout_s=timeout_s)
    traces: Dict[str, CoherenceTrace] = {}
    for name, result in zip(names, run.results):
        if isinstance(result, ShardError):
            if failures is not None:
                failures.append(result)
            continue
        traces[name] = result
    return traces


def run_suite(preset_name: str = "quick",
              config: MacrochipConfig = None,
              networks: Optional[List[str]] = None,
              workloads: Optional[List[str]] = None,
              progress: Optional[Callable[[str], None]] = None,
              workers: int = 1,
              on_error: str = "raise",
              max_retries: int = 2,
              timeout_s: Optional[float] = None) -> SuiteResult:
    """Run the full (or filtered) benchmark suite.

    With ``workers > 1`` both stages parallelize: trace generation shards
    per workload, and the replay grid shards per (workload, network)
    pair.  Every simulation is independently seeded by its arguments, so
    the grid is identical to a serial run.  Both stages share one
    persistent :class:`~repro.core.parallel.WorkerPool`, so the replay
    grid reuses the trace build's worker processes.

    ``on_error`` / ``max_retries`` / ``timeout_s`` are the per-shard
    fault policy for both stages: under ``'collect'``/``'retry'`` a
    failed trace build drops that workload's whole row, a failed replay
    drops one grid cell, and every failure is recorded in
    :attr:`SuiteResult.failures` instead of aborting the suite.
    """
    try:
        preset = PRESETS[preset_name]
    except KeyError:
        raise KeyError("unknown preset %r; choose from %s"
                       % (preset_name, ", ".join(PRESETS))) from None
    cfg = config or scaled_config()
    nets = networks or list(FIGURE7_NETWORKS)
    collected: List[ShardError] = []
    with WorkerPool(workers) as shared_pool:
        traces = build_traces(preset, cfg, progress,
                              workloads=workloads, workers=workers,
                              pool=shared_pool, on_error=on_error,
                              max_retries=max_retries, timeout_s=timeout_s,
                              failures=collected)
        suite = SuiteResult(preset=preset.name, config=cfg, traces=traces,
                            failures=collected)
        pairs = [(workload, net) for workload in traces for net in nets]
        shards = [
            Shard(replay, args=(traces[workload], net, cfg),
                  label="replay %s on %s" % (workload, net))
            for workload, net in pairs
        ]
        run = run_sharded(shards, workers=workers, progress=progress,
                          pool=shared_pool, on_error=on_error,
                          max_retries=max_retries, timeout_s=timeout_s)
    if progress:
        progress(run.summary())
    for (workload, net), result in zip(pairs, run.results):
        if isinstance(result, ShardError):
            collected.append(result)
            continue
        suite.results.setdefault(workload, {})[net] = result
    return suite
