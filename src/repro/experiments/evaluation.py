"""The shared benchmark suite behind Figures 7, 8, 9, and 10.

One call to :func:`run_suite` replays all eleven workloads (six
application kernels + five synthetic coherence benchmarks) on all six
network configurations and returns the full result grid; the per-figure
drivers then derive speedups, latencies, router-energy fractions, and
EDPs from it without re-simulating.

Presets trade fidelity for time:

* ``full``  — the sizes used for EXPERIMENTS.md (minutes of CPU time);
* ``quick`` — reduced reference counts for interactive runs;
* ``smoke`` — tiny sizes for CI/benchmark harnesses (seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..cpu.system import generate_trace
from ..cpu.trace import CoherenceTrace
from ..macrochip.config import MacrochipConfig, scaled_config
from ..networks.factory import FIGURE7_NETWORKS
from ..workloads.kernels import FIGURE7_KERNELS
from ..workloads.replay import ReplayResult, replay
from ..workloads.sharing import mix_by_name
from ..workloads.synthetic import make_pattern
from ..workloads.synthetic_coherence import (
    FIGURE7_SYNTHETIC,
    SyntheticCoherenceSpec,
    generate_synthetic_trace,
)


@dataclass(frozen=True)
class Preset:
    """Workload sizing for one fidelity level."""

    name: str
    kernel_refs_per_core: int
    synthetic_ops_per_core: int


PRESETS: Dict[str, Preset] = {
    "full": Preset("full", kernel_refs_per_core=1000,
                   synthetic_ops_per_core=100),
    "quick": Preset("quick", kernel_refs_per_core=500,
                    synthetic_ops_per_core=40),
    "smoke": Preset("smoke", kernel_refs_per_core=120,
                    synthetic_ops_per_core=10),
}

#: workload display order of Figures 7/8/10 (six apps, five synthetics)
WORKLOAD_ORDER: List[str] = (
    [k.name for k in FIGURE7_KERNELS]
    + [name for name, _, _ in FIGURE7_SYNTHETIC]
)


@dataclass
class SuiteResult:
    """Replay results for every (workload, network) pair."""

    preset: str
    config: MacrochipConfig
    #: results[workload_name][network_key]
    results: Dict[str, Dict[str, ReplayResult]] = field(default_factory=dict)
    traces: Dict[str, CoherenceTrace] = field(default_factory=dict)

    def workloads(self) -> List[str]:
        return [w for w in WORKLOAD_ORDER if w in self.results]

    def networks(self) -> List[str]:
        """Network keys actually present, in the canonical figure order."""
        present = set()
        for by_net in self.results.values():
            present.update(by_net)
        return [n for n in FIGURE7_NETWORKS if n in present]


def build_traces(preset: Preset,
                 config: MacrochipConfig,
                 progress: Optional[Callable[[str], None]] = None
                 ) -> Dict[str, CoherenceTrace]:
    """Generate every workload's coherence trace (CPU simulation runs
    once per workload; replays reuse the trace)."""
    traces: Dict[str, CoherenceTrace] = {}
    for kernel_cls in FIGURE7_KERNELS:
        kernel = kernel_cls(refs_per_core=preset.kernel_refs_per_core)
        if progress:
            progress("cpu-sim %s" % kernel.name)
        traces[kernel.name] = generate_trace(kernel, config)
    for name, pattern_key, mix_name in FIGURE7_SYNTHETIC:
        if progress:
            progress("synthesize %s" % name)
        spec = SyntheticCoherenceSpec(
            name, ops_per_core=preset.synthetic_ops_per_core)
        pattern = make_pattern(pattern_key, config.layout)
        trace = generate_synthetic_trace(spec, pattern,
                                         mix_by_name(mix_name), config)
        trace.workload = name
        traces[name] = trace
    return traces


def run_suite(preset_name: str = "quick",
              config: MacrochipConfig = None,
              networks: Optional[List[str]] = None,
              workloads: Optional[List[str]] = None,
              progress: Optional[Callable[[str], None]] = None
              ) -> SuiteResult:
    """Run the full (or filtered) benchmark suite."""
    try:
        preset = PRESETS[preset_name]
    except KeyError:
        raise KeyError("unknown preset %r; choose from %s"
                       % (preset_name, ", ".join(PRESETS))) from None
    cfg = config or scaled_config()
    nets = networks or list(FIGURE7_NETWORKS)
    traces = build_traces(preset, cfg, progress)
    suite = SuiteResult(preset=preset.name, config=cfg, traces=traces)
    for workload, trace in traces.items():
        if workloads is not None and workload not in workloads:
            continue
        suite.results[workload] = {}
        for net in nets:
            if progress:
                progress("replay %s on %s" % (workload, net))
            suite.results[workload][net] = replay(trace, net, cfg)
    return suite
