"""Figure 6: latency vs. offered load for four message patterns.

Sweeps all five network architectures over each pattern's load range with
64-byte packets (one cache line), reporting mean packet latency per load
point and the sustained-bandwidth knee — the paper's 'maximum sustainable
bandwidth' read off the vertical asymptote.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.tables import render_series, render_table
from ..core.adaptive import AdaptiveConfig, KneeResult, refine_knee
from ..core.parallel import Shard, ShardError, WorkerPool, run_sharded
from ..core.sweep import SweepPoint, run_load_point, to_sweep_point
from ..macrochip.config import MacrochipConfig, scaled_config
from ..networks.factory import FIGURE6_NETWORKS, NETWORK_CLASSES
from ..workloads.synthetic import make_pattern


#: offered-load grids per pattern, matching the paper's x-axis ranges
LOAD_GRIDS: Dict[str, List[float]] = {
    "uniform": [0.01, 0.025, 0.05, 0.075, 0.10, 0.15, 0.25,
                0.40, 0.50, 0.70, 0.90, 0.95],
    "transpose": [0.002, 0.005, 0.01, 0.012, 0.015, 0.02, 0.03,
                  0.04, 0.05, 0.06],
    "neighbor": [0.01, 0.02, 0.04, 0.06, 0.08, 0.12, 0.16, 0.20, 0.25],
    "butterfly": [0.002, 0.005, 0.01, 0.012, 0.015, 0.02, 0.03,
                  0.04, 0.05, 0.06],
}

#: the four panels in the paper's layout order
PANEL_ORDER = ["uniform", "transpose", "neighbor", "butterfly"]


@dataclass
class Figure6Result:
    """Sweep curves for every (pattern, network) pair."""

    window_ns: float
    #: curves[pattern][network] -> list of SweepPoint
    curves: Dict[str, Dict[str, List[SweepPoint]]] = field(
        default_factory=dict)
    #: 'fixed' (exact legacy grids) or 'adaptive' (knee refinement)
    mode: str = "fixed"
    #: simulator events across every load point (sweep-cost telemetry)
    total_events: int = 0
    #: number of load points simulated
    load_points: int = 0
    #: knees[pattern][network] -> KneeResult (adaptive mode only)
    knees: Dict[str, Dict[str, KneeResult]] = field(default_factory=dict)
    #: load points (or knee refinements) that failed under
    #: ``on_error='collect'``/``'retry'``; empty on a clean run
    failures: List[ShardError] = field(default_factory=list)

    def saturation_table(self) -> List[Tuple[str, str, float]]:
        """(pattern, network, knee fraction-of-peak) rows.

        The knee is the highest delivered fraction among *unsaturated*
        load points (delivered tracks injected), falling back to the
        best delivered fraction if every point saturated.  A curve with
        no surviving points (every load point failed under a collecting
        error policy) is omitted rather than crashing the summary.
        """
        rows = []
        for pattern, by_net in self.curves.items():
            for net, points in by_net.items():
                if not points:
                    continue
                good = [p.delivered_fraction for p in points
                        if not p.saturated]
                best = max(good) if good else max(
                    p.delivered_fraction for p in points)
                rows.append((pattern, net, best))
        return rows


def run_figure6(config: MacrochipConfig = None,
                window_ns: float = 1200.0,
                patterns: Optional[List[str]] = None,
                networks: Optional[List[str]] = None,
                load_grids: Optional[Dict[str, List[float]]] = None,
                progress=None,
                workers: int = 1,
                rng_block: int = 256,
                warm: bool = True,
                pool: Optional[WorkerPool] = None,
                on_error: str = "raise",
                max_retries: int = 2,
                timeout_s: Optional[float] = None,
                backend: str = "python") -> Figure6Result:
    """Run the Figure 6 sweeps over the exact fixed load grids.

    ``window_ns`` controls fidelity (injection window per load point);
    patterns/networks/load grids can be filtered for quick runs.  With
    ``workers > 1`` the whole (pattern, network, load) grid flattens
    into one shard list — each load point is an independent, seeded
    simulation — so curves are bit-identical to a serial run; expensive
    high-load shards are submitted first (cost-keyed by offered load) so
    the pool never idles on a long tail.  ``rng_block`` passes through
    to every load point (0 = legacy one-draw-per-packet RNG path; any
    value is bit-identical, see :func:`repro.core.sweep.run_load_point`).

    ``warm=True`` (the default) warm-starts every load point: each
    worker process keeps one reset-reused (simulator, network) context
    per network and shares the interned draw bank across the whole grid
    — bit-identical results, less wall-clock.  ``warm=False`` is the
    cold-construction escape hatch (``--cold`` on the CLI).  ``pool``
    lends a persistent :class:`~repro.core.parallel.WorkerPool` so
    multiple figure runs (or a campaign) reuse worker processes and
    their warm contexts.

    ``on_error`` / ``max_retries`` / ``timeout_s`` form the per-shard
    fault policy (:class:`~repro.core.parallel.ErrorPolicy`): under
    ``'collect'``/``'retry'`` a failing load point is dropped from its
    curve and recorded in :attr:`Figure6Result.failures` instead of
    aborting the whole figure.

    ``backend="vectorized"`` routes every load point through the numpy
    fast path (:mod:`repro.core.vectorized`) — bit-identical curves,
    scalar fallback where a network has no kernel (HERMES) or numpy is
    missing.  ``"python"`` (default) is the exact scalar event loop.
    """
    cfg = config or scaled_config()
    result = Figure6Result(window_ns=window_ns)
    pats = patterns or PANEL_ORDER
    nets = networks or list(FIGURE6_NETWORKS)
    grids = load_grids or LOAD_GRIDS
    keys = []
    shards = []
    for pattern_key in pats:
        result.curves[pattern_key] = {}
        for net in nets:
            result.curves[pattern_key][net] = []
            pattern = make_pattern(pattern_key, cfg.layout)
            for fraction in grids[pattern_key]:
                keys.append((pattern_key, net))
                shards.append(Shard(
                    run_load_point,
                    args=(net, cfg, pattern, fraction),
                    kwargs=dict(window_ns=window_ns, rng_block=rng_block,
                                warm=warm, backend=backend),
                    label="figure6 %s/%s @%.3f"
                          % (pattern_key, net, fraction)))
    run = run_sharded(shards, workers=workers, progress=progress,
                      cost_key=lambda s: s.args[3], pool=pool,
                      on_error=on_error, max_retries=max_retries,
                      timeout_s=timeout_s)
    if progress:
        progress(run.summary())
    for (pattern_key, net), point in zip(keys, run.results):
        if isinstance(point, ShardError):
            result.failures.append(point)
            continue
        result.curves[pattern_key][net].append(to_sweep_point(point, cfg))
    result.total_events = run.total_events
    result.load_points = len(shards)
    return result


def adaptive_coarse_grid(grid: List[float], stride: int = 2) -> List[float]:
    """Thin a fixed load grid for coarse knee probing: every ``stride``-th
    point, always keeping the first (an unsaturated anchor) and the last
    (the pattern's sweep ceiling, so a saturated probe exists whenever
    the fixed grid had one)."""
    if stride < 1:
        raise ValueError("stride must be >= 1, got %r" % (stride,))
    coarse = list(grid[::stride])
    if grid and grid[-1] not in coarse:
        coarse.append(grid[-1])
    return coarse


def _knee_shard(net: str, cfg: MacrochipConfig, pattern, coarse: List[float],
                window_ns: float, bisections: int,
                adaptive: AdaptiveConfig, rng_block: int,
                warm: bool = True, on_error: str = "raise",
                backend: str = "python") -> KneeResult:
    """Module-level (picklable) shard body: one (pattern, network) knee
    refinement, run serially inside its worker.  ``warm`` flows through
    ``refine_knee``'s ``**kwargs`` into every probed load point — the
    refinement loop is warm-start's best case (many same-network points
    back to back in one process).  ``on_error='collect'`` makes the
    refinement itself probe-fault-tolerant (see
    :func:`~repro.core.adaptive.refine_knee`)."""
    return refine_knee(net, cfg, pattern, coarse, window_ns=window_ns,
                       bisections=bisections, adaptive=adaptive,
                       rng_block=rng_block, warm=warm, backend=backend,
                       on_error="collect" if on_error != "raise" else "raise")


def run_figure6_adaptive(config: MacrochipConfig = None,
                         window_ns: float = 1200.0,
                         patterns: Optional[List[str]] = None,
                         networks: Optional[List[str]] = None,
                         load_grids: Optional[Dict[str, List[float]]] = None,
                         coarse_stride: int = 4,
                         bisections: int = 3,
                         adaptive: Optional[AdaptiveConfig] = None,
                         progress=None,
                         workers: int = 1,
                         rng_block: int = 256,
                         warm: bool = True,
                         pool: Optional[WorkerPool] = None,
                         on_error: str = "raise",
                         max_retries: int = 2,
                         timeout_s: Optional[float] = None,
                         backend: str = "python") -> Figure6Result:
    """The adaptive counterpart of :func:`run_figure6`.

    Instead of walking the fixed grids, every (pattern, network) pair
    runs :func:`repro.core.adaptive.refine_knee`: an ascending probe of
    the thinned grid (``coarse_stride``, stopping at the first saturated
    load) followed by ``bisections`` halvings of the knee bracket, with
    each load point checkpointed under ``adaptive`` (default
    :class:`AdaptiveConfig`) so converged and saturated points stop
    early.  Curves contain the probed points
    (ascending load) and ``result.knees`` the per-pair
    :class:`~repro.core.adaptive.KneeResult`; ``saturation_table()``
    reads knees off these curves exactly as in fixed mode.

    Results can differ (slightly) from the fixed grids — that is the
    point: far fewer simulated events for a knee of equal-or-better
    offered-load resolution.  The fixed path stays the default
    everywhere, and ``benchmarks/bench_sweep.py`` records the deltas.

    ``backend`` threads through to every probed load point.  With
    ``backend="vectorized"`` the checkpointed (adaptive) run is replayed
    from kernel arrays — stop decisions, knees, and per-point results
    are bit-identical to the scalar engine by contract (enforced by the
    equivalence tests), so adaptive sweeps get the same speedup as fixed
    grids.
    """
    cfg = config or scaled_config()
    stop_rules = adaptive if adaptive is not None else AdaptiveConfig()
    result = Figure6Result(window_ns=window_ns, mode="adaptive")
    pats = patterns or PANEL_ORDER
    nets = networks or list(FIGURE6_NETWORKS)
    grids = load_grids or LOAD_GRIDS
    keys = []
    shards = []
    for pattern_key in pats:
        result.curves[pattern_key] = {}
        result.knees[pattern_key] = {}
        coarse = adaptive_coarse_grid(grids[pattern_key], coarse_stride)
        for net in nets:
            pattern = make_pattern(pattern_key, cfg.layout)
            keys.append((pattern_key, net))
            shards.append(Shard(
                _knee_shard,
                args=(net, cfg, pattern, coarse, window_ns, bisections,
                      stop_rules, rng_block, warm, on_error, backend),
                label="figure6-adaptive %s/%s" % (pattern_key, net)))
    run = run_sharded(shards, workers=workers, progress=progress,
                      cost_key=lambda s: sum(s.args[3]), pool=pool,
                      on_error=on_error, max_retries=max_retries,
                      timeout_s=timeout_s)
    if progress:
        progress(run.summary())
    for (pattern_key, net), knee in zip(keys, run.results):
        if isinstance(knee, ShardError):
            result.failures.append(knee)
            result.curves[pattern_key][net] = []
            continue
        result.curves[pattern_key][net] = list(knee.points)
        result.knees[pattern_key][net] = knee
        result.total_events += knee.events_dispatched
        result.load_points += knee.load_points
    return result


def figure6_text(result: Figure6Result) -> str:
    """Render the four panels (table + ASCII plot) plus the saturation
    summary."""
    from ..analysis.plot import plot_figure6_panel

    blocks = []
    for pattern_key in PANEL_ORDER:
        if pattern_key not in result.curves:
            continue
        series = {}
        for net, points in result.curves[pattern_key].items():
            label = NETWORK_CLASSES[net].name
            series[label] = [(p.offered_fraction * 100, p.mean_latency_ns)
                             for p in points]
        blocks.append(render_series(
            "Figure 6 [%s]" % pattern_key,
            "load(%)", "mean packet latency (ns)", series))
        try:
            blocks.append(plot_figure6_panel(result, pattern_key))
        except ValueError:  # pragma: no cover - nothing plottable
            pass
    sat_rows = [(p, NETWORK_CLASSES[n].name, "%.1f%%" % (f * 100))
                for p, n, f in result.saturation_table()]
    blocks.append(render_table(
        ["Pattern", "Network", "Sustained (% of peak)"], sat_rows,
        title="Figure 6 summary: sustained bandwidth at the knee"))
    if result.knees:
        knee_rows = []
        for pattern_key in PANEL_ORDER:
            for net, knee in result.knees.get(pattern_key, {}).items():
                hi = ("%.4f" % knee.bracket_high
                      if knee.bracket_high != float("inf") else "-")
                knee_rows.append((
                    pattern_key, NETWORK_CLASSES[net].name,
                    "%.4f" % knee.bracket_low, hi,
                    "%d" % knee.load_points, "%d" % knee.events_dispatched))
        blocks.append(render_table(
            ["Pattern", "Network", "Knee >= (load)", "Knee < (load)",
             "Points", "Events"],
            knee_rows,
            title="Adaptive knee refinement: offered-load brackets"))
    if result.failures:
        lines = ["%d load point(s) failed and were dropped from the "
                 "curves above:" % len(result.failures)]
        lines.extend("  " + str(err) for err in result.failures)
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


if __name__ == "__main__":  # pragma: no cover
    import sys

    quick = "--quick" in sys.argv
    adaptive_mode = "--adaptive" in sys.argv
    cold = "--cold" in sys.argv
    n_workers = 1
    for arg in sys.argv[1:]:
        if arg.startswith("--workers="):
            n_workers = int(arg.split("=", 1)[1])
    driver = run_figure6_adaptive if adaptive_mode else run_figure6
    res = driver(window_ns=400.0 if quick else 1200.0,
                 progress=lambda m: print("..", m, file=sys.stderr),
                 workers=n_workers, warm=not cold)
    print(figure6_text(res))
    print("\n%s mode: %d load points, %d simulator events"
          % (res.mode, res.load_points, res.total_events), file=sys.stderr)
