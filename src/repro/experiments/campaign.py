"""Cached experiment campaigns.

A *campaign* is a directory-backed run of the closed-loop suite:
coherence traces are CPU-simulated once and cached on disk
(:mod:`repro.cpu.trace_io`), replay results are written as JSON, and
re-running the campaign only simulates what is missing.  This makes the
expensive full-preset runs resumable and lets ablations re-replay cached
traces with different network parameters at near-zero cost.

Layout of a campaign directory::

    campaign/
      traces/<workload>.json        cached coherence traces
      results/<workload>__<network>.json
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .evaluation import PRESETS, Preset, build_traces
from ..cpu.trace import CoherenceTrace
from ..cpu.trace_io import dump_trace, load_trace
from ..macrochip.config import MacrochipConfig, scaled_config
from ..networks.factory import FIGURE7_NETWORKS
from ..workloads.replay import replay


@dataclass(frozen=True)
class CampaignEntry:
    """One cached (workload, network) result."""

    workload: str
    network: str
    runtime_ps: int
    mean_op_latency_ns: float
    ops_completed: int
    messages_sent: int
    energy_by_category: Dict[str, float]


class Campaign:
    """A resumable, disk-backed benchmark campaign."""

    def __init__(self, directory: str,
                 preset_name: str = "quick",
                 config: MacrochipConfig = None) -> None:
        self.directory = directory
        self.preset = PRESETS[preset_name]
        self.config = config or scaled_config()
        self.traces_dir = os.path.join(directory, "traces")
        self.results_dir = os.path.join(directory, "results")
        os.makedirs(self.traces_dir, exist_ok=True)
        os.makedirs(self.results_dir, exist_ok=True)

    # -- traces --------------------------------------------------------------

    def _trace_path(self, workload: str) -> str:
        return os.path.join(self.traces_dir, "%s.json" % workload)

    def ensure_traces(self,
                      progress: Optional[Callable[[str], None]] = None
                      ) -> Dict[str, CoherenceTrace]:
        """Load cached traces; CPU-simulate and cache any that are
        missing."""
        cached: Dict[str, CoherenceTrace] = {}
        missing = False
        from .evaluation import WORKLOAD_ORDER

        for workload in WORKLOAD_ORDER:
            path = self._trace_path(workload)
            if os.path.exists(path):
                cached[workload] = load_trace(path)
            else:
                missing = True
        if missing:
            fresh = build_traces(self.preset, self.config, progress)
            for workload, trace in fresh.items():
                if workload not in cached:
                    dump_trace(trace, self._trace_path(workload))
                    cached[workload] = trace
        return cached

    # -- results -------------------------------------------------------------

    def _result_path(self, workload: str, network: str) -> str:
        return os.path.join(self.results_dir,
                            "%s__%s.json" % (workload, network))

    def _load_entry(self, path: str) -> CampaignEntry:
        with open(path) as fh:
            doc = json.load(fh)
        return CampaignEntry(**doc)

    def run(self,
            networks: Optional[List[str]] = None,
            workloads: Optional[List[str]] = None,
            progress: Optional[Callable[[str], None]] = None
            ) -> Dict[str, Dict[str, CampaignEntry]]:
        """Replay every missing (workload, network) pair; return the
        complete grid (cached + fresh)."""
        nets = networks or list(FIGURE7_NETWORKS)
        traces = self.ensure_traces(progress)
        grid: Dict[str, Dict[str, CampaignEntry]] = {}
        for workload, trace in traces.items():
            if workloads is not None and workload not in workloads:
                continue
            grid[workload] = {}
            for net in nets:
                path = self._result_path(workload, net)
                if os.path.exists(path):
                    grid[workload][net] = self._load_entry(path)
                    continue
                if progress:
                    progress("replay %s on %s" % (workload, net))
                result = replay(trace, net, self.config)
                entry = CampaignEntry(
                    workload=workload,
                    network=net,
                    runtime_ps=result.runtime_ps,
                    mean_op_latency_ns=result.mean_op_latency_ns,
                    ops_completed=result.ops_completed,
                    messages_sent=result.messages_sent,
                    energy_by_category=result.energy_by_category,
                )
                with open(path, "w") as fh:
                    json.dump(entry.__dict__, fh)
                grid[workload][net] = entry
        return grid

    def completed_pairs(self) -> int:
        return len([f for f in os.listdir(self.results_dir)
                    if f.endswith(".json")])

    def speedup_table(self, grid: Dict[str, Dict[str, CampaignEntry]],
                      baseline: str = "circuit_switched"
                      ) -> Dict[str, Dict[str, float]]:
        """Figure 7 speedups straight from a campaign grid."""
        out: Dict[str, Dict[str, float]] = {}
        for workload, by_net in grid.items():
            if baseline not in by_net:
                continue
            base = by_net[baseline].runtime_ps
            out[workload] = {net: base / e.runtime_ps
                             for net, e in by_net.items()}
        return out
