"""Cached experiment campaigns.

A *campaign* is a directory-backed run of the closed-loop suite:
coherence traces are CPU-simulated once and cached on disk
(:mod:`repro.cpu.trace_io`), replay results are written as JSON, and
re-running the campaign only simulates what is missing.  This makes the
expensive full-preset runs resumable and lets ablations re-replay cached
traces with different network parameters at near-zero cost.

Layout of a campaign directory::

    campaign/
      manifest.json                 preset + config fingerprint
      traces/<workload>.json        cached coherence traces
      results/<workload>__<network>.json

The manifest records exactly what produced the cache.  Opening a
campaign directory with a different preset or :class:`MacrochipConfig`
raises :class:`CampaignStateError` (``on_stale='error'``, the default)
or wipes and rebuilds the cache (``on_stale='rebuild'``) — silently
reusing results simulated under different parameters is never an option.

Independent (workload, network) replays shard across worker processes
(``workers=N``); each simulation is fully determined by its trace,
network, and config, so the grid is identical to a serial run.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from .evaluation import PRESETS, Preset, WORKLOAD_ORDER, build_traces
from ..core.parallel import Shard, ShardError, WorkerPool, run_sharded
from ..cpu.trace import CoherenceTrace
from ..cpu.trace_io import dump_trace, load_trace
from ..macrochip.config import MacrochipConfig, scaled_config
from ..macrochip.configio import config_to_dict
from ..networks.factory import FIGURE7_NETWORKS
from ..workloads.replay import replay

_MANIFEST_VERSION = 2
_MANIFEST_NAME = "manifest.json"


class CampaignStateError(RuntimeError):
    """The campaign directory was produced by different parameters."""


def campaign_fingerprint(preset: Preset,
                         config: MacrochipConfig,
                         backend: str = "python") -> Dict[str, Any]:
    """The JSON document that uniquely identifies what a campaign ran:
    the preset sizing plus the *full* configuration (every field, not
    just overrides, so a change in defaults is also caught) plus the
    execution backend.  Backends are bit-identical by contract, but the
    manifest still records which one produced the cache so results from
    different engines never silently alias — if the contract is ever
    violated, the manifest points at the culprit instead of hiding it."""
    return {
        "version": _MANIFEST_VERSION,
        "preset": {
            "name": preset.name,
            "kernel_refs_per_core": preset.kernel_refs_per_core,
            "synthetic_ops_per_core": preset.synthetic_ops_per_core,
        },
        "config": config_to_dict(config, full=True),
        "backend": backend,
    }


@dataclass(frozen=True)
class CampaignEntry:
    """One cached (workload, network) result."""

    workload: str
    network: str
    runtime_ps: int
    mean_op_latency_ns: float
    ops_completed: int
    messages_sent: int
    energy_by_category: Dict[str, float]
    events_dispatched: int = 0


def _replay_entry(trace: CoherenceTrace, network: str,
                  config: MacrochipConfig) -> CampaignEntry:
    """Replay one pair and flatten it to a cacheable entry (picklable
    shard body; the parent process does all file writes)."""
    result = replay(trace, network, config)
    return CampaignEntry(
        workload=trace.workload,
        network=network,
        runtime_ps=result.runtime_ps,
        mean_op_latency_ns=result.mean_op_latency_ns,
        ops_completed=result.ops_completed,
        messages_sent=result.messages_sent,
        energy_by_category=result.energy_by_category,
        events_dispatched=result.events_dispatched,
    )


class Campaign:
    """A resumable, disk-backed benchmark campaign.

    Parallel campaigns keep one persistent
    :class:`~repro.core.parallel.WorkerPool` for their whole lifetime:
    the trace build and every replay grid run on the same worker
    processes (warm-start — spin-up is paid once, and per-process caches
    survive between stages).  Call :meth:`close` — or use the campaign
    as a context manager — when done; serial campaigns (``workers=1``)
    never create processes and need no cleanup.

    ``on_error`` / ``max_retries`` / ``timeout_s`` form the campaign's
    per-shard fault policy (:class:`~repro.core.parallel.ErrorPolicy`).
    Under ``'collect'``/``'retry'`` a failed trace build or replay is
    recorded in :attr:`last_failures` and *not cached*: the grid cell
    stays missing on disk, so the next :meth:`run` of the same campaign
    naturally retries exactly the failed work — resumability doubles as
    failure recovery.
    """

    def __init__(self, directory: str,
                 preset_name: str = "quick",
                 config: MacrochipConfig = None,
                 workers: int = 1,
                 on_stale: str = "error",
                 on_error: str = "raise",
                 max_retries: int = 2,
                 timeout_s: Optional[float] = None,
                 backend: str = "python") -> None:
        from ..core.sweep import BACKENDS

        if on_stale not in ("error", "rebuild"):
            raise ValueError("on_stale must be 'error' or 'rebuild', got %r"
                             % on_stale)
        if backend not in BACKENDS:
            raise ValueError("unknown backend %r; valid backends: %s"
                             % (backend, ", ".join(BACKENDS)))
        if backend == "vectorized":
            from ..core import vectorized
            if vectorized.np is None:
                # Warn once, up front: every load point this campaign
                # runs would otherwise emit its own resolution notice.
                vectorized.warn_numpy_fallback("campaign")
        self.directory = directory
        self.preset = PRESETS[preset_name]
        self.config = config or scaled_config()
        self.workers = workers
        self.backend = backend
        self.on_error = on_error
        self.max_retries = max_retries
        self.timeout_s = timeout_s
        #: ShardErrors from the most recent ensure_traces()/run() call
        self.last_failures: List[ShardError] = []
        self._pool: Optional[WorkerPool] = None
        self.traces_dir = os.path.join(directory, "traces")
        self.results_dir = os.path.join(directory, "results")
        os.makedirs(self.traces_dir, exist_ok=True)
        os.makedirs(self.results_dir, exist_ok=True)
        self._check_manifest(on_stale)

    # -- worker pool ---------------------------------------------------------

    def _get_pool(self, n_workers: int) -> Optional[WorkerPool]:
        """The campaign's persistent pool, (re)built lazily.  A call
        that overrides the worker count replaces the pool; serial calls
        return None (run_sharded handles workers=1 in-process)."""
        if n_workers <= 1:
            return None
        if self._pool is not None and self._pool.workers != n_workers:
            self._pool.close()
            self._pool = None
        if self._pool is None:
            self._pool = WorkerPool(n_workers)
        return self._pool

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "Campaign":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- manifest ------------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, _MANIFEST_NAME)

    def fingerprint(self) -> Dict[str, Any]:
        return campaign_fingerprint(self.preset, self.config, self.backend)

    def _check_manifest(self, on_stale: str) -> None:
        """Validate the cache against this campaign's parameters; write
        the manifest on first use."""
        expected = self.fingerprint()
        if os.path.exists(self.manifest_path):
            with open(self.manifest_path) as fh:
                found = json.load(fh)
            if found == expected:
                return
            if on_stale == "error":
                raise CampaignStateError(
                    "campaign directory %r was produced by a different "
                    "preset/config (manifest mismatch); rerun with "
                    "on_stale='rebuild' to discard the stale cache, or "
                    "point the campaign at a fresh directory"
                    % self.directory)
            # on_stale == 'rebuild': discard everything the old
            # parameters produced
            shutil.rmtree(self.traces_dir, ignore_errors=True)
            shutil.rmtree(self.results_dir, ignore_errors=True)
            os.makedirs(self.traces_dir, exist_ok=True)
            os.makedirs(self.results_dir, exist_ok=True)
        elif self.completed_pairs() or os.listdir(self.traces_dir):
            # pre-manifest cache of unknown provenance: same policy
            if on_stale == "error":
                raise CampaignStateError(
                    "campaign directory %r has cached files but no "
                    "manifest; cannot verify they match this "
                    "preset/config.  Rerun with on_stale='rebuild' to "
                    "discard them" % self.directory)
            shutil.rmtree(self.traces_dir, ignore_errors=True)
            shutil.rmtree(self.results_dir, ignore_errors=True)
            os.makedirs(self.traces_dir, exist_ok=True)
            os.makedirs(self.results_dir, exist_ok=True)
        with open(self.manifest_path, "w") as fh:
            json.dump(expected, fh, indent=2, sort_keys=True)

    # -- traces --------------------------------------------------------------

    def _trace_path(self, workload: str) -> str:
        return os.path.join(self.traces_dir, "%s.json" % workload)

    def ensure_traces(self,
                      progress: Optional[Callable[[str], None]] = None,
                      workers: Optional[int] = None
                      ) -> Dict[str, CoherenceTrace]:
        """Load cached traces; CPU-simulate and cache **only** the
        missing workloads (a partially populated cache is resumed, never
        rebuilt from scratch)."""
        cached: Dict[str, CoherenceTrace] = {}
        missing: List[str] = []
        self.last_failures = []
        for workload in WORKLOAD_ORDER:
            path = self._trace_path(workload)
            if os.path.exists(path):
                cached[workload] = load_trace(path)
            else:
                missing.append(workload)
        if missing:
            n_workers = self.workers if workers is None else workers
            fresh = build_traces(
                self.preset, self.config, progress,
                workloads=missing, workers=n_workers,
                pool=self._get_pool(n_workers),
                on_error=self.on_error, max_retries=self.max_retries,
                timeout_s=self.timeout_s, failures=self.last_failures)
            for workload, trace in fresh.items():
                dump_trace(trace, self._trace_path(workload))
                cached[workload] = trace
        return cached

    # -- results -------------------------------------------------------------

    def _result_path(self, workload: str, network: str) -> str:
        return os.path.join(self.results_dir,
                            "%s__%s.json" % (workload, network))

    def _load_entry(self, path: str) -> CampaignEntry:
        with open(path) as fh:
            doc = json.load(fh)
        return CampaignEntry(**doc)

    def run(self,
            networks: Optional[List[str]] = None,
            workloads: Optional[List[str]] = None,
            progress: Optional[Callable[[str], None]] = None,
            workers: Optional[int] = None
            ) -> Dict[str, Dict[str, CampaignEntry]]:
        """Replay every missing (workload, network) pair; return the
        complete grid (cached + fresh).  Missing pairs shard across
        ``workers`` processes (defaulting to the campaign's setting)."""
        nets = networks or list(FIGURE7_NETWORKS)
        n_workers = self.workers if workers is None else workers
        traces = self.ensure_traces(progress, workers=n_workers)
        grid: Dict[str, Dict[str, CampaignEntry]] = {}
        todo: List[Shard] = []
        for workload, trace in traces.items():
            if workloads is not None and workload not in workloads:
                continue
            grid[workload] = {}
            for net in nets:
                path = self._result_path(workload, net)
                if os.path.exists(path):
                    grid[workload][net] = self._load_entry(path)
                    continue
                if progress:
                    progress("replay %s on %s" % (workload, net))
                todo.append(Shard(
                    _replay_entry, args=(trace, net, self.config),
                    label="replay %s on %s" % (workload, net)))
        # biggest traces first: replay cost scales with coherence-op
        # count, and a late-submitted big workload would otherwise leave
        # the pool idling on a one-shard tail (results are keyed by
        # index, so ordering never changes them)
        run = run_sharded(todo, workers=n_workers,
                          cost_key=lambda s: s.args[0].total_ops,
                          pool=self._get_pool(n_workers),
                          on_error=self.on_error,
                          max_retries=self.max_retries,
                          timeout_s=self.timeout_s)
        for entry in run.results:
            if isinstance(entry, ShardError):
                # never cache a failure: the pair stays missing on disk,
                # so the next run() of this campaign retries it
                self.last_failures.append(entry)
                continue
            with open(self._result_path(entry.workload,
                                        entry.network), "w") as fh:
                json.dump(entry.__dict__, fh)
            grid[entry.workload][entry.network] = entry
        return grid

    def completed_pairs(self) -> int:
        return len([f for f in os.listdir(self.results_dir)
                    if f.endswith(".json")])

    def speedup_table(self, grid: Dict[str, Dict[str, CampaignEntry]],
                      baseline: str = "circuit_switched"
                      ) -> Dict[str, Dict[str, float]]:
        """Figure 7 speedups straight from a campaign grid."""
        out: Dict[str, Dict[str, float]] = {}
        for workload, by_net in grid.items():
            if baseline not in by_net:
                continue
            base = by_net[baseline].runtime_ps
            out[workload] = {net: base / e.runtime_ps
                             for net, e in by_net.items()}
        return out
