"""Experiment drivers: one module per paper artifact plus extensions.

* ``table_experiments`` — Tables 1, 4, 5, 6
* ``figure6`` — latency vs offered load sweeps
* ``evaluation`` / ``figures7_10`` — the closed-loop benchmark campaign
* ``extensions`` — future-work experiments and design-choice ablations
* ``run`` — the CLI entry point (``python -m repro.experiments.run``)
"""

from .evaluation import PRESETS, SuiteResult, run_suite
from .figure6 import Figure6Result, run_figure6

__all__ = [
    "run_suite",
    "SuiteResult",
    "PRESETS",
    "run_figure6",
    "Figure6Result",
]
