"""Figures 7-10: benchmark speedups, coherence-operation latency, router
energy fraction, and energy-delay product.

All four figures derive from one :class:`~repro.experiments.evaluation.
SuiteResult` grid, so a single suite run regenerates them together.
"""

from __future__ import annotations

from typing import Dict, List

from .evaluation import SuiteResult
from ..analysis.edp import energy_breakdown, normalized_edp, speedups
from ..analysis.tables import render_table
from ..networks.factory import NETWORK_CLASSES


def figure7_speedups(suite: SuiteResult,
                     baseline: str = "circuit_switched"
                     ) -> Dict[str, Dict[str, float]]:
    """Speedup of each network over the circuit-switched baseline, per
    workload (Figure 7)."""
    out: Dict[str, Dict[str, float]] = {}
    for workload in suite.workloads():
        runtimes = {net: r.runtime_ps
                    for net, r in suite.results[workload].items()}
        out[workload] = speedups(runtimes, baseline)
    return out


def figure8_latencies(suite: SuiteResult) -> Dict[str, Dict[str, float]]:
    """Mean latency per coherence operation in ns (Figure 8)."""
    return {
        workload: {net: r.mean_op_latency_ns
                   for net, r in suite.results[workload].items()}
        for workload in suite.workloads()
    }


def figure9_router_fractions(suite: SuiteResult,
                             network: str = "limited_point_to_point"
                             ) -> Dict[str, float]:
    """Router energy as a fraction of the limited point-to-point
    network's total energy, per workload (Figure 9)."""
    out = {}
    for workload in suite.workloads():
        result = suite.results[workload][network]
        breakdown = energy_breakdown(result, network, suite.config)
        out[workload] = breakdown.router_fraction
    return out


def figure10_edp(suite: SuiteResult,
                 baseline: str = "point_to_point"
                 ) -> Dict[str, Dict[str, float]]:
    """EDP normalized to the point-to-point network (Figure 10)."""
    out: Dict[str, Dict[str, float]] = {}
    for workload in suite.workloads():
        breakdowns = {
            net: energy_breakdown(r, net, suite.config)
            for net, r in suite.results[workload].items()
        }
        out[workload] = normalized_edp(breakdowns, baseline)
    return out


def _grid_text(title: str, data: Dict[str, Dict[str, float]],
               networks: List[str], fmt: str = "%.2f") -> str:
    headers = ["Workload"] + [NETWORK_CLASSES[n].name for n in networks]
    rows = []
    for workload, by_net in data.items():
        rows.append([workload] + [fmt % by_net[n] for n in networks])
    return render_table(headers, rows, title=title)


def figure7_text(suite: SuiteResult) -> str:
    return _grid_text(
        "Figure 7: Speedup vs. Circuit-Switched",
        figure7_speedups(suite), suite.networks())


def figure8_text(suite: SuiteResult) -> str:
    return _grid_text(
        "Figure 8: Latency per Coherence Operation (ns)",
        figure8_latencies(suite), suite.networks(), fmt="%.1f")


def figure9_text(suite: SuiteResult) -> str:
    fractions = figure9_router_fractions(suite)
    rows = [(w, "%.1f%%" % (f * 100)) for w, f in fractions.items()]
    return render_table(
        ["Workload", "Router Energy (% of total)"], rows,
        title="Figure 9: Router Energy in Limited Point-to-Point")


def figure10_text(suite: SuiteResult) -> str:
    return _grid_text(
        "Figure 10: EDP Normalized to Point-to-Point",
        figure10_edp(suite), suite.networks(), fmt="%.1f")


def all_figures_text(suite: SuiteResult) -> str:
    return "\n\n".join([
        figure7_text(suite),
        figure8_text(suite),
        figure9_text(suite),
        figure10_text(suite),
    ])


if __name__ == "__main__":  # pragma: no cover
    import sys

    from .evaluation import run_suite

    preset = "quick"
    n_workers = 1
    for arg in sys.argv[1:]:
        if arg.startswith("--preset="):
            preset = arg.split("=", 1)[1]
        elif arg.startswith("--workers="):
            n_workers = int(arg.split("=", 1)[1])
    suite = run_suite(preset,
                      progress=lambda m: print("..", m, file=sys.stderr),
                      workers=n_workers)
    print(all_figures_text(suite))
