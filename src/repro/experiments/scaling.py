"""Scaling-limit study: what breaks first as the macrochip grows?

The paper evaluates every network at exactly one scale — the 8x8, 64-site
macrochip of Table 4.  This experiment re-runs the analytical machinery
(component counts, loss budgets, laser power) at 4x4, 8x8, 16x16, and
32x32 while holding the *per-site* resources at the Table 4 point
(128 Tx/Rx, 8-wavelength WDM, 320 GB/s injection), and reports the first
scale at which each architecture collapses along any of three axes:

* **wavelengths** — a site's channel fan-out outgrows its 128-transmitter
  bank: point-to-point needs one channel per destination site
  (``num_sites``), limited point-to-point one per row/column peer plus
  the two router ports (``rows + cols``), and a HERMES gateway one per
  remote cluster (``clusters - 1``).  The channel-provisioning floors in
  the simulators clamp at one wavelength so the *simulation* still runs;
  this study reports the point where that clamp starts lying about
  bandwidth.
* **PD loss budget** — the launch power needed to close the worst-case
  link (canonical 17 dB budget + the network's extra loss + the
  waveguide-distance scaling penalty + any signaling eye penalty)
  exceeds :data:`MAX_LAUNCH_DBM`.  Above ~20 dBm (100 mW) in a silicon
  waveguide, two-photon absorption and the photodetector's own overload
  ceiling make "just launch more power" physically unavailable.
* **laser power** — Table-5 static laser power (feeds x 1 mW x loss
  factor) exceeds :data:`LASER_BUDGET_W`.  The paper's 2015 platform
  budgets ~4 kW of compute per macrochip (section 3); a network whose
  lasers alone want more than half of that is not power-efficient in any
  sense the paper would accept.

Worst-case waveguide distance grows linearly with the die edge
(:func:`repro.photonics.loss.waveguide_scaling_penalty_db`), so loss-prone
topologies (token ring's pass-by modulators, the circuit switch's hop
chain) collapse quickly while the hierarchical and point-to-point plants
hold on longer — the Table-4-style breakpoint table this module prints is
the quantitative version of the paper's scalability argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.units import db_to_factor
from ..macrochip.config import MacrochipConfig, grid_config
from ..macrochip.provisioning import provision
from ..networks.complexity import ALL_COUNTS, ComponentCount
from ..networks.factory import EXTENDED_NETWORKS
from ..photonics.loss import waveguide_scaling_penalty_db


#: Maximum practical per-wavelength launch power, in dBm.  Beyond
#: ~100 mW in a silicon waveguide, two-photon absorption (and the
#: receiver's overload limit) stop "launch more power" from compensating
#: loss, so a link whose worst case needs more than this does not close.
MAX_LAUNCH_DBM = 20.0

#: Static laser-power budget per macrochip, in watts.  Section 3 budgets
#: ~4 kW of compute per macrochip; a network whose lasers want more than
#: half of that has lost the power-efficiency argument outright.
LASER_BUDGET_W = 2000.0

#: The grid dimensions the study sweeps (square ``dim x dim`` macrochips).
SCALING_DIMS = (4, 8, 16, 32)

#: The three failure axes, in reporting order.
AXES = ("wavelengths", "pd_budget", "laser_power")


def wavelength_demand(network: str, cfg: MacrochipConfig) -> Tuple[int, int]:
    """``(channels_needed, transmitters_available)`` for one site.

    ``channels_needed`` is the number of *distinct* destination channels
    the most fan-out-burdened site must source; each needs at least one
    dedicated wavelength out of the site's transmitter bank.  Shared-
    channel networks (token ring, circuit switched, two-phase) time-share
    a constant number of channels regardless of scale, so they never
    fail this axis.
    """
    layout = cfg.layout
    supply = cfg.transmitters_per_site
    if network == "point_to_point":
        # dedicated channel to every site (the paper's full crossbar)
        return layout.num_sites, supply
    if network == "limited_point_to_point":
        # one channel per row peer + per column peer + the two router
        # ports the electronic hops enter through
        peers = (layout.rows - 1) + (layout.cols - 1)
        return peers + 2, supply
    if network == "hermes":
        # a gateway sources one global channel per remote cluster
        from ..networks.hermes import normalize_cluster_dims

        cr, cc = normalize_cluster_dims(layout, 2, 2)
        clusters = layout.num_sites // (cr * cc)
        return max(1, clusters - 1), supply
    # token_ring / circuit_switched / two_phase: scale-invariant fan-out
    return 1, supply


@dataclass(frozen=True)
class ScalePoint:
    """One network at one grid size: every feasibility axis, resolved."""

    network: str
    dim: int
    count: ComponentCount
    #: topology loss + waveguide-distance penalty + signaling penalty
    total_extra_db: float
    #: launch power (dBm) needed to close the worst-case link with the
    #: canonical margin intact
    required_launch_dbm: float
    laser_power_w: float
    channels_needed: int
    channels_available: int

    @property
    def wavelengths_ok(self) -> bool:
        return self.channels_needed <= self.channels_available

    @property
    def pd_budget_ok(self) -> bool:
        return self.required_launch_dbm <= MAX_LAUNCH_DBM

    @property
    def laser_power_ok(self) -> bool:
        return self.laser_power_w <= LASER_BUDGET_W

    @property
    def failed_axes(self) -> Tuple[str, ...]:
        failed = []
        if not self.wavelengths_ok:
            failed.append("wavelengths")
        if not self.pd_budget_ok:
            failed.append("pd_budget")
        if not self.laser_power_ok:
            failed.append("laser_power")
        return tuple(failed)

    @property
    def feasible(self) -> bool:
        return not self.failed_axes


@dataclass(frozen=True)
class ScalingResult:
    """One network across the full dimension sweep."""

    network: str
    points: Tuple[ScalePoint, ...]

    @property
    def breakpoint_dim(self) -> Optional[int]:
        """First grid dimension at which any axis fails (None if the
        network survives the whole sweep)."""
        for p in self.points:
            if not p.feasible:
                return p.dim
        return None

    @property
    def breakpoint_axes(self) -> Tuple[str, ...]:
        for p in self.points:
            if not p.feasible:
                return p.failed_axes
        return ()


def analyze_network(network: str, dim: int,
                    config: MacrochipConfig = None) -> ScalePoint:
    """Resolve every feasibility axis for ``network`` on a ``dim x dim``
    macrochip (pass ``config`` to override the per-site resources)."""
    if network not in ALL_COUNTS:
        raise KeyError("unknown network %r; known: %s"
                       % (network, ", ".join(sorted(ALL_COUNTS))))
    cfg = config or grid_config(dim)
    count = ALL_COUNTS[network](cfg)
    total_extra_db = (count.extra_loss_db
                      + cfg.tech.signaling_penalty_db
                      + waveguide_scaling_penalty_db(cfg.layout, cfg.tech))
    needed, avail = wavelength_demand(network, cfg)
    return ScalePoint(
        network=network,
        dim=dim,
        count=count,
        total_extra_db=total_extra_db,
        required_launch_dbm=(cfg.tech.laser_launch_power_dbm
                             + total_extra_db),
        laser_power_w=(count.laser_feeds * db_to_factor(total_extra_db)
                       / 1000.0),
        channels_needed=needed,
        channels_available=avail,
    )


def scaling_sweep(networks: List[str] = None,
                  max_dim: int = 32) -> List[ScalingResult]:
    """Analyze every network at every scale up to ``max_dim``."""
    keys = networks or list(EXTENDED_NETWORKS)
    dims = [d for d in SCALING_DIMS if d <= max_dim]
    if not dims:
        raise ValueError("max_dim %d admits no scale (smallest is %d)"
                         % (max_dim, SCALING_DIMS[0]))
    results = []
    for key in keys:
        points = tuple(analyze_network(key, d) for d in dims)
        results.append(ScalingResult(network=key, points=points))
    return results


def edge_fiber_note(dim: int) -> str:
    """One-line laser-plant provisioning note for a ``dim x dim`` grid
    (section 3's 2000-fiber macrochip edge, checked via
    :func:`repro.macrochip.provisioning.provision`)."""
    budget = provision(grid_config(dim))
    state = ("fits" if budget.fits_edge_fibers else "OVERSUBSCRIBED")
    return ("%dx%d: %d laser fibers of %d edge capacity (%s)"
            % (dim, dim, budget.edge_fibers_used,
               budget.edge_fiber_capacity, state))


def breakpoint_table_text(results: List[ScalingResult] = None,
                          max_dim: int = 32) -> str:
    """Render the Table-4-style breakpoint table.

    One row per network: the first infeasible grid size, which axes broke
    there, and the laser power / required launch / channel demand at that
    scale (or at ``max_dim`` when the network survives the whole sweep).
    """
    if results is None:
        results = scaling_sweep(max_dim=max_dim)
    header = ("%-24s %-10s %-22s %12s %14s %12s"
              % ("Network", "Breaks at", "Failing axes",
                 "Laser (W)", "Launch (dBm)", "Channels"))
    lines = [
        "Scaling breakpoints (per-site resources held at Table 4; "
        "launch ceiling %.0f dBm, laser budget %.0f W)"
        % (MAX_LAUNCH_DBM, LASER_BUDGET_W),
        header,
        "-" * len(header),
    ]
    for res in results:
        if res.breakpoint_dim is not None:
            at = next(p for p in res.points if p.dim == res.breakpoint_dim)
            breaks = "%dx%d" % (at.dim, at.dim)
            axes = ",".join(res.breakpoint_axes)
        else:
            at = res.points[-1]
            breaks = "none<=%dx%d" % (at.dim, at.dim)
            axes = "-"
        lines.append("%-24s %-10s %-22s %12.1f %14.2f %9d/%d"
                     % (res.network, breaks, axes, at.laser_power_w,
                        at.required_launch_dbm, at.channels_needed,
                        at.channels_available))
    lines.append("")
    lines.append("Per-scale detail (laser W / launch dBm / channel demand):")
    dims = [p.dim for p in results[0].points]
    for res in results:
        cells = []
        for p in res.points:
            mark = "" if p.feasible else " !" + "".join(
                a[0] for a in p.failed_axes)
            cells.append("%dx%d: %.1fW %.1fdBm %d/%d%s"
                         % (p.dim, p.dim, p.laser_power_w,
                            p.required_launch_dbm, p.channels_needed,
                            p.channels_available, mark))
        lines.append("  %-24s %s" % (res.network, " | ".join(cells)))
    lines.append("")
    lines.append("Laser-plant edge fibers: "
                 + "; ".join(edge_fiber_note(d) for d in dims))
    return "\n".join(lines)


def simulate_scale_point(network: str, dim: int, load_fraction: float = 0.05,
                         window_ns: float = 50.0, pattern: str = "uniform",
                         seed: int = 1234, backend: str = "python",
                         check_invariants: bool = True):
    """Run one short simulated load point at an arbitrary grid size.

    Used by the CLI's ``--simulate`` flag, the CI scaling smoke, and the
    scaling benchmark preset; returns the :class:`LoadPointResult`.
    Simulation is meant for dims <= 16 — a 32x32 point-to-point network
    materializes O(sites^2) channel state (~1M entries) and is analyzed
    analytically instead.

    Invariant checking is on by default (this is a smoke-test entry
    point).  It forces the scalar engine — the checkers consume a real
    event trace — so ``backend="vectorized"`` only takes effect with
    ``check_invariants=False``, which is how the PR 9 benchmark times
    the fast path at 16x16.  Results are bit-identical in all cases.
    """
    from ..core.sweep import run_load_point
    from ..workloads.synthetic import make_pattern

    cfg = grid_config(dim)
    pat = make_pattern(pattern, cfg.layout, seed=seed)
    return run_load_point(network, cfg, pat, load_fraction,
                          window_ns=window_ns, seed=seed,
                          check_invariants=check_invariants,
                          backend=backend)
