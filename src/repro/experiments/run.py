"""Experiment runner CLI: regenerate every table and figure.

Usage::

    python -m repro.experiments.run --artifact all --preset quick
    python -m repro.experiments.run --artifact figure6 --out results/
    python -m repro.experiments.run scaling --max-dim 32

Artifacts: ``tables`` (1, 4, 5, 6), ``figure6``, ``figures`` (7-10), or
``all``.  Output goes to stdout and, with ``--out DIR``, to one text file
per artifact.

The ``scaling`` command runs the scaling-limit study instead: every
network analyzed at 4x4 through ``--max-dim``, reporting the first grid
size where laser power, wavelength provisioning, or the PD-side loss
budget collapses (add ``--simulate`` to also run short simulated load
points at each feasible scale up to 16x16).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict

from .evaluation import run_suite
from .figure6 import figure6_text, run_figure6, run_figure6_adaptive
from .figures7_10 import all_figures_text
from .table_experiments import all_tables_text
from ..core.parallel import WorkerPool, resolve_workers


def _progress(message: str) -> None:
    print(".. %s" % message, file=sys.stderr)


def generate(artifact: str, preset: str,
              window_ns: float, workers: int = 1,
              adaptive: bool = False,
              rng_block: int = 256,
              warm: bool = True,
              on_error: str = "raise",
              max_retries: int = 2,
              timeout_s: float = None,
              networks=None,
              signaling: str = "nrz",
              backend: str = "python") -> Dict[str, str]:
    """Produce {artifact_name: text} for the requested artifact set.

    ``adaptive=True`` switches the Figure 6 artifact to the knee-seeking
    sweep driver (coarse probing + bisection + per-point early stops) —
    far fewer simulated events; the fixed grids stay the default.
    ``rng_block`` is the per-site RNG prefetch block size for Figure 6
    load points (0 = legacy one-draw-per-packet path; any value is
    bit-identical, so differential runs are reproducible from the CLI).
    ``warm=False`` (``--cold``) disables warm-start contexts for Figure 6
    load points; results are bit-identical either way.  One persistent
    worker pool serves every artifact of the invocation.

    ``on_error``/``max_retries``/``timeout_s`` are the per-shard fault
    policy threaded into every driver (``--on-error collect`` keeps a
    long run alive past a crashing or hung shard; failures are reported
    on stderr and the affected cells dropped from the artifacts).

    ``networks`` restricts the Figure 6 sweep to the named factory keys
    (``--network hermes`` runs just the extension network); ``signaling``
    selects the line coding of the technology point (``nrz``, the
    bit-identical default, or ``pam4``) for every artifact.

    ``backend`` selects the Figure 6 execution engine (``--backend``):
    ``python`` (default) is the exact scalar event loop, ``vectorized``
    the numpy-batched fast path of :mod:`repro.core.vectorized` —
    bit-identical curves, with automatic scalar fallback where a
    network has no kernel or numpy is missing.
    """
    config = None
    if signaling != "nrz":
        from ..macrochip.config import scaled_config

        base = scaled_config()
        config = base.with_overrides(
            tech=base.tech.with_overrides(signaling=signaling))
    outputs: Dict[str, str] = {}
    if artifact in ("tables", "all"):
        outputs["tables"] = all_tables_text(config)
    with WorkerPool(workers) as shared_pool:
        if artifact in ("figure6", "all"):
            figure6_driver = run_figure6_adaptive if adaptive else run_figure6
            result = figure6_driver(config=config, networks=networks,
                                    window_ns=window_ns, progress=_progress,
                                    workers=workers, rng_block=rng_block,
                                    warm=warm, pool=shared_pool,
                                    on_error=on_error,
                                    max_retries=max_retries,
                                    timeout_s=timeout_s,
                                    backend=backend)
            _progress("figure6 [%s]: %d load points, %d simulator events"
                      % (result.mode, result.load_points,
                         result.total_events))
            for err in result.failures:
                _progress("figure6 FAILED shard: %s" % err)
            outputs["figure6"] = figure6_text(result)
        if artifact in ("figures", "all"):
            suite = run_suite(preset, config=config, progress=_progress,
                              workers=workers,
                              on_error=on_error, max_retries=max_retries,
                              timeout_s=timeout_s)
            for err in suite.failures:
                _progress("figures7-10 FAILED shard: %s" % err)
            outputs["figures7_10"] = all_figures_text(suite)
    if not outputs:
        raise SystemExit("unknown artifact %r (tables|figure6|figures|all)"
                         % artifact)
    return outputs


def run_scaling(max_dim: int, simulate: bool = False,
                pattern: str = "uniform",
                networks=None) -> str:
    """Produce the scaling-limit breakpoint table (the ``scaling``
    command), optionally appending short simulated load points at every
    feasible scale that is cheap enough to simulate (<= 16x16; a 32x32
    point-to-point network materializes ~1M channel-table entries and is
    covered analytically only)."""
    from .scaling import (breakpoint_table_text, scaling_sweep,
                          simulate_scale_point)

    results = scaling_sweep(networks=networks, max_dim=max_dim)
    text = breakpoint_table_text(results, max_dim=max_dim)
    if simulate:
        lines = ["", "Simulated smoke points (pattern=%s, 50 ns window, "
                     "5%% load):" % pattern]
        for res in results:
            for point in res.points:
                if point.dim > 16 or not point.feasible:
                    continue
                r = simulate_scale_point(res.network, point.dim,
                                         pattern=pattern)
                lines.append(
                    "  %-24s %2dx%-2d  %7d delivered  mean %8.2f ns  "
                    "%8.1f GB/s" % (res.network, point.dim, point.dim,
                                    r.delivered_packets, r.mean_latency_ns,
                                    r.throughput_gb_per_s))
        text += "\n" + "\n".join(lines)
    return text


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("command", nargs="?", default=None,
                        choices=["scaling"],
                        help="optional subcommand: 'scaling' runs the "
                             "scaling-limit study (breakpoint table) "
                             "instead of the artifact pipeline")
    parser.add_argument("--max-dim", type=int, default=32,
                        help="largest grid dimension for the scaling "
                             "study (sweeps 4x4, 8x8, 16x16, 32x32 up "
                             "to this bound)")
    parser.add_argument("--simulate", action="store_true",
                        help="scaling study: also run short simulated "
                             "load points at each feasible scale "
                             "(<= 16x16)")
    parser.add_argument("--pattern", default="uniform",
                        help="traffic pattern for scaling --simulate "
                             "(uniform, transpose, butterfly, neighbor, "
                             "bursty, hotspot, adversarial)")
    parser.add_argument("--artifact", default="all",
                        choices=["tables", "figure6", "figures", "all"])
    parser.add_argument("--preset", default="quick",
                        choices=["smoke", "quick", "full"],
                        help="workload sizing for figures 7-10")
    parser.add_argument("--window-ns", type=float, default=None,
                        help="injection window for figure 6 load points")
    parser.add_argument("--out", default=None,
                        help="directory to write one .txt per artifact")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for independent "
                             "simulations (0 = one per CPU; results are "
                             "identical to --workers 1)")
    parser.add_argument("--adaptive", action="store_true",
                        help="knee-seeking adaptive Figure 6 sweep "
                             "(coarse grid + bisection, per-point early "
                             "stops) instead of the exact fixed grids")
    parser.add_argument("--rng-block", type=int, default=256,
                        help="per-site RNG prefetch block size for "
                             "Figure 6 load points (0 = legacy "
                             "one-draw-per-packet path; results are "
                             "bit-identical for any value)")
    parser.add_argument("--cold", action="store_true",
                        help="disable warm-start contexts (rebuild every "
                             "simulator/network per load point; results "
                             "are bit-identical to the warm default)")
    parser.add_argument("--on-error", default="raise",
                        choices=["raise", "collect", "retry"],
                        help="per-shard failure policy: raise on first "
                             "failure (default), collect structured "
                             "ShardError records and keep going, or "
                             "retry failed shards before collecting")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="extra executions per failing shard under "
                             "--on-error retry (retries are "
                             "bit-identical by the determinism contract)")
    parser.add_argument("--timeout-s", type=float, default=None,
                        help="per-shard wall-clock bound on pool runs: a "
                             "hung shard is killed, recorded as a "
                             "timeout ShardError, and the pool rebuilt")
    parser.add_argument("--network", action="append", default=None,
                        metavar="KEY", dest="networks",
                        help="restrict the Figure 6 sweep to this network "
                             "factory key (repeatable; e.g. --network "
                             "hermes); implies --artifact figure6 unless "
                             "an artifact is named")
    parser.add_argument("--backend", default="python",
                        choices=["python", "vectorized"],
                        help="Figure 6 execution engine: python (exact "
                             "scalar event loop, default) or vectorized "
                             "(numpy-batched fast path; bit-identical "
                             "results, falls back to python per load "
                             "point when numpy or a network kernel is "
                             "missing)")
    parser.add_argument("--signaling", default="nrz",
                        choices=["nrz", "pam4"],
                        help="line coding of the technology point: nrz "
                             "(the paper's baseline; bit-identical "
                             "default) or pam4 (2 bits/symbol: double "
                             "rate per wavelength, higher detection "
                             "energy, ~4.8 dB eye penalty)")
    args = parser.parse_args(argv)

    if args.command == "scaling":
        started = time.time()
        text = run_scaling(args.max_dim, simulate=args.simulate,
                           pattern=args.pattern, networks=args.networks)
        print(text)
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, "scaling.txt")
            with open(path, "w") as fh:
                fh.write(text + "\n")
            print(".. wrote %s" % path, file=sys.stderr)
        print(".. done in %.1fs" % (time.time() - started), file=sys.stderr)
        return 0

    window = args.window_ns
    if window is None:
        window = {"smoke": 200.0, "quick": 500.0, "full": 1200.0}[args.preset]

    artifact = args.artifact
    if args.networks and artifact == "all":
        artifact = "figure6"

    started = time.time()
    workers = resolve_workers(args.workers)
    if workers > 1:
        print(".. sharding across %d workers" % workers, file=sys.stderr)
    outputs = generate(artifact, args.preset, window, workers=workers,
                       adaptive=args.adaptive, rng_block=args.rng_block,
                       warm=not args.cold, on_error=args.on_error,
                       max_retries=args.max_retries,
                       timeout_s=args.timeout_s,
                       networks=args.networks, signaling=args.signaling,
                       backend=args.backend)
    for name, text in outputs.items():
        print()
        print("=" * 72)
        print(text)
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, "%s.txt" % name)
            with open(path, "w") as fh:
                fh.write(text + "\n")
            print(".. wrote %s" % path, file=sys.stderr)
    print(".. done in %.1fs" % (time.time() - started), file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
