"""The un-scaled 2015 macrochip platform (paper section 3).

The paper simulates a 1/8-scale system (Table 4) but *architects* the
full 2015 platform: 64 cores/site, 1024 transmitters/receivers per site,
2.56 TB/s per direction per site, 160 TB/s aggregate, 1024 laser
modules, 4 kW of compute.  This driver reproduces those numbers and the
scaling relationship between the two configurations, plus the full-scale
link budget check (16-wavelength WDM still closes the 21 dB budget).
"""

from __future__ import annotations

from ..analysis.tables import render_table
from ..macrochip.config import full_2015_config, scaled_config
from ..macrochip.provisioning import provision, section3_report
from ..photonics.loss import budget_for, unswitched_link


def scaling_comparison() -> str:
    """Scaled (Table 4) vs full 2015 platform, side by side."""
    scaled = scaled_config()
    full = full_2015_config()
    rows = [
        ("Cores per site", scaled.cores_per_site, full.cores_per_site),
        ("Tx/Rx per site", scaled.transmitters_per_site,
         full.transmitters_per_site),
        ("Wavelengths per waveguide", scaled.wavelengths_per_waveguide,
         full.wavelengths_per_waveguide),
        ("Per-site bandwidth (GB/s)",
         "%.0f" % scaled.site_bandwidth_gb_per_s,
         "%.0f" % full.site_bandwidth_gb_per_s),
        ("Aggregate bandwidth (TB/s)",
         "%.1f" % scaled.total_bandwidth_tb_per_s,
         "%.1f" % full.total_bandwidth_tb_per_s),
        ("Laser modules", provision(scaled).laser_modules,
         provision(full).laser_modules),
    ]
    return render_table(
        ["Parameter", "Simulated (Table 4)", "2015 target (section 3)"],
        rows, title="Scaled vs full macrochip configurations")


def full_scale_report() -> str:
    """Everything section 3 claims about the 2015 platform."""
    blocks = [section3_report(), "", scaling_comparison(), ""]
    budget = budget_for(unswitched_link(full_2015_config().tech))
    blocks.append(
        "Full-scale link budget: %.1f dB loss, %.1f dB margin (%s)"
        % (budget.loss_db, budget.margin_db,
           "closes" if budget.closes else "DOES NOT CLOSE"))
    return "\n".join(blocks)


if __name__ == "__main__":  # pragma: no cover
    print(full_scale_report())
