"""Regeneration of the paper's Tables 1, 4, 5, and 6."""

from __future__ import annotations

from ..analysis.power import table5_rows
from ..analysis.tables import format_count, render_table
from ..macrochip.config import MacrochipConfig, scaled_config, table4_rows
from ..networks.complexity import table6_rows
from ..photonics.technology import DEFAULT_TECHNOLOGY, table1_rows


def table1_text() -> str:
    """Table 1: optical component properties."""
    rows = table1_rows(DEFAULT_TECHNOLOGY)
    return render_table(["Component", "Energy", "Signal Loss"], rows,
                        title="Table 1: Optical Component Properties")


def table4_text(config: MacrochipConfig = None) -> str:
    """Table 4: simulated macrochip configuration."""
    rows = table4_rows(config or scaled_config())
    return render_table(["Parameter", "Value"], rows,
                        title="Table 4: Simulated Macrochip Configuration")


def table5_text(config: MacrochipConfig = None) -> str:
    """Table 5: per-network power loss factor and laser power, derived
    from the topology component counts and worst-case loss paths."""
    rows = []
    for r in table5_rows(config):
        rows.append((r.network, "%.1fx" % r.loss_factor,
                     "%.1f" % r.laser_power_w))
    return render_table(
        ["Network Type", "Power Loss Factor", "Laser Power (W)"], rows,
        title="Table 5: Network Optical Power")


def table6_text(config: MacrochipConfig = None) -> str:
    """Table 6: total optical component counts per network."""
    rows = []
    for c in table6_rows(config):
        rows.append((c.network, format_count(c.transmitters),
                     format_count(c.receivers), format_count(c.waveguides),
                     format_count(c.switches) if c.switches else "0"))
    return render_table(["Network Type", "Tx", "Rx", "Wgs", "Switches"],
                        rows,
                        title="Table 6: Total Optical Component Counts")


def signaling_comparison_text(config: MacrochipConfig = None) -> str:
    """Extension table: the NRZ baseline against PAM4 multilevel
    signaling at the same symbol rate — per-wavelength data rate, site
    bandwidth, transceiver energy, eye penalty, and the total Table 5
    laser power under each format."""
    cfg = config or scaled_config()
    rows = []
    for fmt in ("nrz", "pam4"):
        tech = cfg.tech.with_overrides(signaling=fmt)
        c = cfg.with_overrides(tech=tech)
        energy_fj = (tech.modulation_energy_fj_per_bit
                     + tech.detection_energy_fj_per_bit
                     + tech.laser_energy_fj_per_bit)
        laser_w = sum(r.laser_power_w for r in table5_rows(c))
        rows.append((fmt.upper(),
                     "%.0f Gb/s" % tech.effective_bit_rate_gbps,
                     "%.0f GB/s" % c.site_bandwidth_gb_per_s,
                     "%.0f fJ/bit" % energy_fj,
                     "%.1f dB" % tech.signaling_penalty_db,
                     "%.1f W" % laser_w))
    return render_table(
        ["Signaling", "Rate/wavelength", "Site BW", "Link Energy",
         "Eye Penalty", "Total Laser Power"], rows,
        title="Multilevel Signaling: NRZ vs PAM4 (20 Gbaud)")


def all_tables_text(config: MacrochipConfig = None) -> str:
    return "\n\n".join([
        table1_text(),
        table4_text(config),
        table5_text(config),
        table6_text(config),
        signaling_comparison_text(config),
    ])


if __name__ == "__main__":  # pragma: no cover
    print(all_tables_text())
