"""Extension experiments beyond the paper's evaluation.

The paper's conclusion names two future-work directions; both are
implemented here, along with ablations of the calibration constants our
adaptation introduces (see DESIGN.md section 5):

* :func:`message_passing_comparison` — the five networks under
  MPI-style workloads (ring shift, halo exchange, all-to-all,
  allreduce);
* :func:`memory_technology_sweep` — sensitivity of the closed-loop
  results to local memory latency (stacked DRAM vs conventional);
* :func:`two_phase_reconfig_ablation` — sustained bandwidth vs the
  broadband-switch retuning time that gates the two-phase network;
* :func:`conversion_overhead_ablation` — limited-P2P forwarding cost vs
  the O-E/E-O conversion latency;
* :func:`circuit_engine_ablation` — circuit-switched saturation vs the
  number of per-site circuit engines.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .evaluation import run_suite
from ..analysis.tables import render_table
from ..core.sweep import run_load_point
from ..cpu.system import generate_trace
from ..macrochip.config import MacrochipConfig, scaled_config
from ..networks.factory import FIGURE6_NETWORKS, NETWORK_CLASSES
from ..workloads.kernels import RadixKernel
from ..workloads.message_passing import (
    MESSAGE_PASSING_WORKLOADS,
    run_message_passing,
)
from ..workloads.replay import replay
from ..workloads.synthetic import UniformTraffic


def message_passing_comparison(config: MacrochipConfig = None,
                               networks: List[str] = None,
                               progress=None) -> str:
    """Run every message-passing workload on every network; returns the
    rendered comparison table (runtime + effective bandwidth)."""
    cfg = config or scaled_config()
    nets = networks or list(FIGURE6_NETWORKS)
    rows = []
    for workload in sorted(MESSAGE_PASSING_WORKLOADS):
        for net in nets:
            if progress:
                progress("mp %s on %s" % (workload, net))
            r = run_message_passing(workload, net, cfg)
            rows.append((workload, NETWORK_CLASSES[net].name,
                         "%.1f us" % (r.runtime_ns / 1000.0),
                         "%.0f GB/s" % r.effective_bandwidth_gb_per_s))
    return render_table(
        ["Workload", "Network", "Runtime", "Delivered BW"], rows,
        title="Extension: message-passing workloads (paper future work)")


def memory_technology_sweep(config: MacrochipConfig = None,
                            memory_cycles: List[int] = None,
                            progress=None) -> str:
    """Closed-loop radix runtime per network as local memory latency
    varies (the paper's second future-work axis)."""
    cfg = config or scaled_config()
    cycles_grid = memory_cycles or [25, 50, 150]
    kernel = RadixKernel(refs_per_core=400)
    rows = []
    nets = ["point_to_point", "token_ring", "circuit_switched"]
    for cycles in cycles_grid:
        tuned = cfg.with_overrides(memory_latency_cycles=cycles)
        trace = generate_trace(kernel, tuned)
        for net in nets:
            if progress:
                progress("memory %d cycles on %s" % (cycles, net))
            r = replay(trace, net, tuned)
            rows.append(("%d cycles (%.0f ns)" % (cycles, cycles * 0.2),
                         NETWORK_CLASSES[net].name,
                         "%.1f us" % (r.runtime_ns / 1000.0),
                         "%.1f ns" % r.mean_op_latency_ns))
    return render_table(
        ["Memory latency", "Network", "Radix runtime", "Latency/op"], rows,
        title="Extension: memory-technology sensitivity (radix kernel)")


def _knee(network: str, cfg: MacrochipConfig, fractions: List[float],
          window_ns: float, **network_kwargs) -> float:
    best = 0.0
    peak = cfg.num_sites * cfg.site_bandwidth_gb_per_s
    for f in fractions:
        r = run_load_point(network, cfg, UniformTraffic(cfg.layout), f,
                           window_ns=window_ns,
                           network_kwargs=network_kwargs or None)
        if not r.saturated:
            best = max(best, r.throughput_gb_per_s / peak)
    return best


def two_phase_reconfig_ablation(config: MacrochipConfig = None,
                                reconfig_ns: List[float] = None,
                                window_ns: float = 400.0) -> List[Tuple[float, float]]:
    """(retuning ns, sustained fraction) for the two-phase network —
    the calibration constant behind its 7.5%-of-peak saturation."""
    cfg = config or scaled_config()
    grid = reconfig_ns or [0.5, 5.0, 15.0, 30.0, 60.0]
    out = []
    for ns_ in grid:
        knee = _knee("two_phase", cfg, [0.04, 0.08, 0.15, 0.3], window_ns,
                     tree_reconfig_ps=int(ns_ * 1000))
        out.append((ns_, knee))
    return out


def conversion_overhead_ablation(config: MacrochipConfig = None,
                                 overhead_cycles: List[int] = None,
                                 window_ns: float = 400.0
                                 ) -> List[Tuple[int, float]]:
    """(conversion cycles, mean uniform latency ns) for the limited
    point-to-point network's forwarding hop."""
    cfg = config or scaled_config()
    grid = overhead_cycles or [0, 30, 60, 120]
    out = []
    for cycles in grid:
        r = run_load_point("limited_point_to_point", cfg,
                           UniformTraffic(cfg.layout), 0.10,
                           window_ns=window_ns,
                           network_kwargs={
                               "conversion_overhead_cycles": cycles})
        out.append((cycles, r.mean_latency_ns))
    return out


def circuit_engine_ablation(config: MacrochipConfig = None,
                            engines: List[int] = None,
                            window_ns: float = 400.0
                            ) -> List[Tuple[int, float]]:
    """(engines per site, sustained fraction) for the circuit-switched
    torus — the 'additional routers for non-blocking operation'."""
    cfg = config or scaled_config()
    grid = engines or [1, 2, 5, 10]
    out = []
    for count in grid:
        knee = _knee("circuit_switched", cfg,
                     [0.01, 0.02, 0.03, 0.05], window_ns,
                     engines_per_site=count)
        out.append((count, knee))
    return out


def ablation_report(config: MacrochipConfig = None,
                    window_ns: float = 400.0) -> str:
    """All three ablations as one rendered report."""
    cfg = config or scaled_config()
    blocks = []
    blocks.append(render_table(
        ["Switch retune (ns)", "Sustained (uniform)"],
        [("%.1f" % ns_, "%.1f%%" % (k * 100))
         for ns_, k in two_phase_reconfig_ablation(cfg, window_ns=window_ns)],
        title="Ablation: two-phase switch-tree retuning time"))
    blocks.append(render_table(
        ["O-E/E-O cycles", "Uniform latency @10% (ns)"],
        [(c, "%.1f" % lat)
         for c, lat in conversion_overhead_ablation(cfg, window_ns=window_ns)],
        title="Ablation: limited-P2P conversion overhead"))
    blocks.append(render_table(
        ["Engines/site", "Sustained (uniform)"],
        [(e, "%.2f%%" % (k * 100))
         for e, k in circuit_engine_ablation(cfg, window_ns=window_ns)],
        title="Ablation: circuit-switched engines per site"))
    return "\n\n".join(blocks)


if __name__ == "__main__":  # pragma: no cover
    import sys

    progress = lambda m: print("..", m, file=sys.stderr)  # noqa: E731
    print(message_passing_comparison(progress=progress))
    print()
    print(memory_technology_sweep(progress=progress))
    print()
    print(ablation_report())
