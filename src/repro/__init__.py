"""repro: reproduction of "Silicon-Photonic Network Architectures for
Scalable, Power-Efficient Multi-Chip Systems" (Koka et al., ISCA 2010).

A discrete-event simulator of the 64-site, 512-core "macrochip" and its
five candidate silicon-photonic inter-site networks, plus the photonic
technology models, MOESI cache-coherence substrate, workloads, and the
analysis code that regenerates every table and figure of the paper's
evaluation.

Quickstart::

    from repro import Simulator, scaled_config, build_network
    from repro.workloads.synthetic import UniformTraffic
    from repro.core.sweep import run_load_point

    cfg = scaled_config()
    result = run_load_point("point_to_point", cfg, UniformTraffic(seed=1),
                            offered_fraction=0.10, packets=20_000)
    print(result.mean_latency_ns, result.throughput_gb_per_s)
"""

from .core.engine import Simulator
from .macrochip.config import MacrochipConfig, full_2015_config, scaled_config
from .networks.factory import available_networks, build_network

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "MacrochipConfig",
    "scaled_config",
    "full_2015_config",
    "build_network",
    "available_networks",
    "__version__",
]
