"""CPU substrate: caches, MOESI directory, trace-driven multiprocessor
simulator emitting coherence traffic."""

from .cache import AccessResult, SetAssociativeCache
from .coherence import CoherenceOp, LineState, MessageStep, OpKind, message_plan
from .directory import Directory, DirectoryEntry, DirectoryOutcome
from .system import CpuSimulator, generate_trace
from .trace import CoherenceTrace, MemoryRef

__all__ = [
    "SetAssociativeCache",
    "AccessResult",
    "Directory",
    "DirectoryEntry",
    "DirectoryOutcome",
    "LineState",
    "OpKind",
    "CoherenceOp",
    "MessageStep",
    "message_plan",
    "CpuSimulator",
    "generate_trace",
    "CoherenceTrace",
    "MemoryRef",
]
