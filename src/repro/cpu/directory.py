"""Full-map coherence directory.

One directory entry per cache line, distributed across the macrochip by
line-interleaving (the *home* site).  Entries track the MOESI state at
site granularity with an owner id and a sharer set, which is exactly the
"detailed coherence information" the paper's CPU simulator attaches to
its L2 miss traffic (section 5).

The directory is *functional*: `read`/`write` mutate protocol state and
report which remote sites must be contacted; the timing cost is applied
by the network replay using the message plans of
:mod:`repro.cpu.coherence`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from .coherence import LineState


@dataclass
class DirectoryEntry:
    """State of one line: who owns it, who shares it."""

    state: LineState = LineState.INVALID
    owner: Optional[int] = None
    sharers: Set[int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.sharers is None:
            self.sharers = set()


@dataclass(frozen=True)
class DirectoryOutcome:
    """What a directory access decided.

    ``owner`` — remote site that must supply data (None: memory supplies);
    ``invalidated`` — remote sites whose copies were invalidated.
    """

    owner: Optional[int]
    invalidated: Tuple[int, ...]
    was_hit: bool  # the line was known to the directory


class Directory:
    """Site-interleaved full-map MOESI directory."""

    def __init__(self, num_sites: int, line_bytes: int = 64) -> None:
        if num_sites < 1:
            raise ValueError("need at least one site")
        self.num_sites = num_sites
        self.line_bytes = line_bytes
        self._line_shift = line_bytes.bit_length() - 1
        self._entries: Dict[int, DirectoryEntry] = {}

    #: home interleaving granularity, in lines (64 lines = one 4 KB page).
    #: Page-granularity interleaving keeps the home-site bits out of the
    #: cache set index, so same-home data does not collide into a handful
    #: of sets.
    PAGE_LINES = 64

    def home_site(self, addr: int) -> int:
        """Page-interleaved home mapping."""
        return (addr >> self._line_shift) // self.PAGE_LINES % self.num_sites

    def entry(self, line: int) -> DirectoryEntry:
        e = self._entries.get(line)
        if e is None:
            e = DirectoryEntry()
            self._entries[line] = e
        return e

    def peek(self, line: int) -> Optional[DirectoryEntry]:
        """Entry without creating one (for tests/inspection)."""
        return self._entries.get(line)

    # -- protocol transitions ------------------------------------------------

    def read(self, line: int, requester: int) -> DirectoryOutcome:
        """A site requests read access (GetS)."""
        e = self.entry(line)
        was_hit = e.state is not LineState.INVALID
        supplier: Optional[int] = None
        if e.state in (LineState.MODIFIED, LineState.EXCLUSIVE):
            assert e.owner is not None
            if e.owner != requester:
                supplier = e.owner
                # owner downgrades: M -> O (keeps dirty data), E -> S
                e.state = (LineState.OWNED if e.state is LineState.MODIFIED
                           else LineState.SHARED)
                e.sharers.add(e.owner)
                if e.state is LineState.SHARED:
                    e.owner = None
        elif e.state is LineState.OWNED:
            assert e.owner is not None
            if e.owner != requester:
                supplier = e.owner
        if e.state is LineState.INVALID:
            # memory supplies; first reader gets Exclusive
            e.state = LineState.EXCLUSIVE
            e.owner = requester
        else:
            e.sharers.add(requester)
            if e.state is LineState.EXCLUSIVE and e.owner == requester:
                pass  # silent re-read by the owner
            elif e.state not in (LineState.MODIFIED, LineState.OWNED):
                e.state = LineState.SHARED
                if e.owner == requester:
                    e.owner = None
        return DirectoryOutcome(owner=supplier, invalidated=(), was_hit=was_hit)

    def write(self, line: int, requester: int) -> DirectoryOutcome:
        """A site requests write (exclusive) access (GetM/Upgrade)."""
        e = self.entry(line)
        was_hit = e.state is not LineState.INVALID
        supplier: Optional[int] = None
        if (e.state in (LineState.MODIFIED, LineState.EXCLUSIVE,
                        LineState.OWNED)
                and e.owner is not None and e.owner != requester):
            supplier = e.owner
        invalidated = tuple(sorted(
            s for s in e.sharers if s != requester
        ))
        if supplier is not None and supplier not in invalidated:
            # the old owner's copy dies too, but it supplies data rather
            # than acking, so it is not in the invalidation fan-out
            pass
        e.state = LineState.MODIFIED
        e.owner = requester
        e.sharers = {requester}
        return DirectoryOutcome(owner=supplier, invalidated=invalidated,
                                was_hit=was_hit)

    def evict(self, line: int, site: int) -> None:
        """A site silently drops (or writes back) its copy."""
        e = self._entries.get(line)
        if e is None:
            return
        e.sharers.discard(site)
        if e.owner == site:
            e.owner = None
            if e.sharers:
                e.state = LineState.SHARED
            else:
                e.state = LineState.INVALID
        elif not e.sharers and e.owner is None:
            e.state = LineState.INVALID

    # -- invariants (used by property tests) ---------------------------------

    def check_invariants(self, line: int) -> None:
        """Raises AssertionError if the entry violates MOESI invariants."""
        e = self._entries.get(line)
        if e is None:
            return
        if e.state is LineState.INVALID:
            assert e.owner is None, "invalid line with an owner"
        if e.state in (LineState.MODIFIED, LineState.EXCLUSIVE):
            assert e.owner is not None, "%s line without owner" % e.state
            assert e.sharers <= {e.owner}, (
                "%s line with foreign sharers %s" % (e.state, e.sharers))
        if e.state is LineState.OWNED:
            assert e.owner is not None, "owned line without owner"
        if e.state is LineState.SHARED:
            assert e.owner is None, "shared line with an owner"
