"""Coherence-trace serialization.

CPU simulation is the expensive stage of the pipeline (it runs the full
address streams through the caches and directory), while replays are
cheap and repeated — once per network, plus ablations.  Saving traces to
disk lets a campaign CPU-simulate each workload exactly once and share
the trace across processes and sessions, the same split the paper's
two-simulator methodology implies.

The format is a compact JSON document (one array per core, each op a
fixed-shape list) — portable, diffable, and dependency-free.
"""

from __future__ import annotations

import json
from typing import IO, List, Union

from .coherence import CoherenceOp, OpKind
from .trace import CoherenceTrace

_FORMAT_VERSION = 1

_KIND_CODES = {kind: kind.value for kind in OpKind}
_CODE_KINDS = {kind.value: kind for kind in OpKind}


def _op_to_row(op: CoherenceOp) -> list:
    return [op.gap_cycles, _KIND_CODES[op.kind], op.requester, op.home,
            -1 if op.owner is None else op.owner, list(op.sharers), op.line]


def _row_to_op(core: int, row: list) -> CoherenceOp:
    gap, kind_code, requester, home, owner, sharers, line = row
    return CoherenceOp(
        core=core, gap_cycles=gap, kind=_CODE_KINDS[kind_code],
        requester=requester, home=home,
        owner=None if owner == -1 else owner,
        sharers=tuple(sharers), line=line)


def dump_trace(trace: CoherenceTrace, fp: Union[str, IO[str]]) -> None:
    """Write a trace to a path or open text file."""
    doc = {
        "version": _FORMAT_VERSION,
        "workload": trace.workload,
        "num_cores": trace.num_cores,
        "total_references": trace.total_references,
        "total_instructions": trace.total_instructions,
        "l2_misses": trace.l2_misses,
        "ops": [[_op_to_row(op) for op in ops]
                for ops in trace.ops_by_core],
    }
    if isinstance(fp, str):
        with open(fp, "w") as fh:
            json.dump(doc, fh)
    else:
        json.dump(doc, fp)


def load_trace(fp: Union[str, IO[str]]) -> CoherenceTrace:
    """Read a trace written by :func:`dump_trace`."""
    if isinstance(fp, str):
        with open(fp) as fh:
            doc = json.load(fh)
    else:
        doc = json.load(fp)
    version = doc.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError("unsupported trace format version %r" % version)
    trace = CoherenceTrace(doc["workload"], doc["num_cores"])
    if len(doc["ops"]) != doc["num_cores"]:
        raise ValueError("trace is corrupt: %d op lists for %d cores"
                         % (len(doc["ops"]), doc["num_cores"]))
    trace.total_references = doc["total_references"]
    trace.total_instructions = doc["total_instructions"]
    trace.l2_misses = doc["l2_misses"]
    trace.ops_by_core = [
        [_row_to_op(core, row) for row in rows]
        for core, rows in enumerate(doc["ops"])
    ]
    return trace
