"""MOESI coherence protocol definitions.

The macrochip runs a directory-based MOESI protocol at site granularity
(the site's shared L2 is the coherence unit; Table 4).  This module
defines the stable states, the coherence operation records the CPU
simulator emits, and the *message plan* — the set of network messages a
coherence operation requires — that the closed-loop replay executes
against each network (section 5: "The network model simulates all
necessary network messages required by the coherence protocol to satisfy
a coherence request").

Message sizes follow the configuration: control messages are 8 B,
data messages are a 64 B line plus an 8 B header.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class LineState(enum.Enum):
    """Stable MOESI states of a line in a site's L2."""

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


#: states that hold the only up-to-date copy (must supply data on a fetch)
OWNER_STATES = (LineState.MODIFIED, LineState.OWNED, LineState.EXCLUSIVE)
#: states granting write permission without a directory round-trip
WRITABLE_STATES = (LineState.MODIFIED, LineState.EXCLUSIVE)


class OpKind(enum.Enum):
    """Coherence request classes the CPU simulator emits."""

    GET_S = "GetS"  # read miss
    GET_M = "GetM"  # write miss
    UPGRADE = "Upg"  # write hit on a Shared line (needs invalidations)
    WRITEBACK = "WB"  # dirty eviction (fire-and-forget)


@dataclass(frozen=True)
class CoherenceOp:
    """One coherence operation as seen by the network replay.

    ``gap_cycles`` is the core's compute time since its previous
    operation; ``owner`` is the remote site holding the only valid copy
    (None when memory at the home supplies data); ``sharers`` are the
    remote sites whose copies a GetM/Upgrade invalidates.
    """

    core: int
    gap_cycles: int
    kind: OpKind
    requester: int  # site
    home: int  # site owning the directory/memory for the line
    owner: Optional[int] = None
    sharers: Tuple[int, ...] = ()
    line: int = 0

    def __post_init__(self) -> None:
        if self.kind is OpKind.GET_S and self.sharers:
            raise ValueError("GetS does not invalidate sharers")
        if self.owner is not None and self.owner == self.requester:
            raise ValueError("requester cannot be its own remote owner")


@dataclass(frozen=True)
class MessageStep:
    """One network message within an operation's plan.

    ``depends_on`` indexes an earlier step in the same plan that must be
    delivered first; ``extra_delay_cycles`` models fixed processing at the
    step's source (directory lookup, memory access) before the message is
    injected.
    """

    src: int
    dst: int
    size_bytes: int
    kind: str
    depends_on: Optional[int] = None
    extra_delay_cycles: int = 0
    completes: bool = False  # op finishes when all completing steps land


def message_plan(op: CoherenceOp, control_bytes: int, data_bytes: int,
                 directory_cycles: int, memory_cycles: int) -> List[MessageStep]:
    """Expand a coherence operation into its network message DAG.

    GetS with a remote owner is a 3-hop transaction (request, forward,
    cache-to-cache data); without one, the home's memory supplies data.
    GetM additionally broadcasts invalidations from the home, with
    acknowledgments collected at the requester.  Writebacks are a single
    uncompleted (fire-and-forget) data message.
    """
    steps: List[MessageStep] = []
    if op.kind is OpKind.WRITEBACK:
        steps.append(MessageStep(op.requester, op.home, data_bytes, "wb",
                                 completes=True))
        return steps

    # step 0: request to the home site's directory
    steps.append(MessageStep(op.requester, op.home, control_bytes, "req"))
    request = 0

    if op.kind is OpKind.GET_S:
        if op.owner is not None:
            steps.append(MessageStep(op.home, op.owner, control_bytes, "fwd",
                                     depends_on=request,
                                     extra_delay_cycles=directory_cycles))
            steps.append(MessageStep(op.owner, op.requester, data_bytes,
                                     "data", depends_on=len(steps) - 1,
                                     completes=True))
        else:
            steps.append(MessageStep(op.home, op.requester, data_bytes,
                                     "data", depends_on=request,
                                     extra_delay_cycles=(directory_cycles
                                                         + memory_cycles),
                                     completes=True))
        return steps

    # GetM / Upgrade: invalidations fan out from the home after the
    # directory lookup; each sharer acks straight to the requester.
    for sharer in op.sharers:
        inv = MessageStep(op.home, sharer, control_bytes, "inv",
                          depends_on=request,
                          extra_delay_cycles=directory_cycles)
        steps.append(inv)
        steps.append(MessageStep(sharer, op.requester, control_bytes, "ack",
                                 depends_on=len(steps) - 1, completes=True))

    if op.kind is OpKind.GET_M:
        if op.owner is not None:
            steps.append(MessageStep(op.home, op.owner, control_bytes, "fwd",
                                     depends_on=request,
                                     extra_delay_cycles=directory_cycles))
            steps.append(MessageStep(op.owner, op.requester, data_bytes,
                                     "data", depends_on=len(steps) - 1,
                                     completes=True))
        else:
            steps.append(MessageStep(op.home, op.requester, data_bytes,
                                     "data", depends_on=request,
                                     extra_delay_cycles=(directory_cycles
                                                         + memory_cycles),
                                     completes=True))
    else:
        # upgrade: permission only, granted by the home after the lookup
        steps.append(MessageStep(op.home, op.requester, control_bytes,
                                 "perm", depends_on=request,
                                 extra_delay_cycles=directory_cycles,
                                 completes=True))
    return steps
