"""Set-associative cache model.

Each macrochip site has one shared L2 (Table 4: 256 KB, shared by the
site's 8 cores).  The model is functional — it tracks presence, dirtiness,
and LRU order so the CPU simulator can decide hit/miss and generate
evictions — while timing is applied by the caller.

Addresses are plain integers; the line index/tag split follows the usual
``addr -> [tag | set | offset]`` decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    writeback_line: Optional[int] = None  # line address of a dirty victim
    evicted_line: Optional[int] = None  # line address of any victim


class SetAssociativeCache:
    """A classic set-associative, write-back, write-allocate cache."""

    def __init__(self, size_bytes: int, line_bytes: int = 64,
                 ways: int = 8) -> None:
        if not _is_power_of_two(line_bytes):
            raise ValueError("line size must be a power of two")
        if size_bytes % (line_bytes * ways):
            raise ValueError("cache size must be divisible by line*ways")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        if not _is_power_of_two(self.num_sets):
            raise ValueError("set count must be a power of two")
        self._set_mask = self.num_sets - 1
        self._set_bits = self.num_sets.bit_length() - 1
        self._line_shift = line_bytes.bit_length() - 1
        # per set: list of [line_addr, dirty] in LRU order (MRU last)
        self._sets: List[List[List[int]]] = [[] for _ in range(self.num_sets)]

    # -- address helpers ----------------------------------------------------

    def line_address(self, addr: int) -> int:
        """The line-aligned address containing ``addr``."""
        return addr >> self._line_shift << self._line_shift

    def set_index(self, addr: int) -> int:
        """Hashed set index (Fibonacci multiplicative hashing).

        Hashed indexing decorrelates set placement from regular address
        strides — in particular the home-site page interleave, whose
        stride is a multiple of the set count and would otherwise alias
        all same-home data into one page's worth of sets.
        """
        line = addr >> self._line_shift
        h = (line * 0x9E3779B1) & 0xFFFFFFFF
        return h >> (32 - self._set_bits)

    # -- operations ----------------------------------------------------------

    def contains(self, addr: int) -> bool:
        line = self.line_address(addr)
        return any(e[0] == line for e in self._sets[self.set_index(addr)])

    def access(self, addr: int, is_write: bool) -> AccessResult:
        """Look up (and on miss, allocate) the line holding ``addr``.

        Returns hit/miss plus the victim line if an allocation evicted one
        (and whether that victim was dirty, i.e. needs a writeback).
        """
        line = self.line_address(addr)
        entries = self._sets[self.set_index(addr)]
        for i, entry in enumerate(entries):
            if entry[0] == line:
                entries.append(entries.pop(i))  # move to MRU
                if is_write:
                    entry[1] = 1
                return AccessResult(hit=True)
        # miss: allocate, evicting LRU if the set is full
        writeback = None
        evicted = None
        if len(entries) >= self.ways:
            victim = entries.pop(0)
            evicted = victim[0]
            if victim[1]:
                writeback = victim[0]
        entries.append([line, 1 if is_write else 0])
        return AccessResult(hit=False, writeback_line=writeback,
                            evicted_line=evicted)

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding ``addr`` (remote invalidation).  Returns
        True if the line was present."""
        line = self.line_address(addr)
        entries = self._sets[self.set_index(addr)]
        for i, entry in enumerate(entries):
            if entry[0] == line:
                del entries[i]
                return True
        return False

    def mark_clean(self, addr: int) -> None:
        """Clear the dirty bit (after an ownership downgrade)."""
        line = self.line_address(addr)
        for entry in self._sets[self.set_index(addr)]:
            if entry[0] == line:
                entry[1] = 0
                return

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def lines(self) -> List[int]:
        """All resident line addresses (for tests)."""
        return [e[0] for s in self._sets for e in s]
