"""The macrochip CPU simulator.

Runs a workload kernel's per-core memory reference streams through each
site's shared L2 and the site-interleaved MOESI directory, interleaving
cores by virtual time, and emits the coherence trace that drives the
network simulator (paper section 5).

Timing here is deliberately coarse — instructions cost one cycle (the
Niagara-like in-order cores of section 3), L2 hits a few cycles, and
misses a nominal penalty that only affects stream interleaving.  Real
miss timing is applied later by the closed-loop network replay.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Protocol, Sequence

from .cache import SetAssociativeCache
from .coherence import CoherenceOp, LineState, OpKind
from .directory import Directory
from .trace import CoherenceTrace, CoreStream, MemoryRef
from ..macrochip.config import MacrochipConfig


class WorkloadKernel(Protocol):
    """What a workload must provide to the CPU simulator."""

    name: str

    def core_streams(self, config: MacrochipConfig) -> Sequence[CoreStream]:
        """One memory-reference iterator per core."""


#: nominal L2 miss penalty used only to interleave core streams
_NOMINAL_MISS_CYCLES = 100


class CpuSimulator:
    """Trace-driven multiprocessor core/cache simulator with MOESI."""

    def __init__(self, config: MacrochipConfig) -> None:
        self.config = config
        self.directory = Directory(config.num_sites,
                                   config.cache_line_bytes)
        self.caches = [
            SetAssociativeCache(config.l2_cache_kb * 1024,
                                config.cache_line_bytes)
            for _ in range(config.num_sites)
        ]

    def site_of_core(self, core: int) -> int:
        return core // self.config.cores_per_site

    def run(self, kernel: WorkloadKernel) -> CoherenceTrace:
        """Execute the kernel and return its coherence trace."""
        cfg = self.config
        streams = list(kernel.core_streams(cfg))
        if len(streams) != cfg.num_cores:
            raise ValueError(
                "kernel produced %d streams for %d cores"
                % (len(streams), cfg.num_cores))
        trace = CoherenceTrace(kernel.name, cfg.num_cores)
        # (virtual_time, core) heap interleaves the streams; virtual time
        # advances by instruction count plus nominal memory latencies.
        heap = []
        vtime = [0] * cfg.num_cores
        last_op_vtime = [0] * cfg.num_cores
        for core, stream in enumerate(streams):
            ref = next(stream, None)
            if ref is not None:
                heapq.heappush(heap, (ref.gap_instructions, core, ref))
        while heap:
            t, core, ref = heapq.heappop(heap)
            vtime[core] = t
            self._process(core, ref, trace, vtime, last_op_vtime)
            nxt = next(streams[core], None)
            if nxt is not None:
                heapq.heappush(
                    heap, (vtime[core] + nxt.gap_instructions, core, nxt))
        return trace

    # -- one reference ------------------------------------------------------

    def _process(self, core: int, ref: MemoryRef, trace: CoherenceTrace,
                 vtime: List[int], last_op_vtime: List[int]) -> None:
        cfg = self.config
        site = self.site_of_core(core)
        cache = self.caches[site]
        line = cache.line_address(ref.addr)
        trace.total_references += 1
        trace.total_instructions += 1 + ref.gap_instructions

        present = cache.contains(ref.addr)
        if present and not ref.write:
            cache.access(ref.addr, is_write=False)
            vtime[core] += cfg.l2_hit_latency_cycles
            return
        if present and ref.write:
            entry = self.directory.entry(line)
            if entry.owner == site and entry.state in (
                    LineState.MODIFIED, LineState.EXCLUSIVE):
                # silent E->M upgrade, no network traffic
                entry.state = LineState.MODIFIED
                cache.access(ref.addr, is_write=True)
                vtime[core] += cfg.l2_hit_latency_cycles
                return
            # write to a Shared/Owned line: upgrade with invalidations
            outcome = self.directory.write(line, site)
            cache.access(ref.addr, is_write=True)
            self._emit(trace, core, site, line, OpKind.UPGRADE,
                       owner=None, sharers=outcome.invalidated,
                       vtime=vtime, last_op_vtime=last_op_vtime)
            return

        # L2 miss
        trace.l2_misses += 1
        result = cache.access(ref.addr, is_write=ref.write)
        assert not result.hit
        if result.evicted_line is not None:
            self._evict(trace, core, site, result.evicted_line,
                        dirty=result.writeback_line is not None,
                        vtime=vtime, last_op_vtime=last_op_vtime)
        if ref.write:
            outcome = self.directory.write(line, site)
            kind = OpKind.GET_M
            sharers = outcome.invalidated
        else:
            outcome = self.directory.read(line, site)
            kind = OpKind.GET_S
            sharers = ()
        owner = outcome.owner if outcome.owner != site else None
        self._emit(trace, core, site, line, kind, owner=owner,
                   sharers=sharers, vtime=vtime,
                   last_op_vtime=last_op_vtime)
        vtime[core] += _NOMINAL_MISS_CYCLES

    def _evict(self, trace: CoherenceTrace, core: int, site: int,
               victim_line: int, dirty: bool, vtime: List[int],
               last_op_vtime: List[int]) -> None:
        self.directory.evict(victim_line, site)
        if dirty:
            self._emit(trace, core, site, victim_line, OpKind.WRITEBACK,
                       owner=None, sharers=(), vtime=vtime,
                       last_op_vtime=last_op_vtime, gap_zero=True)

    def _emit(self, trace: CoherenceTrace, core: int, site: int, line: int,
              kind: OpKind, owner: Optional[int], sharers: Iterable[int],
              vtime: List[int], last_op_vtime: List[int],
              gap_zero: bool = False) -> None:
        gap = 0 if gap_zero else max(0, vtime[core] - last_op_vtime[core])
        last_op_vtime[core] = vtime[core]
        trace.ops_by_core[core].append(CoherenceOp(
            core=core,
            gap_cycles=gap,
            kind=kind,
            requester=site,
            home=self.directory.home_site(line),
            owner=owner,
            sharers=tuple(sharers),
            line=line,
        ))


def generate_trace(kernel: WorkloadKernel,
                   config: MacrochipConfig) -> CoherenceTrace:
    """Convenience one-shot: run ``kernel`` through a fresh CPU simulator."""
    return CpuSimulator(config).run(kernel)
