"""HERMES-style hierarchical broadcast network (extension network).

HERMES (after Mohamed et al.) organizes the macrochip's sites into small
rectangular *clusters*.  Within a cluster, every site owns a full
modulator bank on a shared single-writer multiple-reader broadcast ring:
one optical hop reaches any cluster member, and every member physically
sees every transmission (which is what makes the architecture attractive
for invalidations/snooping — the power model charges the split and the
extra detection energy accordingly).  Between clusters, one *gateway*
site per cluster terminates a dedicated WDM channel to every other
gateway — a global photonic crossbar over clusters rather than sites.

A cross-cluster message therefore takes up to three optical legs:

1. the source's intra-cluster ring to the local gateway,
2. the global gateway-to-gateway channel,
3. the destination cluster's ring, rebroadcast by its gateway.

At each gateway traversal the packet crosses the electronic domain
(O-E conversion, buffering, E-O re-modulation), modeled like the limited
point-to-point forwarder: a 60-cycle conversion overhead plus the
60 pJ/byte router energy of section 6.3 into the 'router' category.
Because the global layer concentrates the whole cluster's off-cluster
traffic onto its gateway channels, HERMES saturates earlier than the
site-level point-to-point network — the hierarchy trades peak throughput
for a much smaller global waveguide plant (see ``complexity.py``).

The model follows the package contract: serialized :class:`Channel`
servers, interned derived geometry, ``_reset_state`` for warm-start, and
trace events on every channel so the invariant checkers apply unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .base import Channel, InterSiteNetwork, Packet
from ..core.engine import Simulator
from ..core.interning import intern_memo, intern_table
from ..core.units import propagation_ps, serialization_ps
from ..core.vectorized import (KernelOutput, pair_propagation_table,
                               register_kernel)
from ..macrochip.config import MacrochipConfig
from ..photonics.power import router_energy_pj


def normalize_cluster_dims(layout, cluster_rows: int,
                           cluster_cols: int) -> Tuple[int, int]:
    """Clamp requested cluster dimensions to the largest divisors of the
    layout that do not exceed them, so any layout tiles exactly.

    A 4x4 or 8x8 macrochip with the default 2x2 request is unchanged; a
    3x3 macrochip degrades to 1x1 clusters (every site its own gateway,
    i.e. a pure global crossbar) rather than raising.
    """
    if cluster_rows < 1 or cluster_cols < 1:
        raise ValueError("cluster dimensions must be at least 1x1")

    def largest_divisor(extent: int, bound: int) -> int:
        for d in range(min(extent, bound), 0, -1):
            if extent % d == 0:
                return d
        return 1

    return (largest_divisor(layout.rows, cluster_rows),
            largest_divisor(layout.cols, cluster_cols))


def _build_cluster_tables(layout, cr: int, cc: int):
    """Derived geometry for a clustering: all pure functions of layout
    and cluster shape, built once per (layout, shape) and interned.

    Returns ``(cluster_of, members, gateway, ring_prop)``:

    * ``cluster_of[site]`` — cluster id (row-major over cluster tiles);
    * ``members[cid]`` — cluster member sites in ring (boustrophedon)
      order;
    * ``gateway[cid]`` — the cluster's gateway site (lowest site id);
    * ``ring_prop[src * n + dst]`` — optical flight time in ps from
      ``src`` to ``dst`` along their shared unidirectional ring (0 for
      pairs that do not share a cluster).
    """
    n = layout.num_sites
    tiles_per_row = layout.cols // cc
    cluster_of = [0] * n
    for site in range(n):
        r, c = layout.coords(site)
        cluster_of[site] = (r // cr) * tiles_per_row + (c // cc)
    num_clusters = (layout.rows // cr) * tiles_per_row

    members: List[List[int]] = [[] for _ in range(num_clusters)]
    for cid in range(num_clusters):
        tile_r, tile_c = divmod(cid, tiles_per_row)
        for lr in range(cr):
            # boustrophedon within the cluster block: even local rows
            # left-to-right, odd local rows right-to-left
            cols = range(cc) if lr % 2 == 0 else range(cc - 1, -1, -1)
            for lc in cols:
                members[cid].append(
                    layout.site_at(tile_r * cr + lr, tile_c * cc + lc))
    gateway = [min(m) for m in members]

    ring_prop = [0] * (n * n)
    for ring in members:
        k = len(ring)
        if k < 2:
            continue
        # cumulative physical distance along the ring path, closing the
        # loop from the last member back to the first
        hop_cm = [layout.manhattan_distance_cm(ring[i], ring[(i + 1) % k])
                  for i in range(k)]
        ring_len_cm = sum(hop_cm)
        cum = [0.0] * k
        for i in range(1, k):
            cum[i] = cum[i - 1] + hop_cm[i - 1]
        for i, src in enumerate(ring):
            for j, dst in enumerate(ring):
                if src == dst:
                    continue
                dist = cum[j] - cum[i]
                if dist <= 0.0:
                    dist += ring_len_cm
                ring_prop[src * n + dst] = propagation_ps(dist)
    return cluster_of, members, gateway, ring_prop


class HermesHierarchicalNetwork(InterSiteNetwork):
    """Clustered broadcast rings under a global gateway crossbar."""

    name = "HERMES"
    switching_class = "electronic"

    def __init__(self, config: MacrochipConfig, sim: Simulator,
                 warmup_ps: int = 0,
                 cluster_rows: int = 2, cluster_cols: int = 2,
                 conversion_overhead_cycles: int = 60) -> None:
        super().__init__(config, sim, warmup_ps)
        layout = config.layout
        self.cluster_rows, self.cluster_cols = normalize_cluster_dims(
            layout, cluster_rows, cluster_cols)
        shape = (self.cluster_rows, self.cluster_cols)
        (self._cluster_of, self._members, self._gateway,
         self._ring_prop) = intern_table(
            ("hermes-geometry", layout, shape),
            lambda: _build_cluster_tables(layout, *shape))
        self.num_clusters = len(self._members)
        self.cluster_size = self.cluster_rows * self.cluster_cols
        n = layout.num_sites
        self._num_sites = n

        # every site drives its full modulator bank onto its cluster ring
        self.ring_gb_per_s = (config.transmitters_per_site
                              * config.wavelength_gb_per_s)
        # each gateway splits one bank across the other gateways; the
        # resulting narrow channels are the architecture's bottleneck
        pairs = max(1, self.num_clusters - 1)
        self.global_wavelengths = max(
            1, config.transmitters_per_site // pairs)
        self.global_gb_per_s = (self.global_wavelengths
                                * config.wavelength_gb_per_s)
        # O-E / E-O conversion around the gateway's electronic router,
        # same calibration as the limited point-to-point forwarder
        self.gateway_latency_ps = config.cycles_ps(
            1 + conversion_overhead_cycles)

        self._ring_channel: List[Optional[Channel]] = [None] * n
        self._global_channel: List[Optional[Channel]] = (
            [None] * (self.num_clusters * self.num_clusters))
        # cached arrival callbacks (one per site / cluster, not per packet)
        self._ring_final_cb: List[Optional[Callable[[Packet], None]]] = (
            [None] * n)
        self._ring_gateway_cb: List[Optional[Callable[[Packet], None]]] = (
            [None] * n)
        self._global_arrival_cb: List[Optional[Callable[[Packet], None]]] = (
            [None] * self.num_clusters)
        # per-size snoop detection energy (the k-1 non-target listeners
        # on a ring broadcast), interned per (tech, cluster size)
        self._snoop_pj: Dict[int, float] = intern_memo(
            ("hermes-snoop-pj", config.tech, self.cluster_size), dict)
        #: optional broadcast observer: called as cb(member_site, packet)
        #: for every cluster member that physically sees a ring
        #: transmission it is not the source of
        self._snoop: Optional[Callable[[int, Packet], None]] = None
        #: diagnostic counters (reset with the run)
        self.intra_packets = 0
        self.inter_packets = 0
        self.snoop_events = 0

    def _reset_state(self) -> None:
        # channels are rewound by the base reset; geometry, channel
        # tables, and arrival callbacks are pure and stay
        self._snoop = None
        self.intra_packets = 0
        self.inter_packets = 0
        self.snoop_events = 0

    # -- topology ----------------------------------------------------------

    def cluster_of(self, site: int) -> int:
        """Cluster id of a site."""
        return self._cluster_of[site]

    def cluster_members(self, cid: int) -> Tuple[int, ...]:
        """Member sites of a cluster, in ring order."""
        return tuple(self._members[cid])

    def gateway_of(self, cid: int) -> int:
        """The gateway site of a cluster."""
        return self._gateway[cid]

    def set_snoop(self, snoop: Optional[Callable[[int, Packet], None]]) -> None:
        """Register (or detach) the broadcast observer."""
        self._snoop = snoop

    def ring_channel(self, src: int) -> Channel:
        ch = self._ring_channel[src]
        if ch is None:
            cid = self._cluster_of[src]
            ch = self._new_channel(
                self.ring_gb_per_s, 0,
                name="hermes-ring[c%d|src=%d]" % (cid, src))
            self._ring_channel[src] = ch
        return ch

    def global_channel(self, src_cluster: int, dst_cluster: int) -> Channel:
        idx = src_cluster * self.num_clusters + dst_cluster
        ch = self._global_channel[idx]
        if ch is None:
            a = self._gateway[src_cluster]
            b = self._gateway[dst_cluster]
            ch = self._new_channel(
                self.global_gb_per_s, self.propagation_ps(a, b),
                name="hermes-global[c%d->c%d]" % (src_cluster, dst_cluster))
            self._global_channel[idx] = ch
        return ch

    # -- routing -----------------------------------------------------------

    def _route(self, packet: Packet) -> None:
        src = packet.src
        dst = packet.dst
        src_cluster = self._cluster_of[src]
        if src_cluster == self._cluster_of[dst]:
            self.intra_packets += 1
            packet.hops = 1
            self.ring_channel(src).send(packet, self._final_cb(src))
            return
        self.inter_packets += 1
        src_gw = self._gateway[src_cluster]
        dst_gw = self._gateway[self._cluster_of[dst]]
        packet.hops = (1 + (src != src_gw) + (dst != dst_gw))
        if src == src_gw:
            # the gateway modulates straight onto the global channel
            self._send_global(packet)
        else:
            self.ring_channel(src).send(packet, self._gateway_cb(src))

    def _broadcast_snoop(self, src: int, packet: Packet) -> None:
        """Account the listeners of one ring transmission: every cluster
        member other than the source physically detects the bits."""
        cid = self._cluster_of[src]
        listeners = self.cluster_size - 1
        if listeners <= 0:
            return
        self.snoop_events += listeners
        size = packet.size_bytes
        pj = self._snoop_pj.get(size)
        if pj is None:
            pj = (size * 8 * self.config.tech.detection_energy_fj_per_bit
                  * listeners / 1000.0)
            self._snoop_pj[size] = pj
        self.stats.energy.add("snoop", pj)
        if self._snoop is not None:
            for member in self._members[cid]:
                if member != src:
                    self._snoop(member, packet)

    def _final_cb(self, src: int) -> Callable[[Packet], None]:
        """Ring arrival callback: transmission ended, fly the remaining
        ring distance to the packet's destination and deliver."""
        cb = self._ring_final_cb[src]
        if cb is None:
            n = self._num_sites
            ring_prop = self._ring_prop

            def cb(packet: Packet, _src: int = src) -> None:
                self._broadcast_snoop(_src, packet)
                self.sim.schedule(ring_prop[_src * n + packet.dst],
                                  self._deliver, packet)

            self._ring_final_cb[src] = cb
        return cb

    def _gateway_cb(self, src: int) -> Callable[[Packet], None]:
        """Ring arrival callback for the first leg of a cross-cluster
        route: fly to the local gateway, then cross into the electronic
        domain there."""
        cb = self._ring_gateway_cb[src]
        if cb is None:
            n = self._num_sites
            gw = self._gateway[self._cluster_of[src]]
            prop = self._ring_prop[src * n + gw]

            def cb(packet: Packet, _prop: int = prop, _src: int = src) -> None:
                self._broadcast_snoop(_src, packet)
                self.sim.schedule(_prop, self._at_source_gateway, packet)

            self._ring_gateway_cb[src] = cb
        return cb

    def _at_source_gateway(self, packet: Packet) -> None:
        """O-E conversion, electronic gateway router, E-O onto the global
        channel."""
        self.stats.energy.add("router", router_energy_pj(packet.size_bytes))
        self.sim.schedule(self.gateway_latency_ps, self._send_global, packet)

    def _send_global(self, packet: Packet) -> None:
        src_cluster = self._cluster_of[packet.src]
        dst_cluster = self._cluster_of[packet.dst]
        ch = self.global_channel(src_cluster, dst_cluster)
        ch.send(packet, self._arrival_cb(dst_cluster))

    def _arrival_cb(self, dst_cluster: int) -> Callable[[Packet], None]:
        """Global-channel arrival at the destination gateway: deliver if
        the gateway is the destination, else rebroadcast on its ring."""
        cb = self._global_arrival_cb[dst_cluster]
        if cb is None:
            gw = self._gateway[dst_cluster]

            def cb(packet: Packet, _gw: int = gw) -> None:
                if packet.dst == _gw:
                    self._deliver(packet)
                    return
                self.stats.energy.add(
                    "router", router_energy_pj(packet.size_bytes))
                self.sim.schedule(self.gateway_latency_ps,
                                  self._rebroadcast, packet, _gw)

            self._global_arrival_cb[dst_cluster] = cb
        return cb

    def _rebroadcast(self, packet: Packet, gateway: int) -> None:
        self.ring_channel(gateway).send(packet, self._final_cb(gateway))


@register_kernel("hermes")
def _vectorized_hermes(net: HermesHierarchicalNetwork, plan) -> KernelOutput:
    """Replay kernel: the three-leg broadcast hierarchy on flat state.

    The snoopy broadcast itself needs no events — listeners are pure
    energy/diagnostic accounting in the scalar model, and neither feeds
    a :class:`~repro.core.sweep.LoadPointResult` — so the load-bearing
    state is just the FIFO timeline of each single-writer ring channel
    and of each gateway-pair global channel.  A gateway's ring channel
    carries both its own intra-cluster injections and the rebroadcasts
    of inbound cross-cluster traffic, so dispatch order matters and the
    kernel replays the engine's ``(time, seq)`` discipline exactly; the
    electronic gateway hops are replayed as their own events because
    each dispatch allocates a sequence number the scalar engine also
    allocates.  Delivers are batched out of the heap as usual — with
    one twist: a global-channel arrival whose destination *is* the
    gateway delivers synchronously inside the arrival event (no extra
    event, no extra seq), so that arrival goes straight into the
    deliver arrays instead of being counted as a heap event.
    """
    n = net._num_sites
    num_clusters = net.num_clusters
    cluster_of = net._cluster_of
    gateway = net._gateway
    ring_prop = net._ring_prop
    pps = plan.pps
    horizon = plan.horizon_ps
    loop_ps = net.config.loopback_latency_ps
    gw_lat = net.gateway_latency_ps
    tx_ring = serialization_ps(plan.packet_bytes, net.ring_gb_per_s)
    tx_glob = serialization_ps(plan.packet_bytes, net.global_gb_per_s)
    prop = pair_propagation_table(net.config.layout)
    glob_prop = [prop[gateway[a] * n + gateway[b]]
                 for a in range(num_clusters) for b in range(num_clusters)]
    times = plan.site_times
    dsts = plan.site_dsts
    ring_nf = [0] * n  # per-source ring channel next_free
    glob_nf = [0] * (num_clusters * num_clusters)

    import heapq

    heappush = heapq.heappush
    heappop = heapq.heappop
    # event kinds: 0 = injector, 1 = ring arrival (final leg),
    # 2 = ring arrival (first leg toward the local gateway),
    # 3 = at the source gateway (O-E, router), 4 = global-channel send,
    # 5 = global arrival needing rebroadcast, 6 = rebroadcast
    heap = [(times[site][0], site, 0, site, 0, 0) for site in range(n)]
    heapq.heapify(heap)
    seq = n  # at_many stamped the initial injections 0..n-1 in site order
    deliver_t = []
    deliver_i = []
    injected = 0
    dispatched = 0
    pending = False
    t = 0
    while heap:
        t, _, kind, a, b, c = heappop(heap)
        if t > horizon:
            pending = True
            break
        dispatched += 1
        if kind == 0:
            injected += 1
            site = a
            idx = b
            dst = dsts[site][idx]
            if dst == site:
                deliver_t.append(t + loop_ps)
                deliver_i.append(t)
                seq += 1
            elif cluster_of[site] == cluster_of[dst]:
                nf = ring_nf[site]
                start = t if t >= nf else nf
                ring_nf[site] = start + tx_ring
                heappush(heap, (start + tx_ring, seq, 1, site, dst, t))
                seq += 1
            elif site == gateway[cluster_of[site]]:
                # the gateway modulates straight onto the global channel
                gkey = cluster_of[site] * num_clusters + cluster_of[dst]
                nf = glob_nf[gkey]
                start = t if t >= nf else nf
                glob_nf[gkey] = start + tx_glob
                arrival = start + tx_glob + glob_prop[gkey]
                if dst == gateway[cluster_of[dst]]:
                    deliver_t.append(arrival)
                    deliver_i.append(t)
                else:
                    heappush(heap, (arrival, seq, 5, 0, dst, t))
                seq += 1
            else:
                nf = ring_nf[site]
                start = t if t >= nf else nf
                ring_nf[site] = start + tx_ring
                heappush(heap, (start + tx_ring, seq, 2, site, dst, t))
                seq += 1
            nxt = idx + 1
            if nxt < pps:
                heappush(heap, (times[site][nxt], seq, 0, site, nxt, 0))
                seq += 1
        elif kind == 1:
            deliver_t.append(t + ring_prop[a * n + b])
            deliver_i.append(c)
            seq += 1
        elif kind == 2:
            gw = gateway[cluster_of[a]]
            heappush(heap, (t + ring_prop[a * n + gw], seq, 3, a, b, c))
            seq += 1
        elif kind == 3:
            heappush(heap, (t + gw_lat, seq, 4, a, b, c))
            seq += 1
        elif kind == 4:
            gkey = cluster_of[a] * num_clusters + cluster_of[b]
            nf = glob_nf[gkey]
            start = t if t >= nf else nf
            glob_nf[gkey] = start + tx_glob
            arrival = start + tx_glob + glob_prop[gkey]
            if b == gateway[cluster_of[b]]:
                # the arrival event *is* the deliver (scalar _arrival_cb
                # calls _deliver synchronously): batched, not a heap event
                deliver_t.append(arrival)
                deliver_i.append(c)
            else:
                heappush(heap, (arrival, seq, 5, 0, b, c))
            seq += 1
        elif kind == 5:
            heappush(heap, (t + gw_lat, seq, 6, 0, b, c))
            seq += 1
        else:
            gw = gateway[cluster_of[b]]
            nf = ring_nf[gw]
            start = t if t >= nf else nf
            ring_nf[gw] = start + tx_ring
            heappush(heap, (start + tx_ring, seq, 1, gw, b, c))
            seq += 1
    return KernelOutput(heap_events=dispatched, heap_pending=pending,
                        deliver_t=deliver_t, deliver_inject=deliver_i,
                        injected=injected, last_event_ps=t)
