"""Electrical off-chip baseline network (section 1's motivation).

The paper motivates silicon photonics by the shortfall of electrical
inter-chip signaling: off-chip I/O density "dramatically lags that of
on-chip wires, forcing the use of overclocked and high-power serial
links".  This baseline quantifies that comparison inside the same
harness: a fully connected electrical point-to-point network built from
package-level SerDes links with

* far lower per-site bandwidth — pin budgets limit each site to a small
  fraction of the photonic 320 GB/s (default 64 GB/s, an optimistic
  ~2015 package: 64 differential pairs at 8 GT/s per direction);
* SerDes latency at each end (serialization/deserialization pipelines,
  default 10 ns combined, vs the photonic links' pure flight time);
* ~10x worse energy per bit (default 1.5 pJ/bit vs the 150 fJ/bit
  optical budget of Table 1).

It is *not* part of the paper's five-way evaluation; it exists so the
photonic claims ("dramatically reduce the incremental cost of
chip-to-chip bandwidth") can be demonstrated quantitatively — see
``examples/electrical_vs_photonic.py``.
"""

from __future__ import annotations

from typing import List, Optional

from .base import Channel, InterSiteNetwork, Packet
from ..core.engine import Simulator
from ..macrochip.config import MacrochipConfig


#: energy per bit of a package-level electrical serial link (pJ/bit);
#: ~10x the 150 fJ/bit optical budget of Table 1.
ELECTRICAL_ENERGY_PJ_PER_BIT = 1.5
#: signal velocity on package traces, ~0.5c -> 0.066 ns/cm; we keep the
#: optical 0.1 ns/cm figure for fairness (flight time is not the
#: electrical bottleneck).


class ElectricalBaselineNetwork(InterSiteNetwork):
    """Pin-limited electrical point-to-point network."""

    name = "Electrical Baseline"
    switching_class = "none"

    def __init__(self, config: MacrochipConfig, sim: Simulator,
                 warmup_ps: int = 0,
                 site_bandwidth_gb_per_s: float = 64.0,
                 serdes_latency_ns: float = 10.0) -> None:
        super().__init__(config, sim, warmup_ps)
        if site_bandwidth_gb_per_s <= 0:
            raise ValueError("site bandwidth must be positive")
        n = config.num_sites
        self.site_bandwidth_gb_per_s = site_bandwidth_gb_per_s
        #: per-pair channel: the pin budget divided over all destinations
        self.channel_gb_per_s = max(site_bandwidth_gb_per_s / (n - 1),
                                    0.001)
        self.serdes_latency_ps = int(serdes_latency_ns * 1000)
        self._num_sites = n
        self._channel_table: List[Optional[Channel]] = [None] * (n * n)

    def channel(self, src: int, dst: int) -> Channel:
        idx = src * self._num_sites + dst
        ch = self._channel_table[idx]
        if ch is None:
            ch = self._new_channel(self.channel_gb_per_s,
                                   self.propagation_ps(src, dst),
                                   name="elec[%d->%d]" % (src, dst))
            self._channel_table[idx] = ch
        return ch

    def _route(self, packet: Packet) -> None:
        packet.hops = 1
        self.sim.schedule(self.serdes_latency_ps, self._start_tx, packet)

    def _start_tx(self, packet: Packet) -> None:
        ch = self._channel_table[packet.src * self._num_sites + packet.dst]
        if ch is None:
            ch = self.channel(packet.src, packet.dst)
        ch.send(packet, self._deliver)

    def _account_optical_energy(self, packet: Packet) -> None:
        if packet.src == packet.dst:
            return
        self.stats.energy.add(
            "electrical",
            packet.size_bytes * 8 * ELECTRICAL_ENERGY_PJ_PER_BIT)
