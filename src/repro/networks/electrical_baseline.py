"""Electrical off-chip baseline network (section 1's motivation).

The paper motivates silicon photonics by the shortfall of electrical
inter-chip signaling: off-chip I/O density "dramatically lags that of
on-chip wires, forcing the use of overclocked and high-power serial
links".  This baseline quantifies that comparison inside the same
harness: a fully connected electrical point-to-point network built from
package-level SerDes links with

* far lower per-site bandwidth — pin budgets limit each site to a small
  fraction of the photonic 320 GB/s (default 64 GB/s, an optimistic
  ~2015 package: 64 differential pairs at 8 GT/s per direction);
* SerDes latency at each end (serialization/deserialization pipelines,
  default 10 ns combined, vs the photonic links' pure flight time);
* ~10x worse energy per bit (default 1.5 pJ/bit vs the 150 fJ/bit
  optical budget of Table 1).

It is *not* part of the paper's five-way evaluation; it exists so the
photonic claims ("dramatically reduce the incremental cost of
chip-to-chip bandwidth") can be demonstrated quantitatively — see
``examples/electrical_vs_photonic.py``.
"""

from __future__ import annotations

from typing import List, Optional

from .base import Channel, InterSiteNetwork, Packet
from ..core.engine import Simulator
from ..core.units import serialization_ps
from ..core.vectorized import (KernelOutput, fifo_channel_delivery,
                               pair_propagation_table, register_kernel)
from ..macrochip.config import MacrochipConfig


#: energy per bit of a package-level electrical serial link (pJ/bit);
#: ~10x the 150 fJ/bit optical budget of Table 1.
ELECTRICAL_ENERGY_PJ_PER_BIT = 1.5
#: signal velocity on package traces, ~0.5c -> 0.066 ns/cm; we keep the
#: optical 0.1 ns/cm figure for fairness (flight time is not the
#: electrical bottleneck).


class ElectricalBaselineNetwork(InterSiteNetwork):
    """Pin-limited electrical point-to-point network."""

    name = "Electrical Baseline"
    switching_class = "none"

    def __init__(self, config: MacrochipConfig, sim: Simulator,
                 warmup_ps: int = 0,
                 site_bandwidth_gb_per_s: float = 64.0,
                 serdes_latency_ns: float = 10.0) -> None:
        super().__init__(config, sim, warmup_ps)
        if site_bandwidth_gb_per_s <= 0:
            raise ValueError("site bandwidth must be positive")
        n = config.num_sites
        self.site_bandwidth_gb_per_s = site_bandwidth_gb_per_s
        #: per-pair channel: the pin budget divided over all destinations
        self.channel_gb_per_s = max(site_bandwidth_gb_per_s / (n - 1),
                                    0.001)
        self.serdes_latency_ps = int(serdes_latency_ns * 1000)
        self._num_sites = n
        self._channel_table: List[Optional[Channel]] = [None] * (n * n)

    def channel(self, src: int, dst: int) -> Channel:
        idx = src * self._num_sites + dst
        ch = self._channel_table[idx]
        if ch is None:
            ch = self._new_channel(self.channel_gb_per_s,
                                   self.propagation_ps(src, dst),
                                   name="elec[%d->%d]" % (src, dst))
            self._channel_table[idx] = ch
        return ch

    def _route(self, packet: Packet) -> None:
        packet.hops = 1
        self.sim.schedule(self.serdes_latency_ps, self._start_tx, packet)

    def _start_tx(self, packet: Packet) -> None:
        ch = self._channel_table[packet.src * self._num_sites + packet.dst]
        if ch is None:
            ch = self.channel(packet.src, packet.dst)
        ch.send(packet, self._deliver)

    def _account_optical_energy(self, packet: Packet) -> None:
        if packet.src == packet.dst:
            return
        self.stats.energy.add(
            "electrical",
            packet.size_bytes * 8 * ELECTRICAL_ENERGY_PJ_PER_BIT)


@register_kernel("electrical_baseline")
def _vectorized_electrical(net: ElectricalBaselineNetwork,
                           plan) -> KernelOutput:
    """Bulk kernel: point-to-point FIFO channels behind a SerDes stage.

    Identical structure to the photonic point-to-point kernel, with one
    extra heap event per off-site packet: the ``_start_tx`` callback at
    ``t_inject + serdes``.  A SerDes event past the horizon never
    dispatches — so its channel send (and delivery) never exists, which
    the per-site ``searchsorted`` on the shifted times reproduces.
    Per-channel dispatch order is still per-site index order: the SerDes
    stage shifts a site's (strictly increasing) injection times by a
    constant.
    """
    import numpy as np

    n = net._num_sites
    tx = serialization_ps(plan.packet_bytes, net.channel_gb_per_s)
    prop = np.asarray(pair_propagation_table(net.config.layout),
                      dtype=np.int64)
    loop_ps = net.config.loopback_latency_ps
    serdes = net.serdes_latency_ps
    horizon = plan.horizon_ps

    key_parts = []
    send_parts = []
    inject_parts = []
    deliver_t = []
    deliver_i = []
    injected = 0
    heap_events = 0
    heap_pending = False
    last_event = 0
    for site in range(n):
        times = plan.site_times_np[site]
        m = int(np.searchsorted(times, horizon, side="right"))
        injected += m
        heap_events += m
        if m < plan.pps:
            heap_pending = True
        if m == 0:
            continue
        if int(times[m - 1]) > last_event:
            last_event = int(times[m - 1])
        t = times[:m]
        d = np.asarray(plan.site_dsts[site][:m], dtype=np.int64)
        self_mask = d == site
        if self_mask.any():
            ts = t[self_mask]
            deliver_t.append(ts + loop_ps)  # loopback skips the SerDes
            deliver_i.append(ts)
            t = t[~self_mask]
            d = d[~self_mask]
        send = t + serdes
        started = int(np.searchsorted(send, horizon, side="right"))
        heap_events += started
        if started < send.shape[0]:
            heap_pending = True  # undispatched SerDes events in the heap
        if started == 0:
            continue
        if int(send[started - 1]) > last_event:
            last_event = int(send[started - 1])
        key_parts.append(site * n + d[:started])
        send_parts.append(send[:started])
        inject_parts.append(t[:started])

    if key_parts:
        key = np.concatenate(key_parts)
        send_all = np.concatenate(send_parts)
        inject_all = np.concatenate(inject_parts)
        if key.size:
            dt, order = fifo_channel_delivery(np, key, send_all, tx, prop)
            deliver_t.append(dt)
            deliver_i.append(inject_all[order])
    empty = np.empty(0, dtype=np.int64)
    return KernelOutput(
        heap_events=heap_events,
        heap_pending=heap_pending,
        deliver_t=np.concatenate(deliver_t) if deliver_t else empty,
        deliver_inject=np.concatenate(deliver_i) if deliver_i else empty,
        injected=injected,
        last_event_ps=last_event)
