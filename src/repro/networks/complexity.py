"""Component counting and complexity analysis (section 6.4, Table 6).

For each network we derive transmitter, receiver, waveguide, and switch
counts from the topology, plus two quantities the power model needs:
*laser feeds* (independently sourced wavelength channels) and the
worst-case extra optical loss beyond the canonical link budget.

Derivations follow the paper's own arithmetic for the 8x8 scaled
configuration (64 sites, 128 Tx/Rx per site, 8-wavelength WDM); the tests
assert that exactly the Table 6 values come out for that configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .hermes import normalize_cluster_dims
from ..macrochip.config import MacrochipConfig, scaled_config
from ..photonics.loss import (
    circuit_switched_extra_loss_db,
    hermes_extra_loss_db,
    snoop_extra_loss_db,
    token_ring_extra_loss_db,
    two_phase_extra_loss_db,
)


#: Worst-case 4x4-switch hops of the adapted circuit-switched torus on
#: the paper's 8x8 macrochip (section 4.5: 31 hops at 0.5 dB/hop ~
#: 15 dB).  Kept as the pinned 8x8 value; arbitrary grids use
#: :func:`circuit_switched_worst_hops`.
CIRCUIT_SWITCHED_WORST_HOPS = 31
#: Worst-case broadband-switch hops on a two-phase shared channel of the
#: 8x8 macrochip (section 4.3: the switch trees bound the path at 7
#: hops; the ALT variant's doubled trees bound it at 6).  Arbitrary
#: grids use :func:`two_phase_worst_hops`.
TWO_PHASE_WORST_HOPS = 7
TWO_PHASE_ALT_WORST_HOPS = 6


def circuit_switched_worst_hops(layout) -> int:
    """Worst-case 4x4 switch-point crossings on the torus, for any grid.

    A worst-case circuit spans ``rows // 2`` row hops plus ``cols // 2``
    column hops (torus diameter); each inter-site crossing passes the
    four switch points of a site boundary, minus the final drop —
    ``4 * (rows//2 + cols//2) - 1``, which is the paper's 31 on the 8x8
    (section 4.5) and grows linearly with the grid dimension.
    """
    diameter = layout.rows // 2 + layout.cols // 2
    return max(1, 4 * diameter - 1)


def two_phase_worst_hops(layout, alt: bool = False) -> int:
    """Worst-case broadband-switch hops along a shared row channel.

    The switch trees bound the path at one hop per column segment:
    ``cols - 1`` (7 on the paper's 8 columns); the ALT variant's doubled
    trees save one hop (6 on the 8x8), never going below one.
    """
    hops = layout.cols - 1
    if alt:
        hops -= 1
    return max(1, hops)


@dataclass(frozen=True)
class ComponentCount:
    """One row of Table 6, plus power-model inputs."""

    network: str
    transmitters: int
    receivers: int
    waveguides: int  # as the paper reports them (effective, for area)
    switches: int
    switch_kind: str = ""
    laser_feeds: int = 0
    extra_loss_db: float = 0.0

    @property
    def total_active_components(self) -> int:
        return self.transmitters + self.receivers + self.switches


def _total_tx(cfg: MacrochipConfig) -> int:
    return cfg.num_sites * cfg.transmitters_per_site


def _total_rx(cfg: MacrochipConfig) -> int:
    return cfg.num_sites * cfg.receivers_per_site


def p2p_count(config: MacrochipConfig = None) -> ComponentCount:
    """Point-to-point (section 4.2).

    Each site sources ``128 Tx / 8 WDM = 16`` horizontal waveguides
    (64 x 16 = 1024); every vertical channel needs an up and a down guide,
    so vertical = 2 x horizontal (2048); total 3072.
    """
    cfg = config or scaled_config()
    guides_per_site = cfg.transmitters_per_site // cfg.wavelengths_per_waveguide
    horizontal = cfg.num_sites * guides_per_site
    vertical = 2 * horizontal
    tx = _total_tx(cfg)
    return ComponentCount(
        network="Point-to-Point",
        transmitters=tx,
        receivers=_total_rx(cfg),
        waveguides=horizontal + vertical,
        switches=0,
        laser_feeds=tx,
        extra_loss_db=0.0,
    )


def limited_p2p_count(config: MacrochipConfig = None) -> ComponentCount:
    """Limited point-to-point (section 4.6): same optical plant as the
    point-to-point network plus two 7x7 electronic routers per site."""
    cfg = config or scaled_config()
    base = p2p_count(cfg)
    return ComponentCount(
        network="Limited Point-to-Point",
        transmitters=base.transmitters,
        receivers=base.receivers,
        waveguides=base.waveguides,
        switches=2 * cfg.num_sites,
        # one router bridges the rows-1 row peers, one the cols-1 column
        # peers (identical 7x7 pair on the square 8x8 of the paper)
        switch_kind="%dx%d electronic routers" % (cfg.layout.rows - 1,
                                                  cfg.layout.cols - 1),
        laser_feeds=base.laser_feeds,
        extra_loss_db=0.0,
    )


def token_ring_count(config: MacrochipConfig = None) -> ComponentCount:
    """Token-ring crossbar (section 4.4).

    Every site carries a full modulator bank on every destination bundle:
    64 sites x 64 bundles x 128 wavelengths = 512K transmitters.  The WDM
    factor is reduced to 2 (off-resonance ring loss), so the 64 bundles of
    128 wavelengths need 64 x 64 = 4096 physical guides, doubled for the
    return leg of the snaked ring = 8192; since every guide is routed along
    every row, the paper charges 4x that (32K) as effective waveguide area.
    """
    cfg = config or scaled_config()
    bundle_wavelengths = cfg.receivers_per_site  # 128: full site ingress
    wdm_factor = 2
    physical = cfg.num_sites * bundle_wavelengths // wdm_factor * 2
    effective = physical * 4
    rings_passed = cfg.num_sites * wdm_factor  # 128 on the 8x8 macrochip
    return ComponentCount(
        network="Token-Ring",
        transmitters=cfg.num_sites * cfg.num_sites * bundle_wavelengths,
        receivers=_total_rx(cfg),
        waveguides=effective,
        switches=0,
        laser_feeds=cfg.num_sites * bundle_wavelengths,
        extra_loss_db=token_ring_extra_loss_db(rings_passed, cfg.tech),
    )


def circuit_switched_count(config: MacrochipConfig = None) -> ComponentCount:
    """Circuit-switched torus (section 4.5): each site sources 16 guides of
    8 wavelengths routed as 64 loops per row pair — 50% fewer waveguides
    than the point-to-point network — with 16 4x4 switch points per site."""
    cfg = config or scaled_config()
    waveguides = p2p_count(cfg).waveguides * 2 // 3
    return ComponentCount(
        network="Circuit-Switched",
        transmitters=_total_tx(cfg),
        receivers=_total_rx(cfg),
        waveguides=waveguides,
        switches=16 * cfg.num_sites,
        switch_kind="4x4 switches",
        laser_feeds=_total_tx(cfg),
        extra_loss_db=circuit_switched_extra_loss_db(
            circuit_switched_worst_hops(cfg.layout), tech=cfg.tech),
    )


def two_phase_count(config: MacrochipConfig = None,
                    alt: bool = False) -> ComponentCount:
    """Two-phase data network (section 4.3).

    512 shared channels x 2 waveguides x 2 parallel segments = 2048
    horizontal plus as many vertical = 4096.  Each of the 2048 horizontal
    segments is fed through 8 switch points = 16K switches; the ALT layout
    shares the destination-input switches across its doubled trees, which
    is where the paper's 15K comes from.
    """
    cfg = config or scaled_config()
    shared_channels = cfg.num_sites * cfg.layout.rows  # 512 on the 8x8
    # two waveguides per channel, each as two parallel segments = 2048
    horizontal_segments = shared_channels * 2 * 2
    # every horizontal waveguide couples to a matching vertical one
    waveguides = 2 * horizontal_segments  # 4096 on the 8x8
    switches = horizontal_segments * cfg.layout.cols  # 2048 x 8 = 16K
    tx = _total_tx(cfg)
    name = "Two-Phase Data"
    loss_db = two_phase_extra_loss_db(two_phase_worst_hops(cfg.layout),
                                      cfg.tech)
    if alt:
        name = "Two-Phase Data (ALT)"
        tx *= 2
        switches -= shared_channels * 2  # shared input switches: 16K - 1K = 15K
        loss_db = two_phase_extra_loss_db(
            two_phase_worst_hops(cfg.layout, alt=True), cfg.tech)
    return ComponentCount(
        network=name,
        transmitters=tx,
        receivers=_total_rx(cfg),
        waveguides=waveguides,
        switches=switches,
        switch_kind="1x2 broadband switches",
        laser_feeds=tx,
        extra_loss_db=loss_db,
    )


def two_phase_arbitration_count(config: MacrochipConfig = None) -> ComponentCount:
    """The two-phase network's arbitration overlay: one request waveguide
    per row and one notification waveguide per column (16 + 8 = 24 guides),
    2 transmitters per site (request + notify), snooped by every row/column
    member (1024 receivers), sourced with 8x snoop power."""
    cfg = config or scaled_config()
    rows, cols = cfg.layout.rows, cfg.layout.cols
    return ComponentCount(
        network="Two-Phase Arbitration",
        transmitters=2 * cfg.num_sites,
        receivers=cfg.num_sites * (rows + cols),
        waveguides=2 * rows + cols,
        switches=0,
        laser_feeds=2 * cfg.num_sites,
        extra_loss_db=snoop_extra_loss_db(cfg.layout.cols),
    )


def hermes_count(config: MacrochipConfig = None,
                 cluster_rows: int = 2,
                 cluster_cols: int = 2) -> ComponentCount:
    """HERMES hierarchical broadcast (extension network).

    Every site drives its full modulator bank onto its cluster's
    broadcast ring, and every other cluster member carries drop banks
    for all of it (the broadcast cost: ``(k-1) x 128`` receivers per
    site).  Each of the ``G`` gateways adds one more bank each way for
    the global crossbar.  Ring waveguides are a loop per cluster
    (``k x 128 / WDM`` out plus as many back); the global layer needs
    only ``128 / WDM`` guides per gateway — the small global plant the
    hierarchy buys.  One electronic router per gateway.
    """
    cfg = config or scaled_config()
    cr, cc = normalize_cluster_dims(cfg.layout, cluster_rows, cluster_cols)
    k = cr * cc
    clusters = cfg.num_sites // k
    tx_site = cfg.transmitters_per_site
    wdm = cfg.wavelengths_per_waveguide
    tx = _total_tx(cfg) + clusters * tx_site
    rx = cfg.num_sites * (k - 1) * tx_site + clusters * tx_site
    ring_guides = clusters * (k * tx_site // wdm) * 2
    global_guides = clusters * (tx_site // wdm)
    rings_passed = (k - 1) * wdm
    return ComponentCount(
        network="HERMES",
        transmitters=tx,
        receivers=rx,
        waveguides=ring_guides + global_guides,
        switches=clusters,
        switch_kind="electronic gateway routers",
        laser_feeds=tx,
        extra_loss_db=hermes_extra_loss_db(k, rings_passed, cfg.tech),
    )


#: Registry used by Table 5 / Table 6 generators.
ALL_COUNTS: Dict[str, Callable[[MacrochipConfig], ComponentCount]] = {
    "token_ring": token_ring_count,
    "point_to_point": p2p_count,
    "circuit_switched": circuit_switched_count,
    "limited_point_to_point": limited_p2p_count,
    "two_phase": lambda cfg=None: two_phase_count(cfg, alt=False),
    "two_phase_alt": lambda cfg=None: two_phase_count(cfg, alt=True),
    "two_phase_arbitration": two_phase_arbitration_count,
    "hermes": hermes_count,
}


def table6_rows(config: MacrochipConfig = None) -> List[ComponentCount]:
    """All Table 6 rows in the paper's order."""
    cfg = config or scaled_config()
    return [
        token_ring_count(cfg),
        p2p_count(cfg),
        circuit_switched_count(cfg),
        limited_p2p_count(cfg),
        two_phase_count(cfg, alt=False),
        two_phase_count(cfg, alt=True),
        two_phase_arbitration_count(cfg),
    ]
