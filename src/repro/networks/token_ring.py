"""Token-ring optical crossbar — the Corona adaptation (section 4.4).

Topology: every destination site owns a waveguide bundle, shared by all
64 potential senders, that snakes past every site (boustrophedon ring on
the bottom substrate).  Access is arbitrated by one optical token per
destination circulating on a token bus along the same ring.  A sender
diverts the token when it passes, transmits one packet on the bundle, and
re-injects the token — which then travels *forward*, so reacquiring it
costs a full round trip (the ~80-cycle penalty that ruins one-to-one
patterns at macrochip scale, section 6.1).

Scaling effects the paper highlights, both modeled here:

* the macrochip ring is ~10x a single die, so the token round trip is
  ~80 cycles (16 ns) — derived from the layout's snake-ring length;
* off-resonance modulator rings force the WDM factor down to 2, which
  costs laser power (Table 5) but not bandwidth (more waveguides), so the
  bundle still delivers the full 320 GB/s per destination.

The token is simulated lazily: while nobody wants a destination, its
position is a closed-form function of time.  A request computes the next
token arrival directly; a request from a site the token has not yet
passed *preempts* a grant scheduled for a more distant site (the token is
physically diverted by whichever waiting sender it reaches first), which
generation counters implement without event cancellation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from .base import InterSiteNetwork, Packet
from ..core import tracing
from ..core.engine import Simulator
from ..core.interning import intern_memo, intern_table
from ..core.units import propagation_ps, serialization_ps
from ..core.vectorized import (KernelOutput, pair_propagation_table,
                               register_kernel)
from ..macrochip.config import MacrochipConfig


class _TokenState:
    """Position/time of one destination's token plus its waiter queues."""

    __slots__ = ("pos", "time_ps", "busy", "holding", "generation",
                 "queues", "waiting", "waiting_pos", "release_pos",
                 "release_time")

    def __init__(self, num_sites: int) -> None:
        self.pos = 0  # snake position where the token was at `time_ps`
        self.time_ps = 0
        self.busy = False  # a grant chain is in progress
        self.holding = False  # a sender holds the token right now
        self.generation = 0  # invalidates superseded grant events
        self.queues: List[Deque[Packet]] = [deque() for _ in range(num_sites)]
        self.waiting = 0  # total queued packets across sources
        #: snake positions with a non-empty queue — lets grant scheduling
        #: visit only actual waiters instead of scanning the whole ring
        self.waiting_pos = set()
        self.release_pos = -1  # last releasing position: cannot re-grab
        self.release_time = 0  # ...until a full rotation after this time


class TokenRingCrossbar(InterSiteNetwork):
    """Corona-style token-arbitrated optical crossbar on the macrochip."""

    name = "Token Ring"
    switching_class = "arbitrated"

    def __init__(self, config: MacrochipConfig, sim: Simulator,
                 warmup_ps: int = 0,
                 grant_overhead_ps: int = 50) -> None:
        super().__init__(config, sim, warmup_ps)
        layout = config.layout
        n = layout.num_sites
        self.num_sites = n
        #: full 320 GB/s bundle into each destination (all site receivers)
        self.bundle_gb_per_s = (config.receivers_per_site
                                * config.wavelength_gb_per_s)
        ring_cm = layout.snake_ring_length_cm()
        self.rotation_ps = propagation_ps(ring_cm)
        self.hop_ps = max(1, self.rotation_ps // n)
        #: token absorb/re-inject cost per grant
        self.grant_overhead_ps = grant_overhead_ps
        self._token_table: List[Optional[_TokenState]] = [None] * n
        # snake-ring geometry: pure functions of the layout, interned so
        # sweeps and warm contexts share one copy per layout
        self._snake_pos, self._snake_site = intern_table(
            ("snake-geometry", layout),
            lambda: ([layout.snake_position(s) for s in range(n)],
                     [layout.snake_site(p) for p in range(n)]))
        #: per-size cached bundle serialization times (pure memo on the
        #: bundle rate, shared across instances)
        self._tx_cache: Dict[int, int] = intern_memo(
            ("ring-tx", self.bundle_gb_per_s), dict)
        #: lazily filled src*n+dst propagation table (consulted per
        #: grant); pure per-pair values, so the memo is interned per
        #: layout and fills accumulate across instances
        self._prop_table: List[int] = intern_memo(
            ("pair-propagation", layout), lambda: [-1] * (n * n))

    def _reset_state(self) -> None:
        # a token nobody has requested yet is indistinguishable from a
        # fresh one (position 0 at time 0, circulating), so dropping the
        # lazily-created states restores as-constructed behavior exactly
        table = self._token_table
        for i in range(len(table)):
            table[i] = None

    # -- token geometry ----------------------------------------------------

    def _token(self, dst: int) -> _TokenState:
        tok = self._token_table[dst]
        if tok is None:
            tok = _TokenState(self.num_sites)
            self._token_table[dst] = tok
        return tok

    def _token_position_at(self, tok: _TokenState, now_ps: int):
        """Advance a circulating token's closed-form position to
        ``now_ps``; returns (position, time_token_was_there)."""
        if now_ps <= tok.time_ps:
            return tok.pos, tok.time_ps
        hops = (now_ps - tok.time_ps) // self.hop_ps
        pos = (tok.pos + hops) % self.num_sites
        return pos, tok.time_ps + hops * self.hop_ps

    def token_arrival_ps(self, tok: _TokenState, requester_pos: int,
                         now_ps: int) -> int:
        """Earliest time the token reaches ``requester_pos`` from its
        current circulating state."""
        pos, at = self._token_position_at(tok, now_ps)
        hops = (requester_pos - pos) % self.num_sites
        return max(now_ps, at + hops * self.hop_ps)

    # -- routing -----------------------------------------------------------

    def _route(self, packet: Packet) -> None:
        packet.hops = 1
        tok = self._token_table[packet.dst]
        if tok is None:
            tok = self._token(packet.dst)
        pos = self._snake_pos[packet.src]
        tok.queues[pos].append(packet)
        tok.waiting += 1
        tok.waiting_pos.add(pos)
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, tracing.ENQUEUE, pid=packet.pid,
                             resource="token:%d" % packet.dst)
        if not tok.busy:
            tok.busy = True
            self._schedule_next_grant(packet.dst, tok)
        elif not tok.holding:
            # the token is in flight toward a scheduled grant; a closer
            # waiting sender diverts it first, so recompute the next grant
            tok.generation += 1
            self._schedule_next_grant(packet.dst, tok)

    def _schedule_next_grant(self, dst: int, tok: _TokenState,
                             min_offset: int = 0) -> None:
        """Find the next waiting source in ring order and schedule the
        token's arrival there.

        ``min_offset=1`` is used after a grant: the re-injected token
        travels forward, so the releasing site cannot recapture it
        without a full round trip.
        """
        if tok.waiting == 0:
            tok.busy = False
            return
        now = self.sim.now
        pos, at = self._token_position_at(tok, now)
        n = self.num_sites
        hop = self.hop_ps
        # visit only positions with waiters; selection is by (grant_time,
        # ring offset), which reproduces the old full-ring scan exactly:
        # that scan walked offsets in ascending order and kept the first
        # strictly-earlier grant time
        best_time = -1
        best_off = 0
        best_p = -1
        for p in tok.waiting_pos:
            offset = p - pos
            if offset < 0:
                offset += n
            if offset < min_offset:
                offset += n
            grant_time = at + offset * hop
            if grant_time < now:
                grant_time = now
            if p == tok.release_pos:
                # the releasing site sees the token again only after a
                # full round trip; the token serves nearer waiters first
                release_at = tok.release_time + self.rotation_ps
                if grant_time < release_at:
                    grant_time = release_at
            if (best_p < 0 or grant_time < best_time
                    or (grant_time == best_time and offset < best_off)):
                best_time = grant_time
                best_off = offset
                best_p = p
        if best_p < 0:  # pragma: no cover - waiting>0 guarantees a hit
            raise AssertionError("waiting>0 but no queued source")
        self.sim.at(best_time, self._grant, dst, best_p, tok.generation)

    def _grant(self, dst: int, src_pos: int, generation: int) -> None:
        """The token reached a waiting sender: transmit one packet."""
        tok = self._token(dst)
        if generation != tok.generation:
            return  # superseded by a closer requester
        queue = tok.queues[src_pos]
        if not queue:  # pragma: no cover - defensive
            tok.waiting_pos.discard(src_pos)
            self._schedule_next_grant(dst, tok)
            return
        packet = queue.popleft()
        if not queue:
            tok.waiting_pos.discard(src_pos)
        tok.waiting -= 1
        tok.holding = True
        tx = self._tx_cache.get(packet.size_bytes)
        if tx is None:
            tx = serialization_ps(packet.size_bytes, self.bundle_gb_per_s)
            self._tx_cache[packet.size_bytes] = tx
        src_site = self._snake_site[src_pos]
        n = self.num_sites
        prop = self._prop_table[src_site * n + dst]
        if prop < 0:
            prop = self.propagation_ps(src_site, dst)
            self._prop_table[src_site * n + dst] = prop
        arrival = self.sim.now + tx + prop
        self.sim.at(arrival, self._deliver, packet)
        # token is re-injected after the transmission slot + overhead
        tok.pos = src_pos
        tok.time_ps = self.sim.now + tx + self.grant_overhead_ps
        if self.tracer is not None:
            # the sender holds the destination's token from the grant
            # until re-injection; holds on one token must never overlap
            self.tracer.emit(self.sim.now, tracing.GRANT, pid=packet.pid,
                             src=src_site, dst=dst,
                             resource="token:%d" % dst,
                             start_ps=self.sim.now, end_ps=tok.time_ps)
        tok.release_pos = src_pos
        tok.release_time = tok.time_ps
        tok.generation += 1
        self.sim.at(tok.time_ps, self._resume, dst, tok.generation)

    def _resume(self, dst: int, generation: int) -> None:
        tok = self._token(dst)
        if generation != tok.generation:  # pragma: no cover - defensive
            return
        tok.holding = False
        self._schedule_next_grant(dst, tok, min_offset=1)


@register_kernel("token_ring")
def _vectorized_token_ring(net: TokenRingCrossbar, plan) -> KernelOutput:
    """Replay kernel: token arbitration over flat state + waiter bitmasks.

    Grant preemption (a closer requester diverting an in-flight token)
    makes dispatch order load-bearing, so this replays the engine's
    ``(time, seq)`` heap discipline exactly — generation counters and
    all — with two structural savings: delivers never enter the heap
    (terminal in a sweep; batched into arrays), and the next-waiter scan
    collapses to O(1) bit arithmetic.  The bitmask form is exact because
    selection minimizes ``(grant_time, ring_offset)`` and, with the
    token's closed-form reference time ``at <= now`` (always true at
    scheduling points), ``grant_time = max(now, at + offset*hop)`` is
    non-decreasing in offset — so the first waiter in ring order wins
    outright, except when it is the releasing site (whose time is bumped
    a full rotation): then it is compared against the next waiter, and
    no third candidate can beat both.
    """
    n = net.num_sites
    pps = plan.pps
    horizon = plan.horizon_ps
    loop_ps = net.config.loopback_latency_ps
    hop = net.hop_ps
    rotation = net.rotation_ps
    overhead = net.grant_overhead_ps
    tx = serialization_ps(plan.packet_bytes, net.bundle_gb_per_s)
    prop = pair_propagation_table(net.config.layout)
    snake_pos = net._snake_pos
    snake_site = net._snake_site
    times = plan.site_times
    dsts = plan.site_dsts
    full = (1 << n) - 1

    # flat per-destination token state (== _TokenState as-constructed)
    tok_pos = [0] * n
    tok_time = [0] * n
    tok_busy = bytearray(n)
    tok_holding = bytearray(n)
    tok_gen = [0] * n
    tok_waiting = [0] * n
    tok_mask = [0] * n  # waiting_pos as a bitmask over snake positions
    tok_release_pos = [-1] * n
    tok_release_time = [0] * n
    queues: List[Optional[Deque[int]]] = [None] * (n * n)  # dst*n+pos

    def select(dst: int, now: int, min_offset: int):
        """(grant_time, src_pos) minimizing (grant_time, ring offset)."""
        mask = tok_mask[dst]
        tp = tok_time[dst]
        if now <= tp:
            pos, at = tok_pos[dst], tp
        else:
            hops = (now - tp) // hop
            pos = (tok_pos[dst] + hops) % n
            at = tp + hops * hop
        q = (pos + min_offset) % n
        rot = ((mask >> q) | (mask << (n - q))) & full
        o = (rot & -rot).bit_length() - 1
        offset = min_offset + o
        p = (q + o) % n
        gt = at + offset * hop
        if gt < now:
            gt = now
        if p == tok_release_pos[dst]:
            release_at = tok_release_time[dst] + rotation
            if gt < release_at:
                gt = release_at
            rest = rot & (rot - 1)  # other waiters, already rotated
            if rest:
                o2 = (rest & -rest).bit_length() - 1
                off2 = min_offset + o2
                g2 = at + off2 * hop
                if g2 < now:
                    g2 = now
                if g2 < gt or (g2 == gt and off2 < offset):
                    return g2, (q + o2) % n
        return gt, p

    import heapq

    heappush = heapq.heappush
    heappop = heapq.heappop
    # event kinds: 0 = injector, 1 = grant, 2 = token re-injection resume
    heap = [(times[site][0], site, 0, site, 0, 0) for site in range(n)]
    heapq.heapify(heap)
    seq = n  # at_many stamped the initial injections 0..n-1 in site order
    deliver_t = []
    deliver_i = []
    injected = 0
    dispatched = 0
    pending = False
    t = 0
    while heap:
        t, _, kind, a, b, c = heappop(heap)
        if t > horizon:
            pending = True
            break
        dispatched += 1
        if kind == 0:
            injected += 1
            site = a
            idx = b
            dst = dsts[site][idx]
            if dst == site:
                deliver_t.append(t + loop_ps)
                deliver_i.append(t)
                seq += 1
            else:
                pos = snake_pos[site]
                qkey = dst * n + pos
                queue = queues[qkey]
                if queue is None:
                    queue = queues[qkey] = deque()
                queue.append(t)
                tok_waiting[dst] += 1
                tok_mask[dst] |= 1 << pos
                if not tok_busy[dst]:
                    tok_busy[dst] = 1
                    gt, p = select(dst, t, 0)
                    heappush(heap, (gt, seq, 1, dst, p, tok_gen[dst]))
                    seq += 1
                elif not tok_holding[dst]:
                    tok_gen[dst] += 1
                    gt, p = select(dst, t, 0)
                    heappush(heap, (gt, seq, 1, dst, p, tok_gen[dst]))
                    seq += 1
            nxt = idx + 1
            if nxt < pps:
                heappush(heap, (times[site][nxt], seq, 0, site, nxt, 0))
                seq += 1
        elif kind == 1:
            dst = a
            src_pos = b
            if c != tok_gen[dst]:
                continue  # superseded by a closer requester
            queue = queues[dst * n + src_pos]
            if not queue:  # pragma: no cover - mirrors the defensive branch
                tok_mask[dst] &= ~(1 << src_pos)
                if tok_waiting[dst] == 0:
                    tok_busy[dst] = 0
                else:
                    gt, p = select(dst, t, 0)
                    heappush(heap, (gt, seq, 1, dst, p, tok_gen[dst]))
                    seq += 1
                continue
            t_inj = queue.popleft()
            if not queue:
                tok_mask[dst] &= ~(1 << src_pos)
            tok_waiting[dst] -= 1
            tok_holding[dst] = 1
            deliver_t.append(t + tx + prop[snake_site[src_pos] * n + dst])
            deliver_i.append(t_inj)
            seq += 1
            tok_pos[dst] = src_pos
            release = t + tx + overhead
            tok_time[dst] = release
            tok_release_pos[dst] = src_pos
            tok_release_time[dst] = release
            tok_gen[dst] += 1
            heappush(heap, (release, seq, 2, dst, tok_gen[dst], 0))
            seq += 1
        else:
            dst = a
            if b != tok_gen[dst]:  # pragma: no cover - defensive
                continue
            tok_holding[dst] = 0
            if tok_waiting[dst] == 0:
                tok_busy[dst] = 0
            else:
                gt, p = select(dst, t, 1)
                heappush(heap, (gt, seq, 1, dst, p, tok_gen[dst]))
                seq += 1
    return KernelOutput(heap_events=dispatched, heap_pending=pending,
                        deliver_t=deliver_t, deliver_inject=deliver_i,
                        injected=injected, last_event_ps=t)
