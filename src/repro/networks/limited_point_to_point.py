"""Limited point-to-point network with electronic routing (section 4.6).

Each site has a direct optical channel to every *row peer* and *column
peer* — 14 peers on an 8x8 macrochip — at 8 wavelengths (20 GB/s).
Traffic to a non-peer is forwarded through exactly one intermediate site
that is a peer of both endpoints: either (src_row, dst_col) or
(dst_row, src_col).  At the forwarder the packet is converted to the
electronic domain, crosses a 7x7 router (one cycle), and is re-transmitted
optically, so no packet ever takes more than one O-E/E-O conversion.

The forwarder is chosen adaptively by shorter outgoing-channel queue
(the paper does not pin this down; adaptivity only matters under load and
is noted in DESIGN.md).  Router traversals are charged 60 pJ/byte
(section 6.3) into the 'router' energy category, which Figure 9 reports.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .base import Channel, InterSiteNetwork, Packet
from ..core.engine import Simulator
from ..macrochip.config import MacrochipConfig
from ..photonics.power import router_energy_pj


class LimitedPointToPointNetwork(InterSiteNetwork):
    """Row/column-peer point-to-point network with one electronic hop."""

    name = "Limited Point-to-Point"
    switching_class = "electronic"

    def __init__(self, config: MacrochipConfig, sim: Simulator,
                 warmup_ps: int = 0,
                 conversion_overhead_cycles: int = 60) -> None:
        super().__init__(config, sim, warmup_ps)
        layout = config.layout
        peers = (layout.rows - 1) + (layout.cols - 1)
        # 128 Tx over 14 peers -> 8 wavelengths per peer on the 8x8 chip
        # (the paper's 20 GB/s channels); floor, minimum 1.
        wavelengths = max(1, config.transmitters_per_site // (peers + 2))
        self.channel_wavelengths = wavelengths
        self.channel_gb_per_s = wavelengths * config.wavelength_gb_per_s
        # the router crossbar itself is one cycle (section 4.6); the O-E
        # and E-O conversions around it (photodetector/TIA, SerDes,
        # buffering, modulator drive) are not free — 60 cycles (12 ns)
        # total is the calibrated realistic cost of the store-and-forward
        # hop, and is what keeps the narrow point-to-point network ahead
        # on non-neighbor traffic as the paper observes.
        self.router_latency_ps = config.cycles_ps(
            1 + conversion_overhead_cycles)
        self._channels: Dict[Tuple[int, int], Channel] = {}
        #: forwarded packets (for Figure 9 style reporting and tests)
        self.forwarded_packets = 0
        self.direct_packets = 0

    # -- topology ----------------------------------------------------------

    def is_peer(self, a: int, b: int) -> bool:
        """True when two distinct sites share a row or a column."""
        ra, ca = self.config.layout.coords(a)
        rb, cb = self.config.layout.coords(b)
        return a != b and (ra == rb or ca == cb)

    def forwarder_candidates(self, src: int, dst: int) -> Tuple[int, int]:
        """The two sites that are peers of both endpoints."""
        layout = self.config.layout
        rs, cs = layout.coords(src)
        rd, cd = layout.coords(dst)
        return layout.site_at(rs, cd), layout.site_at(rd, cs)

    def channel(self, src: int, dst: int) -> Channel:
        if not self.is_peer(src, dst):
            raise ValueError("no direct channel between %d and %d" % (src, dst))
        key = (src, dst)
        ch = self._channels.get(key)
        if ch is None:
            ch = self._new_channel(
                self.channel_gb_per_s,
                self.propagation_ps(src, dst),
                name="lp2p[%d->%d]" % key,
            )
            self._channels[key] = ch
        return ch

    # -- routing -----------------------------------------------------------

    def _route(self, packet: Packet) -> None:
        if self.is_peer(packet.src, packet.dst):
            packet.hops = 1
            self.direct_packets += 1
            self.channel(packet.src, packet.dst).send(packet, self._deliver)
            return
        self.forwarded_packets += 1
        packet.hops = 2
        a, b = self.forwarder_candidates(packet.src, packet.dst)
        # adaptive: pick the forwarder whose first-leg channel is freer;
        # deterministic tie-break on site id keeps runs reproducible.
        qa = self.channel(packet.src, a).queue_delay_ps()
        qb = self.channel(packet.src, b).queue_delay_ps()
        via = a if (qa, a) <= (qb, b) else b
        self.channel(packet.src, via).send(
            packet, lambda p, via=via: self._at_forwarder(p, via)
        )

    def _at_forwarder(self, packet: Packet, via: int) -> None:
        """O-E conversion, one-cycle 7x7 router, E-O re-transmission."""
        self.stats.energy.add("router", router_energy_pj(packet.size_bytes))
        self.sim.schedule(self.router_latency_ps,
                          self._forward, packet, via)

    def _forward(self, packet: Packet, via: int) -> None:
        self.channel(via, packet.dst).send(packet, self._deliver)
