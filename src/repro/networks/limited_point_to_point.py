"""Limited point-to-point network with electronic routing (section 4.6).

Each site has a direct optical channel to every *row peer* and *column
peer* — 14 peers on an 8x8 macrochip — at 8 wavelengths (20 GB/s).
Traffic to a non-peer is forwarded through exactly one intermediate site
that is a peer of both endpoints: either (src_row, dst_col) or
(dst_row, src_col).  At the forwarder the packet is converted to the
electronic domain, crosses a 7x7 router (one cycle), and is re-transmitted
optically, so no packet ever takes more than one O-E/E-O conversion.

The forwarder is chosen adaptively by shorter outgoing-channel queue
(the paper does not pin this down; adaptivity only matters under load and
is noted in DESIGN.md).  Router traversals are charged 60 pJ/byte
(section 6.3) into the 'router' energy category, which Figure 9 reports.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from .base import Channel, InterSiteNetwork, Packet
from ..core.engine import Simulator
from ..core.interning import intern_table
from ..core.units import serialization_ps
from ..core.vectorized import (KernelOutput, pair_propagation_table,
                               register_kernel)
from ..macrochip.config import MacrochipConfig
from ..photonics.power import router_energy_pj


def _build_routing_tables(layout):
    """(fwd_table, coords) for a layout — see the constructor comment."""
    n = layout.num_sites
    coords = [layout.coords(s) for s in range(n)]
    fwd: List[Optional[Tuple[int, int]]] = [None] * (n * n)
    for src, (rs, cs) in enumerate(coords):
        for dst, (rd, cd) in enumerate(coords):
            if src != dst and rs != rd and cs != cd:
                fwd[src * n + dst] = (layout.site_at(rs, cd),
                                      layout.site_at(rd, cs))
    return fwd, coords


class LimitedPointToPointNetwork(InterSiteNetwork):
    """Row/column-peer point-to-point network with one electronic hop."""

    name = "Limited Point-to-Point"
    switching_class = "electronic"

    def __init__(self, config: MacrochipConfig, sim: Simulator,
                 warmup_ps: int = 0,
                 conversion_overhead_cycles: int = 60) -> None:
        super().__init__(config, sim, warmup_ps)
        layout = config.layout
        peers = (layout.rows - 1) + (layout.cols - 1)
        # 128 Tx over 14 peers -> 8 wavelengths per peer on the 8x8 chip
        # (the paper's 20 GB/s channels); floor, minimum 1.
        wavelengths = max(1, config.transmitters_per_site // (peers + 2))
        self.channel_wavelengths = wavelengths
        self.channel_gb_per_s = wavelengths * config.wavelength_gb_per_s
        # the router crossbar itself is one cycle (section 4.6); the O-E
        # and E-O conversions around it (photodetector/TIA, SerDes,
        # buffering, modulator drive) are not free — 60 cycles (12 ns)
        # total is the calibrated realistic cost of the store-and-forward
        # hop, and is what keeps the narrow point-to-point network ahead
        # on non-neighbor traffic as the paper observes.
        self.router_latency_ps = config.cycles_ps(
            1 + conversion_overhead_cycles)
        n = layout.num_sites
        self._num_sites = n
        # precomputed per-pair routing tables (the per-packet hot path
        # does one flat index instead of four coords() calls):
        # _fwd_table[src*n+dst] is None for peers (direct channel) and the
        # (a, b) forwarder-candidate pair otherwise.  The n^2 build is
        # the costliest network construction in the package, and both
        # tables are pure functions of the layout — interned, so sweeps
        # and warm contexts build them once per layout per process (and
        # forked workers inherit them copy-on-write).
        self._fwd_table, self._coords = intern_table(
            ("lp2p-routing", layout), lambda: _build_routing_tables(layout))
        self._channel_table: List[Optional[Channel]] = [None] * (n * n)
        # per-forwarder arrival callbacks, created once instead of one
        # closure per forwarded packet
        self._fwd_arrival: List[Optional[Callable[[Packet], None]]] = [None] * n
        #: forwarded packets (for Figure 9 style reporting and tests)
        self.forwarded_packets = 0
        self.direct_packets = 0

    def _reset_state(self) -> None:
        # channels are rewound by the base reset; the arrival callbacks
        # and routing tables are pure and stay.  Only the diagnostic
        # counters carry run state.
        self.forwarded_packets = 0
        self.direct_packets = 0

    # -- topology ----------------------------------------------------------

    def is_peer(self, a: int, b: int) -> bool:
        """True when two distinct sites share a row or a column."""
        return a != b and self._fwd_table[a * self._num_sites + b] is None

    def forwarder_candidates(self, src: int, dst: int) -> Tuple[int, int]:
        """The two sites that are peers of both endpoints."""
        fwd = self._fwd_table[src * self._num_sites + dst]
        if fwd is not None:
            return fwd
        layout = self.config.layout
        rs, cs = self._coords[src]
        rd, cd = self._coords[dst]
        return layout.site_at(rs, cd), layout.site_at(rd, cs)

    def channel(self, src: int, dst: int) -> Channel:
        if not self.is_peer(src, dst):
            raise ValueError("no direct channel between %d and %d" % (src, dst))
        idx = src * self._num_sites + dst
        ch = self._channel_table[idx]
        if ch is None:
            ch = self._new_channel(
                self.channel_gb_per_s,
                self.propagation_ps(src, dst),
                name="lp2p[%d->%d]" % (src, dst),
            )
            self._channel_table[idx] = ch
        return ch

    def _arrival_cb(self, via: int) -> Callable[[Packet], None]:
        cb = self._fwd_arrival[via]
        if cb is None:
            at_forwarder = self._at_forwarder

            def cb(packet: Packet, _via: int = via) -> None:
                at_forwarder(packet, _via)

            self._fwd_arrival[via] = cb
        return cb

    # -- routing -----------------------------------------------------------

    def _route(self, packet: Packet) -> None:
        src = packet.src
        dst = packet.dst
        n = self._num_sites
        fwd = self._fwd_table[src * n + dst]
        if fwd is None:
            packet.hops = 1
            self.direct_packets += 1
            ch = self._channel_table[src * n + dst]
            if ch is None:
                ch = self.channel(src, dst)
            ch.send(packet, self._deliver)
            return
        self.forwarded_packets += 1
        packet.hops = 2
        a, b = fwd
        # adaptive: pick the forwarder whose first-leg channel is freer;
        # deterministic tie-break on site id keeps runs reproducible.
        ch_a = self._channel_table[src * n + a]
        if ch_a is None:
            ch_a = self.channel(src, a)
        ch_b = self._channel_table[src * n + b]
        if ch_b is None:
            ch_b = self.channel(src, b)
        now = self.sim.now
        qa = ch_a.next_free - now
        if qa < 0:
            qa = 0
        qb = ch_b.next_free - now
        if qb < 0:
            qb = 0
        if (qa, a) <= (qb, b):
            ch_a.send(packet, self._arrival_cb(a))
        else:
            ch_b.send(packet, self._arrival_cb(b))

    def _at_forwarder(self, packet: Packet, via: int) -> None:
        """O-E conversion, one-cycle 7x7 router, E-O re-transmission."""
        self.stats.energy.add("router", router_energy_pj(packet.size_bytes))
        self.sim.schedule(self.router_latency_ps,
                          self._forward, packet, via)

    def _forward(self, packet: Packet, via: int) -> None:
        ch = self._channel_table[via * self._num_sites + packet.dst]
        if ch is None:
            ch = self.channel(via, packet.dst)
        ch.send(packet, self._deliver)


@register_kernel("limited_point_to_point")
def _vectorized_limited_p2p(net: LimitedPointToPointNetwork,
                            plan) -> KernelOutput:
    """Replay kernel: exact event order over flat state, delivers batched.

    The adaptive forwarder choice reads channel ``next_free`` at inject
    time, so dispatch order matters and the load point cannot collapse
    to a closed form.  Instead the kernel replays the engine's
    ``(time, seq)`` dispatch order over flat integer state — sequence
    numbers are allocated at exactly the points the engine allocates
    them, *including* for delivers, which never enter the replay: a
    sweep ``_deliver`` is terminal (stats only, order-independent), so
    delivery times are collected into arrays and folded in at the end.

    The replay is *calendar-segmented*: a forwarder arrival trails its
    send by at least the serialization time (``start >= t`` and
    propagation is non-negative) and the post-router re-transmission
    trails the arrival by the router latency, so with buckets no wider
    than ``min(tx, router_ps)`` no scheduled event ever lands in the
    bucket currently dispatching — append + one C-level sort per bucket
    replaces heap churn.  Injections merge in from a size-``num_sites``
    heap of per-site stream heads on full ``(time, seq)`` tuples.
    """
    n = net._num_sites
    pps = plan.pps
    horizon = plan.horizon_ps
    loop_ps = net.config.loopback_latency_ps
    router_ps = net.router_latency_ps
    tx = serialization_ps(plan.packet_bytes, net.channel_gb_per_s)
    prop = pair_propagation_table(net.config.layout)
    fwd_table = net._fwd_table
    times = plan.site_times
    dsts = plan.site_dsts
    next_free = [0] * (n * n)

    import heapq

    heapreplace = heapq.heapreplace
    heappop = heapq.heappop
    # every dynamically scheduled event trails its scheduler by at least
    # W, so an event never lands in the bucket currently dispatching
    W = max(1, min(tx, router_ps))
    # bucket array parked in the warm context's scratch arena between
    # load points (all-None on hand-back: every stored bucket index is
    # <= horizon // W and gets cleared when dispatched)
    scr = plan.scratch
    buckets: Optional[List[Optional[list]]] = \
        scr.pop("buckets", None) if scr is not None else None
    if buckets is None or len(buckets) < horizon // W + 2:
        buckets = [None] * (horizon // W + 2)
    # per-site injection stream heads: (time, seq, site, idx)
    inj_heap = [(times[site][0], site, site, 0) for site in range(n)]
    heapq.heapify(inj_heap)
    seq = n  # at_many stamped the initial injections 0..n-1 in site order
    deliver_t = []
    deliver_i = []
    injected = 0
    dispatched = 0
    pending = False
    t = 0
    bucket = 0
    last_bucket = horizon // W
    while bucket <= last_bucket:
        ev = buckets[bucket]
        if ev is not None:
            buckets[bucket] = None
            ev.sort()
        elif not inj_heap:
            bucket += 1
            continue
        bucket_end = (bucket + 1) * W
        i = 0
        m = len(ev) if ev is not None else 0
        while True:
            if inj_heap:
                inj = inj_heap[0]
                if i < m:
                    e = ev[i]
                    take_inj = inj < e
                else:
                    e = None
                    take_inj = inj[0] < bucket_end
            elif i < m:
                e = ev[i]
                take_inj = False
            else:
                break
            if take_inj:
                t, _, site, idx = inj
                if t > horizon:
                    pending = True
                    heappop(inj_heap)
                    continue
                dispatched += 1
                injected += 1
                dst = dsts[site][idx]
                if dst == site:
                    deliver_t.append(t + loop_ps)
                    deliver_i.append(t)
                    seq += 1
                else:
                    fwd = fwd_table[site * n + dst]
                    if fwd is None:
                        k = site * n + dst
                        nf = next_free[k]
                        start = t if t >= nf else nf
                        next_free[k] = start + tx
                        deliver_t.append(start + tx + prop[k])
                        deliver_i.append(t)
                        seq += 1
                    else:
                        fa, fb = fwd
                        ka = site * n + fa
                        kb = site * n + fb
                        qa = next_free[ka] - t
                        if qa < 0:
                            qa = 0
                        qb = next_free[kb] - t
                        if qb < 0:
                            qb = 0
                        if (qa, fa) <= (qb, fb):
                            via, k = fa, ka
                        else:
                            via, k = fb, kb
                        nf = next_free[k]
                        start = t if t >= nf else nf
                        next_free[k] = start + tx
                        tr = start + tx + prop[k]
                        if tr > horizon:
                            pending = True
                        else:
                            lst = buckets[tr // W]
                            if lst is None:
                                buckets[tr // W] = [(tr, seq, 1,
                                                     via, dst, t)]
                            else:
                                lst.append((tr, seq, 1, via, dst, t))
                        seq += 1
                nxt = idx + 1
                if nxt < pps:
                    heapreplace(inj_heap, (times[site][nxt], seq, site, nxt))
                    seq += 1
                else:
                    heappop(inj_heap)
                continue
            if e is None:
                break
            t, _, kind, a, b, c = e
            i += 1
            dispatched += 1
            if kind == 1:
                tr = t + router_ps
                if tr > horizon:
                    pending = True
                else:
                    lst = buckets[tr // W]
                    if lst is None:
                        buckets[tr // W] = [(tr, seq, 2, a, b, c)]
                    else:
                        lst.append((tr, seq, 2, a, b, c))
                seq += 1
            else:
                k = a * n + b
                nf = next_free[k]
                start = t if t >= nf else nf
                next_free[k] = start + tx
                deliver_t.append(start + tx + prop[k])
                deliver_i.append(c)
                seq += 1
        bucket += 1
    if inj_heap:
        pending = True
    if scr is not None:
        scr["buckets"] = buckets
    return KernelOutput(heap_events=dispatched, heap_pending=pending,
                        deliver_t=deliver_t, deliver_inject=deliver_i,
                        injected=injected, last_event_ps=t)
