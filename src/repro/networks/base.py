"""Common machinery for the five macrochip inter-site networks.

Every network model in this package follows the same contract:

* construct with a :class:`~repro.macrochip.config.MacrochipConfig` and a
  :class:`~repro.core.engine.Simulator`;
* ``inject(packet)`` hands the network a packet at the current simulation
  time; the network delivers it later by invoking the registered sink;
* ``stats`` accumulates latency/throughput/energy.

Channels are modeled as serialized servers: a channel with bandwidth ``B``
and propagation delay ``D`` transmits packets back-to-back (transmission
time = size/B) and delivers each at ``start + size/B + D``.  This is exact
for the paper's networks, none of which uses wormhole flow control.

Intra-site traffic (src == dst) bypasses the optical network over a
single-cycle electrical loopback, as the paper models it (section 6.2).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

from ..core import tracing
from ..core.engine import Simulator
from ..core.interning import intern_memo
from ..core.stats import NetworkStats
from ..core.tracing import TraceRecorder
from ..core.units import serialization_ps
from ..macrochip.config import MacrochipConfig
from ..photonics.power import transmit_energy_pj

_packet_ids = itertools.count()


class Packet:
    """One network message.

    ``kind`` distinguishes coherence message classes ('req', 'data', 'inv',
    'ack', ...) for statistics; ``on_delivered`` is an optional callback the
    coherence replay layer uses to chain protocol steps.
    """

    __slots__ = ("pid", "src", "dst", "size_bytes", "t_inject", "t_deliver",
                 "kind", "on_delivered", "hops")

    def __init__(self, src: int, dst: int, size_bytes: int,
                 kind: str = "data",
                 on_delivered: Optional[Callable[["Packet"], None]] = None,
                 pid: Optional[int] = None):
        # pid=None draws from the process-global counter (historical
        # behavior); harnesses that need run-reproducible raw ids pass
        # their own per-run allocation (see repro.core.sweep) so a warm
        # rerun emits the same pids as a cold one, not just the same
        # canonically-renumbered trace
        self.pid = next(_packet_ids) if pid is None else pid
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.kind = kind
        self.on_delivered = on_delivered
        self.t_inject = -1
        self.t_deliver = -1
        self.hops = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("Packet(#%d %d->%d %dB %s)"
                % (self.pid, self.src, self.dst, self.size_bytes, self.kind))


class Channel:
    """A serialized optical (or electrical) channel.

    ``send`` enqueues a packet for transmission; the completion callback
    fires when the last bit arrives at the far end.  ``next_free`` exposes
    the earliest time a new transmission could start (used by adaptive
    routing in the limited point-to-point network).
    """

    __slots__ = ("sim", "bandwidth_gb_per_s", "propagation_ps", "next_free",
                 "busy_ps", "name", "tracer", "_tx_cache")

    def __init__(self, sim: Simulator, bandwidth_gb_per_s: float,
                 propagation_ps: int, name: str = "",
                 tracer: Optional[TraceRecorder] = None) -> None:
        if bandwidth_gb_per_s <= 0:
            raise ValueError("channel bandwidth must be positive")
        if propagation_ps < 0:
            raise ValueError("propagation delay must be non-negative")
        self.sim = sim
        self.bandwidth_gb_per_s = bandwidth_gb_per_s
        self.propagation_ps = propagation_ps
        self.next_free = 0
        self.busy_ps = 0
        self.name = name
        self.tracer = tracer
        #: per-size serialization times; traffic uses a handful of sizes
        #: (64 B lines dominate), so the float conversion runs once per
        #: size instead of once per packet
        self._tx_cache: Dict[int, int] = {}

    def serialization_ps(self, size_bytes: int) -> int:
        tx = self._tx_cache.get(size_bytes)
        if tx is None:
            tx = serialization_ps(size_bytes, self.bandwidth_gb_per_s)
            self._tx_cache[size_bytes] = tx
        return tx

    def queue_delay_ps(self) -> int:
        """How long a packet injected now would wait before transmitting."""
        return max(0, self.next_free - self.sim.now)

    def reset(self) -> None:
        """Return to freshly-constructed state: idle timeline, zero busy
        accounting.  ``_tx_cache`` is a pure per-size memo and survives
        (identical values would be recomputed)."""
        self.next_free = 0
        self.busy_ps = 0

    def send(self, packet: Packet,
             on_arrival: Callable[[Packet], None]) -> int:
        """Transmit ``packet``; returns the arrival time at the far end."""
        now = self.sim.now
        next_free = self.next_free
        start = now if now >= next_free else next_free
        tx = self._tx_cache.get(packet.size_bytes)
        if tx is None:
            tx = self.serialization_ps(packet.size_bytes)
        self.next_free = start + tx
        self.busy_ps += tx
        arrival = start + tx + self.propagation_ps
        if self.tracer is not None:
            pid = packet.pid
            self.tracer.emit(self.sim.now, tracing.ENQUEUE, pid=pid,
                             resource=self.name, start_ps=start,
                             end_ps=start + tx)
            self.tracer.emit(start, tracing.TX_START, pid=pid,
                             resource=self.name, start_ps=start,
                             end_ps=start + tx)
            self.tracer.emit(start + tx, tracing.TX_END, pid=pid,
                             resource=self.name, start_ps=start,
                             end_ps=arrival)
        self.sim.at(arrival, on_arrival, packet)
        return arrival

    def reserve(self, start_ps: int, duration_ps: int) -> None:
        """Mark the channel busy for an externally scheduled slot (used by
        the slotted two-phase network)."""
        self.next_free = max(self.next_free, start_ps + duration_ps)
        self.busy_ps += duration_ps


class InterSiteNetwork:
    """Abstract base for the five network architectures."""

    #: Human-readable name used in tables ('Point-to-Point', ...).
    name = "abstract"
    #: Section 4.1 taxonomy: "none" (no switching or routing),
    #: "circuit" (circuit switched), "arbitrated" (arbitration-based
    #: switching), or "electronic" (optical with electronic routing).
    switching_class = "abstract"

    def __init__(self, config: MacrochipConfig, sim: Simulator,
                 warmup_ps: int = 0) -> None:
        self.config = config
        self.sim = sim
        self.stats = NetworkStats(warmup_ps)
        self._sink: Optional[Callable[[Packet], None]] = None
        #: optional structured-event recorder (repro.core.tracing); None
        #: by default so the hot paths pay one attribute test and nothing
        #: else.  Attach with set_tracer()/tracing.attach().
        self.tracer: Optional[TraceRecorder] = None
        self._owned_channels: List[Channel] = []
        # per-(size, hops) dynamic-energy cache: transmit_energy_pj is a
        # pure function of size and the (fixed) technology point, so the
        # float pipeline runs once per distinct key instead of per
        # packet.  The memo is interned per technology point — every
        # instance built from an equal tech shares (and helps fill) one
        # dict, and fork-based workers inherit the parent's fills
        # copy-on-write.
        self._energy_cache: Dict[Tuple[int, int], float] = intern_memo(
            ("energy_pj", config.tech), dict)

    # -- public interface -------------------------------------------------

    def set_sink(self, sink: Callable[[Packet], None]) -> None:
        """Register the callback invoked for every delivered packet."""
        self._sink = sink

    def set_tracer(self, tracer: Optional[TraceRecorder]) -> None:
        """Attach (or detach, with None) a structured-event recorder.

        Covers channels created both before and after the attachment —
        networks build channels lazily, so both orders occur.
        """
        self.tracer = tracer
        for ch in self._owned_channels:
            ch.tracer = tracer

    def invariant_capacities(self) -> Dict[str, int]:
        """Per-resource grant capacities for the exclusivity checker;
        resources not listed default to capacity 1."""
        return {}

    def reset(self) -> None:
        """Return the network to freshly-constructed state.

        The warm-start contract (locked by ``tests/test_warmstart.py``):
        after ``reset()`` — paired with ``Simulator.reset()`` on the
        owning simulator — a run must be bit-identical to one on a newly
        constructed instance.  What it clears: statistics, channel
        timelines, sink, tracer, and (via :meth:`_reset_state`) every
        subclass's mutable protocol state.  What it deliberately keeps:
        lazily-created channels (their timelines are rewound, which is
        exactly the state a fresh lazy creation would produce) and the
        pure derived-value memos (serialization, energy, slot, and
        propagation tables — identical values would be recomputed).
        """
        self.stats.reset()
        for ch in self._owned_channels:
            ch.reset()
        self._sink = None
        self.set_tracer(None)
        self._reset_state()

    def inject(self, packet: Packet) -> None:
        """Accept a packet for delivery.  Subclasses route it."""
        packet.t_inject = self.sim.now
        self.stats.injected_packets += 1  # inlined NetworkStats.on_inject
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, tracing.INJECT, pid=packet.pid,
                             src=packet.src, dst=packet.dst,
                             size_bytes=packet.size_bytes)
        if packet.src == packet.dst:
            self.sim.schedule(self.config.loopback_latency_ps,
                              self._deliver, packet)
            return
        self._route(packet)

    # -- subclass hooks ----------------------------------------------------

    def _route(self, packet: Packet) -> None:
        raise NotImplementedError

    def _reset_state(self) -> None:
        """Clear subclass protocol state (token positions, switch trees,
        engine queues, diagnostic counters, ...) back to as-constructed.
        The base implementation is a no-op: purely channel-based
        networks (point-to-point, electrical baseline) have nothing
        beyond what :meth:`reset` already rewinds."""

    # -- shared helpers ----------------------------------------------------

    def _new_channel(self, bandwidth_gb_per_s: float, propagation_ps: int,
                     name: str) -> Channel:
        """Create a channel wired to this network's tracer (if any) and
        tracked so a later set_tracer() reaches it too."""
        ch = Channel(self.sim, bandwidth_gb_per_s, propagation_ps,
                     name=name, tracer=self.tracer)
        self._owned_channels.append(ch)
        return ch

    def _deliver(self, packet: Packet) -> None:
        """Record stats and hand the packet to the sink.  Subclasses call
        this (directly or via Channel callbacks) at arrival time."""
        packet.t_deliver = self.sim.now
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, tracing.DELIVER, pid=packet.pid,
                             src=packet.src, dst=packet.dst,
                             size_bytes=packet.size_bytes)
        self.stats.on_deliver(self.sim.now, packet.t_inject, packet.size_bytes)
        self._account_optical_energy(packet)
        if packet.on_delivered is not None:
            packet.on_delivered(packet)
        if self._sink is not None:
            self._sink(packet)

    def _account_optical_energy(self, packet: Packet) -> None:
        if packet.src == packet.dst:
            return
        hops = max(1, packet.hops) if packet.hops else 1
        key = (packet.size_bytes, hops)
        pj = self._energy_cache.get(key)
        if pj is None:
            pj = transmit_energy_pj(packet.size_bytes, self.config.tech) * hops
            self._energy_cache[key] = pj
        self.stats.energy.add("optical", pj)

    def propagation_ps(self, src: int, dst: int) -> int:
        return self.config.layout.propagation_delay_ps(src, dst)
