"""Statically-routed WDM point-to-point network (paper section 4.2).

Every site owns a dedicated optical channel to every other site: the
transmitter picks the waveguide leading to the destination column and the
wavelength dropped at the destination site, so there is **no arbitration,
switching, or routing** of any kind.  The price is a narrow data path: in
the scaled Table 4 configuration each site's 128 transmitters are divided
over 64 destinations, giving a 2-wavelength, 5 GB/s channel per pair.

Packets to a given destination queue FIFO on the pair's private channel;
latency is pure serialization + Manhattan propagation + queueing.
"""

from __future__ import annotations

from typing import List, Optional

from .base import Channel, InterSiteNetwork, Packet
from ..core.engine import Simulator
from ..macrochip.config import MacrochipConfig


class PointToPointNetwork(InterSiteNetwork):
    """Fully connected static WDM point-to-point network."""

    name = "Point-to-Point"
    switching_class = "none"

    def __init__(self, config: MacrochipConfig, sim: Simulator,
                 warmup_ps: int = 0) -> None:
        super().__init__(config, sim, warmup_ps)
        n = config.num_sites
        # 128 Tx spread over all destinations (incl. the loopback slot the
        # paper's table implies by dividing by 64): floor to whole
        # wavelengths, minimum 1.
        wavelengths = max(1, config.transmitters_per_site // n)
        self.channel_wavelengths = wavelengths
        self.channel_gb_per_s = wavelengths * config.wavelength_gb_per_s
        self._num_sites = n
        # flat src*n+dst channel table, filled on first use: one index
        # per packet on the hot path instead of a tuple-key dict probe
        self._channel_table: List[Optional[Channel]] = [None] * (n * n)

    def channel(self, src: int, dst: int) -> Channel:
        """The dedicated (lazily created) channel for a site pair."""
        idx = src * self._num_sites + dst
        ch = self._channel_table[idx]
        if ch is None:
            ch = self._new_channel(
                self.channel_gb_per_s,
                self.propagation_ps(src, dst),
                name="p2p[%d->%d]" % (src, dst),
            )
            self._channel_table[idx] = ch
        return ch

    def _route(self, packet: Packet) -> None:
        packet.hops = 1
        src = packet.src
        dst = packet.dst
        ch = self._channel_table[src * self._num_sites + dst]
        if ch is None:
            ch = self.channel(src, dst)
        ch.send(packet, self._deliver)
