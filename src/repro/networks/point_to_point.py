"""Statically-routed WDM point-to-point network (paper section 4.2).

Every site owns a dedicated optical channel to every other site: the
transmitter picks the waveguide leading to the destination column and the
wavelength dropped at the destination site, so there is **no arbitration,
switching, or routing** of any kind.  The price is a narrow data path: in
the scaled Table 4 configuration each site's 128 transmitters are divided
over 64 destinations, giving a 2-wavelength, 5 GB/s channel per pair.

Packets to a given destination queue FIFO on the pair's private channel;
latency is pure serialization + Manhattan propagation + queueing.
"""

from __future__ import annotations

from typing import List, Optional

from .base import Channel, InterSiteNetwork, Packet
from ..core.engine import Simulator
from ..core.units import serialization_ps
from ..core.vectorized import (KernelOutput, fifo_channel_delivery,
                               pair_propagation_table, register_kernel)
from ..macrochip.config import MacrochipConfig


class PointToPointNetwork(InterSiteNetwork):
    """Fully connected static WDM point-to-point network."""

    name = "Point-to-Point"
    switching_class = "none"

    def __init__(self, config: MacrochipConfig, sim: Simulator,
                 warmup_ps: int = 0) -> None:
        super().__init__(config, sim, warmup_ps)
        n = config.num_sites
        # 128 Tx spread over all destinations (incl. the loopback slot the
        # paper's table implies by dividing by 64): floor to whole
        # wavelengths, minimum 1.
        wavelengths = max(1, config.transmitters_per_site // n)
        self.channel_wavelengths = wavelengths
        self.channel_gb_per_s = wavelengths * config.wavelength_gb_per_s
        self._num_sites = n
        # flat src*n+dst channel table, filled on first use: one index
        # per packet on the hot path instead of a tuple-key dict probe
        self._channel_table: List[Optional[Channel]] = [None] * (n * n)

    def channel(self, src: int, dst: int) -> Channel:
        """The dedicated (lazily created) channel for a site pair."""
        idx = src * self._num_sites + dst
        ch = self._channel_table[idx]
        if ch is None:
            ch = self._new_channel(
                self.channel_gb_per_s,
                self.propagation_ps(src, dst),
                name="p2p[%d->%d]" % (src, dst),
            )
            self._channel_table[idx] = ch
        return ch

    def _route(self, packet: Packet) -> None:
        packet.hops = 1
        src = packet.src
        dst = packet.dst
        ch = self._channel_table[src * self._num_sites + dst]
        if ch is None:
            ch = self.channel(src, dst)
        ch.send(packet, self._deliver)


@register_kernel("point_to_point")
def _vectorized_point_to_point(net: PointToPointNetwork, plan) -> KernelOutput:
    """Bulk kernel: the whole load point without an event loop.

    Valid because the network has no shared state beyond per-pair FIFO
    channels, each owned by exactly one source site: a site's injection
    times strictly increase (gaps are >= 1 ps), so per-channel dispatch
    order equals per-site index order and the closed-form FIFO
    recurrence (:func:`repro.core.vectorized.fifo_channel_delivery`)
    yields every delivery time at once.  Only injector-chain events ever
    sit in the scalar heap here — delivers are terminal — so the event
    count is the dispatched injections plus in-horizon deliveries.
    """
    import numpy as np

    n = net._num_sites
    tx = serialization_ps(plan.packet_bytes, net.channel_gb_per_s)
    prop = np.asarray(pair_propagation_table(net.config.layout),
                      dtype=np.int64)
    loop_ps = net.config.loopback_latency_ps
    horizon = plan.horizon_ps

    key_parts = []
    t_parts = []
    deliver_t = []
    deliver_i = []
    injected = 0
    inject_pending = False
    last_event = 0
    for site in range(n):
        times = plan.site_times_np[site]
        m = int(np.searchsorted(times, horizon, side="right"))
        injected += m
        if m < plan.pps:
            inject_pending = True  # next injector event sits past horizon
        if m == 0:
            continue
        if int(times[m - 1]) > last_event:
            last_event = int(times[m - 1])
        t = times[:m]
        d = np.asarray(plan.site_dsts[site][:m], dtype=np.int64)
        self_mask = d == site
        if self_mask.any():
            ts = t[self_mask]
            deliver_t.append(ts + loop_ps)  # electrical loopback
            deliver_i.append(ts)
            t = t[~self_mask]
            d = d[~self_mask]
        key_parts.append(site * n + d)
        t_parts.append(t)

    if key_parts:
        key = np.concatenate(key_parts)
        t_all = np.concatenate(t_parts)
        if key.size:
            dt, order = fifo_channel_delivery(np, key, t_all, tx, prop)
            deliver_t.append(dt)
            deliver_i.append(t_all[order])  # send time == inject time here
    empty = np.empty(0, dtype=np.int64)
    return KernelOutput(
        heap_events=injected,
        heap_pending=inject_pending,
        deliver_t=np.concatenate(deliver_t) if deliver_t else empty,
        deliver_inject=np.concatenate(deliver_i) if deliver_i else empty,
        injected=injected,
        last_event_ps=last_event)
