"""Circuit-switched optical torus — the Petracca/Shacham adaptation
(section 4.5).

An 8x8 optical torus overlays the macrochip.  The non-blocking switching
fabric places four 4x4 switch points on every inter-site crossing
(section 4.5: the worst-case path crosses 31 switch points, ~15 dB at the
aggressive 0.5 dB/switch assumption), controlled by a *low-bandwidth
optical control network* — the paper's substitution for the original
electronic path-setup mesh, which would have required an active
substrate.  To move a packet:

1. a circuit engine at the source launches a path-setup message that is
   received, decoded, and re-emitted at every switch point along the XY
   torus route (per-hop O-E conversion + control processing dominates);
2. the destination returns an optical acknowledgment at light speed over
   the now-reserved circuit;
3. the source streams the packet over the 320 GB/s circuit;
4. the circuit is torn down and the engine freed.

Each site has a handful of circuit engines (the "additional routers
required for non-blocking operation" of section 4.5); for 64-byte
cache-line transfers the multi-hop setup round trip, not the 0.2 ns of
data, is the service time — which is why this network has both the
highest base latency and the lowest saturation bandwidth (~2.5% of peak)
in Figure 6, and why the paper finds path setup "causes significant
delays for small transfers such as cache lines".
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from .base import Channel, InterSiteNetwork, Packet
from ..core import tracing
from ..core.engine import Simulator
from ..core.interning import intern_memo
from ..core.units import propagation_ps, serialization_ps
from ..core.vectorized import KernelOutput, register_kernel
from ..macrochip.config import MacrochipConfig


#: switch points per inter-site crossing in the non-blocking fabric; with
#: the -1 for the shared destination ingress this yields the paper's
#: 31-hop worst case on the 8x8 torus (4 * (4+4) - 1).
SWITCH_POINTS_PER_CROSSING = 4


class CircuitSwitchedTorus(InterSiteNetwork):
    """Optical circuit-switched torus with optical control-path setup."""

    name = "Circuit-Switched"
    switching_class = "circuit"

    def __init__(self, config: MacrochipConfig, sim: Simulator,
                 warmup_ps: int = 0,
                 control_hop_cycles: int = 20,
                 engines_per_site: int = 8,
                 teardown_cycles: int = 2) -> None:
        super().__init__(config, sim, warmup_ps)
        self.data_gb_per_s = (config.transmitters_per_site
                              * config.wavelength_gb_per_s)
        #: O-E conversion + decode + switch actuation at one switch point
        self.control_hop_ps = config.cycles_ps(control_hop_cycles)
        self.teardown_ps = config.cycles_ps(teardown_cycles)
        #: optical flight time between adjacent switch points
        self.hop_prop_ps = propagation_ps(
            config.layout.site_pitch_cm / SWITCH_POINTS_PER_CROSSING)
        self.engines_per_site = engines_per_site
        n = config.num_sites
        self._num_sites = n
        self._engines_free: List[int] = [engines_per_site] * n
        self._engine_queue: List[Deque[Packet]] = [deque() for _ in range(n)]
        self._rx_port_table: List[Optional[Channel]] = [None] * n
        # lazily filled per-pair tables: setup+ack round trip consulted
        # once per circuit, data flight time once per transfer.  Both
        # hold pure per-pair values (geometry + fixed per-hop costs), so
        # the memos are interned — keyed by everything the values depend
        # on — and fills accumulate across instances and load points.
        self._setup_ack_table: List[int] = intern_memo(
            ("cs-setup-ack", config.layout, self.control_hop_ps,
             self.hop_prop_ps), lambda: [-1] * (n * n))
        self._flight_table: List[int] = intern_memo(
            ("cs-flight", config.layout), lambda: [-1] * (n * n))
        #: circuits established (setup count), for tests/diagnostics
        self.circuits_established = 0

    def _reset_state(self) -> None:
        # refill the engine pools, drop queued packets, zero diagnostics
        # (rx ports are channels — the base reset rewinds their
        # timelines; the interned per-pair tables are pure and stay)
        for s in range(self._num_sites):
            self._engines_free[s] = self.engines_per_site
            self._engine_queue[s].clear()
        self.circuits_established = 0

    # -- path geometry -----------------------------------------------------

    def switch_hops(self, src: int, dst: int) -> int:
        """Switch points a circuit traverses: four per site crossing on
        the XY torus route, sharing the destination ingress point."""
        hr, hc = self.config.layout.torus_hop_counts(src, dst)
        return max(1, SWITCH_POINTS_PER_CROSSING * (hr + hc) - 1)

    def setup_latency_ps(self, src: int, dst: int) -> int:
        """One-way path-setup time: control processing at each switch
        point plus the flight time between them."""
        hops = self.switch_hops(src, dst)
        return hops * (self.control_hop_ps + self.hop_prop_ps)

    def ack_latency_ps(self, src: int, dst: int) -> int:
        """The acknowledgment returns on the established circuit at light
        speed (no per-hop processing)."""
        return propagation_ps(self.config.layout.torus_distance_cm(src, dst))

    def _rx_port(self, dst: int) -> Channel:
        port = self._rx_port_table[dst]
        if port is None:
            port = self._new_channel(self.data_gb_per_s, 0,
                                     name="cs-rx[%d]" % dst)
            self._rx_port_table[dst] = port
        return port

    def invariant_capacities(self) -> Dict[str, int]:
        return {"engine:%d" % s: self.engines_per_site
                for s in range(self.config.num_sites)}

    # -- routing -----------------------------------------------------------

    def _route(self, packet: Packet) -> None:
        packet.hops = 1
        src = packet.src
        if self._engines_free[src] > 0:
            self._engines_free[src] -= 1
            if self.tracer is not None:
                self.tracer.emit(self.sim.now, tracing.GRANT, pid=packet.pid,
                                 resource="engine:%d" % src)
            self._begin_setup(packet)
        else:
            if self.tracer is not None:
                self.tracer.emit(self.sim.now, tracing.ENQUEUE,
                                 pid=packet.pid, resource="engine:%d" % src)
            self._engine_queue[src].append(packet)

    def _begin_setup(self, packet: Packet) -> None:
        idx = packet.src * self._num_sites + packet.dst
        rtt = self._setup_ack_table[idx]
        if rtt < 0:
            rtt = (self.setup_latency_ps(packet.src, packet.dst)
                   + self.ack_latency_ps(packet.src, packet.dst))
            self._setup_ack_table[idx] = rtt
        self.sim.schedule(rtt, self._circuit_ready, packet)

    def _circuit_ready(self, packet: Packet) -> None:
        """Ack received: stream the data over the circuit."""
        self.circuits_established += 1
        port = self._rx_port_table[packet.dst]
        if port is None:
            port = self._rx_port(packet.dst)
        tx = port.serialization_ps(packet.size_bytes)
        idx = packet.src * self._num_sites + packet.dst
        flight = self._flight_table[idx]
        if flight < 0:
            flight = propagation_ps(
                self.config.layout.torus_distance_cm(packet.src, packet.dst))
            self._flight_table[idx] = flight
        start = max(self.sim.now, port.next_free - flight)
        done_at_src = start + tx
        port.next_free = done_at_src + flight
        port.busy_ps += tx
        if self.tracer is not None:
            # destination ingress occupancy, in arrival-side time (what
            # port.next_free serializes): the interval the last-hop
            # receiver is busy with this packet's bits
            self.tracer.emit(self.sim.now, tracing.GRANT, pid=packet.pid,
                             src=packet.src, dst=packet.dst,
                             resource=port.name,
                             start_ps=start + flight,
                             end_ps=done_at_src + flight)
        self.sim.at(done_at_src + flight, self._deliver, packet)
        # the engine is freed once data has left and teardown is issued
        self.sim.at(done_at_src + self.teardown_ps,
                    self._release_engine, packet.src)

    def _release_engine(self, src: int) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, tracing.RELEASE,
                             resource="engine:%d" % src)
        queue = self._engine_queue[src]
        if queue:
            packet = queue.popleft()
            if self.tracer is not None:
                self.tracer.emit(self.sim.now, tracing.GRANT, pid=packet.pid,
                                 resource="engine:%d" % src)
            self._begin_setup(packet)
        else:
            self._engines_free[src] += 1


@register_kernel("circuit_switched")
def _vectorized_circuit_switched(net: CircuitSwitchedTorus,
                                 plan) -> KernelOutput:
    """Replay kernel: engine pools + rx-port timelines over flat state.

    Engine contention (a site's fixed pool of circuit engines, with a
    FIFO overflow queue drained at teardown) couples packets through
    dispatch order, so the load point replays the engine's ``(time,
    seq)`` dispatch order exactly over flat integer state.  Like the
    two-phase kernel, the replay is *calendar-segmented* rather than
    heap-driven: a circuit-ready event trails its request by at least
    the smallest setup+ack round trip (one control hop plus its flight)
    and an engine release trails the ready event by at least the data
    serialization plus teardown, so with buckets no wider than the
    smaller of those two bounds no event ever lands in the bucket being
    dispatched — append + one C-level sort per bucket replaces heap
    churn.  Injections merge in from a size-``num_sites`` heap of
    per-site stream heads on full ``(time, seq)`` tuples.  Delivers —
    terminal in a sweep — are batched into arrays.  The per-pair
    setup/ack and flight costs fill the *same* interned memos the
    scalar instances share, so warm fills accumulate across backends
    too.
    """
    n = net._num_sites
    pps = plan.pps
    horizon = plan.horizon_ps
    loop_ps = net.config.loopback_latency_ps
    teardown = net.teardown_ps
    tx = serialization_ps(plan.packet_bytes, net.data_gb_per_s)
    setup_ack = net._setup_ack_table
    flights = net._flight_table
    times = plan.site_times
    dsts = plan.site_dsts
    engines_free = [net.engines_per_site] * n
    engine_queue: List[Deque] = [deque() for _ in range(n)]
    port_next_free = [0] * n

    import heapq

    heapreplace = heapq.heapreplace
    heappop = heapq.heappop
    # every dynamically scheduled event trails its scheduler by at least
    # W, so an event never lands in the bucket currently dispatching
    W = max(1, min(tx + teardown, net.control_hop_ps + net.hop_prop_ps))
    # bucket array parked in the warm context's scratch arena between
    # load points (all-None on hand-back: every stored bucket index is
    # <= horizon // W and gets cleared when dispatched)
    scr = plan.scratch
    buckets: Optional[List[Optional[list]]] = \
        scr.pop("buckets", None) if scr is not None else None
    if buckets is None or len(buckets) < horizon // W + 2:
        buckets = [None] * (horizon // W + 2)
    # per-site injection stream heads: (time, seq, site, idx)
    inj_heap = [(times[site][0], site, site, 0) for site in range(n)]
    heapq.heapify(inj_heap)
    seq = n  # at_many stamped the initial injections 0..n-1 in site order
    deliver_t = []
    deliver_i = []
    injected = 0
    dispatched = 0
    pending = False
    t = 0
    bucket = 0
    last_bucket = horizon // W
    while bucket <= last_bucket:
        ev = buckets[bucket]
        if ev is not None:
            buckets[bucket] = None
            ev.sort()
        elif not inj_heap:
            bucket += 1
            continue
        bucket_end = (bucket + 1) * W
        i = 0
        m = len(ev) if ev is not None else 0
        while True:
            if inj_heap:
                inj = inj_heap[0]
                if i < m:
                    e = ev[i]
                    take_inj = inj < e
                else:
                    e = None
                    take_inj = inj[0] < bucket_end
            elif i < m:
                e = ev[i]
                take_inj = False
            else:
                break
            if take_inj:
                t, _, site, idx = inj
                if t > horizon:
                    pending = True
                    heappop(inj_heap)
                    continue
                dispatched += 1
                injected += 1
                dst = dsts[site][idx]
                if dst == site:
                    deliver_t.append(t + loop_ps)
                    deliver_i.append(t)
                    seq += 1
                elif engines_free[site] > 0:
                    engines_free[site] -= 1
                    pair = site * n + dst
                    rtt = setup_ack[pair]
                    if rtt < 0:
                        rtt = (net.setup_latency_ps(site, dst)
                               + net.ack_latency_ps(site, dst))
                        setup_ack[pair] = rtt
                    tr = t + rtt
                    if tr > horizon:
                        pending = True
                    else:
                        lst = buckets[tr // W]
                        if lst is None:
                            buckets[tr // W] = [(tr, seq, 1, site, dst, t)]
                        else:
                            lst.append((tr, seq, 1, site, dst, t))
                    seq += 1
                else:
                    engine_queue[site].append((dst, t))
                nxt = idx + 1
                if nxt < pps:
                    heapreplace(inj_heap, (times[site][nxt], seq, site, nxt))
                    seq += 1
                else:
                    heappop(inj_heap)
                continue
            if e is None:
                break
            t, _, kind, src, dst, c = e
            i += 1
            dispatched += 1
            if kind == 1:
                pair = src * n + dst
                flight = flights[pair]
                if flight < 0:
                    flight = propagation_ps(
                        net.config.layout.torus_distance_cm(src, dst))
                    flights[pair] = flight
                floor = port_next_free[dst] - flight
                start = t if t >= floor else floor
                done_at_src = start + tx
                port_next_free[dst] = done_at_src + flight
                deliver_t.append(done_at_src + flight)
                deliver_i.append(c)
                seq += 1
                tr = done_at_src + teardown
                if tr > horizon:
                    pending = True
                else:
                    lst = buckets[tr // W]
                    if lst is None:
                        buckets[tr // W] = [(tr, seq, 2, src, 0, 0)]
                    else:
                        lst.append((tr, seq, 2, src, 0, 0))
                seq += 1
            else:
                queue = engine_queue[src]
                if queue:
                    qdst, t_inj = queue.popleft()
                    pair = src * n + qdst
                    rtt = setup_ack[pair]
                    if rtt < 0:
                        rtt = (net.setup_latency_ps(src, qdst)
                               + net.ack_latency_ps(src, qdst))
                        setup_ack[pair] = rtt
                    tr = t + rtt
                    if tr > horizon:
                        pending = True
                    else:
                        lst = buckets[tr // W]
                        if lst is None:
                            buckets[tr // W] = [(tr, seq, 1, src, qdst, t_inj)]
                        else:
                            lst.append((tr, seq, 1, src, qdst, t_inj))
                    seq += 1
                else:
                    engines_free[src] += 1
        bucket += 1
    if inj_heap:
        pending = True
    if scr is not None:
        scr["buckets"] = buckets
    return KernelOutput(heap_events=dispatched, heap_pending=pending,
                        deliver_t=deliver_t, deliver_inject=deliver_i,
                        injected=injected, last_event_ps=t)
