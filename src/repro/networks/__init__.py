"""The five macrochip inter-site photonic network architectures."""

from .base import Channel, InterSiteNetwork, Packet
from .circuit_switched import CircuitSwitchedTorus
from .factory import (
    FIGURE6_NETWORKS,
    FIGURE7_NETWORKS,
    available_networks,
    build_network,
)
from .limited_point_to_point import LimitedPointToPointNetwork
from .point_to_point import PointToPointNetwork
from .token_ring import TokenRingCrossbar
from .two_phase import TwoPhaseAltNetwork, TwoPhaseArbitratedNetwork

__all__ = [
    "Packet",
    "Channel",
    "InterSiteNetwork",
    "PointToPointNetwork",
    "LimitedPointToPointNetwork",
    "TwoPhaseArbitratedNetwork",
    "TwoPhaseAltNetwork",
    "TokenRingCrossbar",
    "CircuitSwitchedTorus",
    "build_network",
    "available_networks",
    "FIGURE6_NETWORKS",
    "FIGURE7_NETWORKS",
]
