"""Construction of the five evaluated networks by name.

The evaluation compares six configurations (the two-phase network is
evaluated in base and ALT forms), identified by the short keys used
throughout the experiments and benchmarks:

==========================  ==========================================
key                         architecture
==========================  ==========================================
``point_to_point``          static WDM point-to-point (section 4.2)
``limited_point_to_point``  limited P2P + electronic routing (4.6)
``two_phase``               two-phase arbitrated network (4.3)
``two_phase_alt``           ALT variant with doubled switch trees
``token_ring``              token-ring crossbar, Corona adaptation (4.4)
``circuit_switched``        circuit-switched torus adaptation (4.5)
``hermes``                  HERMES hierarchical broadcast (extension)
==========================  ==========================================
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import InterSiteNetwork
from .circuit_switched import CircuitSwitchedTorus
from .electrical_baseline import ElectricalBaselineNetwork
from .hermes import HermesHierarchicalNetwork
from .limited_point_to_point import LimitedPointToPointNetwork
from .point_to_point import PointToPointNetwork
from .token_ring import TokenRingCrossbar
from .two_phase import TwoPhaseAltNetwork, TwoPhaseArbitratedNetwork
from ..core.engine import Simulator
from ..macrochip.config import MacrochipConfig


NETWORK_CLASSES: Dict[str, Callable[..., InterSiteNetwork]] = {
    "point_to_point": PointToPointNetwork,
    "electrical_baseline": ElectricalBaselineNetwork,
    "limited_point_to_point": LimitedPointToPointNetwork,
    "two_phase": TwoPhaseArbitratedNetwork,
    "two_phase_alt": TwoPhaseAltNetwork,
    "token_ring": TokenRingCrossbar,
    "circuit_switched": CircuitSwitchedTorus,
    "hermes": HermesHierarchicalNetwork,
}

#: the five architectures of Figure 6 (ALT excluded, as in the paper)
FIGURE6_NETWORKS: List[str] = [
    "token_ring",
    "circuit_switched",
    "point_to_point",
    "limited_point_to_point",
    "two_phase",
]

#: the six configurations of Figures 7, 8, and 10
FIGURE7_NETWORKS: List[str] = [
    "token_ring",
    "circuit_switched",
    "point_to_point",
    "limited_point_to_point",
    "two_phase",
    "two_phase_alt",
]

#: the paper's Figure 6 set plus the HERMES extension network — used by
#: extension studies and the invariant smoke; the paper-exact FIGURE6 /
#: FIGURE7 lists above stay untouched so the pinned artifacts do too
EXTENDED_NETWORKS: List[str] = FIGURE6_NETWORKS + ["hermes"]


def available_networks() -> List[str]:
    return sorted(NETWORK_CLASSES)


def build_network(name: str, config: MacrochipConfig, sim: Simulator,
                  warmup_ps: int = 0, **kwargs) -> InterSiteNetwork:
    """Instantiate a network by key; raises ``KeyError`` with the list of
    valid keys on a typo."""
    try:
        cls = NETWORK_CLASSES[name]
    except KeyError:
        raise KeyError(
            "unknown network %r; choose one of %s"
            % (name, ", ".join(available_networks()))
        ) from None
    return cls(config, sim, warmup_ps=warmup_ps, **kwargs)
