"""Two-phase arbitrated switched optical network (section 4.3).

Topology: all 8 sites in a row share a 16-bit, 40 GB/s optical channel to
each destination site — 512 shared channels on the 8x8 macrochip, each a
pair of waveguide segments fed through broadband switches.  A site selects
*which destination in a column* it feeds with a per-column tree of
broadband switches, so a site can transmit to at most one destination per
column at a time (at most 8 simultaneous 40 GB/s streams).

Arbitration is fully distributed and two-phase (the macrochip is
mesochronous, so every site in an arbitration domain computes the same
slot assignment):

* **Phase 1** — the sender broadcasts a request on its row's request
  waveguide; every site in the domain assigns the same data slot ``Tr``
  to the request, round-robin per destination (modeled as FIFO reservation
  of the shared channel's timeline).
* **Phase 2** — the destination's column manager broadcasts a switch
  notification on the column's notification waveguide; the row feed
  switches and the destination input switch are set before ``Tr``.

**Switch-tree contention** — the mechanism behind the paper's low
sustained bandwidth: slot assignment is per-channel and knows nothing
about the sender's switch trees.  If the sender's tree for that column is
still busy with a transmission to a *different* destination when ``Tr``
arrives, the slot is wasted (the channel stays reserved but idle) and the
packet must re-arbitrate.  The ALT variant doubles the switch trees (and
transmitters/laser power) per column to halve this contention.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .base import Channel, InterSiteNetwork, Packet
from ..core import tracing
from ..core.engine import Simulator
from ..core.interning import intern_memo, intern_table
from ..core.units import propagation_ps, serialization_ps
from ..core.vectorized import (KernelOutput, pair_propagation_table,
                               register_kernel)
from ..macrochip.config import MacrochipConfig


#: basic arbitration/data slot: 0.4 ns (section 4.3)
ARB_SLOT_PS = 400


class TwoPhaseArbitratedNetwork(InterSiteNetwork):
    """Shared-row-channel network with two-phase distributed arbitration."""

    name = "2-Phase Arb."
    switching_class = "arbitrated"

    def __init__(self, config: MacrochipConfig, sim: Simulator,
                 warmup_ps: int = 0,
                 trees_per_column: int = 1,
                 channel_wavelengths: int = 16,
                 switch_setup_ps: int = 500,
                 tree_reconfig_ps: int = 30000) -> None:
        super().__init__(config, sim, warmup_ps)
        layout = config.layout
        self.trees_per_column = trees_per_column
        self.channel_gb_per_s = (channel_wavelengths
                                 * config.wavelength_gb_per_s)
        self.switch_setup_ps = switch_setup_ps
        #: retuning a switch tree to a different destination in its column
        #: takes this long; the notification is timed to accommodate it
        #: (section 4.3: "timed to accommodate the switch delay"), so a
        #: tree must have been idle for the reconfiguration window before
        #: a slot targeting a new destination can use it.  The 30 ns
        #: default (150 cycles) is the calibration point at which the
        #: network saturates at the paper's ~7.5%-of-peak on uniform
        #: traffic; see EXPERIMENTS.md.
        self.tree_reconfig_ps = tree_reconfig_ps
        #: request broadcast flight time along a full row
        self.request_prop_ps = propagation_ps(layout.row_span_cm)
        #: switch-notification flight time along a full column
        self.notify_prop_ps = propagation_ps(layout.col_span_cm)
        # combined request->slot lead time: request flight + one arb slot
        # + notification flight + switch setup (one add per arbitration
        # instead of four)
        self._arb_lead_ps = (self.request_prop_ps + ARB_SLOT_PS
                             + self.notify_prop_ps + self.switch_setup_ps)
        n = layout.num_sites
        self._num_sites = n
        # precomputed coordinate tables: row of a source, column of a
        # destination (the only geometry the protocol consults per
        # packet) — pure functions of the layout, interned per layout
        self._row_of, self._col_of = intern_table(
            ("2ph-rowcol", layout),
            lambda: ([layout.coords(s)[0] for s in range(n)],
                     [layout.coords(s)[1] for s in range(n)]))
        # shared channel per (row, destination), flat row*n+dst table
        self._channel_table: List[Optional[Channel]] = [None] * (layout.rows * n)
        # per (site, column): [busy_until, configured_destination] per
        # tree, flat site*cols+col table
        self._tree_table: List[Optional[List[List[int]]]] = \
            [None] * (n * layout.cols)
        #: per-size cached data-slot durations — a pure memo on channel
        #: bandwidth, shared across instances of the same rate
        self._slot_cache: Dict[int, int] = intern_memo(
            ("2ph-slots", self.channel_gb_per_s), dict)
        #: wasted data slots (tree contention), for tests and diagnostics
        self.wasted_slots = 0
        self.granted_slots = 0

    def _reset_state(self) -> None:
        # drop lazily-created switch-tree state back to untouched (a
        # fresh entry starts "idle since the distant past", which is
        # exactly what lazy creation produces) and zero the diagnostics
        table = self._tree_table
        for i in range(len(table)):
            table[i] = None
        self.wasted_slots = 0
        self.granted_slots = 0

    # -- resources ---------------------------------------------------------

    def channel(self, row: int, dst: int) -> Channel:
        idx = row * self._num_sites + dst
        ch = self._channel_table[idx]
        if ch is None:
            # propagation: worst leg of the shared channel, row + column
            prop = propagation_ps(self.config.layout.row_span_cm / 2.0
                                  + self.config.layout.col_span_cm / 2.0)
            ch = self._new_channel(self.channel_gb_per_s, prop,
                                   name="2ph[row=%d->%d]" % (row, dst))
            self._channel_table[idx] = ch
        return ch

    def _tree_slots(self, site: int, col: int) -> List[List[int]]:
        idx = site * self.config.layout.cols + col
        slots = self._tree_table[idx]
        if slots is None:
            # busy_until starts in the distant past: an untouched tree has
            # had ample time to be configured during the lead window
            slots = [[-(10 ** 15), -1] for _ in range(self.trees_per_column)]
            self._tree_table[idx] = slots
        return slots

    def slot_duration_ps(self, size_bytes: int) -> int:
        """Data slots are integral multiples of the basic slot."""
        dur = self._slot_cache.get(size_bytes)
        if dur is None:
            raw = serialization_ps(size_bytes, self.channel_gb_per_s)
            dur = -(-raw // ARB_SLOT_PS) * ARB_SLOT_PS
            self._slot_cache[size_bytes] = dur
        return dur

    # -- protocol ----------------------------------------------------------

    def _route(self, packet: Packet) -> None:
        packet.hops = 1
        self._arbitrate(packet)

    def _arbitrate(self, packet: Packet) -> None:
        """Phase 1: post the request; all domain members assign slot Tr.

        The earliest slot is request flight + arb slot + notification
        flight + switch setup after "now" (precombined in _arb_lead_ps).
        """
        row = self._row_of[packet.src]
        ch = self._channel_table[row * self._num_sites + packet.dst]
        if ch is None:
            ch = self.channel(row, packet.dst)
        earliest_tr = self.sim.now + self._arb_lead_ps
        dur = self._slot_cache.get(packet.size_bytes)
        if dur is None:
            dur = self.slot_duration_ps(packet.size_bytes)
        next_free = ch.next_free
        tr = earliest_tr if earliest_tr >= next_free else next_free
        ch.reserve(tr, dur)
        if self.tracer is not None:
            # slot reservation on the shared channel timeline: exclusive
            # for [tr, tr+dur) whether or not the slot ends up used
            self.tracer.emit(self.sim.now, tracing.GRANT, pid=packet.pid,
                             resource="slot:" + ch.name,
                             start_ps=tr, end_ps=tr + dur)
        self.sim.at(tr, self._slot_begins, packet, dur)

    def _slot_begins(self, packet: Packet, dur: int) -> None:
        """Phase 2 happened; at Tr the sender needs a switch tree for the
        destination's column that is either already configured for this
        destination, or has been idle long enough to have been retuned
        during the notification lead time.  Otherwise the reserved slot is
        wasted — the channel stays idle for it — and the packet must
        re-arbitrate from scratch."""
        dst_col = self._col_of[packet.dst]
        trees = self._tree_slots(packet.src, dst_col)
        now = self.sim.now
        best = None
        for idx, tree in enumerate(trees):
            busy_until, configured_dst = tree
            lead = 0 if configured_dst == packet.dst else self.tree_reconfig_ps
            if busy_until + lead <= now:
                # prefer an already-configured tree, else the longest idle
                key = (0 if lead == 0 else 1, busy_until)
                if best is None or key < best[0]:
                    best = (key, tree, idx)
        if best is not None:
            _, tree, idx = best
            tree[0] = now + dur
            tree[1] = packet.dst
            self.granted_slots += 1
            if self.tracer is not None:
                self.tracer.emit(now, tracing.GRANT, pid=packet.pid,
                                 resource="tree:%d.%d/%d"
                                 % (packet.src, dst_col, idx),
                                 start_ps=now, end_ps=now + dur)
            arrival = now + dur + self.propagation_ps(packet.src, packet.dst)
            self.sim.at(arrival, self._deliver, packet)
            return
        # tree contention: the reserved slot is wasted, re-arbitrate
        self.wasted_slots += 1
        if self.tracer is not None:
            row = self._row_of[packet.src]
            self.tracer.emit(now, tracing.WASTE, pid=packet.pid,
                             resource="slot:2ph[row=%d->%d]"
                             % (row, packet.dst),
                             start_ps=now, end_ps=now + dur)
        self.sim.schedule(ARB_SLOT_PS, self._arbitrate, packet)


@register_kernel("two_phase")
@register_kernel("two_phase_alt")
def _vectorized_two_phase(net: TwoPhaseArbitratedNetwork,
                          plan) -> KernelOutput:
    """Replay kernel: slot reservation + switch-tree state, flat.

    Wasted slots re-arbitrate against the live shared-channel timeline,
    so dispatch order is load-bearing and the load point replays the
    engine's ``(time, seq)`` dispatch order exactly.  Instead of one
    big heap, events are *segmented into calendar buckets* one
    ``ARB_SLOT_PS`` wide: a slot begins at least ``_arb_lead_ps``
    (> one slot) after its arbitration and a wasted slot re-arbitrates
    exactly one slot later, so no protocol event ever lands in the
    bucket currently being dispatched — each bucket's population is
    complete before it is sorted, replacing O(log n) heap churn per
    event with an amortized append + one C-level sort per bucket.
    Injections (whose gaps can be arbitrarily small) merge in from a
    size-``num_sites`` heap of per-site stream heads; the merge
    compares full ``(time, seq)`` tuples, so ties resolve exactly as
    the engine's heap would.  Events scheduled past the horizon are
    counted as pending and never stored (the engine would never
    dispatch them).  Delivers are batched out of the replay entirely
    (terminal in a sweep).  Reads every knob off the instance
    (``trees_per_column`` included), so the same kernel serves both
    the base network and the ALT variant.
    """
    n = net._num_sites
    cols = net.config.layout.cols
    pps = plan.pps
    horizon = plan.horizon_ps
    loop_ps = net.config.loopback_latency_ps
    lead = net._arb_lead_ps
    reconfig = net.tree_reconfig_ps
    trees_per_column = net.trees_per_column
    dur = net.slot_duration_ps(plan.packet_bytes)
    prop = pair_propagation_table(net.config.layout)
    row_of = net._row_of
    col_of = net._col_of
    times = plan.site_times
    dsts = plan.site_dsts
    ch_next_free = [0] * (net.config.layout.rows * n)
    tree_table: List[Optional[List[List[int]]]] = [None] * (n * cols)
    idle_since = -(10 ** 15)  # untouched trees: idle since the distant past

    import heapq

    heapreplace = heapq.heapreplace
    heappop = heapq.heappop
    W = ARB_SLOT_PS
    # the bucket array is parked in the warm context's scratch arena
    # between load points (always all-None on hand-back: every stored
    # bucket index is <= horizon // W and gets cleared when dispatched)
    scr = plan.scratch
    buckets: Optional[List[Optional[list]]] = \
        scr.pop("buckets", None) if scr is not None else None
    if buckets is None or len(buckets) < horizon // W + 2:
        buckets = [None] * (horizon // W + 2)
    # per-site injection stream heads: (time, seq, site, idx)
    inj_heap = [(times[site][0], site, site, 0) for site in range(n)]
    heapq.heapify(inj_heap)
    seq = n  # at_many stamped the initial injections 0..n-1 in site order
    deliver_t = []
    deliver_i = []
    injected = 0
    dispatched = 0
    pending = False
    t = 0
    bucket = 0
    last_bucket = horizon // W
    while bucket <= last_bucket:
        ev = buckets[bucket]
        if ev is not None:
            buckets[bucket] = None
            ev.sort()
        elif not inj_heap:
            bucket += 1
            continue
        bucket_end = (bucket + 1) * W
        i = 0
        m = len(ev) if ev is not None else 0
        while True:
            if inj_heap:
                inj = inj_heap[0]
                if i < m:
                    e = ev[i]
                    take_inj = inj < e
                else:
                    e = None
                    take_inj = inj[0] < bucket_end
            elif i < m:
                e = ev[i]
                take_inj = False
            else:
                break
            if take_inj:
                t, _, site, idx = inj
                if t > horizon:
                    pending = True
                    heappop(inj_heap)
                    continue
                dispatched += 1
                injected += 1
                dst = dsts[site][idx]
                if dst == site:
                    deliver_t.append(t + loop_ps)
                    deliver_i.append(t)
                    seq += 1
                else:
                    key = row_of[site] * n + dst
                    nf = ch_next_free[key]
                    tr = t + lead
                    if tr < nf:
                        tr = nf
                    ch_next_free[key] = tr + dur
                    if tr > horizon:
                        pending = True
                    else:
                        lst = buckets[tr // W]
                        if lst is None:
                            buckets[tr // W] = [(tr, seq, 1, site, dst, t)]
                        else:
                            lst.append((tr, seq, 1, site, dst, t))
                    seq += 1
                nxt = idx + 1
                if nxt < pps:
                    heapreplace(inj_heap, (times[site][nxt], seq, site, nxt))
                    seq += 1
                else:
                    heappop(inj_heap)
                continue
            if e is None:
                break
            t, _, kind, src, dst, c = e
            i += 1
            dispatched += 1
            if kind == 1:
                trees = tree_table[src * cols + col_of[dst]]
                if trees is None:
                    trees = tree_table[src * cols + col_of[dst]] = \
                        [[idle_since, -1] for _ in range(trees_per_column)]
                best = None
                for tree in trees:
                    busy_until = tree[0]
                    ready = 0 if tree[1] == dst else 1
                    if busy_until + (reconfig if ready else 0) <= t:
                        key = (ready, busy_until)
                        if best is None or key < best[0]:
                            best = (key, tree)
                if best is not None:
                    tree = best[1]
                    tree[0] = t + dur
                    tree[1] = dst
                    deliver_t.append(t + dur + prop[src * n + dst])
                    deliver_i.append(c)
                    seq += 1
                else:
                    # tree contention: slot wasted, re-arbitrate next slot
                    tr = t + W
                    if tr > horizon:
                        pending = True
                    else:
                        lst = buckets[tr // W]
                        if lst is None:
                            buckets[tr // W] = [(tr, seq, 2, src, dst, c)]
                        else:
                            lst.append((tr, seq, 2, src, dst, c))
                    seq += 1
            else:
                key = row_of[src] * n + dst
                nf = ch_next_free[key]
                tr = t + lead
                if tr < nf:
                    tr = nf
                ch_next_free[key] = tr + dur
                if tr > horizon:
                    pending = True
                else:
                    lst = buckets[tr // W]
                    if lst is None:
                        buckets[tr // W] = [(tr, seq, 1, src, dst, c)]
                    else:
                        lst.append((tr, seq, 1, src, dst, c))
                seq += 1
        bucket += 1
    if inj_heap:
        pending = True
    if scr is not None:
        scr["buckets"] = buckets
    return KernelOutput(heap_events=dispatched, heap_pending=pending,
                        deliver_t=deliver_t, deliver_inject=deliver_i,
                        injected=injected, last_event_ps=t)


class TwoPhaseAltNetwork(TwoPhaseArbitratedNetwork):
    """The '2-Phase Arb ALT' variant: double switch trees (and double
    transmitters/laser power, accounted in the power model) to reduce
    tree contention (sections 4.3, 6.2)."""

    name = "2-Phase Arb. ALT"

    def __init__(self, config: MacrochipConfig, sim: Simulator,
                 warmup_ps: int = 0, **kwargs) -> None:
        kwargs.setdefault("trees_per_column", 2)
        super().__init__(config, sim, warmup_ps, **kwargs)
