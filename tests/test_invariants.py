"""The cross-network invariant harness and its mutation smoke tests.

Part 1 sweeps seeds x loads x traffic patterns across all five Figure 6
architectures and the HERMES extension (plus the ALT variant and the
electrical baseline, which ride in through ALL_NETWORKS) and
asserts every physical invariant holds — packet conservation, causal
timestamps, channel non-overlap, arbitration exclusivity.

Part 2 is the mutation smoke: for each checker class a deliberately
broken network model (dropped packets, double delivery, a channel that
ignores its busy timeline, a token-ring with the generation guard
removed, an overbooked circuit-engine pool) is run through the *same*
harness, proving the checkers actually fire on the bug family they claim
to catch.

Part 3 unit-tests the checkers over handcrafted traces, including the
back-to-back boundary cases that must NOT fire.
"""

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import random_traffic, run_traced

from repro.core import tracing
from repro.core.engine import Simulator
from repro.core.invariants import (InvariantViolation, check_causality,
                                   check_channel_overlap, check_conservation,
                                   check_grant_exclusivity, check_trace)
from repro.core.sweep import run_load_point
from repro.core.tracing import TraceEvent, TraceRecorder
from repro.macrochip.config import small_test_config
from repro.networks.base import Channel, Packet
from repro.networks.circuit_switched import CircuitSwitchedTorus
from repro.networks.factory import EXTENDED_NETWORKS, NETWORK_CLASSES
from repro.networks.point_to_point import PointToPointNetwork
from repro.networks.token_ring import TokenRingCrossbar
from repro.workloads.synthetic import make_pattern

CFG = small_test_config(4, 4)
ALL_NETWORKS = sorted(NETWORK_CLASSES)


# -- part 1: the property sweep ----------------------------------------------

@pytest.mark.parametrize("network_key", EXTENDED_NETWORKS)
@pytest.mark.parametrize("pattern_name", ["uniform", "neighbor"])
@pytest.mark.parametrize("load", [0.05, 0.35])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_load_point_invariants(network_key, pattern_name, load, seed):
    """run_load_point(check_invariants=True) passes on every Figure 6
    network plus HERMES across >= 3 seeds x >= 2 loads x >= 2 traffic
    patterns."""
    pattern = make_pattern(pattern_name, CFG.layout)
    result = run_load_point(network_key, CFG, pattern, load,
                            window_ns=80.0, seed=seed,
                            check_invariants=True)
    assert result.injected_packets > 0


@pytest.mark.parametrize("network_key", ALL_NETWORKS)
@pytest.mark.parametrize("seed", [11, 22, 33])
def test_full_drain_invariants(network_key, seed):
    """With an unbounded drain, the strictest contract holds for every
    architecture: nothing remains in flight and every checker passes."""
    traffic = random_traffic(seed, CFG.num_sites)
    net, monitor, packets = run_traced(network_key, CFG, traffic)
    monitor.verify(expect_drained=True)
    assert net.stats.in_flight == 0
    assert all(p.t_deliver >= p.t_inject >= 0 for p in packets)


@settings(max_examples=20, deadline=None)
@given(traffic=st.lists(
    st.tuples(st.integers(min_value=0, max_value=25_000),
              st.integers(min_value=0, max_value=15),
              st.integers(min_value=0, max_value=15),
              st.sampled_from([8, 64, 72])),
    min_size=1, max_size=30),
    network_key=st.sampled_from(ALL_NETWORKS))
def test_invariants_hold_for_arbitrary_traffic(network_key, traffic):
    _, monitor, _ = run_traced(network_key, CFG, traffic)
    monitor.verify(expect_drained=True)


def test_sweep_kwarg_passthrough():
    """check_invariants rides through sweep()'s kwargs to every point."""
    from repro.core.sweep import sweep

    pattern = make_pattern("uniform", CFG.layout)
    points = sweep("point_to_point", CFG, pattern, [0.05, 0.2],
                   window_ns=60.0, check_invariants=True)
    assert len(points) == 2


def test_tracer_attach_after_lazy_channel_creation():
    """set_tracer() must reach channels created before the attachment."""
    sim = Simulator()
    net = PointToPointNetwork(CFG, sim)
    ch = net.channel(0, 1)  # created while untraced
    assert ch.tracer is None
    rec = tracing.attach(net)
    assert ch.tracer is rec
    sim.at(0, net.inject, Packet(0, 1, 64))
    sim.run()
    assert rec.by_type(tracing.TX_START)


def test_disabled_tracing_emits_nothing():
    sim = Simulator()
    net = PointToPointNetwork(CFG, sim)
    sim.at(0, net.inject, Packet(0, 1, 64))
    sim.run()
    assert net.tracer is None
    assert net.stats.delivered_packets == 1


# -- part 2: mutation smoke — each checker class catches its seeded bug ------

class DroppingP2P(PointToPointNetwork):
    """Mutant: silently loses every other packet (conservation bug)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._arrivals = 0

    def _deliver(self, packet):
        self._arrivals += 1
        if self._arrivals % 2 == 0:
            return  # dropped on the floor, no stats, no sink
        super()._deliver(packet)


class DuplicatingP2P(PointToPointNetwork):
    """Mutant: delivers every packet twice (exactly-once bug)."""

    def _deliver(self, packet):
        super()._deliver(packet)
        super()._deliver(packet)


class _OverlappingChannel(Channel):
    def send(self, packet, on_arrival):
        self.next_free = self.sim.now  # forget the in-progress transmission
        return super().send(packet, on_arrival)


class OverlappingChannelP2P(PointToPointNetwork):
    """Mutant: channels ignore their busy timeline (overlap bug)."""

    def _new_channel(self, bandwidth_gb_per_s, propagation_ps, name):
        ch = _OverlappingChannel(self.sim, bandwidth_gb_per_s,
                                 propagation_ps, name=name,
                                 tracer=self.tracer)
        self._owned_channels.append(ch)
        return ch


class DoubleGrantTokenRing(TokenRingCrossbar):
    """Mutant: the generation guard is defeated, so a superseded grant
    event still fires — the classic double-grant arbitration bug."""

    def _grant(self, dst, src_pos, generation):
        super()._grant(dst, src_pos, self._token(dst).generation)


class OverbookedCircuit(CircuitSwitchedTorus):
    """Mutant: starts a path setup for every packet immediately, ignoring
    the finite circuit-engine pool (exclusivity/capacity bug)."""

    def _route(self, packet):
        packet.hops = 1
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, tracing.GRANT, pid=packet.pid,
                             resource="engine:%d" % packet.src)
        self._begin_setup(packet)


def _checker_classes(monitor):
    return {v.checker for v in monitor.problems(expect_drained=True)}


def test_mutation_dropped_packets_are_caught():
    traffic = [(i * 500, 0, 1 + i % 3, 64) for i in range(6)]
    _, monitor, _ = run_traced(None, CFG, traffic, network_cls=DroppingP2P)
    assert "conservation" in _checker_classes(monitor)
    with pytest.raises(InvariantViolation, match="never delivered"):
        monitor.verify(expect_drained=True)


def test_mutation_double_delivery_is_caught():
    _, monitor, _ = run_traced(None, CFG, [(0, 2, 3, 64)],
                               network_cls=DuplicatingP2P)
    with pytest.raises(InvariantViolation, match="exactly-once"):
        monitor.verify(expect_drained=True)


def test_mutation_channel_overlap_is_caught():
    # three same-pair packets at once: a healthy channel serializes them,
    # the mutant transmits all three concurrently
    traffic = [(0, 0, 1, 64)] * 3
    _, monitor, _ = run_traced(None, CFG, traffic,
                               network_cls=OverlappingChannelP2P)
    assert "overlap" in _checker_classes(monitor)
    with pytest.raises(InvariantViolation, match="concurrently"):
        monitor.verify(expect_drained=True)


def test_mutation_double_granted_token_is_caught():
    """A request from a closer sender preempts an in-flight grant; with
    the generation guard defeated the stale grant fires anyway, so the
    token is held twice at once — the exclusivity checker must see it."""
    sim = Simulator()
    net = DoubleGrantTokenRing(CFG, sim, grant_overhead_ps=5000)
    from repro.core.invariants import InvariantMonitor

    monitor = InvariantMonitor(net)
    dst = 0
    far, near = net._snake_site[8], net._snake_site[2]
    sim.at(0, net.inject, Packet(far, dst, 64))
    sim.at(net.hop_ps, net.inject, Packet(near, dst, 64))
    sim.run()
    violations = monitor.problems(expect_drained=True)
    assert any(v.checker == "exclusivity" and "token:0" in v.message
               for v in violations)
    # control: the real network on the same traffic is clean
    sim2 = Simulator()
    net2 = TokenRingCrossbar(CFG, sim2, grant_overhead_ps=5000)
    monitor2 = InvariantMonitor(net2)
    sim2.at(0, net2.inject, Packet(far, dst, 64))
    sim2.at(net2.hop_ps, net2.inject, Packet(near, dst, 64))
    sim2.run()
    monitor2.verify(expect_drained=True)


def test_mutation_overbooked_engines_are_caught():
    traffic = [(0, 0, 5, 64)] * 5
    _, monitor, _ = run_traced(None, CFG, traffic,
                               network_cls=OverbookedCircuit,
                               network_kwargs={"engines_per_site": 2})
    violations = monitor.problems(expect_drained=True)
    assert any(v.checker == "exclusivity" and "engine:0" in v.message
               and "capacity 2" in v.message for v in violations)


# -- part 3: checker unit tests over handcrafted traces ----------------------

def _ev(seq, time_ps, etype, **kw):
    return TraceEvent(seq, time_ps, etype, **kw)


def test_conservation_flags_delivery_without_injection():
    events = [_ev(0, 10, tracing.DELIVER, pid=7)]
    problems = check_conservation(events)
    assert any("never injected" in v.message for v in problems)


def test_causality_flags_backwards_time():
    events = [_ev(0, 100, tracing.INJECT, pid=1, src=0, dst=1),
              _ev(1, 50, tracing.DELIVER, pid=1, src=0, dst=1)]
    problems = check_causality(events)
    assert any("backwards" in v.message for v in problems)


def test_causality_flags_instantaneous_cross_site_delivery():
    events = [_ev(0, 100, tracing.INJECT, pid=1, src=0, dst=1),
              _ev(1, 100, tracing.DELIVER, pid=1, src=0, dst=1)]
    problems = check_causality(events)
    assert any("not strictly after" in v.message for v in problems)


def test_causality_allows_same_time_loopback():
    # src == dst loopback may deliver one cycle later; equal-time records
    # within the stream are legal as long as time never decreases
    events = [_ev(0, 100, tracing.INJECT, pid=1, src=2, dst=2),
              _ev(1, 300, tracing.DELIVER, pid=1, src=2, dst=2)]
    assert check_causality(events) == []


def test_overlap_allows_back_to_back_transmissions():
    events = [_ev(0, 0, tracing.TX_START, pid=1, resource="ch",
                  start_ps=0, end_ps=100),
              _ev(1, 100, tracing.TX_START, pid=2, resource="ch",
                  start_ps=100, end_ps=200)]
    assert check_channel_overlap(events) == []
    overlapping = [events[0],
                   _ev(1, 99, tracing.TX_START, pid=2, resource="ch",
                       start_ps=99, end_ps=199)]
    assert check_channel_overlap(overlapping)


def test_exclusivity_back_to_back_grants_are_legal():
    events = [_ev(0, 0, tracing.GRANT, pid=1, resource="token:0",
                  start_ps=0, end_ps=50),
              _ev(1, 50, tracing.GRANT, pid=2, resource="token:0",
                  start_ps=50, end_ps=90)]
    assert check_grant_exclusivity(events) == []


def test_exclusivity_open_grants_respect_capacity():
    events = [_ev(0, 0, tracing.GRANT, pid=1, resource="engine:0"),
              _ev(1, 5, tracing.GRANT, pid=2, resource="engine:0"),
              _ev(2, 9, tracing.GRANT, pid=3, resource="engine:0"),
              _ev(3, 20, tracing.RELEASE, resource="engine:0")]
    assert check_grant_exclusivity(events, {"engine:0": 3}) == []
    problems = check_grant_exclusivity(events, {"engine:0": 2})
    assert any("capacity 2" in v.message for v in problems)


def test_exclusivity_flags_release_without_grant():
    events = [_ev(0, 10, tracing.RELEASE, resource="engine:0")]
    problems = check_grant_exclusivity(events)
    assert any("without an open grant" in v.message for v in problems)


def test_check_trace_clean_run_is_empty():
    events = [_ev(0, 0, tracing.INJECT, pid=1, src=0, dst=1, size_bytes=64),
              _ev(1, 0, tracing.TX_START, pid=1, resource="ch",
                  start_ps=0, end_ps=100),
              _ev(2, 100, tracing.TX_END, pid=1, resource="ch",
                  start_ps=0, end_ps=150),
              _ev(3, 150, tracing.DELIVER, pid=1, src=0, dst=1,
                  size_bytes=64)]
    assert check_trace(events) == []


def test_recorder_canonical_lines_renumber_pids():
    rec = TraceRecorder()
    rec.emit(0, tracing.INJECT, pid=900, src=0, dst=1)
    rec.emit(5, tracing.DELIVER, pid=900, src=0, dst=1)
    rec2 = TraceRecorder()
    rec2.emit(0, tracing.INJECT, pid=4242, src=0, dst=1)
    rec2.emit(5, tracing.DELIVER, pid=4242, src=0, dst=1)
    assert rec.to_lines() != rec2.to_lines()
    assert rec.canonical_lines() == rec2.canonical_lines()
