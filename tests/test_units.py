"""Tests for unit conversions."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import units


def test_ns_conversion():
    assert units.ns(1.0) == 1000
    assert units.ns(0.4) == 400
    assert units.ns(12.8) == 12800


def test_to_ns_roundtrip():
    assert units.to_ns(units.ns(3.7)) == pytest.approx(3.7)


def test_us_conversion():
    assert units.us(1.0) == 1_000_000


def test_serialization_64B_at_wavelength_rate():
    # one wavelength: 2.5 GB/s -> 64 B takes 25.6 ns
    assert units.serialization_ps(64, 2.5) == 25600


def test_serialization_cache_line_p2p_channel():
    # the paper's 5 GB/s point-to-point channel: 64 B in 12.8 ns
    assert units.serialization_ps(64, 5.0) == 12800


def test_serialization_never_zero():
    assert units.serialization_ps(1, 1e9) == 1


def test_serialization_rejects_nonpositive_bandwidth():
    with pytest.raises(ValueError):
        units.serialization_ps(64, 0.0)


def test_propagation_follows_paper_constant():
    # 0.1 ns/cm (section 2)
    assert units.propagation_ps(1.0) == 100
    assert units.propagation_ps(28.0) == 2800


def test_cycles_at_5ghz():
    assert units.cycles_to_ps(1, 5.0) == 200
    assert units.cycles_to_ps(80, 5.0) == 16000  # the token round trip


def test_cycles_rejects_nonpositive_clock():
    with pytest.raises(ValueError):
        units.cycles_to_ps(1, 0.0)


def test_db_factor_examples():
    assert units.db_to_factor(0.0) == pytest.approx(1.0)
    assert units.db_to_factor(10.0) == pytest.approx(10.0)
    # token ring: 12.8 dB ring-pass loss -> ~19x (Table 5)
    assert units.db_to_factor(12.8) == pytest.approx(19.05, abs=0.01)


def test_factor_to_db_rejects_nonpositive():
    with pytest.raises(ValueError):
        units.factor_to_db(0.0)


@given(st.floats(min_value=-30.0, max_value=30.0))
def test_db_factor_roundtrip(db):
    assert units.factor_to_db(units.db_to_factor(db)) == pytest.approx(
        db, abs=1e-9)


@given(st.integers(min_value=1, max_value=10**6),
       st.floats(min_value=0.1, max_value=1000.0))
def test_serialization_scales_linearly(size, bw):
    one = units.serialization_ps(size, bw)
    two = units.serialization_ps(2 * size, bw)
    assert abs(two - 2 * one) <= 1  # rounding tolerance


@given(st.floats(min_value=0.0, max_value=1000.0))
def test_propagation_monotonic(cm):
    assert units.propagation_ps(cm) <= units.propagation_ps(cm + 1.0)
