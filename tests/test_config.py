"""Tests for the macrochip configuration."""

import pytest

from repro.macrochip.config import (
    MacrochipConfig,
    full_2015_config,
    scaled_config,
    small_test_config,
    table4_rows,
)


class TestScaledConfig:
    """Table 4 values."""

    def test_site_and_core_counts(self, paper_config):
        assert paper_config.num_sites == 64
        assert paper_config.cores_per_site == 8
        assert paper_config.num_cores == 512

    def test_bandwidths(self, paper_config):
        assert paper_config.site_bandwidth_gb_per_s == pytest.approx(320.0)
        assert paper_config.total_bandwidth_tb_per_s == pytest.approx(20.48)

    def test_cache_size(self, paper_config):
        assert paper_config.l2_cache_kb == 256

    def test_clock(self, paper_config):
        assert paper_config.cycle_ps == 200  # 5 GHz

    def test_message_sizes(self, paper_config):
        assert paper_config.control_message_bytes == 8
        assert paper_config.data_message_bytes == 72  # 64 B line + header

    def test_wavelength_rate(self, paper_config):
        assert paper_config.wavelength_gb_per_s == 2.5

    def test_latency_helpers(self, paper_config):
        assert paper_config.loopback_latency_ps == 200
        assert paper_config.directory_latency_ps == 2000
        assert paper_config.memory_latency_ps == 10000


def test_full_2015_config_scales_8x():
    full = full_2015_config()
    scaled = scaled_config()
    assert full.cores_per_site == 8 * scaled.cores_per_site
    assert full.transmitters_per_site == 8 * scaled.transmitters_per_site
    # 2.56 TB/s per site, 160 TB/s aggregate (section 3)
    assert full.site_bandwidth_gb_per_s == pytest.approx(2560.0)
    assert full.total_bandwidth_tb_per_s == pytest.approx(163.84)


def test_small_test_config():
    cfg = small_test_config(4, 4)
    assert cfg.num_sites == 16
    assert cfg.num_cores == 128


def test_with_overrides_is_functional():
    cfg = scaled_config()
    other = cfg.with_overrides(cores_per_site=4)
    assert other.cores_per_site == 4
    assert cfg.cores_per_site == 8


def test_table4_rows_match_paper():
    rows = dict(table4_rows())
    assert rows["Number of sites"] == "64"
    assert rows["Shared L2 Cache per site"] == "256 KB"
    assert rows["Bandwidth per site"] == "320 GB/sec"
    assert rows["Total peak bandwidth"] == "20 TB/sec"
    assert rows["Cores per site"] == "8"
    assert rows["Threads per core"] == "1"


def test_grid_config_holds_per_site_resources_at_table4():
    from repro.macrochip.config import grid_config, scaled_config

    assert grid_config(8) == scaled_config()
    big = grid_config(16)
    assert big.num_sites == 256
    assert big.transmitters_per_site == 128
    assert big.site_bandwidth_gb_per_s == scaled_config().site_bandwidth_gb_per_s
    rect = grid_config(4, 8)
    assert (rect.layout.rows, rect.layout.cols) == (4, 8)
