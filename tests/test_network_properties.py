"""Property-based tests over all network architectures.

Invariants every network must satisfy for arbitrary traffic:

* conservation — every injected packet is delivered exactly once;
* causality — delivery never precedes injection plus the physical
  minimum (serialization of one byte);
* determinism — identical traffic produces identical delivery times.
"""

from hypothesis import given, settings, strategies as st

from repro.core.engine import Simulator
from repro.macrochip.config import small_test_config
from repro.networks.base import Packet
from repro.networks.factory import NETWORK_CLASSES, build_network

CFG = small_test_config(4, 4)

#: (delay_ps, src, dst, size) batches
traffic_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=20_000),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
        st.sampled_from([8, 64, 72]),
    ),
    min_size=1, max_size=40,
)


def _run(network_key, traffic):
    sim = Simulator()
    net = build_network(network_key, CFG, sim)
    delivered = []
    net.set_sink(lambda p: delivered.append((p.pid, p.t_deliver)))
    packets = []
    for delay, src, dst, size in traffic:
        p = Packet(src, dst, size)
        packets.append(p)
        sim.at(delay, net.inject, p)
    sim.run()
    return packets, delivered


@settings(max_examples=25, deadline=None)
@given(traffic=traffic_strategy,
       network_key=st.sampled_from(sorted(NETWORK_CLASSES)))
def test_conservation_and_causality(network_key, traffic):
    packets, delivered = _run(network_key, traffic)
    # exactly-once delivery
    assert len(delivered) == len(packets)
    assert len({pid for pid, _ in delivered}) == len(packets)
    for p in packets:
        assert p.t_deliver >= p.t_inject >= 0
        if p.src != p.dst:
            assert p.t_deliver > p.t_inject


@settings(max_examples=10, deadline=None)
@given(traffic=traffic_strategy,
       network_key=st.sampled_from(sorted(NETWORK_CLASSES)))
def test_deterministic_delivery_times(network_key, traffic):
    _, first = _run(network_key, traffic)
    _, second = _run(network_key, traffic)
    assert sorted(t for _, t in first) == sorted(t for _, t in second)


@settings(max_examples=15, deadline=None)
@given(traffic=traffic_strategy)
def test_stats_agree_with_sink(traffic):
    sim = Simulator()
    net = build_network("point_to_point", CFG, sim)
    seen = []
    net.set_sink(seen.append)
    for delay, src, dst, size in traffic:
        sim.at(delay, net.inject, Packet(src, dst, size))
    sim.run()
    assert net.stats.injected_packets == len(traffic)
    assert net.stats.delivered_packets == len(seen)
