"""Unit and property tests for the HERMES hierarchical broadcast network.

Covers the model-specific contracts the shared matrices can't:

* cluster geometry (tiling, ring order, gateway election, dimension
  normalization on layouts the requested cluster shape doesn't divide);
* routing correctness across cluster boundaries — optical hop counts,
  gateway forwarding, and the router-energy accounting that goes with
  the O-E-O conversions;
* broadcast semantics — every cluster member physically sees every ring
  transmission (the ``set_snoop`` observer) and the snoop detection
  energy is charged;
* determinism across seeds and ``reset()``-equals-fresh per the
  ``test_warmstart.py`` conventions (byte-identical canonical traces
  over reuse cycles, bit-identical pooled sweeps).
"""

import pytest

from repro.core.engine import Simulator
from repro.core.parallel import clear_contexts
from repro.core.sweep import clear_draw_banks, run_load_point, sweep
from repro.core.tracing import TraceRecorder
from repro.macrochip.config import small_test_config
from repro.networks.base import Packet
from repro.networks.factory import build_network
from repro.networks.hermes import (HermesHierarchicalNetwork,
                                   normalize_cluster_dims)
from repro.workloads.synthetic import UniformTraffic

from .conftest import random_traffic, run_traced

CFG = small_test_config(4, 4)
WINDOW_NS = 80.0
SEED = 7


@pytest.fixture(autouse=True)
def _fresh_registries():
    clear_contexts()
    clear_draw_banks()
    yield
    clear_contexts()
    clear_draw_banks()


def _net(config=CFG, **kwargs):
    sim = Simulator()
    return HermesHierarchicalNetwork(config, sim, **kwargs), sim


# -- geometry ----------------------------------------------------------------

class TestGeometry:
    def test_clusters_tile_the_layout(self):
        net, _ = _net()
        assert net.num_clusters == 4
        assert net.cluster_size == 4
        seen = []
        for cid in range(net.num_clusters):
            members = net.cluster_members(cid)
            assert len(members) == 4
            assert all(net.cluster_of(s) == cid for s in members)
            seen.extend(members)
        assert sorted(seen) == list(range(CFG.num_sites))

    def test_top_left_cluster_and_gateway(self):
        net, _ = _net()
        # 4x4 layout, 2x2 clusters: cluster 0 is sites {0, 1, 4, 5} with
        # the lowest id as gateway, visited in boustrophedon ring order
        assert net.cluster_members(0) == (0, 1, 5, 4)
        assert net.gateway_of(0) == 0
        assert net.gateway_of(3) == 10

    def test_ring_propagation_positive_and_loops(self):
        net, _ = _net()
        n = CFG.num_sites
        for cid in range(net.num_clusters):
            members = net.cluster_members(cid)
            for a in members:
                for b in members:
                    if a != b:
                        assert net._ring_prop[a * n + b] > 0

    def test_dimension_normalization(self):
        layout3 = small_test_config(3, 3).layout
        assert normalize_cluster_dims(layout3, 2, 2) == (1, 1)
        assert normalize_cluster_dims(layout3, 3, 3) == (3, 3)
        layout8 = small_test_config(8, 8).layout
        assert normalize_cluster_dims(layout8, 2, 2) == (2, 2)
        assert normalize_cluster_dims(layout8, 3, 4) == (2, 4)

    def test_rejects_degenerate_cluster_request(self):
        with pytest.raises(ValueError):
            normalize_cluster_dims(CFG.layout, 0, 2)

    def test_single_cluster_layout_has_no_global_traffic(self):
        cfg = small_test_config(2, 2)
        net, sim = _net(cfg)
        net.set_sink(lambda p: None)
        for src in range(4):
            for dst in range(4):
                if src != dst:
                    sim.at(0, net.inject, Packet(src, dst, 64))
        sim.run()
        assert net.num_clusters == 1
        assert net.intra_packets == 12
        assert net.inter_packets == 0
        assert net.stats.energy.get("router") == 0.0


# -- routing across cluster boundaries ---------------------------------------

class TestRouting:
    def _deliver_one(self, src, dst, config=CFG):
        net, sim = _net(config)
        delivered = []
        net.set_sink(delivered.append)
        p = Packet(src, dst, 64)
        sim.at(0, net.inject, p)
        sim.run()
        assert delivered == [p]
        return net, p

    def test_intra_cluster_is_one_optical_hop(self):
        net, p = self._deliver_one(0, 5)  # both in cluster 0
        assert p.hops == 1
        assert net.intra_packets == 1 and net.inter_packets == 0
        assert p.t_deliver > p.t_inject

    def test_cross_cluster_takes_three_legs(self):
        # site 1 (cluster 0, not gateway) -> site 11 (cluster 3, not
        # gateway): source ring, global channel, destination ring
        net, p = self._deliver_one(1, 11)
        assert p.hops == 3
        assert net.inter_packets == 1
        # two O-E-O conversions were charged
        router_pj = net.stats.energy.get("router")
        assert router_pj == pytest.approx(2 * 64 * 60.0)

    def test_gateway_to_gateway_is_direct_global_hop(self):
        net, p = self._deliver_one(0, 10)  # both are gateways
        assert p.hops == 1
        assert net.stats.energy.get("router") == 0.0

    def test_gateway_source_skips_first_ring_leg(self):
        net, p = self._deliver_one(0, 11)  # gateway -> non-gateway
        assert p.hops == 2
        router_pj = net.stats.energy.get("router")
        assert router_pj == pytest.approx(64 * 60.0)

    def test_cross_cluster_slower_than_intra(self):
        _, intra = self._deliver_one(1, 5)
        _, inter = self._deliver_one(1, 11)
        assert inter.t_deliver - inter.t_inject \
            > intra.t_deliver - intra.t_inject

    def test_every_pair_delivers_exactly_once(self):
        net, sim = _net()
        delivered = []
        net.set_sink(delivered.append)
        n = CFG.num_sites
        for src in range(n):
            for dst in range(n):
                if src != dst:
                    sim.at(0, net.inject, Packet(src, dst, 64))
        sim.run()
        assert len(delivered) == n * (n - 1)
        assert net.stats.in_flight == 0


# -- broadcast semantics ------------------------------------------------------

class TestBroadcast:
    def test_ring_broadcast_reaches_all_cluster_members(self):
        net, sim = _net()
        net.set_sink(lambda p: None)
        seen = []
        net.set_snoop(lambda site, p: seen.append((site, p.pid)))
        p = Packet(1, 5, 64)  # intra-cluster in cluster 0
        sim.at(0, net.inject, p)
        sim.run()
        # every member of cluster 0 except the source saw the bits
        assert sorted(s for s, pid in seen if pid == p.pid) == [0, 4, 5]
        assert net.snoop_events == 3

    def test_cross_cluster_broadcasts_on_both_rings(self):
        net, sim = _net()
        net.set_sink(lambda p: None)
        seen = []
        net.set_snoop(lambda site, p: seen.append(site))
        sim.at(0, net.inject, Packet(1, 11, 64))  # cluster 0 -> cluster 3
        sim.run()
        # first leg snooped by cluster 0 minus the source, rebroadcast
        # leg by cluster 3 minus its gateway
        assert sorted(seen) == [0, 4, 5] + sorted(
            s for s in (11, 14, 15))

    def test_snoop_detection_energy_charged(self):
        net, sim = _net()
        net.set_sink(lambda p: None)
        sim.at(0, net.inject, Packet(1, 5, 64))
        sim.run()
        # 3 listeners x 512 bits x 65 fJ/bit = 99.84 pJ
        snoop_pj = net.stats.energy.get("snoop")
        assert snoop_pj == pytest.approx(3 * 64 * 8 * 65.0 / 1000.0)

    def test_snoop_hook_detached_by_reset(self):
        net, sim = _net()
        net.set_snoop(lambda site, p: None)
        net.reset()
        assert net._snoop is None
        assert net.snoop_events == 0


# -- determinism and warm-start ----------------------------------------------

def _point(load, warm, tracer=None):
    pattern = UniformTraffic(CFG.layout, seed=1)
    return run_load_point("hermes", CFG, pattern, load,
                          window_ns=WINDOW_NS, seed=SEED, warm=warm,
                          tracer=tracer)


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        assert _point(0.30, warm=False) == _point(0.30, warm=False)

    def test_different_seeds_differ(self):
        pattern = UniformTraffic(CFG.layout, seed=1)
        a = run_load_point("hermes", CFG, pattern, 0.30,
                           window_ns=WINDOW_NS, seed=1)
        b = run_load_point("hermes", CFG, pattern, 0.30,
                           window_ns=WINDOW_NS, seed=2)
        assert a != b

    def test_reset_equals_fresh_over_reuse_cycles(self):
        def canonical(warm):
            rec = TraceRecorder()
            res = _point(0.30, warm=warm, tracer=rec)
            return res, "\n".join(rec.canonical_lines())

        cold_res, cold_trace = canonical(warm=False)
        for cycle in range(3):
            warm_res, warm_trace = canonical(warm=True)
            assert warm_res == cold_res, "results diverged (cycle %d)" % cycle
            assert warm_trace == cold_trace, "trace diverged (cycle %d)" % cycle

    def test_pooled_sweep_bit_identical_to_serial(self):
        pattern = UniformTraffic(CFG.layout, seed=1)
        fractions = [0.05, 0.15, 0.30, 0.45]
        serial = sweep("hermes", CFG, pattern, fractions,
                       window_ns=WINDOW_NS, seed=SEED, workers=1)
        pooled = sweep("hermes", CFG, pattern, fractions,
                       window_ns=WINDOW_NS, seed=SEED, workers=4)
        assert serial == pooled

    def test_network_reset_clears_counters(self):
        net, sim = _net()
        net.set_sink(lambda p: None)
        sim.at(0, net.inject, Packet(1, 11, 64))
        sim.run()
        assert net.inter_packets == 1
        net.reset()
        assert net.intra_packets == 0
        assert net.inter_packets == 0
        assert net.snoop_events == 0
        assert net.stats.delivered_packets == 0


# -- load behavior and invariants --------------------------------------------

class TestLoadBehavior:
    def test_latency_curve_saturates(self):
        pattern = UniformTraffic(CFG.layout, seed=1)
        points = sweep("hermes", CFG, pattern, [0.05, 0.30, 0.70],
                       window_ns=150.0, seed=SEED)
        latencies = [p.mean_latency_ns for p in points]
        assert latencies == sorted(latencies)
        assert latencies[-1] > 1.5 * latencies[0]
        assert points[-1].saturated
        assert not points[0].saturated

    def test_invariants_on_random_drained_traffic(self):
        traffic = random_traffic(99, CFG.num_sites)
        net, monitor, packets = run_traced("hermes", CFG, traffic)
        monitor.verify(expect_drained=True)
        assert net.stats.in_flight == 0
        assert all(p.t_deliver >= p.t_inject >= 0 for p in packets)

    def test_cluster_kwargs_forwarded_by_factory(self):
        cfg = small_test_config(4, 4)
        net = build_network("hermes", cfg, Simulator(),
                            cluster_rows=4, cluster_cols=2)
        assert (net.cluster_rows, net.cluster_cols) == (4, 2)
        assert net.num_clusters == 2
