"""Tests for the message-passing workload extension."""

import pytest

from repro.macrochip.config import small_test_config
from repro.workloads.message_passing import (
    MESSAGE_PASSING_WORKLOADS,
    MessagePassingRunner,
    all_reduce,
    all_to_all,
    halo_exchange,
    ring_shift,
    run_message_passing,
)

CFG = small_test_config(4, 4)


class TestSchedules:
    def test_ring_shift_shape(self):
        w = ring_shift(CFG, rounds=3, block_bytes=128)
        assert w.num_rounds == 3
        assert w.total_bytes() == 3 * CFG.num_sites * 128
        # every site sends to its successor
        for site, sends in enumerate(w.rounds[0]):
            assert sends == [((site + 1) % CFG.num_sites, 128)]

    def test_halo_exchange_targets_grid_neighbors(self):
        w = halo_exchange(CFG, rounds=1)
        layout = CFG.layout
        for site, sends in enumerate(w.rounds[0]):
            assert len(sends) == 4
            for dst, _ in sends:
                hr, hc = layout.torus_hop_counts(site, dst)
                assert hr + hc == 1

    def test_all_to_all_covers_everyone(self):
        w = all_to_all(CFG, rounds=1, slice_bytes=64)
        for site, sends in enumerate(w.rounds[0]):
            dests = {d for d, _ in sends}
            assert dests == set(range(CFG.num_sites)) - {site}

    def test_all_reduce_is_log_rounds(self):
        w = all_reduce(CFG, vector_bytes=256, repeats=1)
        assert w.num_rounds == 4  # log2(16)
        # round r pairs sites at stride 2^r
        for r, rnd in enumerate(w.rounds):
            for site, sends in enumerate(rnd):
                assert sends == [(site ^ (1 << r), 256)]

    def test_all_reduce_requires_power_of_two(self):
        with pytest.raises(ValueError):
            all_reduce(small_test_config(3, 3))


class TestRunner:
    def test_segmentation(self):
        runner = MessagePassingRunner(ring_shift(CFG, rounds=1,
                                                 block_bytes=200),
                                      "point_to_point", CFG,
                                      segment_bytes=64)
        assert runner._segments(200) == [64, 64, 64, 8]
        assert runner._segments(64) == [64]

    def test_invalid_segment_size(self):
        with pytest.raises(ValueError):
            MessagePassingRunner(ring_shift(CFG, rounds=1),
                                 "point_to_point", CFG, segment_bytes=0)

    def test_ring_shift_runs_to_completion(self):
        result = run_message_passing("ring_shift", "point_to_point", CFG,
                                     rounds=3, block_bytes=256)
        assert result.rounds == 3
        assert result.bytes_moved == 3 * CFG.num_sites * 256
        assert result.messages == 3 * CFG.num_sites * 4  # 256/64 segments
        assert result.runtime_ps > 0
        assert result.effective_bandwidth_gb_per_s > 0

    def test_rounds_are_barrier_ordered(self):
        """More rounds cannot be faster than fewer rounds."""
        one = run_message_passing("ring_shift", "point_to_point", CFG,
                                  rounds=1, block_bytes=512)
        four = run_message_passing("ring_shift", "point_to_point", CFG,
                                   rounds=4, block_bytes=512)
        assert four.runtime_ps > one.runtime_ps

    def test_all_networks_run_halo_exchange(self):
        from repro.networks.factory import FIGURE6_NETWORKS

        for net in FIGURE6_NETWORKS:
            result = run_message_passing("halo_exchange", net, CFG,
                                         rounds=1, face_bytes=256)
            assert result.bytes_moved == CFG.num_sites * 4 * 256, net

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            run_message_passing("bogus", "point_to_point", CFG)

    def test_registry_names(self):
        assert set(MESSAGE_PASSING_WORKLOADS) == {
            "ring_shift", "halo_exchange", "all_to_all", "all_reduce"}
