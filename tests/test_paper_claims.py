"""Integration tests: the paper's headline claims, at reduced scale.

These run the real experiment pipeline with small workloads on the full
8x8 configuration (the network mechanisms under test are scale-
sensitive), asserting the *orderings and ratios* section 6 reports —
the reproduction contract spelled out in DESIGN.md.
"""

import pytest

from repro.core.sweep import run_load_point
from repro.macrochip.config import scaled_config
from repro.workloads.replay import replay
from repro.workloads.sharing import mix_by_name
from repro.workloads.synthetic import make_pattern
from repro.workloads.synthetic_coherence import (
    SyntheticCoherenceSpec,
    generate_synthetic_trace,
)

CFG = scaled_config()
PEAK = CFG.num_sites * CFG.site_bandwidth_gb_per_s


def sustained(network, pattern_key, fraction, window_ns=400.0, **kwargs):
    r = run_load_point(network, CFG, make_pattern(pattern_key, CFG.layout),
                       fraction, window_ns=window_ns, **kwargs)
    return r


class TestFigure6Claims:
    """Section 6.1 saturation behaviour."""

    def test_p2p_sustains_most_of_peak_on_uniform(self):
        r = sustained("point_to_point", "uniform", 0.90, window_ns=600)
        assert r.throughput_gb_per_s / PEAK > 0.80

    def test_limited_p2p_saturates_near_half(self):
        ok = sustained("limited_point_to_point", "uniform", 0.42,
                       window_ns=600)
        assert not ok.saturated
        over = sustained("limited_point_to_point", "uniform", 0.70,
                         window_ns=600)
        assert over.throughput_gb_per_s / PEAK < 0.60

    def test_token_ring_saturates_near_40_percent(self):
        ok = sustained("token_ring", "uniform", 0.35, window_ns=600)
        assert not ok.saturated
        over = sustained("token_ring", "uniform", 0.80, window_ns=600)
        assert over.throughput_gb_per_s / PEAK < 0.50

    def test_two_phase_saturates_below_15_percent(self):
        over = sustained("two_phase", "uniform", 0.30, window_ns=600)
        assert over.throughput_gb_per_s / PEAK < 0.20

    def test_circuit_switched_saturates_lowest(self):
        over = sustained("circuit_switched", "uniform", 0.06, window_ns=600)
        assert over.throughput_gb_per_s / PEAK < 0.04

    def test_uniform_saturation_ordering(self):
        """P2P > limited P2P ~ token ring > two-phase > circuit-switched."""
        loads = {"point_to_point": 0.95, "limited_point_to_point": 0.70,
                 "token_ring": 0.70, "two_phase": 0.30,
                 "circuit_switched": 0.30}
        sust = {net: sustained(net, "uniform", f, window_ns=500)
                .throughput_gb_per_s / PEAK
                for net, f in loads.items()}
        assert sust["point_to_point"] > sust["limited_point_to_point"]
        assert sust["limited_point_to_point"] > sust["two_phase"]
        assert sust["token_ring"] > sust["two_phase"]
        assert sust["two_phase"] > sust["circuit_switched"]

    def test_p2p_transpose_capped_at_one_channel(self):
        """Transpose uses one 5 GB/s link per site: ~1.56% of peak."""
        r = sustained("point_to_point", "transpose", 0.05, window_ns=600)
        frac = r.throughput_gb_per_s / PEAK
        assert frac < 0.020
        assert r.saturated

    def test_token_ring_transpose_below_p2p(self):
        """Token reacquisition caps one-to-one patterns below ~1.3%."""
        tr = sustained("token_ring", "transpose", 0.05, window_ns=600)
        p2p = sustained("point_to_point", "transpose", 0.05, window_ns=600)
        assert tr.throughput_gb_per_s < p2p.throughput_gb_per_s

    def test_limited_p2p_best_on_neighbor(self):
        """Nearest-neighbor maps onto direct row/column links: the
        limited point-to-point network sustains ~25% of peak."""
        r = sustained("limited_point_to_point", "neighbor", 0.24,
                      window_ns=600)
        assert not r.saturated
        p2p = sustained("point_to_point", "neighbor", 0.24, window_ns=600)
        assert (r.throughput_gb_per_s > p2p.throughput_gb_per_s
                or p2p.saturated)


def _make_trace(pattern_key, mix="LS", ops=15, name="t"):
    spec = SyntheticCoherenceSpec(name, ops_per_core=ops)
    return generate_synthetic_trace(
        spec, make_pattern(pattern_key, CFG.layout), mix_by_name(mix), CFG)


class TestBenchmarkClaims:
    """Section 6.2 coherence-benchmark behaviour."""

    @pytest.fixture(scope="class")
    def all_to_all_results(self):
        trace = _make_trace("uniform")
        return {net: replay(trace, net, CFG)
                for net in ["circuit_switched", "point_to_point",
                            "token_ring", "two_phase", "two_phase_alt"]}

    def test_p2p_fastest_on_all_to_all(self, all_to_all_results):
        res = all_to_all_results
        assert res["point_to_point"].runtime_ps < res["token_ring"].runtime_ps
        assert res["point_to_point"].runtime_ps < res["two_phase"].runtime_ps
        assert (res["point_to_point"].runtime_ps
                < res["circuit_switched"].runtime_ps)

    def test_circuit_switched_slowest(self, all_to_all_results):
        res = all_to_all_results
        cs = res["circuit_switched"].runtime_ps
        for net, r in res.items():
            if net != "circuit_switched":
                assert r.runtime_ps < cs, net

    def test_alt_beats_base_two_phase(self, all_to_all_results):
        res = all_to_all_results
        assert (res["two_phase_alt"].runtime_ps
                < res["two_phase"].runtime_ps)

    def test_ms_mix_punishes_arbitrated_networks(self):
        """Section 6.2: P2P is at least ~4.5x better than the arbitrated
        networks on the MS mix (invalidation-heavy small messages); at
        this reduced workload scale we assert the weaker >1.7x ordering
        (EXPERIMENTS.md records the full-scale ratio)."""
        trace = _make_trace("transpose", mix="MS", ops=30,
                            name="transpose-ms")
        p2p = replay(trace, "point_to_point", CFG)
        tr = replay(trace, "token_ring", CFG)
        assert tr.runtime_ps > 1.7 * p2p.runtime_ps

    def test_p2p_op_latency_bounded(self):
        """P2P latency per coherence op stays low (paper: <= ~100 ns on
        synthetic benchmarks)."""
        trace = _make_trace("uniform")
        r = replay(trace, "point_to_point", CFG)
        assert r.mean_op_latency_ns < 100.0
