"""Tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.core.engine import SimulationError, Simulator


def test_events_fire_in_time_order(sim):
    fired = []
    sim.at(300, fired.append, "c")
    sim.at(100, fired.append, "a")
    sim.at(200, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_simultaneous_events_fire_in_schedule_order(sim):
    fired = []
    for tag in "abcde":
        sim.at(50, fired.append, tag)
    sim.run()
    assert fired == list("abcde")


def test_now_advances_to_event_time(sim):
    seen = []
    sim.at(123, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [123]
    assert sim.now == 123


def test_schedule_is_relative_to_now(sim):
    seen = []

    def first():
        sim.schedule(50, lambda: seen.append(sim.now))

    sim.at(100, first)
    sim.run()
    assert seen == [150]


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_scheduling_in_the_past_rejected(sim):
    sim.at(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(50, lambda: None)


def test_stop_halts_dispatch(sim):
    fired = []
    sim.at(10, fired.append, 1)
    sim.at(20, lambda: sim.stop())
    sim.at(30, fired.append, 3)
    sim.run()
    assert fired == [1]
    assert sim.pending() == 1


def test_run_until_horizon_leaves_later_events(sim):
    fired = []
    sim.at(10, fired.append, 1)
    sim.at(1000, fired.append, 2)
    dispatched = sim.run(until_ps=500)
    assert fired == [1]
    assert dispatched == 1
    assert sim.pending() == 1
    assert sim.now == 500  # clock advanced to the horizon


def test_run_after_horizon_resumes(sim):
    fired = []
    sim.at(1000, fired.append, 2)
    sim.run(until_ps=500)
    sim.run()
    assert fired == [2]


def test_events_scheduled_during_run_are_dispatched(sim):
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule(10, chain, n + 1)

    sim.at(0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]


def test_run_returns_dispatch_count(sim):
    for i in range(7):
        sim.at(i, lambda: None)
    assert sim.run() == 7


def test_reentrant_run_rejected(sim):
    def bad():
        sim.run()

    sim.at(1, bad)
    with pytest.raises(SimulationError):
        sim.run()


def test_trace_hook_sees_every_event(sim):
    seen = []
    sim.trace = lambda t, fn, args: seen.append(t)
    sim.at(5, lambda: None)
    sim.at(9, lambda: None)
    sim.run()
    assert seen == [5, 9]


def test_empty_run_is_noop(sim):
    assert sim.run() == 0
    assert sim.now == 0


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1,
                max_size=50))
def test_dispatch_order_is_sorted_for_any_schedule(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.at(t, fired.append, t)
    sim.run()
    assert fired == sorted(times)


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                max_size=30), st.integers(min_value=0, max_value=1000))
def test_horizon_partitions_events(times, horizon):
    sim = Simulator()
    fired = []
    for t in times:
        sim.at(t, fired.append, t)
    sim.run(until_ps=horizon)
    assert fired == sorted(t for t in times if t <= horizon)
    assert sim.pending() == sum(1 for t in times if t > horizon)


# -- horizon / stop edge cases (parallel shards lean on these semantics) -----

def test_event_exactly_at_horizon_fires(sim):
    fired = []
    sim.at(100, fired.append, "edge")
    sim.at(101, fired.append, "late")
    sim.run(until_ps=100)
    assert fired == ["edge"]
    assert sim.now == 100


def test_stop_prevents_clock_advance_to_horizon(sim):
    sim.at(10, sim.stop)
    sim.at(500, lambda: None)
    sim.run(until_ps=1000)
    # stop() freezes the clock at the stopping event, not the horizon
    assert sim.now == 10
    assert sim.pending() == 1


def test_stop_flag_resets_between_runs(sim):
    sim.at(10, sim.stop)
    sim.run()
    sim.at(20, lambda: None)
    assert sim.run() == 1  # previous stop() must not halt a fresh run
    assert sim.now == 20


def test_empty_run_with_horizon_advances_clock(sim):
    sim.run(until_ps=750)
    assert sim.now == 750


def test_horizon_at_now_is_noop_for_later_events(sim):
    sim.at(5, lambda: None)
    sim.run(until_ps=5)
    assert sim.now == 5
    sim.at(50, lambda: None)
    assert sim.run(until_ps=5) == 0
    assert sim.pending() == 1


def test_dispatch_counts_accumulate_across_resumed_runs(sim):
    for t in (10, 20, 30, 40):
        sim.at(t, lambda: None)
    assert sim.run(until_ps=20) == 2
    assert sim.run() == 2


# -- determinism properties (the trace layer leans on these) -----------------

@given(st.lists(st.integers(min_value=0, max_value=5), min_size=2,
                max_size=60))
def test_equal_timestamps_dispatch_in_scheduling_order(times):
    """Ties are broken by scheduling order for ANY schedule: the tiny
    time range forces heavy timestamp collisions."""
    sim = Simulator()
    fired = []
    for idx, t in enumerate(times):
        sim.at(t, fired.append, (t, idx))
    sim.run()
    assert fired == sorted(fired)  # time-major, then scheduling order
    assert [t for t, _ in fired] == sorted(times)


@given(st.lists(st.integers(min_value=0, max_value=8), min_size=1,
                max_size=40))
def test_trace_hook_order_matches_dispatch_order(times):
    sim = Simulator()
    traced, fired = [], []
    sim.trace = lambda t, fn, args: traced.append(args[0])
    for idx, t in enumerate(times):
        sim.at(t, fired.append, (t, idx))
    sim.run()
    assert traced == fired


def test_identical_runs_produce_byte_identical_traces(small_config):
    """Two identical traced network runs serialize to byte-identical
    canonical trace records — the regression contract every refactor of
    the engine or the networks must preserve."""
    from repro.core.sweep import run_load_point
    from repro.core.tracing import TraceRecorder
    from repro.workloads.synthetic import UniformTraffic

    def one_run():
        rec = TraceRecorder()
        run_load_point("token_ring", small_config,
                       UniformTraffic(small_config.layout), 0.2,
                       window_ns=60.0, seed=99, tracer=rec)
        return b"\n".join(line.encode() for line in rec.canonical_lines())

    first, second = one_run(), one_run()
    assert len(first) > 0
    assert first == second


# -- the trace/stop() cutoff contract ----------------------------------------
# stop() takes effect after the currently dispatching callback returns; no
# event is dispatched afterwards, so dispatch and trace can never disagree.

def test_trace_fires_for_the_stop_requesting_event(sim):
    traced = []
    sim.trace = lambda t, fn, args: traced.append(t)
    sim.at(10, lambda: None)
    sim.at(20, sim.stop)
    sim.at(30, lambda: None)
    sim.run()
    # the stopping event itself is traced; nothing after it is dispatched
    # or traced — the cutoff is identical for both
    assert traced == [10, 20]
    assert sim.pending() == 1


def test_no_dispatch_hence_no_trace_after_stop(sim):
    traced, fired = [], []
    sim.trace = lambda t, fn, args: traced.append(t)

    def stop_then_record():
        sim.stop()
        fired.append("stopper")

    sim.at(5, stop_then_record)
    sim.at(5, fired.append, "same-time-later")  # same timestamp, later seq
    sim.run()
    assert fired == ["stopper"]  # even same-time events are cut off
    assert traced == [5]
    sim.run()  # a fresh run dispatches (and traces) the leftover
    assert fired == ["stopper", "same-time-later"]
    assert traced == [5, 5]


def test_trace_fires_before_a_raising_callback(sim):
    traced = []
    sim.trace = lambda t, fn, args: traced.append(t)

    def boom():
        raise RuntimeError("callback failure")

    sim.at(7, boom)
    with pytest.raises(RuntimeError):
        sim.run()
    assert traced == [7]  # the failing event was traced before dispatch
