"""Tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.core.engine import SimulationError, Simulator


def test_events_fire_in_time_order(sim):
    fired = []
    sim.at(300, fired.append, "c")
    sim.at(100, fired.append, "a")
    sim.at(200, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_simultaneous_events_fire_in_schedule_order(sim):
    fired = []
    for tag in "abcde":
        sim.at(50, fired.append, tag)
    sim.run()
    assert fired == list("abcde")


def test_now_advances_to_event_time(sim):
    seen = []
    sim.at(123, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [123]
    assert sim.now == 123


def test_schedule_is_relative_to_now(sim):
    seen = []

    def first():
        sim.schedule(50, lambda: seen.append(sim.now))

    sim.at(100, first)
    sim.run()
    assert seen == [150]


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_scheduling_in_the_past_rejected(sim):
    sim.at(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(50, lambda: None)


def test_stop_halts_dispatch(sim):
    fired = []
    sim.at(10, fired.append, 1)
    sim.at(20, lambda: sim.stop())
    sim.at(30, fired.append, 3)
    sim.run()
    assert fired == [1]
    assert sim.pending() == 1


def test_run_until_horizon_leaves_later_events(sim):
    fired = []
    sim.at(10, fired.append, 1)
    sim.at(1000, fired.append, 2)
    dispatched = sim.run(until_ps=500)
    assert fired == [1]
    assert dispatched == 1
    assert sim.pending() == 1
    assert sim.now == 500  # clock advanced to the horizon


def test_run_after_horizon_resumes(sim):
    fired = []
    sim.at(1000, fired.append, 2)
    sim.run(until_ps=500)
    sim.run()
    assert fired == [2]


def test_events_scheduled_during_run_are_dispatched(sim):
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule(10, chain, n + 1)

    sim.at(0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]


def test_run_returns_dispatch_count(sim):
    for i in range(7):
        sim.at(i, lambda: None)
    assert sim.run() == 7


def test_reentrant_run_rejected(sim):
    def bad():
        sim.run()

    sim.at(1, bad)
    with pytest.raises(SimulationError):
        sim.run()


def test_trace_hook_sees_every_event(sim):
    seen = []
    sim.trace = lambda t, fn, args: seen.append(t)
    sim.at(5, lambda: None)
    sim.at(9, lambda: None)
    sim.run()
    assert seen == [5, 9]


def test_empty_run_is_noop(sim):
    assert sim.run() == 0
    assert sim.now == 0


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1,
                max_size=50))
def test_dispatch_order_is_sorted_for_any_schedule(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.at(t, fired.append, t)
    sim.run()
    assert fired == sorted(times)


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                max_size=30), st.integers(min_value=0, max_value=1000))
def test_horizon_partitions_events(times, horizon):
    sim = Simulator()
    fired = []
    for t in times:
        sim.at(t, fired.append, t)
    sim.run(until_ps=horizon)
    assert fired == sorted(t for t in times if t <= horizon)
    assert sim.pending() == sum(1 for t in times if t > horizon)


# -- horizon / stop edge cases (parallel shards lean on these semantics) -----

def test_event_exactly_at_horizon_fires(sim):
    fired = []
    sim.at(100, fired.append, "edge")
    sim.at(101, fired.append, "late")
    sim.run(until_ps=100)
    assert fired == ["edge"]
    assert sim.now == 100


def test_stop_prevents_clock_advance_to_horizon(sim):
    sim.at(10, sim.stop)
    sim.at(500, lambda: None)
    sim.run(until_ps=1000)
    # stop() freezes the clock at the stopping event, not the horizon
    assert sim.now == 10
    assert sim.pending() == 1


def test_stop_flag_resets_between_runs(sim):
    sim.at(10, sim.stop)
    sim.run()
    sim.at(20, lambda: None)
    assert sim.run() == 1  # previous stop() must not halt a fresh run
    assert sim.now == 20


def test_empty_run_with_horizon_advances_clock(sim):
    sim.run(until_ps=750)
    assert sim.now == 750


def test_horizon_at_now_is_noop_for_later_events(sim):
    sim.at(5, lambda: None)
    sim.run(until_ps=5)
    assert sim.now == 5
    sim.at(50, lambda: None)
    assert sim.run(until_ps=5) == 0
    assert sim.pending() == 1


def test_dispatch_counts_accumulate_across_resumed_runs(sim):
    for t in (10, 20, 30, 40):
        sim.at(t, lambda: None)
    assert sim.run(until_ps=20) == 2
    assert sim.run() == 2


# -- determinism properties (the trace layer leans on these) -----------------

@given(st.lists(st.integers(min_value=0, max_value=5), min_size=2,
                max_size=60))
def test_equal_timestamps_dispatch_in_scheduling_order(times):
    """Ties are broken by scheduling order for ANY schedule: the tiny
    time range forces heavy timestamp collisions."""
    sim = Simulator()
    fired = []
    for idx, t in enumerate(times):
        sim.at(t, fired.append, (t, idx))
    sim.run()
    assert fired == sorted(fired)  # time-major, then scheduling order
    assert [t for t, _ in fired] == sorted(times)


@given(st.lists(st.integers(min_value=0, max_value=8), min_size=1,
                max_size=40))
def test_trace_hook_order_matches_dispatch_order(times):
    sim = Simulator()
    traced, fired = [], []
    sim.trace = lambda t, fn, args: traced.append(args[0])
    for idx, t in enumerate(times):
        sim.at(t, fired.append, (t, idx))
    sim.run()
    assert traced == fired


def test_identical_runs_produce_byte_identical_traces(small_config):
    """Two identical traced network runs serialize to byte-identical
    canonical trace records — the regression contract every refactor of
    the engine or the networks must preserve."""
    from repro.core.sweep import run_load_point
    from repro.core.tracing import TraceRecorder
    from repro.workloads.synthetic import UniformTraffic

    def one_run():
        rec = TraceRecorder()
        run_load_point("token_ring", small_config,
                       UniformTraffic(small_config.layout), 0.2,
                       window_ns=60.0, seed=99, tracer=rec)
        return b"\n".join(line.encode() for line in rec.canonical_lines())

    first, second = one_run(), one_run()
    assert len(first) > 0
    assert first == second


# -- the trace/stop() cutoff contract ----------------------------------------
# stop() takes effect after the currently dispatching callback returns; no
# event is dispatched afterwards, so dispatch and trace can never disagree.

def test_trace_fires_for_the_stop_requesting_event(sim):
    traced = []
    sim.trace = lambda t, fn, args: traced.append(t)
    sim.at(10, lambda: None)
    sim.at(20, sim.stop)
    sim.at(30, lambda: None)
    sim.run()
    # the stopping event itself is traced; nothing after it is dispatched
    # or traced — the cutoff is identical for both
    assert traced == [10, 20]
    assert sim.pending() == 1


def test_no_dispatch_hence_no_trace_after_stop(sim):
    traced, fired = [], []
    sim.trace = lambda t, fn, args: traced.append(t)

    def stop_then_record():
        sim.stop()
        fired.append("stopper")

    sim.at(5, stop_then_record)
    sim.at(5, fired.append, "same-time-later")  # same timestamp, later seq
    sim.run()
    assert fired == ["stopper"]  # even same-time events are cut off
    assert traced == [5]
    sim.run()  # a fresh run dispatches (and traces) the leftover
    assert fired == ["stopper", "same-time-later"]
    assert traced == [5, 5]


def test_trace_fires_before_a_raising_callback(sim):
    traced = []
    sim.trace = lambda t, fn, args: traced.append(t)

    def boom():
        raise RuntimeError("callback failure")

    sim.at(7, boom)
    with pytest.raises(RuntimeError):
        sim.run()
    assert traced == [7]  # the failing event was traced before dispatch


# -- at_many (bulk scheduling) ------------------------------------------------
# at_many is the engine's bulk-scheduling entry point; it must be
# observationally identical to the equivalent sequence of at() calls.

def test_at_many_dispatch_matches_sequential_at():
    plan = [(30, "c"), (10, "a"), (10, "b"), (20, "x"), (0, "zero")]

    def run_with_at():
        sim = Simulator()
        fired = []
        for t, tag in plan:
            sim.at(t, fired.append, tag)
        sim.run()
        return fired

    def run_with_at_many():
        sim = Simulator()
        fired = []
        count = sim.at_many((t, fired.append, (tag,)) for t, tag in plan)
        assert count == len(plan)
        sim.run()
        return fired

    assert run_with_at() == run_with_at_many()


def test_at_many_interleaved_with_at_preserves_tie_order(sim):
    """Ties at equal timestamps break by scheduling order regardless of
    which API scheduled them — at, at_many, at again."""
    fired = []
    sim.at(50, fired.append, "a")
    sim.at_many([(50, fired.append, ("b",)), (50, fired.append, ("c",)),
                 (10, fired.append, ("early",))])
    sim.at(50, fired.append, "d")
    sim.at_many([(50, fired.append, ("e",))])
    sim.run()
    assert fired == ["early", "a", "b", "c", "d", "e"]


def test_at_many_from_inside_a_callback(sim):
    """Bulk scheduling during dispatch (the sweep's initial injections
    happen before run(), but nothing forbids mid-run bulk adds)."""
    fired = []

    def seed_more():
        sim.at_many([(sim.now + 5, fired.append, (tag,))
                     for tag in ("x", "y")])

    sim.at(10, seed_more)
    sim.at(15, fired.append, "plain")
    sim.run()
    # same-time tie: "plain" (seq 1) precedes the mid-run adds
    assert fired == ["plain", "x", "y"]


def test_at_many_rejects_past_times(sim):
    sim.at(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at_many([(50, lambda: None, ())])


def test_at_many_empty_is_noop(sim):
    assert sim.at_many([]) == 0
    assert sim.pending() == 0


def test_at_many_counts_in_pending(sim):
    sim.at_many([(i, lambda: None, ()) for i in range(5)])
    sim.at(10, lambda: None)
    assert sim.pending() == 6
    assert sim.run() == 6


# -- trace-hook fast/slow loop switching --------------------------------------
# run() dispatches through a hookless fast loop while sim.trace is None and
# a traced loop otherwise; attaching/detaching mid-run must switch loops
# without losing or double-dispatching events.

def test_trace_hook_attached_mid_run_sees_only_later_events(sim):
    traced, fired = [], []

    def attach():
        sim.trace = lambda t, fn, args: traced.append(t)

    for t in (10, 20, 40, 50):
        sim.at(t, fired.append, t)
    sim.at(30, attach)
    sim.run()
    assert fired == [10, 20, 40, 50]
    assert traced == [40, 50]  # events after the attachment, no replay


def test_trace_hook_detached_mid_run_goes_quiet(sim):
    traced, fired = [], []
    sim.trace = lambda t, fn, args: traced.append(t)

    def detach():
        sim.trace = None

    for t in (10, 20, 40, 50):
        sim.at(t, fired.append, t)
    sim.at(30, detach)
    sim.run()
    assert fired == [10, 20, 40, 50]
    assert traced == [10, 20, 30]  # the detaching event itself is traced


def test_trace_hook_toggled_repeatedly_mid_run(sim):
    traced, fired = [], []
    hook = lambda t, fn, args: traced.append(t)  # noqa: E731

    def set_trace(value):
        sim.trace = value

    for t in (10, 30, 50, 70):
        sim.at(t, fired.append, t)
    sim.at(20, set_trace, hook)
    sim.at(40, set_trace, None)
    sim.at(60, set_trace, hook)
    sim.run()
    assert fired == [10, 30, 50, 70]
    # traced windows: (20, 40] and (60, end] — plus the detach event at 40
    assert traced == [30, 40, 70]


def test_mid_run_attach_with_horizon_still_respects_horizon(sim):
    traced = []

    def attach():
        sim.trace = lambda t, fn, args: traced.append(t)

    sim.at(10, attach)
    sim.at(20, lambda: None)
    sim.at(900, lambda: None)
    sim.run(until_ps=100)
    assert traced == [20]
    assert sim.now == 100
    assert sim.pending() == 1


# -- stop() on the final event under a horizon --------------------------------

def test_stop_on_final_event_prevents_horizon_advance(sim):
    """stop() fired by the very last queued event freezes the clock at
    that event even though run() was given a later horizon."""
    sim.at(10, lambda: None)
    sim.at(60, sim.stop)  # final event — queue is empty afterwards
    assert sim.run(until_ps=1000) == 2
    assert sim.now == 60
    assert sim.pending() == 0


def test_stop_on_final_event_traced_run(sim):
    """Same contract through the traced (slow) dispatch loop."""
    traced = []
    sim.trace = lambda t, fn, args: traced.append(t)
    sim.at(10, lambda: None)
    sim.at(60, sim.stop)
    sim.run(until_ps=1000)
    assert traced == [10, 60]
    assert sim.now == 60


def test_stop_at_exactly_the_horizon(sim):
    sim.at(100, sim.stop)
    sim.run(until_ps=100)
    assert sim.now == 100
    sim.at(150, lambda: None)  # clock must not have run past the event
    assert sim.run() == 1
