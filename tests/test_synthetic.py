"""Tests for the synthetic traffic patterns (Table 3)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.parallel import derive_seed
from repro.photonics.layout import MacrochipLayout
from repro.workloads.synthetic import (
    AdversarialTraffic,
    BurstyTraffic,
    ButterflyTraffic,
    HotspotTraffic,
    NeighborTraffic,
    TransposeTraffic,
    UniformTraffic,
    exponential_gaps,
    make_pattern,
    pattern_names,
)

LAYOUT = MacrochipLayout()  # 8x8

#: block sizes the batched-vs-unbatched equivalence tests sweep
BATCH_SIZES = [1, 7, 64, 1024]


def _blocked(total, block):
    """Block sizes covering ``total`` draws, last one partial."""
    out = []
    remaining = total
    while remaining > 0:
        take = min(block, remaining)
        out.append(take)
        remaining -= take
    return out


class TestUniform:
    def test_never_self(self):
        pat = UniformTraffic(LAYOUT, seed=7)
        for src in range(64):
            for _ in range(20):
                assert pat.destination(src) != src

    def test_covers_many_destinations(self):
        pat = UniformTraffic(LAYOUT, seed=7)
        dests = {pat.destination(0) for _ in range(500)}
        assert len(dests) > 50

    def test_reseed_reproduces(self):
        pat = UniformTraffic(LAYOUT)
        pat.reseed(123)
        a = [pat.destination(0) for _ in range(10)]
        pat.reseed(123)
        b = [pat.destination(0) for _ in range(10)]
        assert a == b


class TestTranspose:
    def test_rejects_non_square_layout(self):
        """Regression: site_at() wraps modulo the grid, so a 4x8
        'transpose' used to silently fold (c, r) back onto the die —
        a wrong answer, not a pattern."""
        with pytest.raises(ValueError, match="square"):
            TransposeTraffic(MacrochipLayout(rows=4, cols=8))

    def test_swaps_row_and_column(self):
        pat = TransposeTraffic(LAYOUT)
        # site (1, 3) = 11 -> (3, 1) = 25
        assert pat.destination(11) == 25

    def test_is_involution(self):
        pat = TransposeTraffic(LAYOUT)
        for src in range(64):
            assert pat.destination(pat.destination(src)) == src

    def test_diagonal_maps_to_self(self):
        pat = TransposeTraffic(LAYOUT)
        for i in range(8):
            assert pat.destination(i * 9) == i * 9

    def test_deterministic_single_destination(self):
        pat = TransposeTraffic(LAYOUT)
        assert len({pat.destination(11) for _ in range(10)}) == 1


class TestButterfly:
    def test_swaps_lsb_and_msb(self):
        pat = ButterflyTraffic(LAYOUT)
        # site 1 = 000001 -> 100000 = 32
        assert pat.destination(1) == 32
        assert pat.destination(32) == 1

    def test_half_map_to_self(self):
        """LSB == MSB means no movement — the 50% intra-node traffic the
        paper notes for butterfly (section 6.2)."""
        pat = ButterflyTraffic(LAYOUT)
        self_count = sum(1 for s in range(64) if pat.destination(s) == s)
        assert self_count == 32

    def test_is_involution(self):
        pat = ButterflyTraffic(LAYOUT)
        for src in range(64):
            assert pat.destination(pat.destination(src)) == src

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            ButterflyTraffic(MacrochipLayout(rows=3, cols=4))

    def test_rejects_single_site(self):
        """Regression: 1 passes the power-of-two check but has no MSB
        to swap — the shift used to go negative and crash at the first
        destination() call instead of failing at construction."""
        with pytest.raises(ValueError, match="at least 2"):
            ButterflyTraffic(MacrochipLayout(rows=1, cols=1))


class TestNeighbor:
    def test_destination_is_grid_neighbor(self):
        pat = NeighborTraffic(LAYOUT, seed=3)
        for src in range(64):
            r, c = LAYOUT.coords(src)
            for _ in range(10):
                dst = pat.destination(src)
                dr, dc = LAYOUT.coords(dst)
                row_delta = min((r - dr) % 8, (dr - r) % 8)
                col_delta = min((c - dc) % 8, (dc - c) % 8)
                assert row_delta + col_delta == 1

    def test_all_four_neighbors_reachable(self):
        pat = NeighborTraffic(LAYOUT, seed=3)
        dests = {pat.destination(27) for _ in range(200)}
        assert len(dests) == 4


def test_make_pattern_factory():
    for name in pattern_names():
        assert make_pattern(name).name
    with pytest.raises(KeyError):
        make_pattern("bogus")


def test_sweep_ranges_match_paper_axes():
    assert UniformTraffic.sweep_max_fraction == 1.0
    assert TransposeTraffic.sweep_max_fraction == 0.06
    assert NeighborTraffic.sweep_max_fraction == 0.25
    assert ButterflyTraffic.sweep_max_fraction == 0.06


# -- heavy-traffic patterns (PR 8) -------------------------------------------


class TestBursty:
    def test_validates_knobs(self):
        with pytest.raises(ValueError):
            BurstyTraffic(LAYOUT, burstiness=0.5)
        with pytest.raises(ValueError):
            BurstyTraffic(LAYOUT, burst_length=0)

    def test_gap_draws_deterministic_under_reseed(self):
        pat = BurstyTraffic(LAYOUT, seed=9)
        a = pat.gap_draws(random.Random(5), 1000, 200)
        b = pat.gap_draws(random.Random(5), 1000, 200)
        assert a == b and all(g >= 1 for g in a)

    def test_split_streams_depend_only_on_seed(self):
        """A split clone's gaps are a pure function of its seed — not of
        how much the parent (or a sibling) has drawn."""
        parent = BurstyTraffic(LAYOUT, seed=1)
        fresh = parent.split(77).gap_draws(random.Random(77), 500, 50)
        parent.gap_draws(random.Random(3), 500, 500)  # unrelated draws
        again = parent.split(77).gap_draws(random.Random(77), 500, 50)
        assert fresh == again

    @pytest.mark.parametrize("block", BATCH_SIZES)
    def test_gap_draws_block_size_independent(self, block):
        """The renewal process is memoryless across draws, so blocked
        and one-at-a-time draws consume the RNG identically — the
        property the sweep's prefetching relies on."""
        total = 1500
        pat = BurstyTraffic(LAYOUT, seed=0)
        rng_a = random.Random(11)
        unbatched = []
        for _ in range(total):
            unbatched.extend(pat.gap_draws(rng_a, 800, 1))
        rng_b = random.Random(11)
        batched = []
        for take in _blocked(total, block):
            batched.extend(pat.gap_draws(rng_b, 800, take))
        assert batched == unbatched

    def test_long_run_mean_matches_offered_load(self):
        """The ON/OFF means are balanced so the long-run mean gap is the
        offered one: same average load as Poisson, delivered in clumps."""
        pat = BurstyTraffic(LAYOUT, seed=0)
        mean_gap = 10_000
        gaps = pat.gap_draws(random.Random(123), mean_gap, 200_000)
        observed = sum(gaps) / len(gaps)
        assert observed == pytest.approx(mean_gap, rel=0.05)

    def test_is_actually_burstier_than_poisson(self):
        """Squared coefficient of variation well above the exponential's
        1.0 — the clumping the pattern exists to produce."""
        pat = BurstyTraffic(LAYOUT, seed=0)
        gaps = pat.gap_draws(random.Random(123), 10_000, 100_000)
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        assert var / mean ** 2 > 2.0

    def test_draw_signature_carries_the_knobs(self):
        assert (BurstyTraffic(LAYOUT, burstiness=8.0).draw_signature()
                != BurstyTraffic(LAYOUT, burstiness=4.0).draw_signature())


class TestHotspot:
    def test_validates_knobs(self):
        with pytest.raises(ValueError):
            HotspotTraffic(LAYOUT, hotspot_fraction=1.5)
        with pytest.raises(ValueError):
            HotspotTraffic(LAYOUT, hotspots=[64])  # off the 8x8 die

    def test_never_self(self):
        pat = HotspotTraffic(LAYOUT, seed=7, hotspot_fraction=0.9)
        for src in range(64):
            for _ in range(30):
                assert pat.destination(src) != src

    def test_concentration_matches_configured_fraction(self):
        """The hot site receives ~(fraction + uniform residue) of the
        traffic from a non-hot source, within sampling tolerance."""
        fraction = 0.2
        pat = HotspotTraffic(LAYOUT, seed=3, hotspot_fraction=fraction)
        n = 40_000
        hits = sum(1 for _ in range(n) if pat.destination(13) == 0)
        expected = fraction + (1 - fraction) / 63  # uniform leg can hit 0 too
        assert hits / n == pytest.approx(expected, rel=0.08)

    def test_zero_fraction_degenerates_to_uniform_rate(self):
        pat = HotspotTraffic(LAYOUT, seed=3, hotspot_fraction=0.0)
        n = 40_000
        hits = sum(1 for _ in range(n) if pat.destination(13) == 0)
        assert hits / n == pytest.approx(1 / 63, rel=0.15)

    def test_multiple_hotspots_share_the_hot_traffic(self):
        pat = HotspotTraffic(LAYOUT, seed=3, hotspot_fraction=0.5,
                             hotspots=[0, 63])
        n = 20_000
        dests = [pat.destination(13) for _ in range(n)]
        hot0 = dests.count(0) / n
        hot63 = dests.count(63) / n
        assert hot0 == pytest.approx(hot63, rel=0.15)
        # the uniform leg can land on either hot site too
        assert hot0 + hot63 == pytest.approx(0.5 + 2 * 0.5 / 63, rel=0.10)

    def test_draw_signature_separates_configurations(self):
        a = HotspotTraffic(LAYOUT, hotspot_fraction=0.2)
        b = HotspotTraffic(LAYOUT, hotspot_fraction=0.8)
        c = HotspotTraffic(LAYOUT, hotspot_fraction=0.2, hotspots=[5])
        assert len({a.draw_signature(), b.draw_signature(),
                    c.draw_signature()}) == 3


class TestAdversarial:
    def test_is_torus_antipode(self):
        pat = AdversarialTraffic(LAYOUT)
        for src in range(64):
            dst = pat.destination(src)
            assert dst != src
            # maximal torus distance: rows//2 + cols//2 hops
            assert LAYOUT.torus_hop_counts(src, dst) == (4, 4)

    def test_is_involution(self):
        pat = AdversarialTraffic(LAYOUT)
        for src in range(64):
            assert pat.destination(pat.destination(src)) == src

    def test_each_destination_has_one_sender(self):
        pat = AdversarialTraffic(LAYOUT)
        dests = [pat.destination(s) for s in range(64)]
        assert len(set(dests)) == 64

    def test_consumes_no_rng(self):
        pat = AdversarialTraffic(LAYOUT, seed=5)
        state = pat.rng.getstate()
        pat.destinations(7, 100)
        assert pat.rng.getstate() == state


@given(st.integers(min_value=0, max_value=63))
def test_all_patterns_produce_valid_sites(src):
    for name in pattern_names():
        pat = make_pattern(name, LAYOUT, seed=1)
        dst = pat.destination(src)
        assert 0 <= dst < 64


# -- batched draws must consume the RNG streams exactly like unbatched --------
# The sweep harness prefetches per-site gap/destination draws in blocks;
# bit-identical load points require block-size-independent sequences.


@pytest.mark.parametrize("name", pattern_names())
@pytest.mark.parametrize("block", BATCH_SIZES)
def test_batched_destinations_match_unbatched(name, block):
    total = 1500
    for src in (0, 13, 63):
        seed = derive_seed(42, "dst", src)
        unbatched_pat = make_pattern(name, LAYOUT, seed=seed)
        batched_pat = make_pattern(name, LAYOUT, seed=seed)
        unbatched = [unbatched_pat.destination(src) for _ in range(total)]
        batched = []
        for take in _blocked(total, block):
            batched.extend(batched_pat.destinations(src, take))
        assert batched == unbatched


@given(st.integers(min_value=0, max_value=2 ** 63 - 1),
       st.integers(min_value=0, max_value=63),
       st.sampled_from(pattern_names()),
       st.sampled_from(BATCH_SIZES))
def test_batched_destinations_match_unbatched_any_seed(seed, src, name,
                                                       block):
    total = 200
    a = make_pattern(name, LAYOUT, seed=seed)
    b = make_pattern(name, LAYOUT, seed=seed)
    unbatched = [a.destination(src) for _ in range(total)]
    batched = []
    for take in _blocked(total, block):
        batched.extend(b.destinations(src, take))
    assert batched == unbatched


@pytest.mark.parametrize("block", BATCH_SIZES)
def test_batched_exponential_gaps_match_unbatched(block):
    total = 1500
    for site in range(4):
        for mean_gap_ps in (3, 222, 12_800):
            seed = derive_seed(42, "gap", site)
            rng_a = random.Random(seed)
            unbatched = [max(1, int(rng_a.expovariate(1.0 / mean_gap_ps)))
                         for _ in range(total)]
            rng_b = random.Random(seed)
            batched = []
            for take in _blocked(total, block):
                batched.extend(exponential_gaps(rng_b, mean_gap_ps, take))
            assert batched == unbatched


@given(st.integers(min_value=0, max_value=2 ** 63 - 1),
       st.integers(min_value=1, max_value=10 ** 6),
       st.sampled_from(BATCH_SIZES))
def test_exponential_gaps_property(seed, mean_gap_ps, block):
    total = 120
    rng_a = random.Random(seed)
    unbatched = [max(1, int(rng_a.expovariate(1.0 / mean_gap_ps)))
                 for _ in range(total)]
    rng_b = random.Random(seed)
    batched = []
    for take in _blocked(total, block):
        batched.extend(exponential_gaps(rng_b, mean_gap_ps, take))
    assert batched == unbatched
    assert all(g >= 1 for g in batched)
