"""Tests for the synthetic traffic patterns (Table 3)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.parallel import derive_seed
from repro.photonics.layout import MacrochipLayout
from repro.workloads.synthetic import (
    ButterflyTraffic,
    NeighborTraffic,
    TransposeTraffic,
    UniformTraffic,
    exponential_gaps,
    make_pattern,
    pattern_names,
)

LAYOUT = MacrochipLayout()  # 8x8


class TestUniform:
    def test_never_self(self):
        pat = UniformTraffic(LAYOUT, seed=7)
        for src in range(64):
            for _ in range(20):
                assert pat.destination(src) != src

    def test_covers_many_destinations(self):
        pat = UniformTraffic(LAYOUT, seed=7)
        dests = {pat.destination(0) for _ in range(500)}
        assert len(dests) > 50

    def test_reseed_reproduces(self):
        pat = UniformTraffic(LAYOUT)
        pat.reseed(123)
        a = [pat.destination(0) for _ in range(10)]
        pat.reseed(123)
        b = [pat.destination(0) for _ in range(10)]
        assert a == b


class TestTranspose:
    def test_swaps_row_and_column(self):
        pat = TransposeTraffic(LAYOUT)
        # site (1, 3) = 11 -> (3, 1) = 25
        assert pat.destination(11) == 25

    def test_is_involution(self):
        pat = TransposeTraffic(LAYOUT)
        for src in range(64):
            assert pat.destination(pat.destination(src)) == src

    def test_diagonal_maps_to_self(self):
        pat = TransposeTraffic(LAYOUT)
        for i in range(8):
            assert pat.destination(i * 9) == i * 9

    def test_deterministic_single_destination(self):
        pat = TransposeTraffic(LAYOUT)
        assert len({pat.destination(11) for _ in range(10)}) == 1


class TestButterfly:
    def test_swaps_lsb_and_msb(self):
        pat = ButterflyTraffic(LAYOUT)
        # site 1 = 000001 -> 100000 = 32
        assert pat.destination(1) == 32
        assert pat.destination(32) == 1

    def test_half_map_to_self(self):
        """LSB == MSB means no movement — the 50% intra-node traffic the
        paper notes for butterfly (section 6.2)."""
        pat = ButterflyTraffic(LAYOUT)
        self_count = sum(1 for s in range(64) if pat.destination(s) == s)
        assert self_count == 32

    def test_is_involution(self):
        pat = ButterflyTraffic(LAYOUT)
        for src in range(64):
            assert pat.destination(pat.destination(src)) == src

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            ButterflyTraffic(MacrochipLayout(rows=3, cols=4))


class TestNeighbor:
    def test_destination_is_grid_neighbor(self):
        pat = NeighborTraffic(LAYOUT, seed=3)
        for src in range(64):
            r, c = LAYOUT.coords(src)
            for _ in range(10):
                dst = pat.destination(src)
                dr, dc = LAYOUT.coords(dst)
                row_delta = min((r - dr) % 8, (dr - r) % 8)
                col_delta = min((c - dc) % 8, (dc - c) % 8)
                assert row_delta + col_delta == 1

    def test_all_four_neighbors_reachable(self):
        pat = NeighborTraffic(LAYOUT, seed=3)
        dests = {pat.destination(27) for _ in range(200)}
        assert len(dests) == 4


def test_make_pattern_factory():
    for name in pattern_names():
        assert make_pattern(name).name
    with pytest.raises(KeyError):
        make_pattern("bogus")


def test_sweep_ranges_match_paper_axes():
    assert UniformTraffic.sweep_max_fraction == 1.0
    assert TransposeTraffic.sweep_max_fraction == 0.06
    assert NeighborTraffic.sweep_max_fraction == 0.25
    assert ButterflyTraffic.sweep_max_fraction == 0.06


@given(st.integers(min_value=0, max_value=63))
def test_all_patterns_produce_valid_sites(src):
    for name in pattern_names():
        pat = make_pattern(name, LAYOUT, seed=1)
        dst = pat.destination(src)
        assert 0 <= dst < 64


# -- batched draws must consume the RNG streams exactly like unbatched --------
# The sweep harness prefetches per-site gap/destination draws in blocks;
# bit-identical load points require block-size-independent sequences.

BATCH_SIZES = [1, 7, 64, 1024]


def _blocked(total, block):
    """Block sizes covering ``total`` draws, last one partial."""
    out = []
    remaining = total
    while remaining > 0:
        take = min(block, remaining)
        out.append(take)
        remaining -= take
    return out


@pytest.mark.parametrize("name", pattern_names())
@pytest.mark.parametrize("block", BATCH_SIZES)
def test_batched_destinations_match_unbatched(name, block):
    total = 1500
    for src in (0, 13, 63):
        seed = derive_seed(42, "dst", src)
        unbatched_pat = make_pattern(name, LAYOUT, seed=seed)
        batched_pat = make_pattern(name, LAYOUT, seed=seed)
        unbatched = [unbatched_pat.destination(src) for _ in range(total)]
        batched = []
        for take in _blocked(total, block):
            batched.extend(batched_pat.destinations(src, take))
        assert batched == unbatched


@given(st.integers(min_value=0, max_value=2 ** 63 - 1),
       st.integers(min_value=0, max_value=63),
       st.sampled_from(pattern_names()),
       st.sampled_from(BATCH_SIZES))
def test_batched_destinations_match_unbatched_any_seed(seed, src, name,
                                                       block):
    total = 200
    a = make_pattern(name, LAYOUT, seed=seed)
    b = make_pattern(name, LAYOUT, seed=seed)
    unbatched = [a.destination(src) for _ in range(total)]
    batched = []
    for take in _blocked(total, block):
        batched.extend(b.destinations(src, take))
    assert batched == unbatched


@pytest.mark.parametrize("block", BATCH_SIZES)
def test_batched_exponential_gaps_match_unbatched(block):
    total = 1500
    for site in range(4):
        for mean_gap_ps in (3, 222, 12_800):
            seed = derive_seed(42, "gap", site)
            rng_a = random.Random(seed)
            unbatched = [max(1, int(rng_a.expovariate(1.0 / mean_gap_ps)))
                         for _ in range(total)]
            rng_b = random.Random(seed)
            batched = []
            for take in _blocked(total, block):
                batched.extend(exponential_gaps(rng_b, mean_gap_ps, take))
            assert batched == unbatched


@given(st.integers(min_value=0, max_value=2 ** 63 - 1),
       st.integers(min_value=1, max_value=10 ** 6),
       st.sampled_from(BATCH_SIZES))
def test_exponential_gaps_property(seed, mean_gap_ps, block):
    total = 120
    rng_a = random.Random(seed)
    unbatched = [max(1, int(rng_a.expovariate(1.0 / mean_gap_ps)))
                 for _ in range(total)]
    rng_b = random.Random(seed)
    batched = []
    for take in _blocked(total, block):
        batched.extend(exponential_gaps(rng_b, mean_gap_ps, take))
    assert batched == unbatched
    assert all(g >= 1 for g in batched)
