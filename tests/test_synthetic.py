"""Tests for the synthetic traffic patterns (Table 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.photonics.layout import MacrochipLayout
from repro.workloads.synthetic import (
    ButterflyTraffic,
    NeighborTraffic,
    TransposeTraffic,
    UniformTraffic,
    make_pattern,
    pattern_names,
)

LAYOUT = MacrochipLayout()  # 8x8


class TestUniform:
    def test_never_self(self):
        pat = UniformTraffic(LAYOUT, seed=7)
        for src in range(64):
            for _ in range(20):
                assert pat.destination(src) != src

    def test_covers_many_destinations(self):
        pat = UniformTraffic(LAYOUT, seed=7)
        dests = {pat.destination(0) for _ in range(500)}
        assert len(dests) > 50

    def test_reseed_reproduces(self):
        pat = UniformTraffic(LAYOUT)
        pat.reseed(123)
        a = [pat.destination(0) for _ in range(10)]
        pat.reseed(123)
        b = [pat.destination(0) for _ in range(10)]
        assert a == b


class TestTranspose:
    def test_swaps_row_and_column(self):
        pat = TransposeTraffic(LAYOUT)
        # site (1, 3) = 11 -> (3, 1) = 25
        assert pat.destination(11) == 25

    def test_is_involution(self):
        pat = TransposeTraffic(LAYOUT)
        for src in range(64):
            assert pat.destination(pat.destination(src)) == src

    def test_diagonal_maps_to_self(self):
        pat = TransposeTraffic(LAYOUT)
        for i in range(8):
            assert pat.destination(i * 9) == i * 9

    def test_deterministic_single_destination(self):
        pat = TransposeTraffic(LAYOUT)
        assert len({pat.destination(11) for _ in range(10)}) == 1


class TestButterfly:
    def test_swaps_lsb_and_msb(self):
        pat = ButterflyTraffic(LAYOUT)
        # site 1 = 000001 -> 100000 = 32
        assert pat.destination(1) == 32
        assert pat.destination(32) == 1

    def test_half_map_to_self(self):
        """LSB == MSB means no movement — the 50% intra-node traffic the
        paper notes for butterfly (section 6.2)."""
        pat = ButterflyTraffic(LAYOUT)
        self_count = sum(1 for s in range(64) if pat.destination(s) == s)
        assert self_count == 32

    def test_is_involution(self):
        pat = ButterflyTraffic(LAYOUT)
        for src in range(64):
            assert pat.destination(pat.destination(src)) == src

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            ButterflyTraffic(MacrochipLayout(rows=3, cols=4))


class TestNeighbor:
    def test_destination_is_grid_neighbor(self):
        pat = NeighborTraffic(LAYOUT, seed=3)
        for src in range(64):
            r, c = LAYOUT.coords(src)
            for _ in range(10):
                dst = pat.destination(src)
                dr, dc = LAYOUT.coords(dst)
                row_delta = min((r - dr) % 8, (dr - r) % 8)
                col_delta = min((c - dc) % 8, (dc - c) % 8)
                assert row_delta + col_delta == 1

    def test_all_four_neighbors_reachable(self):
        pat = NeighborTraffic(LAYOUT, seed=3)
        dests = {pat.destination(27) for _ in range(200)}
        assert len(dests) == 4


def test_make_pattern_factory():
    for name in pattern_names():
        assert make_pattern(name).name
    with pytest.raises(KeyError):
        make_pattern("bogus")


def test_sweep_ranges_match_paper_axes():
    assert UniformTraffic.sweep_max_fraction == 1.0
    assert TransposeTraffic.sweep_max_fraction == 0.06
    assert NeighborTraffic.sweep_max_fraction == 0.25
    assert ButterflyTraffic.sweep_max_fraction == 0.06


@given(st.integers(min_value=0, max_value=63))
def test_all_patterns_produce_valid_sites(src):
    for name in pattern_names():
        pat = make_pattern(name, LAYOUT, seed=1)
        dst = pat.destination(src)
        assert 0 <= dst < 64
