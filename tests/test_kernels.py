"""Tests for the application-kernel workload models."""

import pytest

from repro.cpu.system import generate_trace
from repro.cpu.coherence import OpKind
from repro.macrochip.config import small_test_config
from repro.workloads.kernels import (
    FIGURE7_KERNELS,
    BarnesKernel,
    BlackscholesKernel,
    FluidanimateDensitiesKernel,
    FluidanimateForcesKernel,
    RadixKernel,
    SwaptionsKernel,
)
from repro.workloads.kernels._base import PAGE_LINES, KernelBase, line_addr


CFG = small_test_config(4, 4)


def trace_of(kernel_cls, refs=120):
    return generate_trace(kernel_cls(refs_per_core=refs), CFG)


class TestLineAddr:
    def test_home_site_respected(self):
        from repro.cpu.directory import Directory

        d = Directory(CFG.num_sites)
        for home in range(CFG.num_sites):
            for block in (0, 1, 63, 64, 1000):
                addr = line_addr(home, block, CFG.num_sites)
                assert d.home_site(addr) == home

    def test_blocks_are_distinct_lines(self):
        addrs = {line_addr(3, b, 16) for b in range(500)}
        assert len(addrs) == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            line_addr(16, 0, 16)
        with pytest.raises(ValueError):
            line_addr(0, -1, 16)

    def test_addresses_spread_over_cache_sets(self):
        """Page-granularity interleave must not alias all same-home lines
        into a few cache sets (the bug class this helper guards against)."""
        from repro.cpu.cache import SetAssociativeCache

        cache = SetAssociativeCache(256 * 1024, 64, 8)
        sets = {cache.set_index(line_addr(5, b, 16)) for b in range(512)}
        assert len(sets) > 100


class TestKernelBase:
    def test_refs_per_core_override(self):
        k = RadixKernel(refs_per_core=50)
        assert k.refs_per_core == 50
        with pytest.raises(ValueError):
            RadixKernel(refs_per_core=0)

    def test_streams_are_per_core(self):
        k = RadixKernel(refs_per_core=10)
        streams = k.core_streams(CFG)
        assert len(streams) == CFG.num_cores

    def test_deterministic_streams(self):
        a = list(RadixKernel(refs_per_core=20)._stream(3, CFG))
        b = list(RadixKernel(refs_per_core=20)._stream(3, CFG))
        assert [(r.addr, r.write) for r in a] == [(r.addr, r.write) for r in b]


@pytest.mark.parametrize("kernel_cls", FIGURE7_KERNELS)
def test_every_kernel_produces_coherence_traffic(kernel_cls):
    trace = trace_of(kernel_cls)
    assert trace.total_ops > 0
    assert trace.total_references == CFG.num_cores * kernel_cls(
        refs_per_core=120).refs_per_core
    assert 0.0 < trace.miss_rate < 0.5


@pytest.mark.parametrize("kernel_cls", FIGURE7_KERNELS)
def test_every_kernel_has_remote_traffic(kernel_cls):
    """A kernel that only talks to its own site would not exercise the
    network at all."""
    trace = trace_of(kernel_cls)
    remote = sum(1 for ops in trace.ops_by_core for op in ops
                 if op.home != op.requester)
    assert remote > 0


def test_radix_is_write_dominated():
    hist = trace_of(RadixKernel).kind_histogram()
    assert hist.get("GetM", 0) > hist.get("GetS", 0)


def test_barnes_has_lowest_miss_rate():
    rates = {k.name: trace_of(k).miss_rate for k in FIGURE7_KERNELS}
    assert rates["Barnes"] == min(rates.values())


def test_blackscholes_mostly_reads():
    hist = trace_of(BlackscholesKernel).kind_histogram()
    assert hist.get("GetS", 0) > 3 * hist.get("GetM", 0)


def test_forces_writes_more_than_densities():
    f = trace_of(FluidanimateForcesKernel).kind_histogram()
    d = trace_of(FluidanimateDensitiesKernel).kind_histogram()
    f_frac = f.get("GetM", 0) / max(1, sum(f.values()))
    d_frac = d.get("GetM", 0) / max(1, sum(d.values()))
    assert f_frac > d_frac


def test_fluidanimate_traffic_is_neighbor_heavy():
    trace = trace_of(FluidanimateDensitiesKernel)
    layout = CFG.layout
    neighbor_ops = 0
    far_ops = 0
    for ops in trace.ops_by_core:
        for op in ops:
            if op.home == op.requester:
                continue
            hr, hc = layout.torus_hop_counts(op.requester, op.home)
            if hr + hc <= 2:
                neighbor_ops += 1
            else:
                far_ops += 1
    assert neighbor_ops > 3 * far_ops


def test_swaptions_produces_invalidation_traffic():
    trace = trace_of(SwaptionsKernel, refs=200)
    invs = sum(len(op.sharers) for ops in trace.ops_by_core for op in ops
               if op.kind in (OpKind.GET_M, OpKind.UPGRADE))
    assert invs > 0


def test_kernel_names_match_figure7_columns():
    assert [k.name for k in FIGURE7_KERNELS] == [
        "Radix", "Barnes", "Blackscholes", "Densities", "Forces",
        "Swaptions"]


class TestExtensionKernels:
    """FFT and LU are extensions beyond the paper's six kernels."""

    def test_registry(self):
        from repro.workloads.kernels import EXTENSION_KERNELS, FftKernel, LuKernel

        assert EXTENSION_KERNELS == [FftKernel, LuKernel]
        # extensions stay out of the paper's Figure 7 column set
        assert FftKernel not in FIGURE7_KERNELS

    def test_fft_transpose_is_all_to_all(self):
        from repro.workloads.kernels import FftKernel

        trace = trace_of(FftKernel, refs=300)
        homes = set()
        for ops in trace.ops_by_core:
            for op in ops:
                if op.kind is OpKind.GET_M:
                    homes.add(op.home)
        assert len(homes) == CFG.num_sites  # transpose touches everyone

    def test_lu_pivot_reads_are_widely_shared(self):
        from repro.workloads.kernels import LuKernel

        trace = trace_of(LuKernel, refs=400)
        # some write must invalidate multiple sharers (the pivot block
        # accumulating readers before the owner's next factorization)
        max_fanout = max(
            (len(op.sharers) for ops in trace.ops_by_core for op in ops),
            default=0)
        assert max_fanout >= 3

    def test_extensions_replay_end_to_end(self):
        from repro.cpu.system import generate_trace
        from repro.workloads.kernels import FftKernel
        from repro.workloads.replay import replay

        trace = generate_trace(FftKernel(refs_per_core=120), CFG)
        result = replay(trace, "point_to_point", CFG)
        assert result.ops_completed > 0
