"""Tests for sharing mixes and synthetic coherence trace generation."""

import random

import pytest

from repro.cpu.coherence import OpKind
from repro.macrochip.config import small_test_config
from repro.workloads.sharing import (
    LESS_SHARING,
    MORE_SHARING,
    SharingMix,
    mix_by_name,
)
from repro.workloads.synthetic import make_pattern
from repro.workloads.synthetic_coherence import (
    FIGURE7_SYNTHETIC,
    SyntheticCoherenceSpec,
    generate_synthetic_trace,
)


class TestSharingMix:
    def test_paper_mixes(self):
        assert LESS_SHARING.sharer_probability == 0.10
        assert LESS_SHARING.sharer_count == 1
        assert MORE_SHARING.sharer_probability == 0.40
        assert MORE_SHARING.sharer_count == 3

    def test_mix_by_name(self):
        assert mix_by_name("ls") is LESS_SHARING
        assert mix_by_name("MS") is MORE_SHARING
        with pytest.raises(KeyError):
            mix_by_name("XL")

    def test_validation(self):
        with pytest.raises(ValueError):
            SharingMix("bad", 1.5, 1)
        with pytest.raises(ValueError):
            SharingMix("bad", 0.5, -1)

    def test_draw_excludes_requester(self):
        rng = random.Random(0)
        for _ in range(200):
            sharers = MORE_SHARING.draw_sharers(rng, requester=3,
                                                num_sites=16)
            assert 3 not in sharers
            assert len(sharers) in (0, 3)
            assert len(set(sharers)) == len(sharers)

    def test_draw_frequency_close_to_mix(self):
        rng = random.Random(42)
        hits = sum(1 for _ in range(2000)
                   if MORE_SHARING.draw_sharers(rng, 0, 64))
        assert 0.35 < hits / 2000 < 0.45

    def test_sharer_count_clamped_to_machine(self):
        rng = random.Random(1)
        mix = SharingMix("tiny", 1.0, 10)
        sharers = mix.draw_sharers(rng, 0, num_sites=4)
        assert len(sharers) == 3


class TestSyntheticTrace:
    def setup_method(self):
        self.cfg = small_test_config(4, 4)

    def make(self, pattern="uniform", mix="LS", ops=20):
        spec = SyntheticCoherenceSpec("test", ops_per_core=ops)
        return generate_synthetic_trace(
            spec, make_pattern(pattern, self.cfg.layout),
            mix_by_name(mix), self.cfg)

    def test_shape(self):
        trace = self.make()
        assert trace.num_cores == self.cfg.num_cores
        assert trace.total_ops == self.cfg.num_cores * 20

    def test_miss_rate_near_4_percent(self):
        trace = self.make(ops=200)
        assert 0.03 < trace.miss_rate < 0.05

    def test_transpose_homes_follow_pattern(self):
        trace = self.make(pattern="transpose")
        pat = make_pattern("transpose", self.cfg.layout)
        for core, ops in enumerate(trace.ops_by_core):
            site = core // self.cfg.cores_per_site
            for op in ops:
                assert op.home == pat.destination(site)

    def test_ms_mix_produces_invalidations(self):
        trace = self.make(mix="MS", ops=100)
        with_sharers = sum(
            1 for ops in trace.ops_by_core for op in ops
            if op.kind is OpKind.GET_M and len(op.sharers) == 3)
        assert with_sharers > 0

    def test_ls_mix_reads_find_owners_sometimes(self):
        trace = self.make(mix="LS", ops=200)
        owners = sum(1 for ops in trace.ops_by_core for op in ops
                     if op.kind is OpKind.GET_S and op.owner is not None)
        assert owners > 0

    def test_deterministic_for_same_seed(self):
        a = self.make()
        b = self.make()
        assert a.ops_by_core[5][3].home == b.ops_by_core[5][3].home
        assert a.ops_by_core[5][3].gap_cycles == b.ops_by_core[5][3].gap_cycles

    def test_bad_miss_rate_rejected(self):
        spec = SyntheticCoherenceSpec("bad", miss_rate=0.0)
        with pytest.raises(ValueError):
            generate_synthetic_trace(
                spec, make_pattern("uniform", self.cfg.layout),
                LESS_SHARING, self.cfg)


def test_figure7_synthetic_listing():
    names = [n for n, _, _ in FIGURE7_SYNTHETIC]
    assert names == ["All-to-all", "Transpose", "Transpose-MS", "Neighbor",
                     "Butterfly"]
