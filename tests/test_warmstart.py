"""Differential tests locking the PR 5 warm-start machinery down.

Warm-start execution reuses three things a cold run rebuilds per load
point — the (simulator, network) pair (reset via the ``reset()``
protocol), the interned pure derived tables, and the injection draw
bank — and the contract is absolute: a warm run must be *bit-identical*
to a cold run, proven by

* byte-identical canonical traces after N reuse cycles of one context,
  for every network architecture plus the electrical baseline;
* exact :class:`~repro.core.sweep.LoadPointResult` equality (including
  ``events_dispatched``) between cold and warm runs;
* bit-identical sweep results for worker counts 1, 2, and 4 with warm
  contexts live inside the workers (pool-reuse determinism).

The reset protocol itself is unit-tested at each layer (engine, stats,
networks), and per-run packet ids are pinned: a run's raw pids must be a
pure function of its arguments, independent of process history.
"""

import pytest

from repro.core.engine import Simulator
from repro.core.interning import clear_interned, intern_table, interned_count
from repro.core.parallel import (WorkerPool, clear_contexts, get_context,
                                 run_sharded, Shard)
from repro.core.stats import NetworkStats
from repro.core.sweep import (clear_draw_banks, run_load_point, sweep)
from repro.core.tracing import TraceRecorder
from repro.macrochip.config import small_test_config
from repro.networks.base import Packet
from repro.networks.factory import build_network
from repro.workloads.synthetic import UniformTraffic

CFG = small_test_config(4, 4)

#: every architecture plus the electrical baseline, each with a load
#: near its knee so queues/arbitration state actually accumulates
NETWORK_LOADS = [
    ("point_to_point", 0.60),
    ("limited_point_to_point", 0.40),
    ("token_ring", 0.30),
    ("two_phase", 0.08),
    ("circuit_switched", 0.03),
    ("electrical_baseline", 0.05),
    ("hermes", 0.30),
]

NETWORKS = [key for key, _ in NETWORK_LOADS]

WINDOW_NS = 80.0
SEED = 7
REUSE_CYCLES = 3


def _pattern():
    return UniformTraffic(CFG.layout, seed=1)


def _run(network, load, warm, tracer=None):
    return run_load_point(network, CFG, _pattern(), load,
                          window_ns=WINDOW_NS, seed=SEED, warm=warm,
                          tracer=tracer)


@pytest.fixture(autouse=True)
def _fresh_registries():
    """Every test starts with cold per-process registries, so warm paths
    demonstrably construct-then-reuse inside the test itself."""
    clear_contexts()
    clear_draw_banks()
    yield
    clear_contexts()
    clear_draw_banks()


# -- reset protocol units ----------------------------------------------------


def test_simulator_reset_restores_fresh_state():
    sim = Simulator()
    fired = []
    sim.at(5, fired.append, "a")
    sim.schedule(9, fired.append, "b")
    sim.run()
    assert sim.now > 0 and fired == ["a", "b"]
    sim.reset()
    assert sim.now == 0
    assert not sim.pending()
    # the clock and sequence numbers restart: a rerun schedules events
    # at absolute times again, not relative to the old clock
    sim.at(3, fired.append, "c")
    sim.run()
    assert sim.now == 3 and fired[-1] == "c"


def test_simulator_reset_preserves_bulk_identity():
    """reset() must clear the bulk tier in place — engine internals bind
    it locally, so rebinding would desynchronize a reset simulator."""
    sim = Simulator()
    bulk = sim._bulk
    queue = sim._queue
    sim.at_many((t, (lambda: None), ()) for t in (5, 4, 3))
    sim.reset()
    assert sim._bulk is bulk and sim._queue is queue
    assert not bulk and not queue


def test_network_stats_reset():
    stats = NetworkStats(warmup_ps=10, window_end_ps=100)
    stats.injected_packets = 5
    stats.delivered_packets = 4
    stats.latency.add(5000)
    stats.throughput.record(50, 64)
    stats.energy.add("laser", 1.5)
    stats.throughput.window_end_ps = 777  # run-level override
    stats.reset()
    assert stats.injected_packets == 0
    assert stats.delivered_packets == 0
    assert len(stats.latency) == 0
    assert stats.energy.total_pj == 0.0
    assert stats.throughput.bytes_per_ns() == 0.0
    # reset restores the *constructed* window, not the override
    assert stats.throughput.window_end_ps == 100


@pytest.mark.parametrize("network", NETWORKS)
def test_network_reset_equals_fresh_instance(network):
    """A reset network run a second time must behave byte-identically to
    a fresh construction: same canonical trace, same stats."""
    load = dict(NETWORK_LOADS)[network]
    fresh = _run(network, load, warm=False)
    fresh_trace = _canonical(network, load, warm=False)
    # one context, reused REUSE_CYCLES times, compared every cycle
    for cycle in range(REUSE_CYCLES):
        assert _run(network, load, warm=True) == fresh, (
            "results diverged on reuse cycle %d" % cycle)
        assert _canonical(network, load, warm=True) == fresh_trace, (
            "trace diverged on reuse cycle %d" % cycle)


def _canonical(network, load, warm):
    rec = TraceRecorder()
    _run(network, load, warm=warm, tracer=rec)
    return "\n".join(rec.canonical_lines()).encode()


# -- context registry --------------------------------------------------------


def test_get_context_reuses_and_resets():
    ctx1 = get_context("point_to_point", CFG, warmup_ps=100)
    sim, net = ctx1.sim, ctx1.network
    sim.at(5, lambda: None)
    sim.run()
    ctx2 = get_context("point_to_point", CFG, warmup_ps=100)
    assert ctx2 is ctx1 and ctx2.sim is sim and ctx2.network is net
    assert sim.now == 0 and not sim.pending()
    assert ctx2.uses == 2
    # a different fingerprint gets its own context
    ctx3 = get_context("point_to_point", CFG, warmup_ps=200)
    assert ctx3 is not ctx1
    assert clear_contexts() == 2


def test_interned_tables_shared_across_instances():
    clear_interned()
    sim_a, sim_b = Simulator(), Simulator()
    net_a = build_network("limited_point_to_point", CFG, sim_a)
    net_b = build_network("limited_point_to_point", CFG, sim_b)
    assert net_a._fwd_table is net_b._fwd_table
    assert interned_count() > 0
    # intern_table returns the same object for the same key, and the
    # builder runs exactly once
    calls = []
    t1 = intern_table(("unit-test", 1), lambda: calls.append(1) or [1, 2])
    t2 = intern_table(("unit-test", 1), lambda: calls.append(1) or [3, 4])
    assert t1 is t2 and t1 == [1, 2] and calls == [1]
    clear_interned()


# -- per-run packet ids ------------------------------------------------------


def test_pids_independent_of_process_history():
    """Raw pids must restart at 0 per run: two identical runs yield the
    same pid for the same packet no matter what ran in between."""
    rec_a = TraceRecorder()
    _run("token_ring", 0.30, warm=False, tracer=rec_a)
    # pollute process history: other runs, other networks
    _run("two_phase", 0.08, warm=False)
    Packet(0, 1, 64)  # a stray module-counter packet
    rec_b = TraceRecorder()
    _run("token_ring", 0.30, warm=False, tracer=rec_b)
    raw_a = [(e.time_ps, e.etype, e.pid) for e in rec_a.events]
    raw_b = [(e.time_ps, e.etype, e.pid) for e in rec_b.events]
    assert raw_a == raw_b  # raw pids, not canonical renumbering


def test_explicit_pid_overrides_module_counter():
    assert Packet(0, 1, 64, pid=123).pid == 123
    a = Packet(0, 1, 64)
    b = Packet(0, 1, 64)
    assert b.pid == a.pid + 1  # module counter still serves default use


# -- pool-reuse determinism --------------------------------------------------


FRACTIONS = [0.05, 0.20, 0.40, 0.60]


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_sweep_warm_identical_across_worker_counts(workers):
    serial_cold = sweep("point_to_point", CFG, _pattern(), FRACTIONS,
                        window_ns=WINDOW_NS, seed=SEED, warm=False)
    got = sweep("point_to_point", CFG, _pattern(), FRACTIONS,
                window_ns=WINDOW_NS, seed=SEED, warm=True,
                workers=workers)
    assert got == serial_cold


def test_worker_pool_survives_across_run_sharded_calls():
    shards = [Shard(run_load_point,
                    args=("point_to_point", CFG, _pattern(), f),
                    kwargs=dict(window_ns=WINDOW_NS, seed=SEED, warm=True))
              for f in FRACTIONS]
    baseline = run_sharded(shards, workers=1).results
    with WorkerPool(workers=2) as pool:
        first = run_sharded(shards, workers=2, pool=pool)
        second = run_sharded(shards, workers=2, pool=pool)
        assert first.results == baseline
        assert second.results == baseline
        if pool.mode != "serial":
            # same worker processes served both calls (the pool's point)
            pids_first = {r.worker_pid for r in first.reports}
            pids_second = {r.worker_pid for r in second.reports}
            assert pids_first & pids_second
    # close() is idempotent and the pool can be reused after closing
    pool.close()
    third = run_sharded(shards, workers=2, pool=pool)
    assert third.results == baseline
    pool.close()


def test_sweep_accepts_borrowed_pool():
    with WorkerPool(workers=2) as pool:
        a = sweep("token_ring", CFG, _pattern(), FRACTIONS,
                  window_ns=WINDOW_NS, seed=SEED, workers=2, pool=pool)
        b = sweep("token_ring", CFG, _pattern(), FRACTIONS,
                  window_ns=WINDOW_NS, seed=SEED, warm=False)
    assert a == b


# -- draw-bank cache keys for parametrized patterns (PR 8 regression) --------


def test_draw_bank_keys_on_pattern_parameters():
    """Regression: the warm draw bank used to key destination caches on
    (seed, pattern class, layout) only, so two differently-parametrized
    instances of one pattern class shared cached streams — the second
    configuration silently replayed the first one's destinations.  The
    key now includes ``draw_signature()``."""
    from repro.workloads.synthetic import HotspotTraffic

    def warm_run(fraction):
        return run_load_point(
            "point_to_point", CFG,
            HotspotTraffic(CFG.layout, seed=1, hotspot_fraction=fraction),
            0.10, window_ns=WINDOW_NS, seed=SEED, warm=True)

    # populate the bank with the all-uniform configuration, then run the
    # all-hotspot one through the same warm registries
    mild = warm_run(0.0)
    extreme = warm_run(1.0)
    clear_contexts()
    clear_draw_banks()
    fresh_extreme = warm_run(1.0)
    assert extreme == fresh_extreme
    assert extreme != mild  # the knob visibly changes the traffic


def test_bursty_pattern_bypasses_draw_bank_but_stays_deterministic():
    """uses_custom_gaps patterns can't use the warm bank (it factors
    unit exponentials); warm runs must still be bit-identical to cold."""
    from repro.workloads.synthetic import BurstyTraffic

    def run(warm):
        return run_load_point(
            "point_to_point", CFG, BurstyTraffic(CFG.layout, seed=1),
            0.10, window_ns=WINDOW_NS, seed=SEED, warm=warm)

    cold = run(False)
    warm_a = run(True)
    warm_b = run(True)
    assert warm_a == cold
    assert warm_b == cold
