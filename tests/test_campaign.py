"""Tests for the disk-backed campaign runner."""

import os

import pytest

from repro.experiments.campaign import Campaign
from repro.macrochip.config import small_test_config


NETS = ["point_to_point", "circuit_switched"]
LOADS = ["Radix", "All-to-all"]


@pytest.fixture
def campaign(tmp_path):
    return Campaign(str(tmp_path / "c"), preset_name="smoke",
                    config=small_test_config(2, 2))


def test_run_produces_full_grid(campaign):
    grid = campaign.run(networks=NETS, workloads=LOADS)
    assert set(grid) == set(LOADS)
    for workload in LOADS:
        assert set(grid[workload]) == set(NETS)
        for entry in grid[workload].values():
            assert entry.runtime_ps > 0
            assert entry.ops_completed > 0


def test_traces_cached_on_disk(campaign):
    campaign.run(networks=["point_to_point"], workloads=["Radix"])
    assert os.path.exists(os.path.join(campaign.traces_dir, "Radix.json"))


def test_results_cached_and_reused(campaign):
    first = campaign.run(networks=NETS, workloads=["Radix"])
    count = campaign.completed_pairs()
    # second run must reuse everything (identical values, no new files)
    second = campaign.run(networks=NETS, workloads=["Radix"])
    assert campaign.completed_pairs() == count
    for net in NETS:
        assert (first["Radix"][net].runtime_ps
                == second["Radix"][net].runtime_ps)


def test_incremental_network_addition(campaign):
    campaign.run(networks=["point_to_point"], workloads=["Radix"])
    before = campaign.completed_pairs()
    grid = campaign.run(networks=NETS, workloads=["Radix"])
    assert campaign.completed_pairs() == before + 1
    assert set(grid["Radix"]) == set(NETS)


def test_speedup_table(campaign):
    grid = campaign.run(networks=NETS, workloads=LOADS)
    speedups = campaign.speedup_table(grid)
    for workload in LOADS:
        assert speedups[workload]["circuit_switched"] == 1.0
        assert speedups[workload]["point_to_point"] > 1.0
