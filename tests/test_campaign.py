"""Tests for the disk-backed campaign runner."""

import json
import os

import pytest

import repro.experiments.campaign as campaign_mod
from repro.experiments.campaign import Campaign, CampaignStateError
from repro.macrochip.config import small_test_config


NETS = ["point_to_point", "circuit_switched"]
LOADS = ["Radix", "All-to-all"]


@pytest.fixture
def campaign(tmp_path):
    return Campaign(str(tmp_path / "c"), preset_name="smoke",
                    config=small_test_config(2, 2))


def test_run_produces_full_grid(campaign):
    grid = campaign.run(networks=NETS, workloads=LOADS)
    assert set(grid) == set(LOADS)
    for workload in LOADS:
        assert set(grid[workload]) == set(NETS)
        for entry in grid[workload].values():
            assert entry.runtime_ps > 0
            assert entry.ops_completed > 0


def test_traces_cached_on_disk(campaign):
    campaign.run(networks=["point_to_point"], workloads=["Radix"])
    assert os.path.exists(os.path.join(campaign.traces_dir, "Radix.json"))


def test_results_cached_and_reused(campaign):
    first = campaign.run(networks=NETS, workloads=["Radix"])
    count = campaign.completed_pairs()
    # second run must reuse everything (identical values, no new files)
    second = campaign.run(networks=NETS, workloads=["Radix"])
    assert campaign.completed_pairs() == count
    for net in NETS:
        assert (first["Radix"][net].runtime_ps
                == second["Radix"][net].runtime_ps)


def test_incremental_network_addition(campaign):
    campaign.run(networks=["point_to_point"], workloads=["Radix"])
    before = campaign.completed_pairs()
    grid = campaign.run(networks=NETS, workloads=["Radix"])
    assert campaign.completed_pairs() == before + 1
    assert set(grid["Radix"]) == set(NETS)


def test_speedup_table(campaign):
    grid = campaign.run(networks=NETS, workloads=LOADS)
    speedups = campaign.speedup_table(grid)
    for workload in LOADS:
        assert speedups[workload]["circuit_switched"] == 1.0
        assert speedups[workload]["point_to_point"] > 1.0


# -- partial-cache resume (regression: ensure_traces over-rebuild) -----------

def test_missing_trace_rebuilds_only_missing(campaign, monkeypatch):
    campaign.run(networks=["point_to_point"], workloads=LOADS)
    os.remove(os.path.join(campaign.traces_dir, "Radix.json"))

    requested = []
    real_build = campaign_mod.build_traces

    def spy(preset, config, progress=None, workloads=None, workers=1,
            pool=None, **kwargs):
        requested.append(workloads)
        return real_build(preset, config, progress,
                          workloads=workloads, workers=workers, pool=pool,
                          **kwargs)

    monkeypatch.setattr(campaign_mod, "build_traces", spy)
    traces = campaign.ensure_traces()
    assert requested == [["Radix"]]  # only the deleted workload rebuilt
    assert "Radix" in traces
    assert os.path.exists(os.path.join(campaign.traces_dir, "Radix.json"))


def test_untouched_traces_not_rewritten(campaign):
    campaign.run(networks=["point_to_point"], workloads=LOADS)
    kept = os.path.join(campaign.traces_dir, "All-to-all.json")
    before = os.stat(kept).st_mtime_ns
    os.remove(os.path.join(campaign.traces_dir, "Radix.json"))
    campaign.ensure_traces()
    assert os.stat(kept).st_mtime_ns == before


def test_missing_result_resimulates_only_missing(campaign):
    campaign.run(networks=NETS, workloads=LOADS)
    victim = os.path.join(campaign.results_dir,
                          "Radix__point_to_point.json")
    kept = os.path.join(campaign.results_dir,
                        "Radix__circuit_switched.json")
    os.remove(victim)
    before = os.stat(kept).st_mtime_ns
    grid = campaign.run(networks=NETS, workloads=LOADS)
    assert os.path.exists(victim)  # re-simulated
    assert os.stat(kept).st_mtime_ns == before  # reused untouched
    assert grid["Radix"]["point_to_point"].runtime_ps > 0


# -- manifest fingerprinting (regression: silently stale caches) -------------

def test_manifest_written_on_creation(campaign):
    assert os.path.exists(campaign.manifest_path)
    with open(campaign.manifest_path) as fh:
        doc = json.load(fh)
    assert doc == campaign.fingerprint()
    assert doc["preset"]["name"] == "smoke"


def test_stale_config_raises(tmp_path):
    path = str(tmp_path / "c")
    Campaign(path, preset_name="smoke",
             config=small_test_config(2, 2)).run(
        networks=["point_to_point"], workloads=["Radix"])
    with pytest.raises(CampaignStateError):
        Campaign(path, preset_name="smoke",
                 config=small_test_config(2, 2).with_overrides(
                     mshrs_per_site=4))


def test_stale_preset_raises(tmp_path):
    path = str(tmp_path / "c")
    Campaign(path, preset_name="smoke", config=small_test_config(2, 2))
    with pytest.raises(CampaignStateError):
        Campaign(path, preset_name="quick",
                 config=small_test_config(2, 2))


def test_stale_rebuild_wipes_cache(tmp_path):
    path = str(tmp_path / "c")
    Campaign(path, preset_name="smoke",
             config=small_test_config(2, 2)).run(
        networks=["point_to_point"], workloads=["Radix"])
    fresh = Campaign(path, preset_name="smoke",
                     config=small_test_config(2, 2).with_overrides(
                         mshrs_per_site=4),
                     on_stale="rebuild")
    assert fresh.completed_pairs() == 0
    assert os.listdir(fresh.traces_dir) == []
    with open(fresh.manifest_path) as fh:
        assert json.load(fh) == fresh.fingerprint()


def test_matching_reopen_keeps_cache(tmp_path):
    path = str(tmp_path / "c")
    Campaign(path, preset_name="smoke",
             config=small_test_config(2, 2)).run(
        networks=["point_to_point"], workloads=["Radix"])
    again = Campaign(path, preset_name="smoke",
                     config=small_test_config(2, 2))
    assert again.completed_pairs() == 1


def test_premanifest_cache_rejected(tmp_path):
    path = str(tmp_path / "c")
    c = Campaign(path, preset_name="smoke", config=small_test_config(2, 2))
    c.run(networks=["point_to_point"], workloads=["Radix"])
    os.remove(c.manifest_path)  # simulate a cache from before manifests
    with pytest.raises(CampaignStateError):
        Campaign(path, preset_name="smoke", config=small_test_config(2, 2))


def test_bad_on_stale_rejected(tmp_path):
    with pytest.raises(ValueError):
        Campaign(str(tmp_path / "c"), preset_name="smoke",
                 config=small_test_config(2, 2), on_stale="ignore")


# -- parallel campaign runs ---------------------------------------------------

def test_parallel_run_matches_serial(tmp_path):
    serial = Campaign(str(tmp_path / "s"), preset_name="smoke",
                      config=small_test_config(2, 2)).run(
        networks=NETS, workloads=LOADS)
    parallel = Campaign(str(tmp_path / "p"), preset_name="smoke",
                        config=small_test_config(2, 2), workers=2).run(
        networks=NETS, workloads=LOADS)
    for workload in LOADS:
        for net in NETS:
            assert serial[workload][net] == parallel[workload][net]
