"""Golden-number regression pins for Figure 6 datapoints.

One low-load and one near-saturation load point per Figure 6 network,
uniform traffic, paper-scale (8x8) configuration, fixed seed.  The
values were recorded from the current model implementations and are
asserted *exactly* (simulations are deterministic — integer picosecond
times, per-site hashed RNG streams), so any refactor that silently
shifts results fails here rather than drifting the paper comparison.

If a model change is *intentional* (a calibration or bugfix that moves
the physics), regenerate the table:

    PYTHONPATH=src python - <<'EOF'
    from repro.core.sweep import run_load_point
    from repro.macrochip.config import scaled_config
    from repro.workloads.synthetic import UniformTraffic
    cfg = scaled_config()
    for net, load in [...]:
        r = run_load_point(net, cfg, UniformTraffic(cfg.layout), load,
                           window_ns=120.0)
        print(net, load, r.mean_latency_ns, r.throughput_gb_per_s,
              r.delivered_packets, r.injected_packets,
              r.events_dispatched)
    EOF

and update EXPERIMENTS.md if the Figure 6 knees moved.
"""

import pytest

from repro.core.sweep import run_load_point
from repro.macrochip.config import scaled_config
from repro.workloads.synthetic import UniformTraffic

#: (network, offered_fraction, mean_latency_ns, throughput_gb_per_s,
#:  delivered, injected, events_dispatched)
GOLDEN = [
    ("point_to_point", 0.02, 13.960798903107861, 389.72691952308327, 768, 768, 1536),
    ("point_to_point", 0.9, 25.39381501474257, 15676.444444444445, 34552, 34560, 69112),
    ("limited_point_to_point", 0.02, 15.949032727272728, 391.6812248940124, 768, 768, 2684),
    ("limited_point_to_point", 0.45, 22.32839707325049, 8699.471040583188, 17280, 17280, 61262),
    ("token_ring", 0.02, 9.23765, 385.45616774481374, 768, 768, 3428),
    ("token_ring", 0.38, 23.282385236706304, 6339.337504028091, 14588, 14592, 67805),
    ("two_phase", 0.02, 11.63930443159923, 369.9875245054358, 768, 768, 4322),
    ("two_phase", 0.08, 23.644990189666448, 1088.8011126564672, 3037, 3072, 52856),
    ("circuit_switched", 0.01, 47.86642528735632, 123.9426587124922, 371, 384, 1497),
    ("circuit_switched", 0.03, 51.94138253638254, 342.21935656001955, 1069, 1088, 4297),
]


#: HERMES extension pins — same protocol (8x8, uniform, 120 ns window),
#: kept out of GOLDEN so the paper-exact Figure 6 coverage check below
#: stays meaningful.
GOLDEN_HERMES = [
    ("hermes", 0.02, 22.850458987783593, 408.04245991565875, 768, 768, 4877),
    ("hermes", 0.30, 33.30673646954727, 4822.044444444445, 11456, 11456, 72528),
]

#: Cross-scale pins: the same protocol on a 16x16 (256-site) macrochip
#: built with ``grid_config(16)`` — per-site resources held at the
#: Table 4 point.  Kept out of GOLDEN so the Figure 6 coverage check
#: stays paper-exact; these pin the *scaled* geometry paths (snake ring
#: four times longer, 256-way channel tables) against silent drift.
GOLDEN_16 = [
    ("point_to_point", 0.02, 27.813278256922377, 1568.7740614638271, 3069, 3072, 6141),
    ("point_to_point", 0.3, 29.222614188706217, 23876.79726216138, 45824, 45824, 91648),
    ("token_ring", 0.02, 30.188964487905302, 1381.9345661450925, 3061, 3072, 14753),
    ("token_ring", 0.2, 34.969033054030625, 12305.777777777777, 30591, 30720, 148137),
]

#: Scaling-study breakpoint pins (see ``repro.experiments.scaling``):
#: the first grid dimension at which each network goes infeasible (None
#: = survives through 32x32) and the axes that broke there.  These are
#: *analytical* pins — they move only if the loss/power model moves.
GOLDEN_BREAKPOINTS = {
    "token_ring": (16, ("pd_budget", "laser_power")),
    "circuit_switched": (16, ("pd_budget", "laser_power")),
    "point_to_point": (16, ("wavelengths",)),
    "limited_point_to_point": (32, ("pd_budget", "laser_power")),
    "two_phase": (16, ("pd_budget", "laser_power")),
    "hermes": (32, ("wavelengths", "pd_budget", "laser_power")),
}

#: NRZ-vs-PAM4 pin pair for the point-to-point network at the same low
#: load: PAM4 doubles the per-wavelength data rate, so at the same
#: offered *fraction* the absolute offered (and delivered) bandwidth
#: doubles and serialization latency drops.  The NRZ row is identical
#: to the GOLDEN baseline — the signaling knob is bit-invisible at its
#: default.
GOLDEN_SIGNALING = [
    ("nrz", 13.960798903107861, 389.72691952308327, 768, 768, 1536),
    ("pam4", 7.527003724394786, 765.221263568049, 1536, 1536, 3072),
]


@pytest.fixture(scope="module")
def cfg():
    return scaled_config()


@pytest.mark.parametrize(
    "network,load,mean_latency_ns,throughput,delivered,injected,events",
    GOLDEN, ids=["%s@%.2f" % (g[0], g[1]) for g in GOLDEN])
def test_figure6_datapoint_is_pinned(cfg, network, load, mean_latency_ns,
                                     throughput, delivered, injected,
                                     events):
    result = run_load_point(network, cfg, UniformTraffic(cfg.layout), load,
                            window_ns=120.0)
    assert result.delivered_packets == delivered
    assert result.injected_packets == injected
    assert result.events_dispatched == events
    # floats are deterministic too; approx() only tolerates platform
    # libm jitter in expovariate, not model drift
    assert result.mean_latency_ns == pytest.approx(mean_latency_ns,
                                                   rel=1e-12)
    assert result.throughput_gb_per_s == pytest.approx(throughput,
                                                       rel=1e-12)


@pytest.mark.parametrize(
    "network,load,mean_latency_ns,throughput,delivered,injected,events",
    GOLDEN_HERMES, ids=["%s@%.2f" % (g[0], g[1]) for g in GOLDEN_HERMES])
def test_hermes_datapoint_is_pinned(cfg, network, load, mean_latency_ns,
                                    throughput, delivered, injected,
                                    events):
    result = run_load_point(network, cfg, UniformTraffic(cfg.layout), load,
                            window_ns=120.0)
    assert result.delivered_packets == delivered
    assert result.injected_packets == injected
    assert result.events_dispatched == events
    assert result.mean_latency_ns == pytest.approx(mean_latency_ns,
                                                   rel=1e-12)
    assert result.throughput_gb_per_s == pytest.approx(throughput,
                                                       rel=1e-12)


@pytest.mark.parametrize(
    "signaling,mean_latency_ns,throughput,delivered,injected,events",
    GOLDEN_SIGNALING, ids=[g[0] for g in GOLDEN_SIGNALING])
def test_point_to_point_signaling_pin(cfg, signaling, mean_latency_ns,
                                      throughput, delivered, injected,
                                      events):
    config = cfg.with_overrides(
        tech=cfg.tech.with_overrides(signaling=signaling))
    result = run_load_point("point_to_point", config,
                            UniformTraffic(config.layout), 0.02,
                            window_ns=120.0)
    assert result.delivered_packets == delivered
    assert result.injected_packets == injected
    assert result.events_dispatched == events
    assert result.mean_latency_ns == pytest.approx(mean_latency_ns,
                                                   rel=1e-12)
    assert result.throughput_gb_per_s == pytest.approx(throughput,
                                                       rel=1e-12)


def test_pam4_moves_in_the_pinned_direction():
    """More bandwidth per wavelength -> more absolute offered load and
    lower serialization latency at the same offered fraction."""
    nrz, pam4 = GOLDEN_SIGNALING
    assert pam4[2] > nrz[2]  # throughput up
    assert pam4[4] > nrz[4]  # more packets injected in the window
    assert pam4[1] < nrz[1]  # mean latency down
    # the NRZ row is the exact GOLDEN point_to_point low-load row: the
    # signaling default cannot move the paper baseline
    baseline = next(g for g in GOLDEN
                    if g[0] == "point_to_point" and g[1] == 0.02)
    assert ("nrz",) + baseline[2:] == nrz


@pytest.mark.parametrize(
    "network,load,mean_latency_ns,throughput,delivered,injected,events",
    GOLDEN_16, ids=["16x16-%s@%.2f" % (g[0], g[1]) for g in GOLDEN_16])
def test_16x16_datapoint_is_pinned(network, load, mean_latency_ns,
                                   throughput, delivered, injected,
                                   events):
    from repro.macrochip.config import grid_config

    config = grid_config(16)
    result = run_load_point(network, config, UniformTraffic(config.layout),
                            load, window_ns=120.0)
    assert result.delivered_packets == delivered
    assert result.injected_packets == injected
    assert result.events_dispatched == events
    assert result.mean_latency_ns == pytest.approx(mean_latency_ns,
                                                   rel=1e-12)
    assert result.throughput_gb_per_s == pytest.approx(throughput,
                                                       rel=1e-12)


def test_scaling_breakpoints_are_pinned():
    """The Table-4-style breakpoint table: first infeasible grid size
    and failing axes per network, exactly as recorded."""
    from repro.experiments.scaling import scaling_sweep

    results = {r.network: r for r in scaling_sweep(max_dim=32)}
    assert set(results) == set(GOLDEN_BREAKPOINTS)
    for net, (dim, axes) in GOLDEN_BREAKPOINTS.items():
        assert results[net].breakpoint_dim == dim, net
        assert results[net].breakpoint_axes == axes, net


def test_scaling_breakpoints_move_in_the_physical_direction():
    """Direction asserts behind the pins: the lossy shared-medium
    networks collapse before the hierarchical/point-to-point plants,
    everything is feasible at the paper's own 8x8, and infeasibility is
    monotone (once broken, a network stays broken as the grid grows)."""
    from repro.experiments.scaling import scaling_sweep

    results = {r.network: r for r in scaling_sweep(max_dim=32)}
    # the paper's own scale is feasible for every network
    for res in results.values():
        for p in res.points:
            if p.dim <= 8:
                assert p.feasible, (res.network, p.dim)
        # monotone: feasibility never comes back at a larger grid
        broken = False
        for p in res.points:
            if broken:
                assert not p.feasible, (res.network, p.dim)
            broken = broken or not p.feasible
        # laser power grows strictly with scale for every network
        powers = [p.laser_power_w for p in res.points]
        assert powers == sorted(powers) and powers[0] < powers[-1]
    # hierarchy buys scale: hermes and limited p2p outlast the shared
    # media (token ring / circuit switch / two-phase) and the full
    # crossbar's wavelength wall
    assert results["hermes"].breakpoint_dim > results["token_ring"].breakpoint_dim
    assert (results["limited_point_to_point"].breakpoint_dim
            > results["point_to_point"].breakpoint_dim)


def test_golden_table_covers_all_figure6_networks():
    from repro.networks.factory import FIGURE6_NETWORKS

    pinned = {net for net, *_ in GOLDEN}
    assert pinned == set(FIGURE6_NETWORKS)
    # one low-load and one near-saturation point per network
    for net in FIGURE6_NETWORKS:
        loads = sorted(load for n, load, *_ in GOLDEN if n == net)
        assert len(loads) == 2 and loads[0] < loads[1]
