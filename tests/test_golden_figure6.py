"""Golden-number regression pins for Figure 6 datapoints.

One low-load and one near-saturation load point per Figure 6 network,
uniform traffic, paper-scale (8x8) configuration, fixed seed.  The
values were recorded from the current model implementations and are
asserted *exactly* (simulations are deterministic — integer picosecond
times, per-site hashed RNG streams), so any refactor that silently
shifts results fails here rather than drifting the paper comparison.

If a model change is *intentional* (a calibration or bugfix that moves
the physics), regenerate the table:

    PYTHONPATH=src python - <<'EOF'
    from repro.core.sweep import run_load_point
    from repro.macrochip.config import scaled_config
    from repro.workloads.synthetic import UniformTraffic
    cfg = scaled_config()
    for net, load in [...]:
        r = run_load_point(net, cfg, UniformTraffic(cfg.layout), load,
                           window_ns=120.0)
        print(net, load, r.mean_latency_ns, r.throughput_gb_per_s,
              r.delivered_packets, r.injected_packets,
              r.events_dispatched)
    EOF

and update EXPERIMENTS.md if the Figure 6 knees moved.
"""

import pytest

from repro.core.sweep import run_load_point
from repro.macrochip.config import scaled_config
from repro.workloads.synthetic import UniformTraffic

#: (network, offered_fraction, mean_latency_ns, throughput_gb_per_s,
#:  delivered, injected, events_dispatched)
GOLDEN = [
    ("point_to_point", 0.02, 13.960798903107861, 389.72691952308327, 768, 768, 1536),
    ("point_to_point", 0.9, 25.39381501474257, 15676.444444444445, 34552, 34560, 69112),
    ("limited_point_to_point", 0.02, 15.949032727272728, 391.6812248940124, 768, 768, 2684),
    ("limited_point_to_point", 0.45, 22.32839707325049, 8699.471040583188, 17280, 17280, 61262),
    ("token_ring", 0.02, 9.23765, 385.45616774481374, 768, 768, 3428),
    ("token_ring", 0.38, 23.282385236706304, 6339.337504028091, 14588, 14592, 67805),
    ("two_phase", 0.02, 11.63930443159923, 369.9875245054358, 768, 768, 4322),
    ("two_phase", 0.08, 23.644990189666448, 1088.8011126564672, 3037, 3072, 52856),
    ("circuit_switched", 0.01, 47.86642528735632, 123.9426587124922, 371, 384, 1497),
    ("circuit_switched", 0.03, 51.94138253638254, 342.21935656001955, 1069, 1088, 4297),
]


@pytest.fixture(scope="module")
def cfg():
    return scaled_config()


@pytest.mark.parametrize(
    "network,load,mean_latency_ns,throughput,delivered,injected,events",
    GOLDEN, ids=["%s@%.2f" % (g[0], g[1]) for g in GOLDEN])
def test_figure6_datapoint_is_pinned(cfg, network, load, mean_latency_ns,
                                     throughput, delivered, injected,
                                     events):
    result = run_load_point(network, cfg, UniformTraffic(cfg.layout), load,
                            window_ns=120.0)
    assert result.delivered_packets == delivered
    assert result.injected_packets == injected
    assert result.events_dispatched == events
    # floats are deterministic too; approx() only tolerates platform
    # libm jitter in expovariate, not model drift
    assert result.mean_latency_ns == pytest.approx(mean_latency_ns,
                                                   rel=1e-12)
    assert result.throughput_gb_per_s == pytest.approx(throughput,
                                                       rel=1e-12)


def test_golden_table_covers_all_figure6_networks():
    from repro.networks.factory import FIGURE6_NETWORKS

    pinned = {net for net, *_ in GOLDEN}
    assert pinned == set(FIGURE6_NETWORKS)
    # one low-load and one near-saturation point per network
    for net in FIGURE6_NETWORKS:
        loads = sorted(load for n, load, *_ in GOLDEN if n == net)
        assert len(loads) == 2 and loads[0] < loads[1]
