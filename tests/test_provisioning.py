"""Tests for the section 3 platform provisioning arithmetic."""

import pytest

from repro.macrochip.config import full_2015_config, scaled_config
from repro.macrochip.provisioning import provision, section3_report


class TestSection3Numbers:
    """The 2015 platform claims of section 3."""

    def test_per_site_bandwidth_is_2_56_tb(self):
        b = provision()
        assert b.site_bandwidth_tb_per_s == pytest.approx(2.56)

    def test_aggregate_is_160_tb(self):
        b = provision()
        assert b.aggregate_bandwidth_tb_per_s == pytest.approx(163.84)

    def test_1024_lasers_drive_the_interconnect(self):
        # 65536 channels / (8 wavelengths x 8-way sharing) = 1024
        b = provision()
        assert b.laser_modules == 1024

    def test_fibers_fit_with_headroom(self):
        b = provision()
        assert b.edge_fibers_used <= b.edge_fiber_capacity
        assert b.fibers_available_for_memory_io >= 900

    def test_4kw_is_coolable(self):
        b = provision()
        assert b.compute_power_kw == pytest.approx(4.096)
        assert b.cooling_feasible

    def test_report_text(self):
        text = section3_report()
        assert "160" in text or "163" in text
        assert "1024" in text
        assert "coolable" in text


def test_scaled_config_needs_fewer_lasers():
    b = provision(scaled_config())
    assert b.laser_modules == 128  # 8192 channels / 64 per module


def test_parameter_validation():
    with pytest.raises(ValueError):
        provision(wavelengths_per_laser=0)


def test_less_sharing_needs_more_lasers():
    little = provision(power_sharing_ways=1)
    lots = provision(power_sharing_ways=8)
    assert little.laser_modules == 8 * lots.laser_modules


def test_edge_fiber_oversubscription_is_surfaced():
    """PR 8 regression: ``fibers_available_for_memory_io`` clamps at
    zero, which silently hid an over-subscribed macrochip edge.  The
    32x32 grid's laser plant needs 2048 fibers against the ~2000-fiber
    edge; ``fits_edge_fibers`` must say so."""
    from repro.macrochip.config import grid_config
    from repro.macrochip.provisioning import provision

    ok = provision(grid_config(16))
    assert ok.fits_edge_fibers
    over = provision(grid_config(32))
    assert over.edge_fibers_used == 2048
    assert not over.fits_edge_fibers
    assert over.fibers_available_for_memory_io == 0  # the clamped view
