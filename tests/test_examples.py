"""Smoke tests for the example scripts.

Each example must parse, import, and expose a ``main``.  Full runs are
exercised manually (they simulate the 8x8 macrochip and take seconds to
minutes); these tests keep them from rotting against API changes by
compiling them and checking their imports resolve.
"""

import importlib.util
import os
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_exist():
    names = {p.stem for p in EXAMPLE_FILES}
    assert "quickstart" in names
    assert len(EXAMPLE_FILES) >= 3  # the deliverable floor


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    module = _load(path)
    assert hasattr(module, "main"), "%s lacks a main()" % path.stem
    assert callable(module.main)
    assert module.__doc__, "%s lacks a module docstring" % path.stem


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_mentions_run_instructions(path):
    text = path.read_text()
    assert "Run:" in text, "%s should document how to run it" % path.stem
