"""Tests for the extension experiments (future work + ablations)."""

import pytest

from repro.experiments.extensions import (
    circuit_engine_ablation,
    conversion_overhead_ablation,
    memory_technology_sweep,
    message_passing_comparison,
    two_phase_reconfig_ablation,
)
from repro.macrochip.config import small_test_config, scaled_config


def test_message_passing_comparison_renders():
    cfg = small_test_config(4, 4)
    text = message_passing_comparison(
        cfg, networks=["point_to_point", "token_ring"])
    assert "ring_shift" in text
    assert "Token Ring" in text


def test_memory_sweep_monotone_for_p2p():
    cfg = small_test_config(4, 4)
    text = memory_technology_sweep(cfg, memory_cycles=[10, 200])
    assert "10 cycles" in text and "200 cycles" in text


def test_two_phase_reconfig_ablation_is_monotone():
    """Slower switch retuning must not increase sustained bandwidth."""
    points = two_phase_reconfig_ablation(
        scaled_config(), reconfig_ns=[1.0, 30.0], window_ns=150.0)
    assert points[0][1] >= points[1][1]


def test_conversion_overhead_ablation_raises_latency():
    points = conversion_overhead_ablation(
        scaled_config(), overhead_cycles=[0, 120], window_ns=150.0)
    assert points[1][1] > points[0][1]


def test_circuit_engine_ablation_improves_with_engines():
    points = circuit_engine_ablation(
        scaled_config(), engines=[1, 8], window_ns=150.0)
    assert points[1][1] > points[0][1]
