"""Tests for adaptive load-point execution and knee refinement
(:mod:`repro.core.adaptive`).

The bit-identity of the *disabled* adaptive executor with the legacy
single-shot path is pinned in :mod:`tests.test_fastpath_equivalence`
(canonical traces + full LoadPointResult equality); this module covers
the stop rules themselves, the knee-seeking driver, and the agreement of
adaptive knees with the fixed-grid knees at the golden-pin scale.
"""

import dataclasses
import math

import pytest

from repro.core.adaptive import AdaptiveConfig, KneeResult, refine_knee
from repro.core.sweep import run_load_point
from repro.experiments.figure6 import LOAD_GRIDS, adaptive_coarse_grid
from repro.macrochip.config import scaled_config, small_test_config
from repro.networks.factory import FIGURE6_NETWORKS
from repro.workloads.synthetic import UniformTraffic

CFG = small_test_config(4, 4)


# -- AdaptiveConfig validation ------------------------------------------------

@pytest.mark.parametrize("field,value", [
    ("slice_fraction", 0.0),
    ("slice_fraction", 1.5),
    ("rel_precision", 0.0),
    ("rel_precision", 1.0),
    ("min_batches", 1),
    ("min_converge_planned", -1),
    ("abort_streak", 0),
    ("abort_margin", 0.5),
    ("drain_rate_factor", 0.9),
])
def test_config_rejects_invalid_knobs(field, value):
    with pytest.raises(ValueError, match=field):
        AdaptiveConfig(**{field: value})


def test_config_defaults_are_valid_and_frozen():
    cfg = AdaptiveConfig()
    assert cfg.convergence_stop and cfg.saturation_abort
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.rel_precision = 0.5


def test_disabled_turns_off_both_rules_only():
    cfg = AdaptiveConfig(rel_precision=0.2, abort_streak=7)
    off = cfg.disabled()
    assert not off.convergence_stop and not off.saturation_abort
    # every other knob is preserved
    assert off.rel_precision == 0.2 and off.abort_streak == 7


# -- stop rules ---------------------------------------------------------------

def test_saturation_abort_fires_on_overloaded_network():
    """A circuit-switched network at 10x its knee is deeply saturated:
    the fast-abort must prove it early and skip most of the run."""
    pattern = UniformTraffic(CFG.layout)
    fixed = run_load_point("circuit_switched", CFG, pattern, 0.5,
                           window_ns=200)
    adaptive = run_load_point("circuit_switched", CFG, pattern, 0.5,
                              window_ns=200, adaptive=AdaptiveConfig())
    assert fixed.saturated
    assert adaptive.saturated
    assert adaptive.stop_reason == "saturated"
    assert adaptive.events_dispatched < fixed.events_dispatched
    assert adaptive.stopped_at_ps < fixed.stopped_at_ps


def test_saturation_abort_spares_light_load():
    r = run_load_point("point_to_point", CFG, UniformTraffic(CFG.layout),
                       0.05, window_ns=200, adaptive=AdaptiveConfig())
    assert not r.saturated
    assert r.stop_reason in ("drained", "horizon")


def test_convergence_stop_fires_below_planned_floor_only_when_allowed():
    """Small runs sit under min_converge_planned and must run to the
    legacy verdict; dropping the floor lets the batch-means test fire."""
    pattern = UniformTraffic(CFG.layout)
    guarded = run_load_point("point_to_point", CFG, pattern, 0.6,
                             window_ns=400, adaptive=AdaptiveConfig())
    assert guarded.stop_reason in ("drained", "horizon")

    eager = AdaptiveConfig(min_converge_planned=0, saturation_abort=False)
    converged = run_load_point("point_to_point", CFG, pattern, 0.6,
                               window_ns=400, adaptive=eager)
    assert converged.stop_reason == "converged"
    assert not converged.saturated
    assert converged.events_dispatched < guarded.events_dispatched


def test_stop_reason_and_clock_on_fixed_path():
    r = run_load_point("point_to_point", CFG, UniformTraffic(CFG.layout),
                       0.05, window_ns=200)
    assert r.stop_reason in ("drained", "horizon")
    # legacy clock convention: the horizon, not the last event
    assert r.stopped_at_ps == int(200 * 1000 * 2)


# -- refine_knee --------------------------------------------------------------

def test_refine_knee_brackets_and_bisects():
    knee = refine_knee("circuit_switched", CFG, UniformTraffic(CFG.layout),
                       [0.01, 0.05, 0.2, 0.5], window_ns=200, bisections=3)
    assert isinstance(knee, KneeResult)
    assert 0.0 < knee.bracket_low < knee.bracket_high
    assert math.isfinite(knee.bracket_high)
    assert knee.resolution == knee.bracket_high - knee.bracket_low
    # bisection tightened the bracket beyond the coarse spacing
    assert knee.resolution < 0.15
    # points are ascending and include the bisection probes
    offered = [p.offered_fraction for p in knee.points]
    assert offered == sorted(offered)
    assert knee.load_points == len(knee.points) > 4
    assert knee.events_dispatched > 0
    # the knee is read off an unsaturated probe inside the bracket
    assert not any(p.saturated and p.offered_fraction == knee.knee_offered
                   for p in knee.points)
    assert knee.knee_offered <= knee.bracket_low


def test_refine_knee_all_unsaturated():
    knee = refine_knee("point_to_point", CFG, UniformTraffic(CFG.layout),
                       [0.02, 0.05], window_ns=200)
    assert knee.bracket_low == 0.05
    assert knee.bracket_high == float("inf")
    assert knee.resolution == float("inf")
    assert knee.skipped_loads == ()
    assert knee.load_points == 2  # nothing to bisect


def test_refine_knee_all_saturated_skips_rest_of_ascent():
    knee = refine_knee("circuit_switched", CFG, UniformTraffic(CFG.layout),
                       [0.4, 0.5, 0.6], window_ns=200, bisections=3)
    # the first probe already saturated: the walk stops there and the
    # higher loads are recorded as skipped, not silently dropped...
    assert knee.skipped_loads == (0.5, 0.6)
    # ...and bisection then recovers the knee below the failed probe,
    # starting from the [0, 0.4] bracket
    assert knee.load_points == 1 + 3
    assert knee.bracket_high <= 0.4
    assert 0.0 < knee.bracket_low < knee.bracket_high
    assert not any(p.saturated and p.offered_fraction == knee.knee_offered
                   for p in knee.points)


def test_refine_knee_rejects_empty_grid():
    with pytest.raises(ValueError, match="coarse fraction"):
        refine_knee("point_to_point", CFG, UniformTraffic(CFG.layout), [])


def test_adaptive_coarse_grid_keeps_endpoints():
    grid = [0.01, 0.02, 0.04, 0.08, 0.16, 0.32]
    assert adaptive_coarse_grid(grid, 2) == [0.01, 0.04, 0.16, 0.32]
    assert adaptive_coarse_grid(grid, 4) == [0.01, 0.16, 0.32]
    assert adaptive_coarse_grid(grid, 1) == grid
    with pytest.raises(ValueError):
        adaptive_coarse_grid(grid, 0)


# -- knee agreement at the golden-pin scale -----------------------------------

@pytest.fixture(scope="module")
def fixed_uniform_knees():
    """Fixed-grid knees for every Figure 6 network: uniform traffic,
    paper-scale config, golden-pin window (120 ns)."""
    from repro.core.sweep import to_sweep_point

    cfg = scaled_config()
    pattern = UniformTraffic(cfg.layout)
    knees = {}
    for net in FIGURE6_NETWORKS:
        points = [to_sweep_point(
            run_load_point(net, cfg, pattern, f, window_ns=120.0), cfg)
            for f in LOAD_GRIDS["uniform"]]
        good = [p for p in points if not p.saturated]
        knees[net] = max(good or points, key=lambda p: p.delivered_fraction)
    return cfg, knees


@pytest.mark.parametrize("network", FIGURE6_NETWORKS)
def test_adaptive_knee_matches_fixed_grid_within_one_step(
        network, fixed_uniform_knees):
    """The acceptance criterion: for every network the adaptive knee's
    offered load agrees with the fixed-grid knee within one bisection
    step (the final bracket width) or one fixed-grid spacing, whichever
    is coarser."""
    cfg, knees = fixed_uniform_knees
    fixed = knees[network]
    grid = LOAD_GRIDS["uniform"]
    knee = refine_knee(network, cfg, UniformTraffic(cfg.layout),
                       adaptive_coarse_grid(grid, 4), window_ns=120.0,
                       bisections=3)
    i = grid.index(fixed.offered_fraction)
    spacing = grid[min(i + 1, len(grid) - 1)] - grid[max(i - 1, 0)]
    tolerance = max(knee.resolution, spacing)
    assert abs(knee.knee_offered - fixed.offered_fraction) <= tolerance
