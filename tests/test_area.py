"""Tests for the waveguide area / bandwidth-density model."""

import pytest

from repro.analysis.area import (
    WAVEGUIDE_PITCH_UM,
    area_table,
    bandwidth_density_gb_per_s_per_mm,
    estimate_area,
    substrate_area_cm2,
    wdm_scaling_table,
)
from repro.macrochip.config import scaled_config
from repro.networks.complexity import p2p_count, token_ring_count


def test_p2p_area():
    est = estimate_area(p2p_count(), scaled_config())
    # 3072 guides x 14 cm at 10 um pitch
    assert est.total_length_m == pytest.approx(3072 * 0.14)
    assert est.routing_area_cm2 == pytest.approx(3072 * 14 * 1e-3)


def test_token_ring_consumes_most_area():
    table = {e.network: e for e in area_table()}
    tr = table["Token-Ring"].routing_area_cm2
    for name, est in table.items():
        if name != "Token-Ring":
            assert est.routing_area_cm2 < tr


def test_routing_fits_on_substrate():
    """Every network's routing must fit within the substrate area (two
    routing layers give 2x the chip footprint)."""
    budget = 2 * substrate_area_cm2()
    for est in area_table():
        assert est.routing_area_cm2 < budget, est.network


def test_substrate_area():
    # 8 x 8 sites at 2 cm pitch -> 16 cm x 16 cm
    assert substrate_area_cm2() == pytest.approx(256.0)


def test_bandwidth_density():
    # 100 guides/mm x 8 wavelengths x 2.5 GB/s = 2 TB/s per mm
    assert bandwidth_density_gb_per_s_per_mm() == pytest.approx(2000.0)
    # the 2015 target's 16-wavelength WDM doubles it
    assert bandwidth_density_gb_per_s_per_mm(
        wavelengths=16) == pytest.approx(4000.0)


def test_wdm_scaling_holds_waveguides_constant():
    """Section 6.4: P2P peak bandwidth scales with the WDM factor at a
    constant waveguide count — unlike electrical wires."""
    rows = wdm_scaling_table(wdm_factors=[8, 16, 32])
    (w0, bw0, wg0), (w1, bw1, wg1), (w2, bw2, wg2) = rows
    assert wg0 == wg1 == wg2
    assert bw1 == pytest.approx(2 * bw0)
    assert bw2 == pytest.approx(4 * bw0)
