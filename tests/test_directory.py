"""Tests for the MOESI directory."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.coherence import LineState
from repro.cpu.directory import Directory


@pytest.fixture
def directory():
    return Directory(num_sites=16)


LINE = 0x40


def test_home_site_page_interleaved(directory):
    # homes change every 64 lines (one page)
    assert directory.home_site(0) == 0
    assert directory.home_site(63 * 64) == 0
    assert directory.home_site(64 * 64) == 1
    assert directory.home_site(16 * 64 * 64) == 0  # wraps


def test_first_read_gets_exclusive(directory):
    out = directory.read(LINE, requester=3)
    assert out.owner is None  # memory supplies
    assert not out.was_hit
    e = directory.peek(LINE)
    assert e.state is LineState.EXCLUSIVE
    assert e.owner == 3


def test_second_read_fetches_from_owner(directory):
    directory.read(LINE, 3)
    out = directory.read(LINE, 5)
    assert out.owner == 3  # cache-to-cache
    e = directory.peek(LINE)
    assert e.state is LineState.SHARED
    assert 5 in e.sharers and 3 in e.sharers


def test_read_after_write_downgrades_to_owned(directory):
    directory.write(LINE, 3)
    out = directory.read(LINE, 5)
    assert out.owner == 3
    e = directory.peek(LINE)
    assert e.state is LineState.OWNED
    assert e.owner == 3
    assert 5 in e.sharers


def test_write_invalidates_sharers(directory):
    directory.read(LINE, 1)
    directory.read(LINE, 2)
    directory.read(LINE, 3)
    out = directory.write(LINE, 4)
    assert set(out.invalidated) == {2, 3} or set(out.invalidated) == {1, 2, 3}
    e = directory.peek(LINE)
    assert e.state is LineState.MODIFIED
    assert e.owner == 4
    assert e.sharers == {4}


def test_write_fetches_from_modified_owner(directory):
    directory.write(LINE, 1)
    out = directory.write(LINE, 2)
    assert out.owner == 1
    assert directory.peek(LINE).owner == 2


def test_writer_upgrading_own_line_has_no_supplier(directory):
    directory.read(LINE, 1)  # E at site 1
    out = directory.write(LINE, 1)
    assert out.owner is None
    assert out.invalidated == ()


def test_evict_owner_without_sharers_invalidates(directory):
    directory.write(LINE, 1)
    directory.evict(LINE, 1)
    assert directory.peek(LINE).state is LineState.INVALID


def test_evict_owner_with_sharers_leaves_shared(directory):
    directory.write(LINE, 1)
    directory.read(LINE, 2)  # O at 1, sharer 2
    directory.evict(LINE, 1)
    e = directory.peek(LINE)
    assert e.state is LineState.SHARED
    assert e.owner is None
    assert e.sharers == {2}


def test_evict_sharer_keeps_state(directory):
    directory.read(LINE, 1)
    directory.read(LINE, 2)
    directory.evict(LINE, 2)
    e = directory.peek(LINE)
    assert 2 not in e.sharers


def test_evict_unknown_line_is_noop(directory):
    directory.evict(0x9999 * 64, 0)  # must not raise


def test_invariants_hold_on_simple_sequences(directory):
    directory.read(LINE, 1)
    directory.check_invariants(LINE)
    directory.write(LINE, 2)
    directory.check_invariants(LINE)
    directory.read(LINE, 3)
    directory.check_invariants(LINE)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["read", "write", "evict"]),
                          st.integers(min_value=0, max_value=7)),
                min_size=1, max_size=200))
def test_moesi_invariants_under_random_traffic(ops):
    """MOESI stable-state invariants hold after every protocol step, and
    directory outcomes stay self-consistent (no self-supply, no
    self-invalidation)."""
    d = Directory(num_sites=8)
    line = 0x80
    for op, site in ops:
        if op == "read":
            out = d.read(line, site)
            assert out.owner != site
        elif op == "write":
            out = d.write(line, site)
            assert out.owner != site
            assert site not in out.invalidated
        else:
            d.evict(line, site)
        d.check_invariants(line)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=7), min_size=2,
                max_size=60))
def test_write_after_reads_invalidates_every_other_sharer(readers):
    d = Directory(num_sites=8)
    line = 0x100
    for r in readers:
        d.read(line, r)
    writer = readers[0]
    expected = set(readers) - {writer}
    out = d.write(line, writer)
    covered = set(out.invalidated)
    if out.owner is not None:
        covered.add(out.owner)
    assert covered == expected
