"""Tests for the open-loop load-sweep harness (Figure 6 machinery)."""

import math

import pytest

from repro.core.sweep import run_load_point, saturation_fraction, sweep
from repro.macrochip.config import small_test_config
from repro.workloads.synthetic import UniformTraffic


CFG = small_test_config(4, 4)


def test_low_load_point_is_unsaturated():
    r = run_load_point("point_to_point", CFG, UniformTraffic(CFG.layout),
                       offered_fraction=0.05, window_ns=200)
    assert not r.saturated
    assert r.delivered_packets == r.injected_packets
    assert r.mean_latency_ns > 0
    assert r.throughput_gb_per_s > 0


def test_overload_saturates_circuit_switched():
    r = run_load_point("circuit_switched", CFG, UniformTraffic(CFG.layout),
                       offered_fraction=0.5, window_ns=200)
    assert r.saturated
    assert r.delivered_packets < r.injected_packets


def test_throughput_tracks_offered_load_when_unsaturated():
    lo = run_load_point("point_to_point", CFG, UniformTraffic(CFG.layout),
                        0.02, window_ns=400, seed=7)
    hi = run_load_point("point_to_point", CFG, UniformTraffic(CFG.layout),
                        0.08, window_ns=400, seed=7)
    assert hi.throughput_gb_per_s > 2 * lo.throughput_gb_per_s


def test_latency_grows_with_load():
    lo = run_load_point("token_ring", CFG, UniformTraffic(CFG.layout),
                        0.05, window_ns=400)
    hi = run_load_point("token_ring", CFG, UniformTraffic(CFG.layout),
                        0.6, window_ns=400)
    assert hi.mean_latency_ns > lo.mean_latency_ns


def test_invalid_load_rejected():
    with pytest.raises(ValueError):
        run_load_point("point_to_point", CFG, UniformTraffic(CFG.layout),
                       0.0)


def test_sweep_returns_points_in_order():
    points = sweep("point_to_point", CFG, UniformTraffic(CFG.layout),
                   [0.02, 0.05], window_ns=200)
    assert [p.offered_fraction for p in points] == [0.02, 0.05]
    for p in points:
        assert not math.isnan(p.mean_latency_ns)


def test_saturation_fraction():
    points = sweep("point_to_point", CFG, UniformTraffic(CFG.layout),
                   [0.02, 0.05], window_ns=200)
    assert saturation_fraction(points) == max(
        p.delivered_fraction for p in points)
    with pytest.raises(ValueError):
        saturation_fraction([])


def test_saturation_threshold_default_is_pinned():
    """The paper-methodology verdict: saturated iff delivered <
    0.99 * injected after the bounded drain.  The 0.99 default is shared
    by the fixed and adaptive paths and pinned here so a silent change
    shows up as a test failure, not a drifted Figure 6 summary."""
    import inspect

    sig = inspect.signature(run_load_point)
    assert sig.parameters["saturation_threshold"].default == 0.99


def test_saturation_threshold_changes_verdict():
    """A near-knee point flips verdict as the threshold crosses its
    delivered/injected ratio — same simulation, different rule."""
    pattern = UniformTraffic(CFG.layout)
    base = run_load_point("circuit_switched", CFG, pattern, 0.5,
                          window_ns=200)
    assert base.saturated
    ratio = base.delivered_packets / base.injected_packets
    lenient = run_load_point("circuit_switched", CFG, pattern, 0.5,
                             window_ns=200,
                             saturation_threshold=ratio * 0.5)
    assert not lenient.saturated
    # the simulation itself is untouched by the verdict rule
    assert lenient.delivered_packets == base.delivered_packets
    assert lenient.events_dispatched == base.events_dispatched


def test_deterministic_for_fixed_seed():
    a = run_load_point("point_to_point", CFG, UniformTraffic(CFG.layout),
                       0.05, window_ns=200, seed=99)
    b = run_load_point("point_to_point", CFG, UniformTraffic(CFG.layout),
                       0.05, window_ns=200, seed=99)
    assert a.mean_latency_ns == b.mean_latency_ns
    assert a.delivered_packets == b.delivered_packets
