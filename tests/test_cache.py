"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.cache import SetAssociativeCache


def make_cache(size=4096, line=64, ways=2):
    return SetAssociativeCache(size, line, ways)


def test_geometry():
    c = SetAssociativeCache(256 * 1024, 64, 8)
    assert c.num_sets == 512
    assert c.line_bytes == 64
    assert c.ways == 8


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        SetAssociativeCache(1000, 64, 2)  # not divisible
    with pytest.raises(ValueError):
        SetAssociativeCache(4096, 60, 2)  # line not power of two


def test_line_address_alignment():
    c = make_cache()
    assert c.line_address(0) == 0
    assert c.line_address(63) == 0
    assert c.line_address(64) == 64
    assert c.line_address(130) == 128


def test_miss_then_hit():
    c = make_cache()
    r1 = c.access(0x1000, is_write=False)
    assert not r1.hit
    r2 = c.access(0x1000, is_write=False)
    assert r2.hit


def test_same_line_different_offsets_hit():
    c = make_cache()
    c.access(0x1000, is_write=False)
    assert c.access(0x1030, is_write=False).hit


def conflict_addrs(cache, count):
    """Distinct line addresses that all map to the same (hashed) set."""
    target = cache.set_index(0)
    addrs = [0]
    line = 1
    while len(addrs) < count:
        addr = line * cache.line_bytes
        if cache.set_index(addr) == target:
            addrs.append(addr)
        line += 1
    return addrs


def test_lru_eviction():
    c = make_cache(ways=2)
    a, b, d = conflict_addrs(c, 3)
    c.access(a, False)
    c.access(b, False)
    c.access(a, False)  # refresh a: b is now LRU
    r = c.access(d, False)
    assert not r.hit
    assert r.evicted_line == b
    assert c.contains(a)
    assert not c.contains(b)


def test_dirty_victim_reports_writeback():
    c = make_cache(ways=1)
    a, b = conflict_addrs(c, 2)
    c.access(a, is_write=True)
    r = c.access(b, is_write=False)
    assert r.writeback_line == a
    assert r.evicted_line == a


def test_clean_victim_no_writeback():
    c = make_cache(ways=1)
    a, b = conflict_addrs(c, 2)
    c.access(a, is_write=False)
    r = c.access(b, is_write=False)
    assert r.writeback_line is None
    assert r.evicted_line == a


def test_write_sets_dirty_on_hit():
    c = make_cache(ways=1)
    a, b = conflict_addrs(c, 2)
    c.access(a, is_write=False)
    c.access(a, is_write=True)  # hit-dirty
    r = c.access(b, is_write=False)
    assert r.writeback_line == a


def test_invalidate():
    c = make_cache()
    c.access(0x2000, False)
    assert c.invalidate(0x2000)
    assert not c.contains(0x2000)
    assert not c.invalidate(0x2000)  # already gone


def test_mark_clean():
    c = make_cache(ways=1)
    a, b = conflict_addrs(c, 2)
    c.access(a, is_write=True)
    c.mark_clean(a)
    r = c.access(b, is_write=False)
    assert r.writeback_line is None


def test_resident_lines_counts():
    c = make_cache()
    for i in range(5):
        c.access(i * 64, False)
    assert c.resident_lines == 5
    assert sorted(c.lines()) == [i * 64 for i in range(5)]


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=63),
                          st.booleans()),
                min_size=1, max_size=300))
def test_against_reference_lru_model(ops):
    """The cache must agree with a brute-force LRU reference model on
    hit/miss for every access (addresses constrained to 64 lines over a
    small cache to force plenty of evictions)."""
    cache = SetAssociativeCache(16 * 64 * 2, 64, 2)  # 16 sets, 2 ways
    ref = {}  # set_index -> list of lines, MRU last

    for line_no, is_write in ops:
        addr = line_no * 64
        set_i = cache.set_index(addr)
        entries = ref.setdefault(set_i, [])
        expected_hit = addr in entries
        got = cache.access(addr, is_write)
        assert got.hit == expected_hit
        if expected_hit:
            entries.remove(addr)
        elif len(entries) >= 2:
            victim = entries.pop(0)
            assert got.evicted_line == victim
        entries.append(addr)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=4095), min_size=1,
                max_size=500))
def test_capacity_never_exceeded(lines):
    cache = SetAssociativeCache(4096, 64, 2)
    for line_no in lines:
        cache.access(line_no * 64, False)
        assert cache.resident_lines <= 4096 // 64
