"""Tests for configuration serialization."""

import io

import pytest

from repro.macrochip.config import MacrochipConfig, scaled_config
from repro.macrochip.configio import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.photonics.layout import MacrochipLayout


def test_default_config_serializes_empty():
    assert config_to_dict(scaled_config()) == {}


def test_overrides_only_in_doc():
    cfg = scaled_config().with_overrides(cores_per_site=4,
                                         memory_latency_cycles=100)
    doc = config_to_dict(cfg)
    assert doc == {"cores_per_site": 4, "memory_latency_cycles": 100}


def test_layout_and_technology_sections():
    cfg = MacrochipConfig(
        layout=MacrochipLayout(rows=4, cols=4),
        tech=scaled_config().tech.with_overrides(switch_loss_db=0.5))
    doc = config_to_dict(cfg)
    assert doc["layout"] == {"rows": 4, "cols": 4}
    assert doc["technology"] == {"switch_loss_db": 0.5}


def test_roundtrip():
    cfg = MacrochipConfig(
        layout=MacrochipLayout(rows=4, cols=8, site_pitch_cm=1.5),
        cores_per_site=16, mshrs_per_site=4,
        tech=scaled_config().tech.with_overrides(modulator_loss_db=3.0))
    back = config_from_dict(config_to_dict(cfg))
    assert back == cfg


def test_full_dump_contains_everything():
    doc = config_to_dict(scaled_config(), full=True)
    assert doc["cores_per_site"] == 8
    assert doc["layout"]["rows"] == 8
    assert doc["technology"]["bit_rate_gbps"] == 20.0


def test_unknown_keys_rejected():
    with pytest.raises(ValueError):
        config_from_dict({"warp_factor": 9})


def test_file_roundtrip(tmp_path):
    cfg = scaled_config().with_overrides(l2_cache_kb=512)
    path = str(tmp_path / "config.json")
    save_config(cfg, path)
    assert load_config(path) == cfg


def test_stream_roundtrip():
    cfg = scaled_config().with_overrides(clock_ghz=4.0)
    buf = io.StringIO()
    save_config(cfg, buf)
    buf.seek(0)
    assert load_config(buf).clock_ghz == 4.0
