"""Tests that Table 6 component counts come out exactly for the paper's
8x8 scaled configuration."""

import pytest

from repro.macrochip.config import scaled_config
from repro.networks.complexity import (
    circuit_switched_count,
    limited_p2p_count,
    p2p_count,
    table6_rows,
    token_ring_count,
    two_phase_arbitration_count,
    two_phase_count,
)


class TestTable6PaperValues:
    def test_point_to_point(self):
        c = p2p_count()
        assert c.transmitters == 8192
        assert c.receivers == 8192
        assert c.waveguides == 3072
        assert c.switches == 0
        assert c.laser_feeds == 8192
        assert c.extra_loss_db == 0.0

    def test_token_ring(self):
        c = token_ring_count()
        assert c.transmitters == 512 * 1024
        assert c.receivers == 8192
        assert c.waveguides == 32 * 1024
        assert c.switches == 0
        assert c.laser_feeds == 8192
        assert c.extra_loss_db == pytest.approx(12.8)

    def test_circuit_switched(self):
        c = circuit_switched_count()
        assert c.transmitters == 8192
        assert c.receivers == 8192
        assert c.waveguides == 2048
        assert c.switches == 1024
        assert "4x4" in c.switch_kind
        assert c.extra_loss_db == pytest.approx(15.5)

    def test_limited_point_to_point(self):
        c = limited_p2p_count()
        assert c.transmitters == 8192
        assert c.receivers == 8192
        assert c.waveguides == 3072
        assert c.switches == 128
        assert "electronic" in c.switch_kind

    def test_two_phase_data(self):
        c = two_phase_count()
        assert c.transmitters == 8192
        assert c.receivers == 8192
        assert c.waveguides == 4096
        assert c.switches == 16 * 1024
        assert c.extra_loss_db == pytest.approx(7.0)

    def test_two_phase_alt(self):
        c = two_phase_count(alt=True)
        assert c.transmitters == 16384
        assert c.switches == 15 * 1024
        assert c.laser_feeds == 16384
        assert c.extra_loss_db == pytest.approx(6.0)

    def test_two_phase_arbitration(self):
        c = two_phase_arbitration_count()
        assert c.transmitters == 128
        assert c.receivers == 1024
        assert c.waveguides == 24
        assert c.laser_feeds == 128


def test_table6_row_order_matches_paper():
    names = [c.network for c in table6_rows()]
    assert names == [
        "Token-Ring",
        "Point-to-Point",
        "Circuit-Switched",
        "Limited Point-to-Point",
        "Two-Phase Data",
        "Two-Phase Data (ALT)",
        "Two-Phase Arbitration",
    ]


def test_p2p_has_lowest_active_component_count():
    """Section 6.4's complexity conclusion: the point-to-point network is
    the least complex optical network (fewest active optical parts among
    full-connectivity networks)."""
    rows = {c.network: c for c in table6_rows()}
    p2p = rows["Point-to-Point"].total_active_components
    for name in ["Token-Ring", "Circuit-Switched", "Two-Phase Data",
                 "Two-Phase Data (ALT)"]:
        assert p2p < rows[name].total_active_components


def test_counts_scale_with_configuration():
    small = scaled_config().with_overrides(
        layout=scaled_config().layout.__class__(rows=4, cols=4))
    c = p2p_count(small)
    assert c.transmitters == 16 * 128
    assert c.waveguides == 16 * 16 * 3


class TestHermesCounts:
    """Extension network: counts for the hierarchical broadcast design."""

    def test_hermes_8x8(self):
        from repro.networks.complexity import hermes_count

        c = hermes_count()
        # 64 site ring banks + 16 gateway global banks of 128 each
        assert c.transmitters == 10240
        # broadcast cost: (k-1) x 128 drop banks per site + global
        assert c.receivers == 26624
        # 16 cluster ring loops of 128 guides + 16 x 16 global guides
        assert c.waveguides == 2304
        assert c.switches == 16
        assert "electronic" in c.switch_kind  # no optical switch power
        assert c.laser_feeds == 10240
        # 4-way broadcast split + 24 off-resonance ring passes
        assert c.extra_loss_db == pytest.approx(8.420599913279624)

    def test_hermes_4x4(self):
        from repro.macrochip.config import small_test_config
        from repro.networks.complexity import hermes_count

        c = hermes_count(small_test_config(4, 4))
        assert c.transmitters == 2560
        assert c.receivers == 6656
        assert c.waveguides == 576
        assert c.switches == 4

    def test_hermes_registered_but_not_in_paper_table(self):
        from repro.networks.complexity import ALL_COUNTS, hermes_count

        assert ALL_COUNTS["hermes"] is hermes_count
        assert "HERMES" not in [c.network for c in table6_rows()]

    def test_hermes_global_plant_smaller_than_p2p(self):
        """The hierarchy's selling point: far fewer waveguides than the
        full point-to-point mesh at the same site count."""
        from repro.networks.complexity import hermes_count

        assert hermes_count().waveguides < p2p_count().waveguides

    def test_hermes_static_power_available(self):
        from repro.analysis.power import static_power_w

        w = static_power_w("hermes")
        assert w > 0.0


class TestGeneralizedWorstHops:
    """PR 8 regression: worst-hop counts were hard-coded 8x8 constants
    (31 / 7 / 6); they are now layout-derived, with the 8x8 values
    provably unchanged."""

    def test_8x8_values_match_the_pinned_constants(self):
        from repro.networks.complexity import (
            CIRCUIT_SWITCHED_WORST_HOPS, TWO_PHASE_ALT_WORST_HOPS,
            TWO_PHASE_WORST_HOPS, circuit_switched_worst_hops,
            two_phase_worst_hops)

        layout = scaled_config().layout
        assert (circuit_switched_worst_hops(layout)
                == CIRCUIT_SWITCHED_WORST_HOPS == 31)
        assert two_phase_worst_hops(layout) == TWO_PHASE_WORST_HOPS == 7
        assert (two_phase_worst_hops(layout, alt=True)
                == TWO_PHASE_ALT_WORST_HOPS == 6)

    def test_scaled_grids_follow_the_closed_forms(self):
        from repro.macrochip.config import grid_config
        from repro.networks.complexity import (
            circuit_switched_worst_hops, two_phase_worst_hops)

        for dim, circuit, two_phase in [(4, 15, 3), (16, 63, 15),
                                        (32, 127, 31)]:
            layout = grid_config(dim).layout
            assert circuit_switched_worst_hops(layout) == circuit
            assert two_phase_worst_hops(layout) == two_phase
            assert two_phase_worst_hops(layout, alt=True) == two_phase - 1

    def test_non_square_uses_both_dimensions(self):
        from repro.macrochip.config import grid_config
        from repro.networks.complexity import (
            circuit_switched_worst_hops, limited_p2p_count)

        cfg = grid_config(4, 8)
        # diameter = 4//2 + 8//2 = 6 -> 4*6 - 1 = 23 switch hops
        assert circuit_switched_worst_hops(cfg.layout) == 23
        # regression: the router label used cols-1 for both dimensions
        assert "3x7" in limited_p2p_count(cfg).switch_kind

    def test_tiny_grids_never_go_below_one_hop(self):
        from repro.macrochip.config import grid_config
        from repro.networks.complexity import (
            circuit_switched_worst_hops, two_phase_worst_hops)

        layout = grid_config(1, 2).layout
        assert circuit_switched_worst_hops(layout) >= 1
        assert two_phase_worst_hops(layout, alt=True) >= 1

    def test_loss_grows_with_the_grid(self):
        from repro.macrochip.config import grid_config
        from repro.networks.complexity import (circuit_switched_count,
                                               two_phase_count)

        small = circuit_switched_count(grid_config(4))
        big = circuit_switched_count(grid_config(16))
        assert big.extra_loss_db > small.extra_loss_db
        assert (two_phase_count(grid_config(16)).extra_loss_db
                > two_phase_count(grid_config(4)).extra_loss_db)
