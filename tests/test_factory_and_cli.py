"""Tests for the network factory and the experiment CLI plumbing."""

import os

import pytest

from repro.core.engine import Simulator
from repro.macrochip.config import small_test_config
from repro.networks.factory import (
    EXTENDED_NETWORKS,
    FIGURE6_NETWORKS,
    FIGURE7_NETWORKS,
    NETWORK_CLASSES,
    available_networks,
    build_network,
)


class TestFactory:
    def test_all_keys_buildable(self, small_config):
        for key in available_networks():
            net = build_network(key, small_config, Simulator())
            assert net.name == NETWORK_CLASSES[key].name

    def test_unknown_key_lists_options(self, small_config):
        with pytest.raises(KeyError) as err:
            build_network("warp_drive", small_config, Simulator())
        assert "point_to_point" in str(err.value)

    def test_figure_lists(self):
        assert len(FIGURE6_NETWORKS) == 5
        assert len(FIGURE7_NETWORKS) == 6
        assert "two_phase_alt" not in FIGURE6_NETWORKS
        assert "two_phase_alt" in FIGURE7_NETWORKS
        # the paper-exact lists exclude the HERMES extension; the
        # extended list is the Figure 6 set plus HERMES, in order
        assert "hermes" not in FIGURE6_NETWORKS
        assert "hermes" not in FIGURE7_NETWORKS
        assert EXTENDED_NETWORKS == FIGURE6_NETWORKS + ["hermes"]

    def test_kwargs_forwarded(self, small_config):
        net = build_network("two_phase", small_config, Simulator(),
                            tree_reconfig_ps=1234)
        assert net.tree_reconfig_ps == 1234

    def test_warmup_forwarded(self, small_config):
        net = build_network("point_to_point", small_config, Simulator(),
                            warmup_ps=777)
        assert net.stats.throughput.warmup_ps == 777


class TestRunCli:
    def test_generate_tables_only(self):
        from repro.experiments.run import generate

        out = generate("tables", "smoke", window_ns=100.0)
        assert set(out) == {"tables"}
        assert "Table 5" in out["tables"]

    def test_generate_rejects_unknown_artifact(self):
        from repro.experiments.run import generate

        with pytest.raises(SystemExit):
            generate("bogus", "smoke", window_ns=100.0)

    def test_main_writes_output_files(self, tmp_path):
        from repro.experiments.run import main

        rc = main(["--artifact", "tables", "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "tables.txt").exists()
        assert "Table 6" in (tmp_path / "tables.txt").read_text()

    def test_main_accepts_workers_flag(self, tmp_path):
        from repro.experiments.run import main

        rc = main(["--artifact", "tables", "--workers", "2",
                   "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "tables.txt").exists()

    @pytest.fixture
    def figure6_stubs(self, monkeypatch):
        """Capture which Figure 6 driver `generate` dispatches to and
        with what kwargs, without simulating anything."""
        from repro.experiments import run as run_mod

        calls = {}

        class _Stub:
            mode = "stub"
            load_points = 0
            total_events = 0
            failures = ()

        def fake_fixed(**kwargs):
            calls["driver"] = "fixed"
            calls["kwargs"] = kwargs
            return _Stub()

        def fake_adaptive(**kwargs):
            calls["driver"] = "adaptive"
            calls["kwargs"] = kwargs
            return _Stub()

        monkeypatch.setattr(run_mod, "run_figure6", fake_fixed)
        monkeypatch.setattr(run_mod, "run_figure6_adaptive", fake_adaptive)
        monkeypatch.setattr(run_mod, "figure6_text", lambda r: "stub text")
        return calls

    def test_generate_figure6_default_is_fixed_grid(self, figure6_stubs):
        from repro.experiments.run import generate

        out = generate("figure6", "smoke", window_ns=100.0)
        assert out == {"figure6": "stub text"}
        assert figure6_stubs["driver"] == "fixed"
        assert figure6_stubs["kwargs"]["rng_block"] == 256

    def test_generate_figure6_adaptive_dispatch(self, figure6_stubs):
        from repro.experiments.run import generate

        generate("figure6", "smoke", window_ns=100.0, adaptive=True,
                 rng_block=0)
        assert figure6_stubs["driver"] == "adaptive"
        assert figure6_stubs["kwargs"]["rng_block"] == 0

    def test_main_plumbs_adaptive_and_rng_block_flags(self, figure6_stubs):
        from repro.experiments.run import main

        rc = main(["--artifact", "figure6", "--adaptive",
                   "--rng-block", "64"])
        assert rc == 0
        assert figure6_stubs["driver"] == "adaptive"
        assert figure6_stubs["kwargs"]["rng_block"] == 64

    def test_network_flag_restricts_figure6(self, figure6_stubs):
        """--network implies the figure6 artifact and threads the key
        list into the sweep driver."""
        from repro.experiments.run import main

        rc = main(["--network", "hermes"])
        assert rc == 0
        assert figure6_stubs["driver"] == "fixed"
        assert figure6_stubs["kwargs"]["networks"] == ["hermes"]

    def test_signaling_flag_reaches_figure6_config(self, figure6_stubs):
        from repro.experiments.run import main

        rc = main(["--artifact", "figure6", "--signaling", "pam4"])
        assert rc == 0
        cfg = figure6_stubs["kwargs"]["config"]
        assert cfg.tech.signaling == "pam4"

    def test_generate_tables_pam4_differ_from_nrz(self):
        from repro.experiments.run import generate

        nrz = generate("tables", "smoke", window_ns=100.0)["tables"]
        pam4 = generate("tables", "smoke", window_ns=100.0,
                        signaling="pam4")["tables"]
        assert "NRZ vs PAM4" in nrz  # comparison table always present
        assert nrz != pam4  # the active-format tables move under PAM4


class TestTaxonomy:
    """Section 4.1's classification of optical network architectures."""

    def test_every_network_is_classified(self, small_config):
        expected = {
            "point_to_point": "none",
            "electrical_baseline": "none",
            "limited_point_to_point": "electronic",
            "two_phase": "arbitrated",
            "two_phase_alt": "arbitrated",
            "token_ring": "arbitrated",
            "circuit_switched": "circuit",
            "hermes": "electronic",
        }
        assert set(expected) == set(NETWORK_CLASSES)
        for key, cls_name in expected.items():
            net = build_network(key, small_config, Simulator())
            assert net.switching_class == cls_name, key

    def test_only_p2p_designs_need_no_switching_or_routing(self, small_config):
        unswitched = [k for k in available_networks()
                      if build_network(k, small_config,
                                       Simulator()).switching_class == "none"]
        assert unswitched == ["electrical_baseline", "point_to_point"]
