"""Tests for the parallel shard runner and seed derivation
(:mod:`repro.core.parallel`)."""

import os

import pytest

from repro.core.parallel import (
    Shard,
    ShardReport,
    ShardedRun,
    _submission_order,
    available_cpus,
    derive_seed,
    resolve_workers,
    run_sharded,
)
from repro.core.sweep import run_load_point, sweep
from repro.macrochip.config import small_test_config
from repro.workloads.synthetic import UniformTraffic


CFG = small_test_config(2, 2)


# -- derive_seed --------------------------------------------------------------

def test_derive_seed_is_deterministic():
    assert derive_seed(42, "gap", 3) == derive_seed(42, "gap", 3)


def test_derive_seed_distinguishes_components():
    seeds = {
        derive_seed(42),
        derive_seed(42, "gap", 0),
        derive_seed(42, "gap", 1),
        derive_seed(42, "dst", 0),
        derive_seed(43, "gap", 0),
        derive_seed(42, "gap", "0"),  # int vs str must differ
    }
    assert len(seeds) == 6


def test_derive_seed_fits_63_bits():
    for site in range(50):
        assert 0 <= derive_seed(12345, site) < 2 ** 63


# -- resolve_workers / available_cpus -----------------------------------------

def test_resolve_workers_clamps_and_detects():
    assert resolve_workers(4) == 4
    assert resolve_workers(-3) == 1
    assert resolve_workers(None) >= 1
    assert resolve_workers(0) >= 1


def test_available_cpus_positive():
    assert available_cpus() >= 1


def test_available_cpus_without_sched_getaffinity(monkeypatch):
    """Non-Linux hosts have no os.sched_getaffinity at all; the helper
    must fall back to cpu_count instead of raising AttributeError."""
    monkeypatch.delattr(os, "sched_getaffinity", raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 6)
    assert available_cpus() == 6
    assert resolve_workers(None) == 6


def test_available_cpus_when_cpu_count_unknown(monkeypatch):
    """cpu_count() may return None; the helper never reports < 1 core."""
    monkeypatch.delattr(os, "sched_getaffinity", raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: None)
    assert available_cpus() == 1
    assert resolve_workers(0) == 1


def test_available_cpus_when_getaffinity_fails(monkeypatch):
    def broken(pid):
        raise OSError("affinity mask unavailable")

    monkeypatch.setattr(os, "sched_getaffinity", broken, raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 3)
    assert available_cpus() == 3


def test_bench_runner_cpus_delegates(monkeypatch):
    """benchmarks/bench_runner._cpus must survive the same failure path
    (it used to duplicate the try/except inline)."""
    import importlib.util

    path = os.path.join(os.path.dirname(__file__), os.pardir,
                        "benchmarks", "bench_runner.py")
    spec = importlib.util.spec_from_file_location("_bench_runner_under_test",
                                                  path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    monkeypatch.delattr(os, "sched_getaffinity", raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 5)
    assert mod._cpus() == 5


# -- run_sharded --------------------------------------------------------------

def _square(x):
    return x * x


def _boom(x):
    raise ValueError("boom %d" % x)


def test_serial_results_in_submission_order():
    run = run_sharded([Shard(_square, args=(i,), label="sq%d" % i)
                       for i in range(5)], workers=1)
    assert run.results == [0, 1, 4, 9, 16]
    assert run.mode == "serial"
    assert run.workers == 1


def test_parallel_results_match_serial():
    shards = [Shard(_square, args=(i,)) for i in range(8)]
    serial = run_sharded(shards, workers=1)
    parallel = run_sharded(shards, workers=2)
    assert parallel.results == serial.results


def test_reports_carry_telemetry():
    run = run_sharded([Shard(_square, args=(3,), label="three")], workers=1)
    (report,) = run.reports
    assert isinstance(report, ShardReport)
    assert report.label == "three"
    assert report.index == 0
    assert report.wall_clock_s >= 0
    assert report.worker_pid == os.getpid()
    assert run.total_shard_seconds >= 0
    assert run.speedup > 0


def test_progress_called_per_shard():
    seen = []
    run_sharded([Shard(_square, args=(i,)) for i in range(3)],
                workers=1, progress=seen.append)
    assert len(seen) == 3


def test_exceptions_propagate():
    with pytest.raises(ValueError, match="boom"):
        run_sharded([Shard(_boom, args=(1,))], workers=1)
    with pytest.raises(ValueError, match="boom"):
        run_sharded([Shard(_square, args=(1,)), Shard(_boom, args=(2,))],
                    workers=2)


def test_empty_shard_list():
    run = run_sharded([], workers=4)
    assert run.results == []
    assert run.reports == []


def test_events_telemetry_from_load_points():
    run = run_sharded([Shard(
        run_load_point,
        args=("point_to_point", CFG, UniformTraffic(CFG.layout), 0.05),
        kwargs=dict(window_ns=100.0))], workers=1)
    assert run.reports[0].events_dispatched > 0
    assert run.total_events == run.reports[0].events_dispatched


# -- speedup guard ------------------------------------------------------------

def _run_with_wall(wall_clock_s, shard_seconds=(0.5, 0.5)):
    return ShardedRun(
        results=[None] * len(shard_seconds),
        reports=[ShardReport(index=i, label="", wall_clock_s=s,
                             events_dispatched=0, worker_pid=0)
                 for i, s in enumerate(shard_seconds)],
        workers=2, mode="fork", wall_clock_s=wall_clock_s)


def test_speedup_finite_when_wall_clock_quantizes_to_zero():
    run = _run_with_wall(0.0)
    assert run.speedup == 1.0
    assert "1.00x speedup" in run.summary()


def test_speedup_finite_on_nan_and_negative_wall_clock():
    assert _run_with_wall(float("nan")).speedup == 1.0
    assert _run_with_wall(-1.0).speedup == 1.0
    # degenerate telemetry inside the ratio is also caught
    assert _run_with_wall(1.0, (float("inf"), 0.5)).speedup == 1.0


def test_speedup_normal_case_unchanged():
    run = _run_with_wall(0.5)
    assert run.speedup == pytest.approx(2.0)


# -- cost-keyed submission order ----------------------------------------------

def test_submission_order_descending_cost_stable_ties():
    shards = [Shard(_square, args=(i,)) for i in range(5)]
    costs = {0: 1.0, 1: 5.0, 2: 5.0, 3: 0.5, 4: 9.0}
    order = _submission_order(shards, lambda s: costs[s.args[0]])
    assert order == [4, 1, 2, 0, 3]  # ties (1, 2) keep submission order


def test_submission_order_without_key_is_natural():
    shards = [Shard(_square, args=(i,)) for i in range(4)]
    assert _submission_order(shards, None) == [0, 1, 2, 3]


def test_cost_key_never_changes_results():
    shards = [Shard(_square, args=(i,)) for i in range(8)]
    plain = run_sharded(shards, workers=2)
    keyed = run_sharded(shards, workers=2, cost_key=lambda s: s.args[0])
    serial = run_sharded(shards, workers=1, cost_key=lambda s: s.args[0])
    assert plain.results == keyed.results == serial.results
    # reports stay keyed by submission index, not completion order
    assert [r.index for r in keyed.reports] == list(range(8))


# -- LRU-bounded per-process registries ---------------------------------------

def test_context_cache_lru_cap():
    from repro.core.parallel import (_CONTEXTS, clear_contexts,
                                     context_cache_limit, get_context,
                                     set_context_cache_limit)

    clear_contexts()
    previous = set_context_cache_limit(2)
    try:
        c100 = get_context("point_to_point", CFG, warmup_ps=100)
        get_context("point_to_point", CFG, warmup_ps=200)
        get_context("point_to_point", CFG, warmup_ps=100)  # touch: now MRU
        get_context("point_to_point", CFG, warmup_ps=300)  # evicts 200
        assert len(_CONTEXTS) == 2
        assert context_cache_limit() == 2
        # the touched context survived; the LRU one was evicted
        assert get_context("point_to_point", CFG, warmup_ps=100) is c100
        rebuilt = get_context("point_to_point", CFG, warmup_ps=200)
        assert rebuilt.uses == 1  # fresh construction, not a cache hit
        with pytest.raises(ValueError, match="limit"):
            set_context_cache_limit(0)
    finally:
        set_context_cache_limit(previous)
        clear_contexts()


def test_lowering_context_cache_limit_evicts_immediately():
    from repro.core.parallel import (_CONTEXTS, clear_contexts,
                                     get_context, set_context_cache_limit)

    clear_contexts()
    previous = set_context_cache_limit(8)
    try:
        for warmup in (100, 200, 300):
            get_context("point_to_point", CFG, warmup_ps=warmup)
        set_context_cache_limit(1)
        assert len(_CONTEXTS) == 1
    finally:
        set_context_cache_limit(previous)
        clear_contexts()


def test_draw_bank_cache_lru_cap():
    from repro.core.sweep import (_DRAW_BANKS, _get_draw_bank,
                                  clear_draw_banks, draw_bank_cache_limit,
                                  set_draw_bank_cache_limit)

    pattern = UniformTraffic(CFG.layout)
    clear_draw_banks()
    previous = set_draw_bank_cache_limit(2)
    try:
        bank1 = _get_draw_bank(pattern, 1, CFG.num_sites)
        bank2 = _get_draw_bank(pattern, 2, CFG.num_sites)
        _get_draw_bank(pattern, 1, CFG.num_sites)  # touch: seed 1 is MRU
        _get_draw_bank(pattern, 3, CFG.num_sites)  # evicts seed 2
        assert len(_DRAW_BANKS) == 2
        assert draw_bank_cache_limit() == 2
        assert _get_draw_bank(pattern, 1, CFG.num_sites) is bank1
        assert _get_draw_bank(pattern, 2, CFG.num_sites) is not bank2
        with pytest.raises(ValueError, match="limit"):
            set_draw_bank_cache_limit(-1)
    finally:
        set_draw_bank_cache_limit(previous)
        clear_draw_banks()


def test_lru_eviction_never_changes_results():
    """Warm results under a cap of 1 (maximum eviction churn across
    alternating seeds) must equal cold construction exactly."""
    from repro.core.parallel import (clear_contexts, set_context_cache_limit)
    from repro.core.sweep import clear_draw_banks, set_draw_bank_cache_limit

    pattern = UniformTraffic(CFG.layout)
    clear_contexts()
    clear_draw_banks()
    prev_ctx = set_context_cache_limit(1)
    prev_bank = set_draw_bank_cache_limit(1)
    try:
        cold = [run_load_point(net, CFG, pattern, 0.05, window_ns=100.0,
                               seed=seed, warm=False)
                for seed in (7, 11) for net in ("point_to_point",
                                                "token_ring")]
        warm = [run_load_point(net, CFG, pattern, 0.05, window_ns=100.0,
                               seed=seed, warm=True)
                for seed in (7, 11) for net in ("point_to_point",
                                                "token_ring")]
        assert warm == cold
    finally:
        set_context_cache_limit(prev_ctx)
        set_draw_bank_cache_limit(prev_bank)
        clear_contexts()
        clear_draw_banks()


# -- the determinism contract on real sweeps ---------------------------------

def test_load_point_results_bit_identical_serial_vs_parallel():
    """The acceptance criterion: workers=1 and workers=4 produce
    byte-identical LoadPointResults for the same grid."""
    fractions = [0.02, 0.05, 0.10, 0.20]
    pattern = UniformTraffic(CFG.layout)
    shards = [Shard(run_load_point,
                    args=("point_to_point", CFG, pattern, f),
                    kwargs=dict(window_ns=150.0))
              for f in fractions]
    serial = run_sharded(shards, workers=1)
    parallel = run_sharded(shards, workers=4)
    assert serial.results == parallel.results  # dataclass field equality
    for a, b in zip(serial.results, parallel.results):
        assert repr(a) == repr(b)  # byte-identical rendering


def test_sweep_workers_param_matches_serial():
    pattern = UniformTraffic(CFG.layout)
    serial = sweep("point_to_point", CFG, pattern, [0.02, 0.08],
                   window_ns=150.0, workers=1)
    parallel = sweep("point_to_point", CFG, pattern, [0.02, 0.08],
                     window_ns=150.0, workers=2)
    assert serial == parallel


def test_load_point_independent_of_pattern_rng_state():
    """Per-site streams derive from the seed, so the incoming pattern
    object's RNG position cannot leak into results."""
    pattern = UniformTraffic(CFG.layout)
    a = run_load_point("point_to_point", CFG, pattern, 0.05,
                       window_ns=150.0, seed=7)
    pattern.rng.random()  # perturb the shared pattern's stream
    b = run_load_point("point_to_point", CFG, pattern, 0.05,
                       window_ns=150.0, seed=7)
    assert a == b
