"""Fault-injection tests for the executor layer (ISSUE 6).

Every backend must survive the three failure modes a long campaign hits
in practice — a *raising* shard, a worker *killed* mid-flight
(OOM/segfault, injected here via ``os.kill(..., SIGKILL)``), and a
*hung* shard exceeding ``timeout_s`` — and the determinism contract must
hold through recovery: with ``on_error='retry'`` a disturbed run's
results are bit-identical to an undisturbed serial run, proven
differentially for all five photonic network architectures.
"""

import os
import signal
import threading
import time

import pytest

from repro.core.parallel import (
    ErrorPolicy,
    PoolExecutor,
    RemoteExecutor,
    SerialExecutor,
    Shard,
    ShardError,
    ShardExecutionError,
    ShardTimeoutError,
    WorkerPool,
    clear_contexts,
    run_sharded,
)
from repro.core.sweep import clear_draw_banks, run_load_point, sweep
from repro.macrochip.config import small_test_config
from repro.workloads.synthetic import UniformTraffic

CFG = small_test_config(2, 2)
WINDOW_NS = 60.0
SEED = 7

#: all five photonic architectures of the paper's Figure 6, plus the
#: HERMES extension (a single 2x2 cluster on this reduced macrochip)
NETWORKS = [
    "point_to_point",
    "limited_point_to_point",
    "token_ring",
    "two_phase",
    "circuit_switched",
    "hermes",
]


@pytest.fixture(autouse=True)
def _fresh_registries():
    clear_contexts()
    clear_draw_banks()
    yield
    clear_contexts()
    clear_draw_banks()


def _pool_available():
    with WorkerPool(2) as probe:
        return probe.acquire() is not None


# -- shard bodies (module-level, picklable) -----------------------------------

def _square(x):
    return x * x


def _boom(x):
    raise ValueError("boom %d" % x)


def _sleep_forever(x):
    time.sleep(60)
    return x


class UnpicklableError(Exception):
    """An exception that cannot cross the pickle boundary (carries a
    lock), forcing the traceback-text transport fallback."""

    def __init__(self, message):
        super().__init__(message)
        self.lock = threading.Lock()


def _raise_unpicklable(x):
    raise UnpicklableError("untransportable %d" % x)


def _fail_once_then_square(sentinel, x):
    """Transient failure: raises on the first attempt (sentinel absent),
    succeeds on every retry."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("armed")
        raise RuntimeError("transient %d" % x)
    return x * x


def _kill_once_then_load_point(sentinel, network, config, pattern, fraction,
                               **kwargs):
    """SIGKILL the hosting worker on the first attempt (simulating an
    OOM kill mid-shard); compute the load point normally on re-execution.
    The sentinel is written *before* the kill so the retry — wherever it
    runs — sees it."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("armed")
        os.kill(os.getpid(), signal.SIGKILL)
    return run_load_point(network, config, pattern, fraction, **kwargs)


# -- error policy validation ---------------------------------------------------

def test_error_policy_validation():
    assert ErrorPolicy().on_error == "raise"
    with pytest.raises(ValueError, match="on_error"):
        ErrorPolicy(on_error="bogus")
    with pytest.raises(ValueError, match="max_retries"):
        ErrorPolicy(max_retries=-1)
    with pytest.raises(ValueError, match="timeout_s"):
        ErrorPolicy(timeout_s=0.0)
    with pytest.raises(ValueError, match="on_error"):
        run_sharded([Shard(_square, args=(1,))], on_error="bogus")


# -- raising shard ------------------------------------------------------------

@pytest.mark.parametrize("workers", [1, 2])
def test_collect_keeps_19_of_20(workers):
    """The acceptance criterion: a 20-shard run with one always-raising
    shard returns 19 valid results plus one structured ShardError, and
    summary() reports the failure count."""
    shards = [Shard(_square, args=(i,), label="sq%d" % i) for i in range(20)]
    shards[7] = Shard(_boom, args=(7,), label="boom7")
    run = run_sharded(shards, workers=workers, on_error="collect")
    err = run.results[7]
    assert isinstance(err, ShardError)
    assert err.kind == "exception"
    assert err.error_type == "ValueError"
    assert "boom 7" in err.message
    assert "ValueError" in err.traceback
    assert err.index == 7 and err.label == "boom7"
    good = [r for i, r in enumerate(run.results) if i != 7]
    assert good == [i * i for i in range(20) if i != 7]
    assert run.failed == 1 and not run.ok
    assert run.errors == [err]
    assert ", 1 failed" in run.summary()
    assert "boom7" in run.failure_report()


@pytest.mark.parametrize("workers", [1, 2])
def test_raise_policy_still_propagates(workers):
    with pytest.raises(ValueError, match="boom"):
        run_sharded([Shard(_square, args=(1,)), Shard(_boom, args=(2,))],
                    workers=workers, on_error="raise")


@pytest.mark.parametrize("workers", [1, 2])
def test_retry_recovers_transient_failure(workers, tmp_path):
    sentinel = str(tmp_path / ("transient-%d" % workers))
    shards = [Shard(_fail_once_then_square, args=(sentinel, 3),
                    label="flaky"),
              Shard(_square, args=(4,), label="steady")]
    run = run_sharded(shards, workers=workers, on_error="retry",
                      max_retries=2)
    assert run.results == [9, 16]
    assert run.ok
    flaky_report = run.reports[0]
    assert flaky_report.label == "flaky" and flaky_report.attempts == 2


@pytest.mark.parametrize("workers", [1, 2])
def test_retry_exhausts_then_collects(workers):
    run = run_sharded([Shard(_boom, args=(1,), label="always"),
                       Shard(_square, args=(2,))],
                      workers=workers, on_error="retry", max_retries=2)
    err = run.results[0]
    assert isinstance(err, ShardError)
    assert err.attempts == 3  # first try + two retries
    assert run.results[1] == 4


def test_unpicklable_exception_transport():
    """An exception that cannot pickle must still surface: as a
    ShardExecutionError embedding the worker traceback under 'raise',
    and as a typed ShardError under 'collect'."""
    if not _pool_available():
        pytest.skip("platform cannot create worker pools")
    shards = [Shard(_raise_unpicklable, args=(5,), label="weird"),
              Shard(_square, args=(6,))]
    with pytest.raises(ShardExecutionError, match="worker traceback"):
        run_sharded(shards, workers=2, on_error="raise")
    run = run_sharded(shards, workers=2, on_error="collect")
    err = run.results[0]
    assert isinstance(err, ShardError)
    assert err.error_type == "UnpicklableError"
    assert "untransportable 5" in err.message
    assert run.results[1] == 36


# -- killed worker ------------------------------------------------------------

def test_killed_worker_recovers_and_completes(tmp_path):
    """A SIGKILLed worker must not lose the run: the pool is rebuilt and
    the lost shard re-executed, with every other result intact."""
    if not _pool_available():
        pytest.skip("platform cannot create worker pools")
    pattern = UniformTraffic(CFG.layout, seed=1)
    sentinel = str(tmp_path / "killed")
    kwargs = dict(window_ns=WINDOW_NS, seed=SEED)
    shards = [Shard(run_load_point,
                    args=("point_to_point", CFG, pattern, f),
                    kwargs=kwargs, label="@%.2f" % f)
              for f in (0.02, 0.05, 0.10)]
    shards.insert(1, Shard(_kill_once_then_load_point,
                           args=(sentinel, "point_to_point", CFG, pattern,
                                 0.20),
                           kwargs=kwargs, label="killed@0.20"))
    run = run_sharded(shards, workers=2, on_error="retry")
    assert run.ok
    assert os.path.exists(sentinel)  # the kill really fired
    baseline = [run_load_point("point_to_point", CFG, pattern, f,
                               **kwargs) for f in (0.02, 0.20, 0.05, 0.10)]
    assert run.results == baseline


@pytest.mark.parametrize("network", NETWORKS)
def test_kill_retry_bit_identical_to_serial(network, tmp_path):
    """The determinism lock (acceptance criterion): with
    on_error='retry', a run where one worker is killed mid-flight is
    bit-identical to an undisturbed serial run — for every network."""
    if not _pool_available():
        pytest.skip("platform cannot create worker pools")
    pattern = UniformTraffic(CFG.layout, seed=1)
    fractions = [0.02, 0.05, 0.10, 0.20]
    kwargs = dict(window_ns=WINDOW_NS, seed=SEED)
    baseline = [run_load_point(network, CFG, pattern, f, **kwargs)
                for f in fractions]
    sentinel = str(tmp_path / ("killed-%s" % network))
    shards = []
    for i, f in enumerate(fractions):
        if i == 1:
            shards.append(Shard(_kill_once_then_load_point,
                                args=(sentinel, network, CFG, pattern, f),
                                kwargs=kwargs, label="killed@%.2f" % f))
        else:
            shards.append(Shard(run_load_point,
                                args=(network, CFG, pattern, f),
                                kwargs=kwargs, label="@%.2f" % f))
    run = run_sharded(shards, workers=2, on_error="retry")
    assert os.path.exists(sentinel)
    assert run.results == baseline  # dataclass field equality
    for got, want in zip(run.results, baseline):
        assert repr(got) == repr(want)  # byte-identical rendering


# -- hung shard / timeout ------------------------------------------------------

def test_timeout_collects_and_rest_completes():
    if not _pool_available():
        pytest.skip("platform cannot create worker pools")
    shards = [Shard(_square, args=(i,), label="sq%d" % i) for i in range(6)]
    shards[2] = Shard(_sleep_forever, args=(2,), label="hung")
    started = time.monotonic()
    run = run_sharded(shards, workers=2, on_error="collect", timeout_s=1.0)
    assert time.monotonic() - started < 45  # never waits the full sleep
    err = run.results[2]
    assert isinstance(err, ShardError)
    assert err.kind == "timeout"
    assert err.error_type == "ShardTimeoutError"
    assert "timeout_s" in err.message
    others = [run.results[i] for i in (0, 1, 3, 4, 5)]
    assert others == [0, 1, 9, 16, 25]
    assert ", 1 failed" in run.summary()


def test_timeout_raises_under_raise_policy():
    if not _pool_available():
        pytest.skip("platform cannot create worker pools")
    shards = [Shard(_sleep_forever, args=(0,), label="hung"),
              Shard(_square, args=(1,))]
    started = time.monotonic()
    with pytest.raises(ShardTimeoutError, match="hung"):
        run_sharded(shards, workers=2, on_error="raise", timeout_s=0.5)
    assert time.monotonic() - started < 45


def test_serial_backend_ignores_timeout():
    """The serial executor documents timeout_s as unenforceable
    in-process: a fast shard list with a timeout must simply run."""
    run = run_sharded([Shard(_square, args=(i,)) for i in range(3)],
                      workers=1, on_error="collect", timeout_s=0.001)
    assert run.results == [0, 1, 4]


# -- WorkerPool shutdown hardening --------------------------------------------

def test_worker_pool_close_does_not_hang_on_stuck_worker():
    pool = WorkerPool(2, close_timeout_s=0.5)
    mp_pool = pool.acquire()
    if mp_pool is None:
        pytest.skip("platform cannot create worker pools")
    assert pool.mode != "serial"
    mp_pool.apply_async(time.sleep, (60,))
    time.sleep(0.2)  # let the task start on a worker
    started = time.monotonic()
    pool.close()
    assert time.monotonic() - started < 30  # terminate fallback kicked in
    assert pool.mode == "serial"  # stale mode reset (the satellite fix)
    # the pool object is reusable: fresh workers on next use
    run = run_sharded([Shard(_square, args=(i,)) for i in range(4)],
                      workers=2, pool=pool)
    assert run.results == [0, 1, 4, 9]
    pool.close()
    assert pool.mode == "serial"


def test_worker_pool_pids_and_rebuild():
    pool = WorkerPool(2)
    if pool.acquire() is None:
        pytest.skip("platform cannot create worker pools")
    pids = pool.worker_pids()
    assert len(pids) == 2
    pool.rebuild()
    assert pool.mode == "serial" and pool.worker_pids() == ()
    assert pool.acquire() is not None
    assert set(pool.worker_pids()).isdisjoint(pids)
    pool.close()


# -- executor layer -----------------------------------------------------------

def test_explicit_executors_agree():
    shards = [Shard(_square, args=(i,)) for i in range(8)]
    serial = run_sharded(shards, executor=SerialExecutor())
    assert serial.results == [i * i for i in range(8)]
    assert serial.mode == "serial"
    with PoolExecutor(workers=2) as pooled_exec:
        pooled = run_sharded(shards, workers=2, executor=pooled_exec)
    assert pooled.results == serial.results


def test_remote_executor_is_documented_stub():
    with pytest.raises(NotImplementedError, match="contract"):
        RemoteExecutor(["host-a:9000", "host-b:9000"])


# -- progress callback isolation (satellite 3) ---------------------------------

@pytest.mark.parametrize("workers", [1, 2])
def test_raising_progress_cannot_corrupt_results(workers):
    def bad_progress(message):
        raise RuntimeError("telemetry crash")

    shards = [Shard(_square, args=(i,)) for i in range(6)]
    with pytest.warns(RuntimeWarning, match="progress callback"):
        run = run_sharded(shards, workers=workers, progress=bad_progress)
    assert run.results == [0, 1, 4, 9, 16, 25]
    assert len(run.reports) == 6


# -- policy threading through the sweep/figure layer ---------------------------

def test_sweep_collect_drops_failed_point():
    """A load point that raises (offered load <= 0) is dropped from the
    curve instead of aborting the sweep."""
    pattern = UniformTraffic(CFG.layout, seed=1)
    points = sweep("point_to_point", CFG, pattern, [0.05, -1.0],
                   window_ns=WINDOW_NS, seed=SEED, workers=1,
                   on_error="collect")
    assert len(points) == 1
    assert points[0].offered_fraction == 0.05
    with pytest.raises(ValueError, match="positive"):
        sweep("point_to_point", CFG, pattern, [0.05, -1.0],
              window_ns=WINDOW_NS, seed=SEED, workers=1)


def test_figure6_collect_records_failures():
    from repro.experiments.figure6 import figure6_text, run_figure6

    result = run_figure6(config=CFG, window_ns=WINDOW_NS,
                         patterns=["uniform"], networks=["point_to_point"],
                         load_grids={"uniform": [0.02, -1.0]},
                         on_error="collect")
    assert len(result.failures) == 1
    assert result.failures[0].error_type == "ValueError"
    assert len(result.curves["uniform"]["point_to_point"]) == 1
    rows = result.saturation_table()  # must not crash on partial curves
    assert rows and rows[0][0] == "uniform"
    assert "failed" in figure6_text(result)


def test_refine_knee_collect_skips_failed_probe():
    from repro.core.adaptive import refine_knee

    pattern = UniformTraffic(CFG.layout, seed=1)
    knee = refine_knee("point_to_point", CFG, pattern, [-1.0, 0.05, 0.60],
                       window_ns=WINDOW_NS, bisections=1, adaptive=None,
                       on_error="collect", seed=SEED)
    assert knee.failures
    assert knee.failures[0][0] == -1.0
    assert knee.failures[0][1] == "ValueError"
    assert knee.load_points >= 2  # the healthy probes still ran


def test_campaign_never_caches_failures(tmp_path, monkeypatch):
    """A failed replay must not be written to the results cache: the
    next run() of the same campaign retries exactly that pair."""
    import repro.experiments.campaign as campaign_mod

    real = campaign_mod._replay_entry

    def flaky(trace, network, config):
        if network == "token_ring" and not hasattr(flaky, "healed"):
            raise RuntimeError("injected replay failure")
        return real(trace, network, config)

    monkeypatch.setattr(campaign_mod, "_replay_entry", flaky)
    with campaign_mod.Campaign(str(tmp_path / "c"), preset_name="smoke",
                               config=CFG, on_error="collect") as campaign:
        grid = campaign.run(networks=["point_to_point", "token_ring"],
                            workloads=["Radix"])
        assert "token_ring" not in grid["Radix"]
        assert len(campaign.last_failures) == 1
        assert campaign.last_failures[0].error_type == "RuntimeError"
        cached = campaign.completed_pairs()
        flaky.healed = True  # second run: the injected fault is gone
        grid = campaign.run(networks=["point_to_point", "token_ring"],
                            workloads=["Radix"])
        assert grid["Radix"]["token_ring"].runtime_ps > 0
        assert campaign.completed_pairs() == cached + 1
        assert campaign.last_failures == []
