"""Tests for the experiment drivers (tables, figure 6, figures 7-10)."""

import pytest

from repro.experiments.evaluation import (
    PRESETS,
    WORKLOAD_ORDER,
    run_suite,
)
from repro.experiments.figure6 import (
    LOAD_GRIDS,
    PANEL_ORDER,
    figure6_text,
    run_figure6,
)
from repro.experiments.figures7_10 import (
    all_figures_text,
    figure7_speedups,
    figure8_latencies,
    figure9_router_fractions,
    figure10_edp,
)
from repro.experiments.table_experiments import (
    all_tables_text,
    table1_text,
    table4_text,
    table5_text,
    table6_text,
)
from repro.macrochip.config import small_test_config


class TestTableTexts:
    def test_table1_mentions_components(self):
        text = table1_text()
        for name in ["Modulator", "OPxC", "Drop Filter", "Receiver"]:
            assert name in text

    def test_table4_values(self):
        text = table4_text()
        assert "320 GB/sec" in text
        assert "20 TB/sec" in text

    def test_table5_networks(self):
        text = table5_text()
        assert "Token-Ring" in text
        assert "19.1x" in text

    def test_table6_counts(self):
        text = table6_text()
        assert "512K" in text
        assert "3072" in text
        assert "16K" in text

    def test_all_tables_concatenates(self):
        text = all_tables_text()
        for t in ["Table 1", "Table 4", "Table 5", "Table 6"]:
            assert t in text


class TestFigure6:
    def test_grids_cover_paper_axes(self):
        assert set(LOAD_GRIDS) == set(PANEL_ORDER)
        assert max(LOAD_GRIDS["uniform"]) <= 1.0
        assert max(LOAD_GRIDS["transpose"]) <= 0.06
        assert max(LOAD_GRIDS["neighbor"]) <= 0.25

    def test_tiny_run_produces_curves(self):
        cfg = small_test_config(4, 4)
        res = run_figure6(cfg, window_ns=100.0,
                          patterns=["uniform"],
                          networks=["point_to_point", "token_ring"],
                          load_grids={"uniform": [0.05, 0.2]})
        curves = res.curves["uniform"]
        assert set(curves) == {"point_to_point", "token_ring"}
        assert len(curves["point_to_point"]) == 2
        text = figure6_text(res)
        assert "Figure 6 [uniform]" in text
        assert "sustained" in text.lower()

    def test_saturation_table(self):
        cfg = small_test_config(4, 4)
        res = run_figure6(cfg, window_ns=100.0, patterns=["uniform"],
                          networks=["point_to_point"],
                          load_grids={"uniform": [0.05]})
        rows = res.saturation_table()
        assert rows[0][0] == "uniform"
        assert rows[0][2] > 0


class TestSuite:
    def test_presets_defined(self):
        assert set(PRESETS) == {"full", "quick", "smoke"}

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError):
            run_suite("bogus")

    def test_workload_order(self):
        assert WORKLOAD_ORDER[0] == "Radix"
        assert WORKLOAD_ORDER[-1] == "Butterfly"
        assert len(WORKLOAD_ORDER) == 11

    def test_tiny_suite_end_to_end(self):
        cfg = small_test_config(4, 4)
        suite = run_suite("smoke", config=cfg,
                          networks=["point_to_point", "circuit_switched"],
                          workloads=["Radix", "All-to-all"])
        assert set(suite.results) == {"Radix", "All-to-all"}

        sp = figure7_speedups(suite)
        assert sp["Radix"]["circuit_switched"] == 1.0
        assert sp["Radix"]["point_to_point"] > 1.0

        lat = figure8_latencies(suite)
        assert lat["All-to-all"]["point_to_point"] > 0

        edp = figure10_edp(suite)
        assert edp["Radix"]["point_to_point"] == 1.0


class TestSuiteRendering:
    def test_text_grid_renders(self):
        cfg = small_test_config(2, 2)
        suite = run_suite("smoke", config=cfg,
                          networks=["point_to_point", "circuit_switched",
                                    "limited_point_to_point"],
                          workloads=["Barnes"])
        suite.results["Barnes"].keys()
        # figure9 needs limited_point_to_point results
        frac = figure9_router_fractions(suite)
        assert "Barnes" in frac


class TestFullScale:
    """Section 3's 2015 platform numbers."""

    def test_report_contains_section3_claims(self):
        from repro.experiments.full_scale import full_scale_report

        text = full_scale_report()
        assert "2560" in text  # 2.56 TB/s per site
        assert "163.8" in text  # 160 TB/s aggregate
        assert "1024" in text  # laser modules
        assert "closes" in text

    def test_scaling_is_8x(self):
        from repro.experiments.full_scale import scaling_comparison

        text = scaling_comparison()
        assert "64" in text and "8" in text


class TestParallelDrivers:
    """Serial-vs-parallel equivalence of the figure drivers (the
    determinism contract of repro.core.parallel)."""

    GRID = {"uniform": [0.05, 0.20]}

    def test_figure6_workers_bit_identical(self):
        cfg = small_test_config(2, 2)
        serial = run_figure6(cfg, window_ns=100.0, patterns=["uniform"],
                             networks=["point_to_point", "token_ring"],
                             load_grids=self.GRID, workers=1)
        parallel = run_figure6(cfg, window_ns=100.0, patterns=["uniform"],
                               networks=["point_to_point", "token_ring"],
                               load_grids=self.GRID, workers=2)
        assert serial.curves == parallel.curves

    def test_suite_workers_match_serial(self):
        cfg = small_test_config(2, 2)
        kwargs = dict(config=cfg, workloads=["All-to-all"],
                      networks=["point_to_point"])
        serial = run_suite("smoke", **kwargs)
        parallel = run_suite("smoke", workers=2, **kwargs)
        a = serial.results["All-to-all"]["point_to_point"]
        b = parallel.results["All-to-all"]["point_to_point"]
        assert a.runtime_ps == b.runtime_ps
        assert a.ops_completed == b.ops_completed
        assert a.messages_sent == b.messages_sent
        assert a.events_dispatched == b.events_dispatched
        assert a.energy_by_category == b.energy_by_category

    def test_suite_workload_filter_builds_only_requested_traces(self):
        cfg = small_test_config(2, 2)
        suite = run_suite("smoke", config=cfg, workloads=["Radix"],
                          networks=["point_to_point"])
        assert list(suite.traces) == ["Radix"]
        assert list(suite.results) == ["Radix"]
