"""Backend selection plumbing: CLI round-trip, campaign fingerprints,
and the numpy-optional degradation seams (PR 9).

The vectorized backend is only useful if asking for it actually reaches
the hot loop — these tests pin the plumbing between the user-facing
surfaces (``--backend`` on the CLI, ``backend=`` on ``Campaign``) and
:func:`repro.core.sweep.run_load_point`, plus the failure modes: bad
names are rejected with the valid choices listed, and a missing numpy
raises an actionable ImportError from :func:`require_numpy` while
``try_run_vectorized`` degrades silently to the scalar engine.
"""

import warnings
from types import SimpleNamespace

import pytest

import repro.core.vectorized as vectorized
from repro.core.sweep import BACKENDS, run_load_point
from repro.experiments import run as run_cli
from repro.experiments.campaign import (Campaign, CampaignStateError,
                                        campaign_fingerprint)
from repro.experiments.scaling import simulate_scale_point
from repro.macrochip.config import small_test_config
from repro.workloads.synthetic import UniformTraffic

CFG = small_test_config(2, 2)


# -- CLI round-trip -----------------------------------------------------------

def _capture_figure6(monkeypatch):
    """Stub the Figure 6 drivers so main() exercises argument plumbing
    without simulating anything; returns the captured kwargs dict."""
    captured = {}

    def stub(**kwargs):
        captured.update(kwargs)
        return SimpleNamespace(mode="fixed", load_points=0,
                               total_events=0, failures=[])

    monkeypatch.setattr(run_cli, "run_figure6", stub)
    monkeypatch.setattr(run_cli, "run_figure6_adaptive", stub)
    monkeypatch.setattr(run_cli, "figure6_text", lambda result: "stub")
    return captured


def test_cli_backend_roundtrips_to_figure6_driver(monkeypatch):
    captured = _capture_figure6(monkeypatch)
    assert run_cli.main(["--artifact", "figure6",
                         "--backend", "vectorized"]) == 0
    assert captured["backend"] == "vectorized"


def test_cli_backend_defaults_to_python(monkeypatch):
    captured = _capture_figure6(monkeypatch)
    assert run_cli.main(["--artifact", "figure6"]) == 0
    assert captured["backend"] == "python"


def test_cli_backend_reaches_adaptive_driver(monkeypatch):
    captured = _capture_figure6(monkeypatch)
    assert run_cli.main(["--artifact", "figure6", "--adaptive",
                         "--backend", "vectorized"]) == 0
    assert captured["backend"] == "vectorized"


def test_cli_rejects_unknown_backend():
    with pytest.raises(SystemExit):
        run_cli.main(["--artifact", "figure6", "--backend", "jit"])


# -- backend validation -------------------------------------------------------

def test_run_load_point_lists_valid_backends_on_error():
    with pytest.raises(ValueError) as exc:
        run_load_point("point_to_point", CFG, UniformTraffic(CFG.layout),
                       0.05, window_ns=40.0, backend="cython")
    message = str(exc.value)
    assert "'cython'" in message
    for name in BACKENDS:
        assert name in message


def test_backends_tuple_is_the_cli_choice_list():
    """The CLI choices and the sweep-layer validation must never drift
    apart — both are derived from / match BACKENDS."""
    assert BACKENDS == ("python", "vectorized")


# -- campaign fingerprinting --------------------------------------------------

def test_campaign_fingerprint_records_backend(tmp_path):
    c = Campaign(str(tmp_path / "c"), preset_name="smoke", config=CFG,
                 backend="vectorized")
    assert c.fingerprint()["backend"] == "vectorized"
    d = Campaign(str(tmp_path / "d"), preset_name="smoke", config=CFG)
    assert d.fingerprint()["backend"] == "python"


def test_campaign_backend_mismatch_never_aliases(tmp_path):
    """A cache produced under one backend must not be silently reused by
    a campaign configured for another."""
    path = str(tmp_path / "c")
    Campaign(path, preset_name="smoke", config=CFG)
    with pytest.raises(CampaignStateError):
        Campaign(path, preset_name="smoke", config=CFG,
                 backend="vectorized")


def test_campaign_rejects_unknown_backend(tmp_path):
    with pytest.raises(ValueError) as exc:
        Campaign(str(tmp_path / "c"), preset_name="smoke", config=CFG,
                 backend="numba")
    message = str(exc.value)
    assert "python" in message and "vectorized" in message


def test_campaign_fingerprint_helper_defaults_to_python():
    from repro.experiments.evaluation import PRESETS

    doc = campaign_fingerprint(PRESETS["smoke"], CFG)
    assert doc["backend"] == "python"
    assert doc["version"] >= 2


# -- scaling entry point ------------------------------------------------------

def test_simulate_scale_point_backend_bit_identical():
    """The scaling study's simulated smoke points accept the backend
    knob (with invariant checking off, which forces scalar otherwise)
    and stay bit-identical."""
    scalar = simulate_scale_point("point_to_point", 4,
                                  check_invariants=False)
    fast = simulate_scale_point("point_to_point", 4,
                                check_invariants=False,
                                backend="vectorized")
    assert scalar.delivered_packets > 0
    assert fast == scalar


# -- numpy-optional seams -----------------------------------------------------

def test_require_numpy_error_is_actionable(monkeypatch):
    monkeypatch.setattr(vectorized, "np", None)
    with pytest.raises(ImportError) as exc:
        vectorized.require_numpy()
    message = str(exc.value)
    assert "repro[fast]" in message
    assert "numpy" in message


def test_missing_numpy_falls_back_to_scalar(monkeypatch):
    """Without numpy, backend="vectorized" degrades to the scalar
    engine per load point (one warning naming the call site that
    resolved the backend, identical results) instead of crashing."""
    monkeypatch.setattr(vectorized, "np", None)
    monkeypatch.setattr(vectorized, "_warned_no_numpy", set())
    pattern = UniformTraffic(CFG.layout)
    scalar = run_load_point("point_to_point", CFG, pattern, 0.05,
                            window_ns=40.0, seed=7)
    with pytest.warns(RuntimeWarning, match="repro\\[fast\\]") as rec:
        fallback = run_load_point("point_to_point", CFG, pattern, 0.05,
                                  window_ns=40.0, seed=7,
                                  backend="vectorized")
    assert fallback == scalar
    assert any("call site 'sweep'" in str(w.message) for w in rec)


def test_missing_numpy_warns_once_per_call_site(monkeypatch):
    """Each resolution site — sweep, adaptive, campaign — warns exactly
    once: a second load point through the same site is silent, but a
    different site still gets its own notice."""
    from repro.core.adaptive import AdaptiveConfig

    monkeypatch.setattr(vectorized, "np", None)
    monkeypatch.setattr(vectorized, "_warned_no_numpy", set())
    pattern = UniformTraffic(CFG.layout)
    kwargs = dict(window_ns=40.0, seed=7, backend="vectorized")
    with pytest.warns(RuntimeWarning, match="call site 'sweep'"):
        run_load_point("point_to_point", CFG, pattern, 0.05, **kwargs)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a repeat would now raise
        run_load_point("point_to_point", CFG, pattern, 0.10, **kwargs)
    with pytest.warns(RuntimeWarning, match="call site 'adaptive'"):
        run_load_point("point_to_point", CFG, pattern, 0.05,
                       adaptive=AdaptiveConfig().disabled(), **kwargs)


def test_campaign_warns_missing_numpy_at_construction(monkeypatch,
                                                      tmp_path):
    """A vectorized Campaign on a numpy-less interpreter announces the
    scalar resolution once, up front, instead of per load point."""
    monkeypatch.setattr(vectorized, "np", None)
    monkeypatch.setattr(vectorized, "_warned_no_numpy", set())
    with pytest.warns(RuntimeWarning, match="call site 'campaign'"):
        Campaign(str(tmp_path / "c"), preset_name="smoke", config=CFG,
                 backend="vectorized")
