"""Tests for WDM wavelength allocation."""

import pytest
from hypothesis import given, strategies as st

from repro.photonics.wdm import (
    WavelengthAllocator,
    WavelengthConflictError,
    WdmChannel,
    p2p_wavelength_plan,
)


def test_allocate_basic():
    alloc = WavelengthAllocator(8)
    ch = alloc.allocate("wg0", [0, 1])
    assert ch == WdmChannel("wg0", (0, 1))
    assert ch.width == 2
    assert alloc.occupancy("wg0") == 2


def test_conflict_detected():
    alloc = WavelengthAllocator(8)
    alloc.allocate("wg0", [3])
    with pytest.raises(WavelengthConflictError):
        alloc.allocate("wg0", [3])


def test_same_wavelength_on_other_guide_ok():
    alloc = WavelengthAllocator(8)
    alloc.allocate("wg0", [3])
    alloc.allocate("wg1", [3])
    assert alloc.total_channels == 2


def test_out_of_range_wavelength_rejected():
    alloc = WavelengthAllocator(8)
    with pytest.raises(ValueError):
        alloc.allocate("wg0", [8])
    with pytest.raises(ValueError):
        alloc.allocate("wg0", [-1])


def test_empty_channel_rejected():
    with pytest.raises(ValueError):
        WavelengthAllocator(8).allocate("wg0", [])


def test_allocate_next_takes_lowest_free():
    alloc = WavelengthAllocator(8)
    alloc.allocate("wg0", [0, 2])
    ch = alloc.allocate_next("wg0", 2)
    assert ch.wavelengths == (1, 3)


def test_allocate_next_overflow():
    alloc = WavelengthAllocator(4)
    alloc.allocate_next("wg0", 3)
    with pytest.raises(WavelengthConflictError):
        alloc.allocate_next("wg0", 2)


def test_waveguides_listing():
    alloc = WavelengthAllocator(8)
    alloc.allocate("b", [0])
    alloc.allocate("a", [0])
    assert alloc.waveguides() == ["a", "b"]


def test_p2p_plan_feasible_for_paper_config():
    # 8 rows x 2-wavelength channels on 8-wavelength guides must fit:
    # 2 vertical guides per (source, column)
    alloc = p2p_wavelength_plan(rows=8, cols=8,
                                wavelengths_per_waveguide=8,
                                channel_width=2)
    # every source reaches every destination: 64 * 64 channels of width 2
    assert alloc.total_channels == 64 * 64 * 2


def test_p2p_plan_small():
    alloc = p2p_wavelength_plan(rows=2, cols=2,
                                wavelengths_per_waveguide=8,
                                channel_width=2)
    assert alloc.total_channels == 4 * 4 * 2


@given(st.integers(min_value=1, max_value=16))
def test_allocator_occupancy_never_exceeds_wdm(n):
    alloc = WavelengthAllocator(n)
    for _ in range(n):
        alloc.allocate_next("wg", 1)
    assert alloc.occupancy("wg") == n
    with pytest.raises(WavelengthConflictError):
        alloc.allocate_next("wg", 1)
