"""Tests for the power/EDP analysis layer (Tables 5, Figures 9-10)."""

import pytest

from repro.analysis.edp import (
    EnergyBreakdown,
    energy_breakdown,
    normalized_edp,
    speedups,
)
from repro.analysis.power import (
    electrical_static_w,
    network_power,
    router_energy_fraction,
    static_power_w,
    table5_rows,
)
from repro.analysis.tables import format_count, render_series, render_table
from repro.core.stats import LatencySample
from repro.macrochip.config import scaled_config
from repro.networks.complexity import p2p_count
from repro.workloads.replay import ReplayResult


class TestTable5:
    def test_rows_in_paper_order(self):
        names = [r.network for r in table5_rows()]
        assert names[0] == "Token-Ring"
        assert names[1] == "Point-to-Point"
        assert len(names) == 7

    def test_paper_laser_powers(self):
        rows = {r.network: r for r in table5_rows()}
        # Table 5 values (Circuit-Switched differs slightly: we use the
        # honest 31 x 0.5 dB = 15.5 dB where the paper rounds to ~30x)
        assert rows["Point-to-Point"].laser_power_w == pytest.approx(8.2, abs=0.1)
        assert rows["Token-Ring"].laser_power_w == pytest.approx(155, abs=2)
        assert rows["Two-Phase Data"].laser_power_w == pytest.approx(41, abs=1)
        assert rows["Two-Phase Data (ALT)"].laser_power_w == pytest.approx(65.5, abs=1)
        assert rows["Two-Phase Arbitration"].laser_power_w == pytest.approx(1.0, abs=0.1)
        assert rows["Circuit-Switched"].laser_power_w == pytest.approx(290, abs=5)

    def test_loss_factors(self):
        rows = {r.network: r for r in table5_rows()}
        assert rows["Token-Ring"].loss_factor == pytest.approx(19.05, abs=0.1)
        assert rows["Point-to-Point"].loss_factor == 1.0
        assert rows["Two-Phase Data"].loss_factor == pytest.approx(5.0, abs=0.1)
        assert rows["Two-Phase Arbitration"].loss_factor == pytest.approx(8.0)

    def test_p2p_is_most_power_efficient(self):
        rows = table5_rows()
        p2p = next(r for r in rows if r.network == "Point-to-Point")
        for r in rows:
            if r.network in ("Point-to-Point", "Limited Point-to-Point",
                             "Two-Phase Arbitration"):
                continue
            # "over 10x more power-efficient than the other networks"
            assert r.laser_power_w >= 5 * p2p.laser_power_w


class TestStaticPower:
    def test_electrical_static_positive(self):
        w = electrical_static_w(p2p_count(), scaled_config().tech)
        assert w > 0

    def test_network_power_total(self):
        p = network_power(p2p_count(), scaled_config().tech)
        assert p.total_static_w == pytest.approx(
            p.laser_power_w + p.electrical_static_w)

    def test_static_power_by_key(self):
        p2p = static_power_w("point_to_point")
        tr = static_power_w("token_ring")
        assert tr > p2p  # token ring burns far more power

    def test_two_phase_includes_arbitration_overlay(self):
        base = static_power_w("two_phase", include_electrical=False)
        assert base == pytest.approx(41.1 + 1.0, abs=0.3)

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError):
            static_power_w("bogus")


class TestRouterFraction:
    def test_fraction_formula(self):
        frac = router_energy_fraction({"router": 50.0, "optical": 30.0},
                                      static_w=0.0, runtime_ps=100)
        assert frac == pytest.approx(50.0 / 80.0)

    def test_zero_total(self):
        assert router_energy_fraction({}, 0.0, 0) == 0.0


def _result(network, runtime_ps, optical=100.0, router=0.0):
    lat = LatencySample()
    lat.add(1000)
    return ReplayResult(network=network, workload="w", runtime_ps=runtime_ps,
                        ops_completed=1, messages_sent=2, op_latency=lat,
                        energy_by_category={"optical": optical,
                                            "router": router})


class TestEdp:
    def test_breakdown_includes_static(self):
        b = energy_breakdown(_result("Point-to-Point", 10_000),
                             "point_to_point")
        assert b.static_pj > 0
        assert b.total_pj == pytest.approx(
            b.static_pj + b.optical_pj + b.router_pj)
        assert b.edp == pytest.approx(b.total_pj * 10_000)

    def test_router_fraction_property(self):
        b = EnergyBreakdown("n", "w", 100, static_pj=50.0, optical_pj=25.0,
                            router_pj=25.0)
        assert b.router_fraction == 0.25

    def test_normalized_edp_baseline_is_one(self):
        breakdowns = {
            "point_to_point": energy_breakdown(
                _result("P2P", 10_000), "point_to_point"),
            "token_ring": energy_breakdown(
                _result("TR", 30_000), "token_ring"),
        }
        norm = normalized_edp(breakdowns)
        assert norm["point_to_point"] == 1.0
        assert norm["token_ring"] > 10.0  # more power and slower

    def test_normalized_edp_missing_baseline(self):
        with pytest.raises(KeyError):
            normalized_edp({}, "point_to_point")

    def test_speedups(self):
        out = speedups({"circuit_switched": 1000, "point_to_point": 250})
        assert out["circuit_switched"] == 1.0
        assert out["point_to_point"] == 4.0


class TestTables:
    def test_render_table_aligns(self):
        text = render_table(["A", "B"], [["x", 1], ["yy", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("A")
        assert len(lines) == 4

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["A"], [["x", "y"]])

    def test_format_count(self):
        assert format_count(16384) == "16K"
        assert format_count(15360) == "15K"
        assert format_count(8192) == "8192"
        assert format_count(24) == "24"
        assert format_count(524288) == "512K"

    def test_render_series(self):
        text = render_series("t", "x", "y",
                             {"a": [(1, 2.0), (2, 3.0)], "b": [(1, 5.0)]})
        assert "t" in text and "a" in text and "b" in text
        assert "-" in text  # missing point placeholder
