"""Tests for the two-phase arbitrated network."""

import pytest

from repro.networks.base import Packet
from repro.networks.two_phase import (
    ARB_SLOT_PS,
    TwoPhaseAltNetwork,
    TwoPhaseArbitratedNetwork,
)


@pytest.fixture
def net(paper_config, sim):
    return TwoPhaseArbitratedNetwork(paper_config, sim)


def test_channel_is_40gb_per_s(net):
    # section 4.3: 16-bit, 40 GB/s shared channels
    assert net.channel_gb_per_s == pytest.approx(40.0)


def test_slot_duration_is_multiple_of_basic_slot(net):
    # 64 B at 40 GB/s = 1.6 ns = 4 basic slots
    assert net.slot_duration_ps(64) == 1600
    # 8 B control = 0.2 ns, rounded up to one 0.4 ns slot
    assert net.slot_duration_ps(8) == ARB_SLOT_PS


def test_single_packet_latency_includes_arbitration(net, sim):
    p = Packet(0, 9, 64)
    net.inject(p)
    sim.run()
    # request broadcast + arb slot + notification + switch setup + slot
    overhead = (net.request_prop_ps + ARB_SLOT_PS + net.notify_prop_ps
                + net.switch_setup_ps)
    expected = overhead + 1600 + net.propagation_ps(0, 9)
    assert p.t_deliver == expected
    assert net.granted_slots == 1
    assert net.wasted_slots == 0


def test_shared_channel_serializes_row_senders(net, sim):
    """Two sites in the same row sending to the same destination share
    one 40 GB/s channel."""
    p1 = Packet(0, 32, 64)
    p2 = Packet(1, 32, 64)
    net.inject(p1)
    net.inject(p2)
    sim.run()
    first, second = sorted([p1.t_deliver, p2.t_deliver])
    assert second - first >= 1600  # back-to-back slots at best


def test_different_rows_use_different_channels(net):
    a = net.channel(0, 32)
    b = net.channel(1, 32)
    assert a is not b


def test_tree_contention_wastes_slots(net, sim):
    """Same source, two destinations in the same column, back to back:
    the second grant finds the tree busy/retuning and must re-arbitrate."""
    p1 = Packet(0, 8, 64)   # column 0
    p2 = Packet(0, 16, 64)  # column 0 again
    net.inject(p1)
    net.inject(p2)
    sim.run()
    assert net.wasted_slots >= 1
    assert net.stats.delivered_packets == 2
    # the loser pays at least the tree reconfiguration window
    slow = max(p1.t_deliver, p2.t_deliver)
    fast = min(p1.t_deliver, p2.t_deliver)
    assert slow - fast >= net.tree_reconfig_ps


def test_same_destination_streak_needs_no_reconfig(net, sim):
    """Back-to-back packets to the same destination reuse the configured
    tree at full channel rate."""
    p1 = Packet(0, 8, 64)
    p2 = Packet(0, 8, 64)
    net.inject(p1)
    net.inject(p2)
    sim.run()
    assert net.wasted_slots == 0
    assert abs(p2.t_deliver - p1.t_deliver) == 1600


def test_different_columns_do_not_contend(net, sim):
    p1 = Packet(0, 8, 64)   # column 0
    p2 = Packet(0, 17, 64)  # column 1
    net.inject(p1)
    net.inject(p2)
    sim.run()
    assert net.wasted_slots == 0


def test_alt_variant_has_two_trees(paper_config, sim):
    alt = TwoPhaseAltNetwork(paper_config, sim)
    assert alt.trees_per_column == 2


def test_alt_absorbs_column_conflict(paper_config, sim):
    alt = TwoPhaseAltNetwork(paper_config, sim)
    p1 = Packet(0, 8, 64)
    p2 = Packet(0, 16, 64)
    alt.inject(p1)
    alt.inject(p2)
    sim.run()
    assert alt.wasted_slots == 0  # second tree takes the second grant


def test_all_delivered_under_contention(net, sim):
    delivered = []
    net.set_sink(delivered.append)
    for src in range(8):
        for dst in (8, 16, 24):
            net.inject(Packet(src, dst, 64))
    sim.run()
    assert len(delivered) == 24
