"""Tests for the shared network machinery: channels, injection, stats."""

import pytest

from repro.core.engine import Simulator
from repro.networks.base import Channel, InterSiteNetwork, Packet


class TestChannel:
    def test_serialization_and_propagation(self, sim):
        ch = Channel(sim, bandwidth_gb_per_s=5.0, propagation_ps=1000)
        arrivals = []
        p = Packet(0, 1, 64)
        t = ch.send(p, lambda pkt: arrivals.append(sim.now))
        # 64 B at 5 GB/s = 12.8 ns, + 1 ns flight
        assert t == 13800
        sim.run()
        assert arrivals == [13800]

    def test_back_to_back_serializes(self, sim):
        ch = Channel(sim, 5.0, 0)
        t1 = ch.send(Packet(0, 1, 64), lambda p: None)
        t2 = ch.send(Packet(0, 1, 64), lambda p: None)
        assert t1 == 12800
        assert t2 == 25600
        assert ch.busy_ps == 25600

    def test_queue_delay(self, sim):
        ch = Channel(sim, 5.0, 0)
        assert ch.queue_delay_ps() == 0
        ch.send(Packet(0, 1, 64), lambda p: None)
        assert ch.queue_delay_ps() == 12800

    def test_reserve_blocks_timeline(self, sim):
        ch = Channel(sim, 5.0, 0)
        ch.reserve(1000, 500)
        assert ch.next_free == 1500
        t = ch.send(Packet(0, 1, 64), lambda p: None)
        assert t == 1500 + 12800

    def test_invalid_parameters(self, sim):
        with pytest.raises(ValueError):
            Channel(sim, 0.0, 0)
        with pytest.raises(ValueError):
            Channel(sim, 1.0, -1)


class _DirectNetwork(InterSiteNetwork):
    """Minimal concrete network: fixed 1 ns delivery."""

    name = "direct"

    def _route(self, packet):
        packet.hops = 1
        self.sim.schedule(1000, self._deliver, packet)


class TestInterSiteNetwork:
    def test_loopback_is_one_cycle(self, small_config, sim):
        net = _DirectNetwork(small_config, sim)
        delivered = []
        net.set_sink(delivered.append)
        net.inject(Packet(3, 3, 64))
        sim.run()
        assert len(delivered) == 1
        assert delivered[0].t_deliver == small_config.loopback_latency_ps

    def test_remote_goes_through_route(self, small_config, sim):
        net = _DirectNetwork(small_config, sim)
        delivered = []
        net.set_sink(delivered.append)
        net.inject(Packet(0, 5, 64))
        sim.run()
        assert delivered[0].t_deliver == 1000

    def test_stats_track_inject_and_deliver(self, small_config, sim):
        net = _DirectNetwork(small_config, sim)
        net.inject(Packet(0, 5, 64))
        net.inject(Packet(0, 0, 64))
        sim.run()
        assert net.stats.injected_packets == 2
        assert net.stats.delivered_packets == 2

    def test_remote_packet_charged_optical_energy(self, small_config, sim):
        net = _DirectNetwork(small_config, sim)
        net.inject(Packet(0, 5, 64))
        sim.run()
        # 64 B x 8 x 150 fJ/bit = 76.8 pJ
        assert net.stats.energy.get("optical") == pytest.approx(76.8)

    def test_loopback_not_charged_optical_energy(self, small_config, sim):
        net = _DirectNetwork(small_config, sim)
        net.inject(Packet(2, 2, 64))
        sim.run()
        assert net.stats.energy.get("optical") == 0.0

    def test_on_delivered_callback_fires(self, small_config, sim):
        net = _DirectNetwork(small_config, sim)
        hits = []
        net.inject(Packet(0, 1, 64, on_delivered=lambda p: hits.append(p.pid)))
        sim.run()
        assert len(hits) == 1

    def test_packet_repr_and_validation(self):
        p = Packet(1, 2, 64, kind="req")
        assert "1->2" in repr(p)
        assert p.t_inject == -1
