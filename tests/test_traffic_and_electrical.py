"""Tests for traffic characterization and the electrical baseline."""

import pytest

from repro.analysis.traffic import (
    ClassBreakdown,
    TrafficCollector,
    TrafficMatrix,
    collect_traffic,
)
from repro.core.engine import Simulator
from repro.cpu.coherence import CoherenceOp, OpKind
from repro.cpu.trace import CoherenceTrace
from repro.macrochip.config import small_test_config
from repro.networks.base import Packet
from repro.networks.electrical_baseline import ElectricalBaselineNetwork
from repro.networks.point_to_point import PointToPointNetwork


CFG = small_test_config(4, 4)


def _pkt(src, dst, size, kind="data", t_inject=0, t_deliver=1000):
    p = Packet(src, dst, size, kind=kind)
    p.t_inject = t_inject
    p.t_deliver = t_deliver
    return p


class TestTrafficMatrix:
    def test_records_pairs(self):
        m = TrafficMatrix(16)
        m.record(_pkt(0, 1, 64))
        m.record(_pkt(0, 1, 8))
        m.record(_pkt(2, 3, 72))
        assert m.bytes_between(0, 1) == 72
        assert m.total_bytes == 144
        assert m.total_packets == 3

    def test_marginals(self):
        m = TrafficMatrix(16)
        m.record(_pkt(0, 1, 64))
        m.record(_pkt(0, 2, 64))
        m.record(_pkt(3, 0, 8))
        assert m.egress_bytes(0) == 128
        assert m.ingress_bytes(0) == 8

    def test_intra_site_fraction(self):
        m = TrafficMatrix(16)
        m.record(_pkt(5, 5, 64))
        m.record(_pkt(5, 6, 64))
        assert m.intra_site_fraction() == pytest.approx(0.5)
        assert TrafficMatrix(4).intra_site_fraction() == 0.0

    def test_hotspots_ranked(self):
        m = TrafficMatrix(16)
        m.record(_pkt(0, 1, 64))
        for _ in range(3):
            m.record(_pkt(2, 3, 64))
        assert m.hotspots(1) == [(2, 3, 192)]

    def test_imbalance(self):
        m = TrafficMatrix(4)
        m.record(_pkt(0, 1, 100))
        # one loaded source out of four -> max/mean = 4
        assert m.imbalance() == pytest.approx(4.0)
        assert TrafficMatrix(4).imbalance() == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficMatrix(0)


class TestClassBreakdown:
    def test_per_class_stats(self):
        b = ClassBreakdown()
        b.record(_pkt(0, 1, 8, kind="req", t_deliver=2000))
        b.record(_pkt(1, 0, 72, kind="data", t_deliver=5000))
        b.record(_pkt(2, 0, 8, kind="ack", t_deliver=1500))
        assert b.classes() == ["ack", "data", "req"]
        assert b.packets_of("req") == 1
        assert b.bytes_of("data") == 72
        assert b.mean_latency_ns("req") == pytest.approx(2.0)
        assert b.packets_of("missing") == 0

    def test_control_fraction(self):
        b = ClassBreakdown()
        b.record(_pkt(0, 1, 8, kind="req"))
        b.record(_pkt(0, 1, 8, kind="ack"))
        b.record(_pkt(0, 1, 72, kind="data"))
        assert b.control_fraction() == pytest.approx(2 / 3)
        assert ClassBreakdown().control_fraction() == 0.0

    def test_rows(self):
        b = ClassBreakdown()
        b.record(_pkt(0, 1, 8, kind="req"))
        rows = b.rows()
        assert rows[0][0] == "req"
        assert rows[0][1] == 1


class TestCollectTraffic:
    def test_collects_from_replay(self):
        trace = CoherenceTrace("t", CFG.num_cores)
        trace.ops_by_core[0] = [
            CoherenceOp(core=0, gap_cycles=1, kind=OpKind.GET_M,
                        requester=0, home=1, sharers=(2, 3)),
        ]
        collector = collect_traffic(trace, "point_to_point", CFG)
        # req + 2 inv + 2 ack + data = 6 messages
        assert collector.matrix.total_packets == 6
        assert collector.by_class.packets_of("inv") == 2
        assert collector.by_class.control_fraction() > 0.5


class TestElectricalBaseline:
    def test_channel_is_pin_limited(self, sim):
        net = ElectricalBaselineNetwork(CFG, sim)
        # 64 GB/s over 15 destinations
        assert net.channel_gb_per_s == pytest.approx(64.0 / 15.0)

    def test_much_slower_than_photonic_p2p(self):
        def latency(net_cls):
            sim = Simulator()
            net = net_cls(CFG, sim)
            p = Packet(0, 5, 64)
            net.inject(p)
            sim.run()
            return p.t_deliver

        electrical = latency(ElectricalBaselineNetwork)
        photonic = latency(PointToPointNetwork)
        assert electrical > 5 * photonic

    def test_serdes_latency_floor(self, sim):
        net = ElectricalBaselineNetwork(CFG, sim, serdes_latency_ns=10.0)
        p = Packet(0, 1, 64)
        net.inject(p)
        sim.run()
        assert p.t_deliver >= 10_000

    def test_energy_roughly_10x_optical(self, sim):
        net = ElectricalBaselineNetwork(CFG, sim)
        net.inject(Packet(0, 1, 64))
        sim.run()
        electrical_pj = net.stats.energy.get("electrical")
        # optical: 64 B x 8 x 0.15 pJ/bit = 76.8 pJ; electrical 10x
        assert electrical_pj == pytest.approx(768.0)

    def test_invalid_bandwidth(self, sim):
        with pytest.raises(ValueError):
            ElectricalBaselineNetwork(CFG, sim, site_bandwidth_gb_per_s=0)
