"""Tests for macrochip layout geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.photonics.layout import DEFAULT_LAYOUT, MacrochipLayout


def test_default_is_8x8():
    assert DEFAULT_LAYOUT.num_sites == 64
    assert DEFAULT_LAYOUT.rows == 8
    assert DEFAULT_LAYOUT.cols == 8


def test_coords_row_major():
    assert DEFAULT_LAYOUT.coords(0) == (0, 0)
    assert DEFAULT_LAYOUT.coords(7) == (0, 7)
    assert DEFAULT_LAYOUT.coords(8) == (1, 0)
    assert DEFAULT_LAYOUT.coords(63) == (7, 7)


def test_coords_rejects_bad_site():
    with pytest.raises(ValueError):
        DEFAULT_LAYOUT.coords(64)
    with pytest.raises(ValueError):
        DEFAULT_LAYOUT.coords(-1)


def test_site_at_wraps():
    assert DEFAULT_LAYOUT.site_at(-1, 0) == 56
    assert DEFAULT_LAYOUT.site_at(0, 8) == 0
    assert DEFAULT_LAYOUT.site_at(3, 5) == 29


def test_bad_layout_rejected():
    with pytest.raises(ValueError):
        MacrochipLayout(rows=0)
    with pytest.raises(ValueError):
        MacrochipLayout(site_pitch_cm=0.0)


def test_manhattan_distance():
    # corner to corner: (7+7) * 2 cm = 28 cm
    assert DEFAULT_LAYOUT.manhattan_distance_cm(0, 63) == pytest.approx(28.0)
    assert DEFAULT_LAYOUT.manhattan_distance_cm(0, 1) == pytest.approx(2.0)
    assert DEFAULT_LAYOUT.manhattan_distance_cm(5, 5) == 0.0


def test_propagation_delay_corner_to_corner():
    # 28 cm at 0.1 ns/cm = 2.8 ns
    assert DEFAULT_LAYOUT.propagation_delay_ps(0, 63) == 2800


def test_torus_wraparound_shortens_hops():
    # sites 0 and 7 are 7 apart in the mesh but 1 apart on the torus
    assert DEFAULT_LAYOUT.torus_hop_counts(0, 7) == (0, 1)
    assert DEFAULT_LAYOUT.torus_hop_counts(0, 63) == (1, 1)
    assert DEFAULT_LAYOUT.torus_hop_counts(0, 36) == (4, 4)  # true diagonal


def test_spans():
    assert DEFAULT_LAYOUT.row_span_cm == pytest.approx(14.0)
    assert DEFAULT_LAYOUT.col_span_cm == pytest.approx(14.0)
    assert DEFAULT_LAYOUT.worst_case_distance_cm == pytest.approx(28.0)


def test_snake_ring_round_trip_near_80_cycles():
    # the paper scales Corona's token round trip to 80 cycles (16 ns);
    # the serpentine ring over the 8x8 layout gives 154 cm ~ 15.4 ns
    length = DEFAULT_LAYOUT.snake_ring_length_cm()
    assert 140.0 <= length <= 170.0


def test_snake_positions_are_boustrophedon():
    # row 0 left-to-right, row 1 right-to-left
    assert DEFAULT_LAYOUT.snake_position(0) == 0
    assert DEFAULT_LAYOUT.snake_position(7) == 7
    assert DEFAULT_LAYOUT.snake_position(15) == 8  # (1,7) follows (0,7)
    assert DEFAULT_LAYOUT.snake_position(8) == 15


@given(st.integers(min_value=0, max_value=63))
def test_snake_position_roundtrip(site):
    layout = DEFAULT_LAYOUT
    assert layout.snake_site(layout.snake_position(site)) == site


@given(st.integers(min_value=0, max_value=63),
       st.integers(min_value=0, max_value=63))
def test_distance_symmetry(a, b):
    layout = DEFAULT_LAYOUT
    assert layout.manhattan_distance_cm(a, b) == layout.manhattan_distance_cm(b, a)
    assert layout.torus_distance_cm(a, b) == layout.torus_distance_cm(b, a)


@given(st.integers(min_value=0, max_value=63),
       st.integers(min_value=0, max_value=63))
def test_torus_never_longer_than_mesh(a, b):
    layout = DEFAULT_LAYOUT
    assert layout.torus_distance_cm(a, b) <= layout.manhattan_distance_cm(a, b)


@given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
def test_snake_positions_are_a_permutation(rows, cols):
    layout = MacrochipLayout(rows=rows, cols=cols)
    positions = {layout.snake_position(s) for s in range(layout.num_sites)}
    assert positions == set(range(layout.num_sites))
