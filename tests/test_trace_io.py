"""Tests for coherence-trace serialization."""

import io
import json

import pytest

from repro.cpu.coherence import CoherenceOp, OpKind
from repro.cpu.system import generate_trace
from repro.cpu.trace import CoherenceTrace
from repro.cpu.trace_io import dump_trace, load_trace
from repro.macrochip.config import small_test_config
from repro.workloads.kernels import RadixKernel
from repro.workloads.replay import replay


def sample_trace():
    trace = CoherenceTrace("sample", 4)
    trace.ops_by_core[0] = [
        CoherenceOp(core=0, gap_cycles=5, kind=OpKind.GET_S, requester=0,
                    home=1, owner=2, line=64),
        CoherenceOp(core=0, gap_cycles=9, kind=OpKind.GET_M, requester=0,
                    home=3, sharers=(1, 2), line=128),
    ]
    trace.ops_by_core[3] = [
        CoherenceOp(core=3, gap_cycles=0, kind=OpKind.WRITEBACK,
                    requester=1, home=2, line=192),
    ]
    trace.total_references = 10
    trace.total_instructions = 100
    trace.l2_misses = 3
    return trace


def test_roundtrip_through_file(tmp_path):
    path = str(tmp_path / "trace.json")
    original = sample_trace()
    dump_trace(original, path)
    loaded = load_trace(path)
    assert loaded.workload == "sample"
    assert loaded.num_cores == 4
    assert loaded.total_instructions == 100
    assert loaded.ops_by_core == original.ops_by_core


def test_roundtrip_through_stream():
    buf = io.StringIO()
    dump_trace(sample_trace(), buf)
    buf.seek(0)
    loaded = load_trace(buf)
    assert loaded.ops_by_core[0][1].sharers == (1, 2)
    assert loaded.ops_by_core[0][0].owner == 2
    assert loaded.ops_by_core[0][1].owner is None or True


def test_none_owner_preserved():
    buf = io.StringIO()
    dump_trace(sample_trace(), buf)
    buf.seek(0)
    loaded = load_trace(buf)
    assert loaded.ops_by_core[0][1].owner is None


def test_version_check():
    buf = io.StringIO(json.dumps({"version": 99}))
    with pytest.raises(ValueError):
        load_trace(buf)


def test_corrupt_core_count_rejected():
    doc = {"version": 1, "workload": "x", "num_cores": 2,
           "total_references": 0, "total_instructions": 0,
           "l2_misses": 0, "ops": [[]]}
    with pytest.raises(ValueError):
        load_trace(io.StringIO(json.dumps(doc)))


def test_loaded_trace_replays_identically(tmp_path):
    """A saved+loaded trace must produce the exact same replay result."""
    cfg = small_test_config(2, 2)
    trace = generate_trace(RadixKernel(refs_per_core=60), cfg)
    path = str(tmp_path / "radix.json")
    dump_trace(trace, path)
    loaded = load_trace(path)
    a = replay(trace, "point_to_point", cfg)
    b = replay(loaded, "point_to_point", cfg)
    assert a.runtime_ps == b.runtime_ps
    assert a.messages_sent == b.messages_sent
    assert a.mean_op_latency_ns == b.mean_op_latency_ns
